// Unit tests for the shared bench helpers (bench/bench_common.h) — the
// nearest-rank percentile that every trajectory file's p50/p95/p99 columns
// are computed with, and the JsonEmitter all the BENCH_*.json legs write
// through. A wrong rank or a malformed document here would silently skew
// or break every recorded trajectory.
#include "bench_common.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace memfp::bench {
namespace {

TEST(BenchPercentile, NearestRankOnKnownSample) {
  // Classic nearest-rank worked example: 10 values 1..10.
  std::vector<double> sample;
  for (int i = 10; i >= 1; --i) sample.push_back(i);  // unsorted on purpose
  EXPECT_EQ(percentile(sample, 50.0), 5.0);   // ceil(0.50*10)=5th -> 5
  EXPECT_EQ(percentile(sample, 95.0), 10.0);  // ceil(0.95*10)=10th -> 10
  EXPECT_EQ(percentile(sample, 90.0), 9.0);
  EXPECT_EQ(percentile(sample, 1.0), 1.0);    // ceil(0.01*10)=1st -> 1
}

TEST(BenchPercentile, ClampsAndEdgeCases) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);           // empty -> 0, not a crash
  EXPECT_EQ(percentile({42.0}, 0.0), 42.0);       // single element, p floor
  EXPECT_EQ(percentile({42.0}, 100.0), 42.0);     // single element, p ceil
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, -5.0), 1.0);   // p clamped to min
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 200.0), 3.0);  // p clamped to max
}

TEST(BenchPercentile, DuplicatesAndPlateaus) {
  const std::vector<double> sample = {1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_EQ(percentile(sample, 50.0), 1.0);
  EXPECT_EQ(percentile(sample, 80.0), 1.0);   // ceil(0.8*5)=4th -> 1
  EXPECT_EQ(percentile(sample, 81.0), 100.0); // ceil(0.81*5)=5th -> 100
}

TEST(BenchPercentile, SummaryMatchesPointQueries) {
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i * 0.5);
  const LatencySummary summary = summarize_latencies(sample);
  EXPECT_EQ(summary.p50, percentile(sample, 50.0));
  EXPECT_EQ(summary.p95, percentile(sample, 95.0));
  EXPECT_EQ(summary.p99, percentile(sample, 99.0));
  const LatencySummary empty = summarize_latencies({});
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p99, 0.0);
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("purley DIMM 0x1f"), "purley DIMM 0x1f");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("\r\t"), "\\r\\t");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonEmitter, EmitsStableKeyOrderAndTypes) {
  JsonEmitter json;
  json.begin_object();
  json.field("name", "fleet \"A\"");
  json.field("ok", true);
  json.field("seconds", 1.2345);           // default precision 2
  json.field("events_per_sec", 1234.25, 0); // explicit precision
  json.field("shards", static_cast<std::size_t>(61));
  json.begin_array("points");
  json.begin_object();
  json.field("dimms", 10000);
  json.end_object();
  json.begin_object();
  json.field("dimms", 100000);
  json.end_object();
  json.end_array();
  json.begin_array("empty");
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"name\": \"fleet \\\"A\\\"\",\n"
            "  \"ok\": true,\n"
            "  \"seconds\": 1.23,\n"
            "  \"events_per_sec\": 1234,\n"
            "  \"shards\": 61,\n"
            "  \"points\": [\n"
            "    {\n"
            "      \"dimms\": 10000\n"
            "    },\n"
            "    {\n"
            "      \"dimms\": 100000\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": []\n"
            "}\n");
}

TEST(JsonEmitter, IntegersStayExact) {
  // 2^53 + 1 is not representable as a double; the integer overloads must
  // not round-trip through one.
  JsonEmitter json;
  json.begin_object();
  json.field("events", 9007199254740993ULL);
  json.end_object();
  EXPECT_NE(json.str().find("9007199254740993"), std::string::npos);
}

TEST(JsonEmitter, ContextHeaderHasFixedKeyPrefix) {
  JsonEmitter json;
  json.begin_object();
  emit_context(json);
  json.end_object();
  const std::string& doc = json.str();
  const auto generated = doc.find("\"generated_by\": \"tools/run_benches.sh\"");
  const auto scale = doc.find("\"bench_scale\": ");
  const auto cpus = doc.find("\"num_cpus\": ");
  ASSERT_NE(generated, std::string::npos);
  ASSERT_NE(scale, std::string::npos);
  ASSERT_NE(cpus, std::string::npos);
  EXPECT_LT(generated, scale);
  EXPECT_LT(scale, cpus);
}

TEST(JsonEmitterDeathTest, UnbalancedDocumentsAbort) {
  EXPECT_DEATH(
      {
        JsonEmitter json;
        json.begin_object();
        (void)json.str();  // unclosed frame
      },
      "unclosed frame");
  EXPECT_DEATH(
      {
        JsonEmitter json;
        json.field("orphan", 1);  // field outside any frame
      },
      "outside any frame");
  EXPECT_DEATH(
      {
        JsonEmitter json;
        json.end_object();  // close without open
      },
      "close without open");
}

}  // namespace
}  // namespace memfp::bench
