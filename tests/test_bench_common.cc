// Unit tests for the shared bench helpers (bench/bench_common.h) — in
// particular the nearest-rank percentile that every trajectory file's
// p50/p95/p99 columns are computed with. A wrong rank here would silently
// skew every recorded latency number.
#include "bench_common.h"

#include <vector>

#include <gtest/gtest.h>

namespace memfp::bench {
namespace {

TEST(BenchPercentile, NearestRankOnKnownSample) {
  // Classic nearest-rank worked example: 10 values 1..10.
  std::vector<double> sample;
  for (int i = 10; i >= 1; --i) sample.push_back(i);  // unsorted on purpose
  EXPECT_EQ(percentile(sample, 50.0), 5.0);   // ceil(0.50*10)=5th -> 5
  EXPECT_EQ(percentile(sample, 95.0), 10.0);  // ceil(0.95*10)=10th -> 10
  EXPECT_EQ(percentile(sample, 90.0), 9.0);
  EXPECT_EQ(percentile(sample, 1.0), 1.0);    // ceil(0.01*10)=1st -> 1
}

TEST(BenchPercentile, ClampsAndEdgeCases) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);           // empty -> 0, not a crash
  EXPECT_EQ(percentile({42.0}, 0.0), 42.0);       // single element, p floor
  EXPECT_EQ(percentile({42.0}, 100.0), 42.0);     // single element, p ceil
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, -5.0), 1.0);   // p clamped to min
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 200.0), 3.0);  // p clamped to max
}

TEST(BenchPercentile, DuplicatesAndPlateaus) {
  const std::vector<double> sample = {1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_EQ(percentile(sample, 50.0), 1.0);
  EXPECT_EQ(percentile(sample, 80.0), 1.0);   // ceil(0.8*5)=4th -> 1
  EXPECT_EQ(percentile(sample, 81.0), 100.0); // ceil(0.81*5)=5th -> 100
}

TEST(BenchPercentile, SummaryMatchesPointQueries) {
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i * 0.5);
  const LatencySummary summary = summarize_latencies(sample);
  EXPECT_EQ(summary.p50, percentile(sample, 50.0));
  EXPECT_EQ(summary.p95, percentile(sample, 95.0));
  EXPECT_EQ(summary.p99, percentile(sample, 99.0));
  const LatencySummary empty = summarize_latencies({});
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p99, 0.0);
}

}  // namespace
}  // namespace memfp::bench
