// Numerical gradient checks for every autodiff op: perturb each input
// element, compare the finite-difference slope of a scalar objective with
// the gradient reverse accumulation reports.
#include "ml/autodiff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace memfp::ml {
namespace {

Tensor random_tensor(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Builds a graph via `build`, reduces the output node to a scalar by a
/// fixed weighted sum, and gradient-checks with central differences against
/// every element of every tensor in `inputs`.
void gradient_check(
    std::vector<Tensor> inputs,
    const std::function<int(Graph&, const std::vector<int>&)>& build,
    double tolerance = 2e-2) {
  // Fixed projection weights make the scalar objective deterministic.
  const auto objective = [&](const std::vector<Tensor>& values) {
    Graph graph;
    std::vector<int> ids;
    ids.reserve(values.size());
    for (const Tensor& v : values) ids.push_back(graph.leaf(v, true));
    const int out = build(graph, ids);
    const Tensor& result = graph.value(out);
    double total = 0.0;
    for (std::size_t i = 0; i < result.size(); ++i) {
      // Weighted sum so every output element contributes distinctly.
      total += result.data()[i] * (0.3 + 0.1 * static_cast<double>(i % 7));
    }
    return total;
  };

  // Analytic gradients.
  Graph graph;
  std::vector<int> ids;
  for (const Tensor& v : inputs) ids.push_back(graph.leaf(v, true));
  const int out = build(graph, ids);
  // Seed output grad with the projection weights via a scalar proxy: build
  // the weighted sum by hand on top of out.
  const Tensor& result = graph.value(out);
  Tensor proj(result.cols(), 1);
  // We cannot inject arbitrary seeds through backward(), so emulate the
  // weighted sum with existing ops only when shapes allow; instead, check
  // each output element's gradient contribution via the chain rule by
  // seeding manually: run backward on a sum node built from scale/add is
  // complex — simpler: evaluate gradient of sum_i w_i out_i using the
  // identity that backward() seeds ones, by folding w into a leaf multiply.
  (void)proj;

  // Simplest correct approach: wrap the projection inside the build itself.
  // (Handled by callers passing builds whose output is 1x1 — enforced here.)
  ASSERT_EQ(result.size(), 1u)
      << "gradient_check requires builds that end in a scalar node";
  graph.backward(out);

  const double eps = 1e-3;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    for (std::size_t i = 0; i < inputs[t].size(); ++i) {
      std::vector<Tensor> plus = inputs;
      std::vector<Tensor> minus = inputs;
      plus[t].data()[i] += static_cast<float>(eps);
      minus[t].data()[i] -= static_cast<float>(eps);
      const double numeric =
          (objective(plus) - objective(minus)) / (2.0 * eps);
      const double analytic = graph.grad(ids[t]).data()[i] *
                              (0.3 + 0.0);  // scalar node weight is w_0
      const double scale = std::max({1.0, std::fabs(numeric),
                                     std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric, tolerance * scale)
          << "tensor " << t << " element " << i;
    }
  }
}

/// Reduces any node to 1x1 with matmuls against fixed ones-vectors.
int to_scalar(Graph& graph, int node) {
  // Copy the dims: adding leaves below may reallocate the graph's node
  // storage, which would dangle a held `const Tensor&`.
  const std::size_t node_rows = graph.value(node).rows();
  const std::size_t node_cols = graph.value(node).cols();
  Tensor right(node_cols, 1);
  for (std::size_t i = 0; i < right.size(); ++i) {
    right.data()[i] = 0.5f + 0.1f * static_cast<float>(i % 5);
  }
  const int right_id = graph.leaf(right, false);
  const int col = graph.matmul(node, right_id);  // rows x 1
  Tensor left(1, node_rows);
  for (std::size_t i = 0; i < left.size(); ++i) {
    left.data()[i] = 0.7f - 0.05f * static_cast<float>(i % 3);
  }
  const int left_id = graph.leaf(left, false);
  return graph.matmul(left_id, col);  // 1 x 1
}

TEST(Autodiff, MatmulGradients) {
  Rng rng(1);
  gradient_check(
      {random_tensor(3, 4, rng), random_tensor(4, 2, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.matmul(ids[0], ids[1]));
      });
}

TEST(Autodiff, AddAndScaleGradients) {
  Rng rng(2);
  gradient_check(
      {random_tensor(2, 3, rng), random_tensor(2, 3, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.scale(g.add(ids[0], ids[1]), 1.7f));
      });
}

TEST(Autodiff, AddRowvecGradients) {
  Rng rng(3);
  gradient_check(
      {random_tensor(3, 4, rng), random_tensor(1, 4, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.add_rowvec(ids[0], ids[1]));
      });
}

TEST(Autodiff, ReluGradients) {
  Rng rng(4);
  gradient_check({random_tensor(3, 3, rng)},
                 [](Graph& g, const std::vector<int>& ids) {
                   return to_scalar(g, g.relu(ids[0]));
                 });
}

TEST(Autodiff, GeluGradients) {
  Rng rng(5);
  gradient_check({random_tensor(3, 3, rng)},
                 [](Graph& g, const std::vector<int>& ids) {
                   return to_scalar(g, g.gelu(ids[0]));
                 });
}

TEST(Autodiff, LayernormGradients) {
  Rng rng(6);
  gradient_check(
      {random_tensor(3, 6, rng), random_tensor(1, 6, rng),
       random_tensor(1, 6, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.layernorm(ids[0], ids[1], ids[2]));
      },
      /*tolerance=*/5e-2);
}

TEST(Autodiff, AttentionGradients) {
  Rng rng(7);
  // 2 samples x 3 tokens, d=4, 2 heads.
  gradient_check(
      {random_tensor(6, 4, rng), random_tensor(6, 4, rng),
       random_tensor(6, 4, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.attention(ids[0], ids[1], ids[2], 3, 2));
      },
      /*tolerance=*/5e-2);
}

TEST(Autodiff, SelectTokenGradients) {
  Rng rng(8);
  gradient_check({random_tensor(6, 4, rng)},
                 [](Graph& g, const std::vector<int>& ids) {
                   return to_scalar(g, g.select_token(ids[0], 3, 1));
                 });
}

TEST(Autodiff, NumericTokensGradients) {
  Rng rng(9);
  const Tensor x = random_tensor(2, 3, rng);  // constant input
  gradient_check(
      {random_tensor(3, 4, rng), random_tensor(3, 4, rng)},
      [x](Graph& g, const std::vector<int>& ids) {
        return to_scalar(g, g.numeric_tokens(x, ids[0], ids[1]));
      });
}

TEST(Autodiff, CategoricalTokensGradients) {
  Rng rng(10);
  const std::vector<int> codes{0, 1, 2, 0};  // 2 samples x 2 slots
  const std::vector<int> offsets{0, 3};      // cards 3 and 2
  gradient_check(
      {random_tensor(5, 4, rng)},
      [codes, offsets](Graph& g, const std::vector<int>& ids) {
        return to_scalar(
            g, g.categorical_tokens(codes, 2, ids[0], offsets));
      });
}

TEST(Autodiff, ConcatTokensGradients) {
  Rng rng(11);
  gradient_check(
      {random_tensor(1, 4, rng), random_tensor(4, 4, rng),
       random_tensor(2, 4, rng)},
      [](Graph& g, const std::vector<int>& ids) {
        // batch=2: part A has 2 tokens/sample, part B 1 token/sample.
        return to_scalar(
            g, g.concat_tokens(ids[0], {ids[1], ids[2]}, {2, 1}, 2));
      });
}

TEST(Autodiff, BceWithLogitsGradients) {
  Rng rng(12);
  const std::vector<float> targets{1.0f, 0.0f, 1.0f};
  const std::vector<float> weights{1.0f, 2.0f, 0.5f};
  gradient_check(
      {random_tensor(3, 1, rng)},
      [targets, weights](Graph& g, const std::vector<int>& ids) {
        return g.bce_with_logits(ids[0], targets, weights);
      });
}

TEST(Autodiff, BceLossValueMatchesDirectComputation) {
  Graph graph;
  Tensor logits(2, 1);
  logits(0, 0) = 1.2f;
  logits(1, 0) = -0.7f;
  const int id = graph.leaf(logits, true);
  const int loss = graph.bce_with_logits(id, {1.0f, 0.0f}, {1.0f, 1.0f});
  const double p0 = 1.0 / (1.0 + std::exp(-1.2));
  const double p1 = 1.0 / (1.0 + std::exp(0.7));
  const double expected = (-std::log(p0) - std::log(1.0 - p1)) / 2.0;
  EXPECT_NEAR(graph.value(loss)(0, 0), expected, 1e-5);
}

TEST(Autodiff, DropoutZeroRateIsIdentity) {
  Graph graph;
  Rng rng(13);
  Tensor x(2, 2, 1.0f);
  const int id = graph.leaf(x, true);
  EXPECT_EQ(graph.dropout(id, 0.0f, rng), id);
}

TEST(Autodiff, DropoutPreservesExpectation) {
  Graph graph;
  Rng rng(14);
  Tensor x(1, 10000, 1.0f);
  const int id = graph.leaf(x, false);
  const int dropped = graph.dropout(id, 0.3f, rng);
  double total = 0.0;
  const Tensor& out = graph.value(dropped);
  for (std::size_t i = 0; i < out.size(); ++i) total += out.data()[i];
  EXPECT_NEAR(total / static_cast<double>(out.size()), 1.0, 0.03);
}

TEST(Autodiff, GradientsAccumulateAcrossUses) {
  // f(x) = sum(x + x): gradient must be 2 everywhere.
  Graph graph;
  Tensor x(1, 3, 1.0f);
  const int id = graph.leaf(x, true);
  const int doubled = graph.add(id, id);
  const int scalar = to_scalar(graph, doubled);
  graph.backward(scalar);
  // Projection weights from to_scalar: left 0.7 (single row), right
  // 0.5 + 0.1*(i%5).
  for (std::size_t c = 0; c < 3; ++c) {
    const double expected = 2.0 * 0.7 * (0.5 + 0.1 * static_cast<double>(c));
    EXPECT_NEAR(graph.grad(id)(0, c), expected, 1e-5);
  }
}

}  // namespace
}  // namespace memfp::ml
