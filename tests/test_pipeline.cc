#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/predictor.h"
#include "sim/fleet.h"

namespace memfp::core {
namespace {

/// Small shared fleet so the experiment tests stay fast.
const sim::FleetTrace& small_fleet() {
  static const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.12));
  return fleet;
}

TEST(Pipeline, AlgorithmNamesAndFactory) {
  EXPECT_STREQ(algorithm_name(Algorithm::kLightGbm), "LightGBM");
  EXPECT_STREQ(algorithm_name(Algorithm::kRiskyCePattern),
               "Risky CE Pattern");
  EXPECT_NE(make_model(Algorithm::kRandomForest), nullptr);
  EXPECT_NE(make_model(Algorithm::kFtTransformer), nullptr);
  EXPECT_THROW(make_model(Algorithm::kRiskyCePattern), std::invalid_argument);
}

TEST(Pipeline, TrainTestDimmsDisjoint) {
  PipelineConfig config;
  Experiment experiment(small_fleet(), config);
  // Training rows must come only from non-test DIMMs; reconstruct the test
  // ids from the counts and the training set's dimm column.
  std::set<dram::DimmId> train_ids(experiment.train_set().dimm.begin(),
                                   experiment.train_set().dimm.end());
  EXPECT_GT(experiment.test_dimm_count(), 0u);
  EXPECT_GT(train_ids.size(), 0u);
  // The experiment's own invariant: |train| + |val| + |test| <= eligible.
  EXPECT_LE(train_ids.size(), experiment.train_dimm_count());
}

TEST(Pipeline, TrainSetRespectsDownsamplingCaps) {
  PipelineConfig config;
  config.max_negatives_per_dimm = 3;
  config.max_positives_per_dimm = 5;
  Experiment experiment(small_fleet(), config);
  std::map<dram::DimmId, std::size_t> neg_counts, pos_counts;
  const ml::Dataset& train = experiment.train_set();
  for (std::size_t r = 0; r < train.size(); ++r) {
    if (train.y[r] == 1) ++pos_counts[train.dimm[r]];
    else ++neg_counts[train.dimm[r]];
  }
  for (const auto& [id, count] : neg_counts) EXPECT_LE(count, 3u);
  for (const auto& [id, count] : pos_counts) EXPECT_LE(count, 5u);
}

TEST(Pipeline, GbdtRunProducesSaneMetrics) {
  PipelineConfig config;
  Experiment experiment(small_fleet(), config);
  const Experiment::Result result = experiment.run(Algorithm::kLightGbm);
  EXPECT_TRUE(result.applicable);
  EXPECT_GE(result.precision, 0.0);
  EXPECT_LE(result.precision, 1.0);
  EXPECT_GE(result.recall, 0.0);
  EXPECT_LE(result.recall, 1.0);
  EXPECT_GE(result.f1, 0.0);
  EXPECT_LE(result.f1, 1.0);
  EXPECT_LE(result.virr, 1.0);
  // Totals must cover every evaluated DIMM.
  const auto total = result.confusion.tp + result.confusion.fp +
                     result.confusion.fn + result.confusion.tn;
  EXPECT_GE(total, experiment.test_dimm_count());
}

TEST(Pipeline, BaselineApplicableOnlyOnPurley) {
  PipelineConfig config;
  Experiment purley(small_fleet(), config);
  EXPECT_TRUE(purley.run(Algorithm::kRiskyCePattern).applicable);

  const sim::FleetTrace k920 =
      sim::simulate_fleet(sim::k920_scenario().scaled(0.05));
  Experiment other(k920, config);
  const Experiment::Result result = other.run(Algorithm::kRiskyCePattern);
  EXPECT_FALSE(result.applicable);
}

TEST(Pipeline, AblationRestrictsFeatures) {
  PipelineConfig config;
  // Keep only the temporal group.
  const features::FeatureSchema schema = features::FeatureSchema::standard();
  config.active_features =
      schema.group_indices(features::FeatureGroup::kTemporal);
  Experiment experiment(small_fleet(), config);
  EXPECT_EQ(experiment.train_set().x.cols(), config.active_features.size());
  const Experiment::Result result = experiment.run(Algorithm::kLightGbm);
  EXPECT_TRUE(result.applicable);  // runs end-to-end on the projected space
}

TEST(Pipeline, RunWithModelHandsBackFittedModel) {
  PipelineConfig config;
  Experiment experiment(small_fleet(), config);
  auto [result, model] = experiment.run_with_model(Algorithm::kLightGbm);
  ASSERT_NE(model, nullptr);
  // The model scores the training rows without throwing.
  const std::vector<double> scores =
      model->predict_batch(experiment.train_set().x);
  EXPECT_EQ(scores.size(), experiment.train_set().size());
}

TEST(Predictor, TrainScorePredictRoundTrip) {
  MemoryFailurePredictor::Options options;
  options.algorithm = Algorithm::kLightGbm;
  MemoryFailurePredictor predictor(dram::Platform::kIntelPurley, options);
  EXPECT_FALSE(predictor.trained());
  EXPECT_THROW(predictor.score(small_fleet().dimms.front(), days(10)),
               std::logic_error);

  predictor.train(small_fleet());
  EXPECT_TRUE(predictor.trained());
  EXPECT_GT(predictor.threshold(), 0.0);

  // Scores are probabilities over the whole fleet.
  int scored = 0;
  for (const sim::DimmTrace& dimm : small_fleet().dimms) {
    if (dimm.ces.empty()) continue;
    const double score = predictor.score(dimm, days(100));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    if (++scored >= 25) break;
  }
  // Export carries the model artifact.
  const Json exported = predictor.to_json();
  EXPECT_EQ(exported.at("platform").as_string(), "Intel Purley");
  EXPECT_TRUE(exported.contains("model"));
}

TEST(Predictor, RejectsMismatchedPlatform) {
  MemoryFailurePredictor predictor(dram::Platform::kK920);
  EXPECT_THROW(predictor.train(small_fleet()), std::invalid_argument);
}

TEST(Predictor, QuietDimmScoresZero) {
  MemoryFailurePredictor::Options options;
  options.algorithm = Algorithm::kLightGbm;
  MemoryFailurePredictor predictor(dram::Platform::kIntelPurley, options);
  predictor.train(small_fleet());
  sim::DimmTrace quiet;
  quiet.platform = dram::Platform::kIntelPurley;
  EXPECT_EQ(predictor.score(quiet, days(50)), 0.0);
  EXPECT_FALSE(predictor.predict(quiet, days(50)));
}

}  // namespace
}  // namespace memfp::core
