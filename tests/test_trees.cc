#include "ml/decision_tree.h"

#include <gtest/gtest.h>

namespace memfp::ml {
namespace {

/// y = 1 iff x0 > 0.5 (plus an irrelevant second feature).
Dataset threshold_dataset(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform());
    const float x1 = static_cast<float>(rng.uniform());
    d.x.push_row(std::vector<float>{x0, x1});
    d.y.push_back(x0 > 0.5f ? 1 : 0);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

std::vector<std::size_t> all_rows(const Dataset& d) {
  std::vector<std::size_t> rows(d.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(ClassificationTree, LearnsAxisAlignedSplit) {
  Rng rng(1);
  const Dataset d = threshold_dataset(500, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  ClassificationTreeParams params;
  params.feature_fraction = 1.0;
  const Tree tree = fit_classification_tree(binned, all_rows(d), params, rng);
  int correct = 0;
  for (std::size_t r = 0; r < d.size(); ++r) {
    const double p = tree.predict(d.x.row(r));
    correct += (p > 0.5) == (d.y[r] == 1);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(d.size()), 0.97);
}

TEST(ClassificationTree, PureNodeIsLeaf) {
  Rng rng(2);
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.x.push_row(std::vector<float>{static_cast<float>(i)});
    d.y.push_back(1);  // all positive
    d.weight.push_back(1.0f);
    d.dimm.push_back(0);
    d.time.push_back(0);
  }
  const BinnedDataset binned = BinnedDataset::build(d);
  const Tree tree =
      fit_classification_tree(binned, all_rows(d), {}, rng);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(d.x.row(0)), 1.0);
}

TEST(ClassificationTree, RespectsMaxDepth) {
  Rng rng(3);
  const Dataset d = threshold_dataset(500, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  ClassificationTreeParams params;
  params.max_depth = 1;
  params.feature_fraction = 1.0;
  const Tree tree = fit_classification_tree(binned, all_rows(d), params, rng);
  // Depth-1 tree: at most 3 nodes.
  EXPECT_LE(tree.nodes().size(), 3u);
}

TEST(ClassificationTree, WeightsShiftLeafValues) {
  Rng rng(4);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.x.push_row(std::vector<float>{0.0f});
    d.y.push_back(i < 50 ? 1 : 0);
    d.weight.push_back(i < 50 ? 3.0f : 1.0f);
    d.dimm.push_back(0);
    d.time.push_back(0);
  }
  const BinnedDataset binned = BinnedDataset::build(d);
  const Tree tree = fit_classification_tree(binned, all_rows(d), {}, rng);
  EXPECT_NEAR(tree.predict(d.x.row(0)), 0.75, 1e-9);
}

TEST(GradientTree, FitsResiduals) {
  Rng rng(5);
  const Dataset d = threshold_dataset(500, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  // Gradients of squared loss from a zero prediction: grad = -y, hess = 1.
  std::vector<double> grad(d.size()), hess(d.size(), 1.0);
  for (std::size_t r = 0; r < d.size(); ++r) grad[r] = -(d.y[r] == 1 ? 1.0 : 0.0);
  GradientTreeParams params;
  params.feature_fraction = 1.0;
  const Tree tree =
      fit_gradient_tree(binned, all_rows(d), grad, hess, params, rng);
  // Leaf values approximate the class mean in each region.
  double pos_pred = 0.0;
  int pos_count = 0;
  for (std::size_t r = 0; r < d.size(); ++r) {
    if (d.y[r] == 1) {
      pos_pred += tree.predict(d.x.row(r));
      ++pos_count;
    }
  }
  EXPECT_GT(pos_pred / pos_count, 0.8);
}

TEST(GradientTree, RespectsMaxLeaves) {
  Rng rng(6);
  const Dataset d = threshold_dataset(1000, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  std::vector<double> grad(d.size()), hess(d.size(), 1.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    grad[r] = static_cast<double>(r % 7) - 3.0;  // noisy gradients
  }
  GradientTreeParams params;
  params.max_leaves = 4;
  const Tree tree =
      fit_gradient_tree(binned, all_rows(d), grad, hess, params, rng);
  EXPECT_LE(tree.leaves(), 4u);
}

TEST(GradientTree, MinHessianStopsSplitting) {
  Rng rng(7);
  const Dataset d = threshold_dataset(50, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  std::vector<double> grad(d.size(), -1.0), hess(d.size(), 0.001);
  GradientTreeParams params;
  params.min_child_hessian = 10.0;  // unreachable with tiny hessians
  const Tree tree =
      fit_gradient_tree(binned, all_rows(d), grad, hess, params, rng);
  EXPECT_EQ(tree.leaves(), 1u);
}

TEST(Tree, JsonRoundTripPreservesPredictions) {
  Rng rng(8);
  const Dataset d = threshold_dataset(300, rng);
  const BinnedDataset binned = BinnedDataset::build(d);
  ClassificationTreeParams params;
  params.feature_fraction = 1.0;
  const Tree tree = fit_classification_tree(binned, all_rows(d), params, rng);
  const Tree restored = Tree::from_json(Json::parse(tree.to_json().dump()));
  for (std::size_t r = 0; r < d.size(); ++r) {
    EXPECT_DOUBLE_EQ(tree.predict(d.x.row(r)), restored.predict(d.x.row(r)));
  }
}

TEST(Tree, EmptyTreePredictsZero) {
  const Tree tree;
  const std::vector<float> row{1.0f};
  EXPECT_EQ(tree.predict(row), 0.0);
}

}  // namespace
}  // namespace memfp::ml
