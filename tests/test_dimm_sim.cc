#include "sim/dimm_sim.h"

#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "sim/scenario.h"

namespace memfp::sim {
namespace {

dram::Fault benign_cell_fault() {
  dram::Fault fault;
  fault.mode = dram::FaultMode::kCell;
  fault.scope = dram::DeviceScope::kSingleDevice;
  fault.anchor = {0, 2, 3, 1000, 200};
  fault.devices = {2};
  fault.arrival = days(1);
  fault.ce_rate_per_hour = 0.5;
  fault.severity0 = 0.2;
  fault.severity_cap = 0.5;
  return fault;
}

dram::Fault purley_escalator(SimTime cross_at) {
  dram::Fault fault;
  fault.mode = dram::FaultMode::kRow;
  fault.scope = dram::DeviceScope::kSingleDevice;
  fault.anchor = {0, 5, 7, 4242, 77};
  fault.devices = {5};
  fault.arrival = 0;
  fault.escalating = true;
  fault.severity0 = 0.3;
  fault.severity_growth_per_day =
      0.7 / (static_cast<double>(cross_at) / static_cast<double>(kDay));
  fault.ce_rate_per_hour = 2.0;
  fault.rate_growth_per_day = 0.05;
  return fault;
}

TEST(DimmSim, BenignFaultProducesCesOnly) {
  DimmSimParams params;
  params.horizon = days(60);
  const DimmSimulator sim(dram::Platform::kIntelPurley, params);
  Rng rng(1);
  const DimmTrace trace =
      sim.run(0, 0, dram::DimmConfig{}, {benign_cell_fault()}, rng);
  EXPECT_GT(trace.ces.size(), 10u);
  EXPECT_FALSE(trace.has_ue());
  // Cell fault: every CE at the anchor coordinate.
  for (const dram::CeEvent& ce : trace.ces) {
    EXPECT_EQ(ce.coord, benign_cell_fault().anchor);
  }
}

TEST(DimmSim, CesAreTimeOrderedWithinHorizon) {
  DimmSimParams params;
  params.horizon = days(30);
  const DimmSimulator sim(dram::Platform::kIntelPurley, params);
  Rng rng(2);
  const DimmTrace trace =
      sim.run(0, 0, dram::DimmConfig{}, {benign_cell_fault()}, rng);
  for (std::size_t i = 1; i < trace.ces.size(); ++i) {
    EXPECT_LE(trace.ces[i - 1].time, trace.ces[i].time);
  }
  for (const dram::CeEvent& ce : trace.ces) {
    EXPECT_GE(ce.time, 0);
    EXPECT_LT(ce.time, params.horizon);
  }
}

TEST(DimmSim, EscalatorReachesUeAndTraceTruncates) {
  DimmSimParams params;
  params.horizon = days(120);
  const DimmSimulator sim(dram::Platform::kIntelPurley, params);
  Rng rng(3);
  const DimmTrace trace =
      sim.run(0, 0, dram::DimmConfig{}, {purley_escalator(days(40))}, rng);
  ASSERT_TRUE(trace.has_ue());
  EXPECT_TRUE(trace.predictable_ue());
  // UE lands after the fault crosses severity 1 (~day 40).
  EXPECT_GT(trace.ue->time, days(35));
  // No CE is logged after the UE.
  for (const dram::CeEvent& ce : trace.ces) {
    EXPECT_LT(ce.time, trace.ue->time);
  }
  // And the UE pattern itself is what the Purley ECC cannot correct.
  const auto ecc = dram::make_platform_ecc(dram::Platform::kIntelPurley);
  EXPECT_EQ(ecc->classify(trace.ue->pattern, dram::Geometry::ddr4_x4()),
            dram::EccVerdict::kUncorrected);
}

TEST(DimmSim, DeterministicGivenSeed) {
  DimmSimParams params;
  params.horizon = days(30);
  const DimmSimulator sim(dram::Platform::kK920, params);
  Rng rng_a(77), rng_b(77);
  const DimmTrace a =
      sim.run(0, 0, dram::DimmConfig{}, {benign_cell_fault()}, rng_a);
  const DimmTrace b =
      sim.run(0, 0, dram::DimmConfig{}, {benign_cell_fault()}, rng_b);
  ASSERT_EQ(a.ces.size(), b.ces.size());
  for (std::size_t i = 0; i < a.ces.size(); ++i) {
    EXPECT_EQ(a.ces[i].time, b.ces[i].time);
    EXPECT_EQ(a.ces[i].pattern, b.ces[i].pattern);
  }
}

TEST(DimmSim, NoFaultsNoEvents) {
  const DimmSimulator sim(dram::Platform::kIntelWhitley);
  Rng rng(5);
  const DimmTrace trace = sim.run(0, 0, dram::DimmConfig{}, {}, rng);
  EXPECT_FALSE(trace.has_ce());
  EXPECT_FALSE(trace.has_ue());
}

TEST(DimmSim, WhitleySingleDeviceFaultNeverUes) {
  DimmSimParams params;
  params.horizon = days(100);
  const DimmSimulator sim(dram::Platform::kIntelWhitley, params);
  Rng rng(6);
  // Even a fully escalated single-device fault is absorbed by Whitley ECC.
  dram::Fault fault = purley_escalator(days(20));
  const DimmTrace trace = sim.run(0, 0, dram::DimmConfig{}, {fault}, rng);
  EXPECT_FALSE(trace.has_ue());
  EXPECT_GT(trace.ces.size(), 0u);
}

}  // namespace
}  // namespace memfp::sim
