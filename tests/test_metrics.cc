#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace memfp::ml {
namespace {

TEST(Confusion, BasicRates) {
  Confusion c{8, 2, 4, 86};
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_NEAR(c.recall(), 8.0 / 12.0, 1e-12);
  const double p = 0.8, r = 8.0 / 12.0;
  EXPECT_NEAR(c.f1(), 2 * p * r / (p + r), 1e-12);
}

TEST(Confusion, EmptyDenominators) {
  Confusion c;
  EXPECT_EQ(c.precision(), 0.0);
  EXPECT_EQ(c.recall(), 0.0);
  EXPECT_EQ(c.f1(), 0.0);
}

TEST(Virr, MatchesPaperFormula) {
  // VIRR = (1 - y_c / precision) * recall, y_c = 0.1 (paper Section IV).
  Confusion c{54, 46, 13, 887};  // precision 0.54, recall ~0.806
  const double expected = (1.0 - 0.1 / c.precision()) * c.recall();
  EXPECT_NEAR(c.virr(0.1), expected, 1e-12);
}

TEST(Virr, NegativeWhenPrecisionBelowColdFraction) {
  Confusion c{5, 95, 5, 895};  // precision 0.05 < y_c = 0.1
  EXPECT_LT(c.virr(0.1), 0.0);
}

TEST(Virr, ZeroColdMigrationGivesRecall) {
  Confusion c{6, 2, 2, 90};
  EXPECT_NEAR(c.virr(0.0), c.recall(), 1e-12);
}

TEST(ConfusionAt, ThresholdSemantics) {
  const std::vector<double> scores{0.9, 0.7, 0.4, 0.2};
  const std::vector<int> labels{1, 0, 1, 0};
  const Confusion c = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
}

TEST(BestF1Threshold, FindsSeparatingPoint) {
  // Perfectly separable at 0.5.
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{1, 1, 0, 0};
  const ThresholdChoice choice = best_f1_threshold(scores, labels);
  EXPECT_NEAR(choice.confusion.f1(), 1.0, 1e-12);
  EXPECT_GT(choice.threshold, 0.2);
  EXPECT_LE(choice.threshold, 0.8);
}

TEST(BestF1Threshold, HandlesTies) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels{1, 1, 0, 0};
  const ThresholdChoice choice = best_f1_threshold(scores, labels);
  // All-or-nothing: best F1 is 2*2/(2*2+2+0) = 0.667 (alarm everything).
  EXPECT_NEAR(choice.confusion.f1(), 2.0 / 3.0, 1e-9);
}

TEST(PrAuc, PerfectRankingIsOne) {
  const std::vector<double> scores{0.9, 0.8, 0.3, 0.1};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_NEAR(pr_auc(scores, labels), 1.0, 1e-12);
}

TEST(PrAuc, RandomRankingNearPrevalence) {
  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.2));
  }
  EXPECT_NEAR(pr_auc(scores, labels), 0.2, 0.02);
}

TEST(PrAuc, NoPositivesIsZero) {
  EXPECT_EQ(pr_auc({0.5, 0.4}, {0, 0}), 0.0);
}

TEST(RocAuc, PerfectAndInverted) {
  const std::vector<double> scores{0.9, 0.8, 0.3, 0.1};
  EXPECT_NEAR(roc_auc(scores, {1, 1, 0, 0}), 1.0, 1e-12);
  EXPECT_NEAR(roc_auc(scores, {0, 0, 1, 1}), 0.0, 1e-12);
}

TEST(RocAuc, TiesGiveHalfCredit) {
  const std::vector<double> scores{0.5, 0.5};
  EXPECT_NEAR(roc_auc(scores, {1, 0}), 0.5, 1e-12);
}

TEST(RocAuc, DegenerateClassesGiveHalf) {
  EXPECT_EQ(roc_auc({0.1, 0.2}, {1, 1}), 0.5);
}

TEST(LogLoss, KnownValue) {
  // -log(0.8) for a confident correct prediction.
  EXPECT_NEAR(log_loss({0.8}, {1}), -std::log(0.8), 1e-12);
  EXPECT_NEAR(log_loss({0.8}, {0}), -std::log(0.2), 1e-9);
}

TEST(LogLoss, ClampsExtremeScores) {
  EXPECT_TRUE(std::isfinite(log_loss({0.0}, {1})));
  EXPECT_TRUE(std::isfinite(log_loss({1.0}, {0})));
}

}  // namespace
}  // namespace memfp::ml
