#include <gtest/gtest.h>

#include "common/string_utils.h"
#include "common/table.h"
#include "common/time.h"

namespace memfp {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(minutes(2), 120);
  EXPECT_EQ(hours(1), 3600);
  EXPECT_EQ(days(1), 86400);
  EXPECT_EQ(days(5), 5 * 24 * 3600);
}

TEST(StringUtils, Split) {
  const std::vector<std::string> expected{"a", "", "b"};
  EXPECT_EQ(split("a,,b", ','), expected);
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(starts_with("memfp", "mem"));
  EXPECT_FALSE(starts_with("mem", "memfp"));
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(StringUtils, FormatPercent) {
  EXPECT_EQ(format_percent(0.735, 1), "73.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table("Title");
  table.set_header({"col", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-cell", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-cell"), std::string::npos);
  // All lines between rules should share the same width.
  std::size_t first_line_end = out.find('\n', out.find('+'));
  const std::string rule = out.substr(out.find('+'), first_line_end - out.find('+'));
  EXPECT_GT(rule.size(), 10u);
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable table;
  table.set_header({"h"});
  table.add_row({"a"});
  table.add_rule();
  table.add_row({"b"});
  const std::string out = table.render();
  // Expect at least 4 horizontal rules: top, under header, mid, bottom.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

}  // namespace
}  // namespace memfp
