#include "dram/fault.h"

#include <gtest/gtest.h>

#include "dram/ecc.h"

namespace memfp::dram {
namespace {

const Geometry kX4 = Geometry::ddr4_x4();

Fault make_fault(FaultMode mode, DeviceScope scope, bool escalating) {
  Fault fault;
  fault.mode = mode;
  fault.scope = scope;
  fault.anchor = {0, 3, 5, 12345, 321};
  fault.devices = {3};
  if (scope == DeviceScope::kMultiDevice) fault.devices.push_back(9);
  fault.escalating = escalating;
  fault.severity0 = 0.3;
  fault.severity_growth_per_day = 0.05;
  fault.severity_cap = 0.8;
  fault.arrival = days(10);
  fault.ce_rate_per_hour = 1.0;
  fault.rate_growth_per_day = 0.05;
  return fault;
}

TEST(FaultDynamics, SeverityZeroBeforeArrival) {
  const Fault fault = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                                 false);
  EXPECT_EQ(fault.severity_at(days(5)), 0.0);
  EXPECT_EQ(fault.rate_at(days(5)), 0.0);
}

TEST(FaultDynamics, SeverityGrowsLinearly) {
  const Fault fault = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                                 true);
  EXPECT_DOUBLE_EQ(fault.severity_at(days(10)), 0.3);
  EXPECT_NEAR(fault.severity_at(days(20)), 0.8, 1e-9);
}

TEST(FaultDynamics, BenignSeverityCaps) {
  const Fault fault = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                                 false);
  EXPECT_NEAR(fault.severity_at(days(200)), 0.8, 1e-9);
}

TEST(FaultDynamics, EscalatingSeverityExceedsOne) {
  const Fault fault = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                                 true);
  EXPECT_GT(fault.severity_at(days(40)), 1.0);
  EXPECT_LE(fault.severity_at(days(400)), 1.3);
}

TEST(FaultDynamics, RateStallsWhenSeverityPlateaus) {
  Fault benign = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                            false);
  // Cap reached after (0.8 - 0.3) / 0.05 = 10 days.
  const double rate_at_plateau = benign.rate_at(benign.arrival + days(10));
  const double rate_much_later = benign.rate_at(benign.arrival + days(100));
  EXPECT_NEAR(rate_at_plateau, rate_much_later, 1e-9);

  Fault escalating = make_fault(FaultMode::kRow,
                                DeviceScope::kSingleDevice, true);
  // Still degrading at day 12 (cap 1.3 reached after 20 days).
  EXPECT_GT(escalating.rate_at(escalating.arrival + days(12)),
            escalating.rate_at(escalating.arrival + days(6)));
}

TEST(FaultDynamics, RateClamped) {
  Fault fault = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice, true);
  fault.rate_growth_per_day = 1.0;
  EXPECT_LE(fault.rate_at(days(300)), 4000.0);
}

// ---- pattern generator invariants ----

struct GeneratorCase {
  Platform platform;
  FaultMode mode;
  DeviceScope scope;
  double severity;
};

class GeneratorInvariantTest : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorInvariantTest, PatternsNonEmptyAndInFootprint) {
  const GeneratorCase& c = GetParam();
  // Purley cannot host single-device escalators in cell/column modes and the
  // multi-scope generators need two devices; construct accordingly.
  Fault fault = make_fault(c.mode, c.scope, false);
  const FaultPatternModel model(c.platform, kX4);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const ErrorPattern p = model.sample(fault, c.severity, rng);
    ASSERT_FALSE(p.empty());
    for (const ErrorBit& bit : p.bits()) {
      EXPECT_LT(bit.dq, kX4.total_dq());
      EXPECT_LT(bit.beat, kX4.beats);
      const int device = kX4.device_of_dq(bit.dq);
      EXPECT_TRUE(device == 3 || device == 9)
          << "bit on unexpected device " << device;
    }
    if (c.scope == DeviceScope::kSingleDevice) {
      EXPECT_TRUE(p.single_device(kX4));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GeneratorInvariantTest,
    ::testing::Values(
        GeneratorCase{Platform::kIntelPurley, FaultMode::kCell,
                      DeviceScope::kSingleDevice, 0.2},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kColumn,
                      DeviceScope::kSingleDevice, 0.7},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kRow,
                      DeviceScope::kSingleDevice, 0.9},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kBank,
                      DeviceScope::kSingleDevice, 0.9},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.9},
        GeneratorCase{Platform::kIntelWhitley, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.9},
        GeneratorCase{Platform::kK920, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.9},
        GeneratorCase{Platform::kK920, FaultMode::kBank,
                      DeviceScope::kMultiDevice, 0.99}));

class PreBoundaryCorrectableTest
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(PreBoundaryCorrectableTest, BenignEmissionsNeverUncorrectable) {
  const GeneratorCase& c = GetParam();
  Fault fault = make_fault(c.mode, c.scope, false);
  fault.severity_cap = 0.98;
  const FaultPatternModel model(c.platform, kX4);
  const auto ecc = make_platform_ecc(c.platform);
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const ErrorPattern p = model.sample(fault, c.severity, rng);
    EXPECT_NE(ecc->classify(p, kX4), EccVerdict::kUncorrected)
        << "benign fault produced an uncorrectable pattern at severity "
        << c.severity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    HighSeverityBenign, PreBoundaryCorrectableTest,
    ::testing::Values(
        GeneratorCase{Platform::kIntelPurley, FaultMode::kRow,
                      DeviceScope::kSingleDevice, 0.95},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kBank,
                      DeviceScope::kSingleDevice, 0.95},
        GeneratorCase{Platform::kIntelWhitley, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.95},
        GeneratorCase{Platform::kK920, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.95},
        GeneratorCase{Platform::kIntelPurley, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 0.95}));

TEST(Generator, EscalatorsEventuallyEmitUncorrectable) {
  for (const GeneratorCase& c :
       {GeneratorCase{Platform::kIntelPurley, FaultMode::kRow,
                      DeviceScope::kSingleDevice, 1.15},
        GeneratorCase{Platform::kIntelWhitley, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 1.15},
        GeneratorCase{Platform::kK920, FaultMode::kRow,
                      DeviceScope::kMultiDevice, 1.15}}) {
    Fault fault = make_fault(c.mode, c.scope, true);
    const FaultPatternModel model(c.platform, kX4);
    const auto ecc = make_platform_ecc(c.platform);
    Rng rng(13);
    bool saw_ue = false;
    for (int i = 0; i < 500 && !saw_ue; ++i) {
      saw_ue = ecc->classify(model.sample(fault, c.severity, rng), kX4) ==
               EccVerdict::kUncorrected;
    }
    EXPECT_TRUE(saw_ue) << "escalator never crossed on "
                        << platform_name(c.platform);
  }
}

TEST(Generator, CoordsFollowModeSemantics) {
  const FaultPatternModel model(Platform::kIntelPurley, kX4);
  Rng rng(21);

  const Fault cell = make_fault(FaultMode::kCell, DeviceScope::kSingleDevice,
                                false);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.sample_coord(cell, rng), cell.anchor);
  }

  const Fault column = make_fault(FaultMode::kColumn,
                                  DeviceScope::kSingleDevice, false);
  bool row_varies = false;
  for (int i = 0; i < 50; ++i) {
    const CellCoord coord = model.sample_coord(column, rng);
    EXPECT_EQ(coord.column, column.anchor.column);
    row_varies |= coord.row != column.anchor.row;
  }
  EXPECT_TRUE(row_varies);

  const Fault row = make_fault(FaultMode::kRow, DeviceScope::kSingleDevice,
                               false);
  bool column_varies = false;
  for (int i = 0; i < 50; ++i) {
    const CellCoord coord = model.sample_coord(row, rng);
    EXPECT_EQ(coord.row, row.anchor.row);
    column_varies |= coord.column != row.anchor.column;
  }
  EXPECT_TRUE(column_varies);

  const Fault bank = make_fault(FaultMode::kBank, DeviceScope::kSingleDevice,
                                false);
  for (int i = 0; i < 50; ++i) {
    const CellCoord coord = model.sample_coord(bank, rng);
    EXPECT_EQ(coord.bank, bank.anchor.bank);
    EXPECT_GE(coord.row, 0);
    EXPECT_LT(coord.row, kX4.rows);
  }
}

TEST(Generator, ModeNamesStable) {
  EXPECT_STREQ(fault_mode_name(FaultMode::kCell), "cell");
  EXPECT_STREQ(fault_mode_name(FaultMode::kBank), "bank");
  EXPECT_STREQ(device_scope_name(DeviceScope::kMultiDevice), "multi-device");
}

}  // namespace
}  // namespace memfp::dram
