#include "sim/fleet.h"

#include <gtest/gtest.h>

#include "dram/ecc.h"

namespace memfp::sim {
namespace {

TEST(Scenario, ScaledKeepsRatios) {
  const ScenarioParams base = purley_scenario();
  const ScenarioParams half = base.scaled(0.5);
  EXPECT_NEAR(static_cast<double>(half.ce_dimms),
              base.ce_dimms * 0.5, 1.0);
  EXPECT_NEAR(static_cast<double>(half.predictable_ue_dimms),
              base.predictable_ue_dimms * 0.5, 1.0);
  EXPECT_EQ(half.horizon, base.horizon);
}

TEST(Scenario, AllPlatformsConfigured) {
  const auto scenarios = all_platform_scenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].platform, dram::Platform::kIntelPurley);
  EXPECT_EQ(scenarios[1].platform, dram::Platform::kIntelWhitley);
  EXPECT_EQ(scenarios[2].platform, dram::Platform::kK920);
  for (const ScenarioParams& sc : scenarios) {
    double benign = 0.0, escal = 0.0;
    for (const FaultMixEntry& e : sc.benign_mix) benign += e.weight;
    for (const FaultMixEntry& e : sc.escalator_mix) escal += e.weight;
    EXPECT_NEAR(benign, 1.0, 0.01);
    EXPECT_NEAR(escal, 1.0, 0.01);
  }
}

TEST(Scenario, OnlyPurleyHasSingleDeviceEscalators) {
  for (const ScenarioParams& sc : all_platform_scenarios()) {
    double single_weight = 0.0;
    for (const FaultMixEntry& e : sc.escalator_mix) {
      if (e.scope == dram::DeviceScope::kSingleDevice) {
        single_weight += e.weight;
      }
    }
    if (sc.platform == dram::Platform::kIntelPurley) {
      EXPECT_GT(single_weight, 0.5);  // Finding 2: single-device dominant
    } else {
      EXPECT_EQ(single_weight, 0.0);  // Whitley/K920 ECC corrects them
    }
  }
}

TEST(Fleet, DeterministicInSeed) {
  const ScenarioParams sc = k920_scenario().scaled(0.05);
  const FleetTrace a = simulate_fleet(sc);
  const FleetTrace b = simulate_fleet(sc);
  ASSERT_EQ(a.dimms.size(), b.dimms.size());
  std::size_t a_ces = 0, b_ces = 0;
  for (const DimmTrace& d : a.dimms) a_ces += d.ces.size();
  for (const DimmTrace& d : b.dimms) b_ces += d.ces.size();
  EXPECT_EQ(a_ces, b_ces);
}

TEST(Fleet, SuddenUesHaveNoCes) {
  const FleetTrace fleet = simulate_fleet(whitley_scenario().scaled(0.1));
  for (const DimmTrace& dimm : fleet.dimms) {
    if (dimm.sudden_ue()) {
      EXPECT_TRUE(dimm.ces.empty());
      EXPECT_EQ(dimm.suppressed_ce_count, 0u);
    }
  }
}

TEST(Fleet, SuddenUePatternsAreUncorrectable) {
  Rng rng(5);
  const dram::Geometry g = dram::Geometry::ddr4_x4();
  for (dram::Platform platform :
       {dram::Platform::kIntelPurley, dram::Platform::kIntelWhitley,
        dram::Platform::kK920}) {
    const auto ecc = dram::make_platform_ecc(platform);
    for (int i = 0; i < 20; ++i) {
      const dram::ErrorPattern p = sample_ue_pattern(platform, g, rng);
      EXPECT_EQ(ecc->classify(p, g), dram::EccVerdict::kUncorrected);
    }
  }
}

// Table I shape assertions on a mid-size fleet (tolerances account for the
// reduced scale).
class TableOneShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    purley_ = new FleetTrace(simulate_fleet(purley_scenario().scaled(0.4)));
    whitley_ = new FleetTrace(simulate_fleet(whitley_scenario().scaled(0.4)));
    k920_ = new FleetTrace(simulate_fleet(k920_scenario().scaled(0.4)));
  }
  static void TearDownTestSuite() {
    delete purley_;
    delete whitley_;
    delete k920_;
    purley_ = whitley_ = k920_ = nullptr;
  }
  static double predictable_share(const FleetTrace& fleet) {
    return static_cast<double>(fleet.predictable_ue_dimms()) /
           static_cast<double>(fleet.dimms_with_ue());
  }
  static double ue_rate(const FleetTrace& fleet) {
    return static_cast<double>(fleet.dimms_with_ue()) /
           static_cast<double>(fleet.dimms_with_ce());
  }
  static FleetTrace* purley_;
  static FleetTrace* whitley_;
  static FleetTrace* k920_;
};

FleetTrace* TableOneShapeTest::purley_ = nullptr;
FleetTrace* TableOneShapeTest::whitley_ = nullptr;
FleetTrace* TableOneShapeTest::k920_ = nullptr;

TEST_F(TableOneShapeTest, PurleyPredictableDominant) {
  EXPECT_NEAR(predictable_share(*purley_), 0.73, 0.10);
}

TEST_F(TableOneShapeTest, WhitleySuddenDominant) {
  EXPECT_LT(predictable_share(*whitley_), 0.5);
  EXPECT_NEAR(predictable_share(*whitley_), 0.42, 0.12);
}

TEST_F(TableOneShapeTest, K920StronglyPredictable) {
  EXPECT_NEAR(predictable_share(*k920_), 0.82, 0.10);
}

TEST_F(TableOneShapeTest, UeRateOrderingAcrossPlatforms) {
  // Finding 1: Purley > Whitley > K920 in overall UE incidence.
  EXPECT_GT(ue_rate(*purley_), ue_rate(*whitley_));
  EXPECT_GT(ue_rate(*whitley_), ue_rate(*k920_));
}

TEST_F(TableOneShapeTest, ObservedDimmsHaveTelemetry) {
  for (const FleetTrace* fleet : {purley_, whitley_, k920_}) {
    for (const DimmTrace& dimm : fleet->dimms) {
      EXPECT_TRUE(dimm.has_ce() || dimm.has_ue());
      EXPECT_EQ(dimm.platform, fleet->platform);
    }
  }
}

TEST(Config, SamplerProducesValidConfigs) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const dram::DimmConfig config =
        sample_dimm_config(dram::Platform::kIntelWhitley, rng, i % 2 == 0);
    EXPECT_GE(config.frequency_mhz, 2400);
    EXPECT_LE(config.frequency_mhz, 3200);
    EXPECT_FALSE(config.part_number.empty());
    EXPECT_EQ(config.width, dram::DeviceWidth::kX4);
  }
}

}  // namespace
}  // namespace memfp::sim
