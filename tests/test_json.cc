#include "common/json.h"

#include <gtest/gtest.h>

namespace memfp {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, NestedStructureRoundTrip) {
  Json obj = Json::object();
  obj.set("name", "memfp");
  obj.set("version", 3);
  Json arr = Json::array();
  arr.push_back(1.5);
  arr.push_back("two");
  arr.push_back(Json::object().set("deep", true));
  obj.set("items", std::move(arr));

  const Json parsed = Json::parse(obj.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "memfp");
  EXPECT_EQ(parsed.at("version").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed.at("items").as_array()[0].as_number(), 1.5);
  EXPECT_TRUE(parsed.at("items").as_array()[2].at("deep").as_bool());
}

TEST(Json, PrettyAndCompactParseTheSame) {
  Json obj = Json::object();
  obj.set("a", Json::array().push_back(1).push_back(2));
  const Json compact = Json::parse(obj.dump(-1));
  const Json pretty = Json::parse(obj.dump(2));
  EXPECT_EQ(compact.at("a").as_array().size(), pretty.at("a").as_array().size());
}

TEST(Json, StringEscapes) {
  Json value(std::string("line1\nline2\t\"quoted\"\\"));
  const Json parsed = Json::parse(value.dump());
  EXPECT_EQ(parsed.as_string(), "line1\nline2\t\"quoted\"\\");
}

TEST(Json, UnicodeEscapeParses) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  // BMP code point -> UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(Json, NumbersWithExponents) {
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e-2").as_number(), -0.025);
}

TEST(Json, TypeMismatchThrows) {
  const Json number(1.0);
  EXPECT_THROW(number.as_string(), std::runtime_error);
  EXPECT_THROW(number.as_array(), std::runtime_error);
  EXPECT_THROW(number.at("k"), std::runtime_error);
}

TEST(Json, MissingKeyThrows) {
  Json obj = Json::object();
  obj.set("x", 1);
  EXPECT_TRUE(obj.contains("x"));
  EXPECT_FALSE(obj.contains("y"));
  EXPECT_THROW(obj.at("y"), std::runtime_error);
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad : {"{", "[1,", "tru", "\"unterminated", "{\"a\":}",
                          "[1 2]", "{'single':1}", "1 2"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
}

TEST(Json, WhitespaceTolerant) {
  const Json parsed = Json::parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  EXPECT_EQ(parsed.at("a").as_array().size(), 2u);
}

}  // namespace
}  // namespace memfp
