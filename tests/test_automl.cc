#include "mlops/automl.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"

namespace memfp::mlops {
namespace {

ml::Dataset noisy_task(std::size_t n, Rng& rng) {
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.normal());
    const float x1 = static_cast<float>(rng.normal());
    const float x2 = static_cast<float>(rng.normal());
    const double logit = 1.2 * x0 - 0.8 * x1 * x0;
    const int y = rng.bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1 : 0;
    d.x.push_row(std::vector<float>{x0, x1, x2});
    d.y.push_back(y);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

TEST(AutoMl, RunsRequestedTrialsAndPicksBest) {
  Rng rng(3);
  const ml::Dataset train = noisy_task(1500, rng);
  AutoMlConfig config;
  config.trials = 6;
  const AutoMlReport report = tune_gbdt(train, config);
  ASSERT_EQ(report.trials.size(), 6u);
  for (const AutoMlTrial& trial : report.trials) {
    EXPECT_GE(trial.validation_logloss, report.best_logloss);
    EXPECT_GE(trial.params.learning_rate, 0.03);
    EXPECT_LE(trial.params.learning_rate, 0.15);
  }
}

TEST(AutoMl, DeterministicInSeed) {
  Rng rng(4);
  const ml::Dataset train = noisy_task(800, rng);
  AutoMlConfig config;
  config.trials = 4;
  config.seed = 99;
  const AutoMlReport a = tune_gbdt(train, config);
  const AutoMlReport b = tune_gbdt(train, config);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trials[i].validation_logloss,
                     b.trials[i].validation_logloss);
  }
  EXPECT_DOUBLE_EQ(a.best_logloss, b.best_logloss);
}

TEST(AutoMl, BestBeatsWorstMeaningfully) {
  Rng rng(5);
  const ml::Dataset train = noisy_task(2000, rng);
  AutoMlConfig config;
  config.trials = 8;
  const AutoMlReport report = tune_gbdt(train, config);
  double worst = 0.0;
  for (const AutoMlTrial& trial : report.trials) {
    worst = std::max(worst, trial.validation_logloss);
  }
  EXPECT_LT(report.best_logloss, worst);
  // The tuned model is genuinely usable: logloss clearly better than the
  // 0.693 of a coin-flip predictor.
  EXPECT_LT(report.best_logloss, 0.65);
}

}  // namespace
}  // namespace memfp::mlops
