#include "sim/bmc.h"

#include <gtest/gtest.h>

namespace memfp::sim {
namespace {

dram::CeEvent ce_at(SimTime t) {
  dram::CeEvent ce;
  ce.time = t;
  ce.pattern.add({0, 0});
  return ce;
}

TEST(Bmc, LogsIndividualCes) {
  BmcCollector bmc;
  DimmTrace trace;
  bmc.on_corrected(trace, ce_at(10));
  bmc.on_corrected(trace, ce_at(20));
  EXPECT_EQ(trace.ces.size(), 2u);
  EXPECT_EQ(trace.suppressed_ce_count, 0u);
}

TEST(Bmc, DetectsStormAndSuppresses) {
  BmcPolicy policy;
  policy.storm_threshold = 5;
  policy.storm_window = minutes(1);
  policy.suppression_period = hours(1);
  BmcCollector bmc(policy);
  DimmTrace trace;
  // 5 CEs within one minute trigger the storm.
  for (int i = 0; i < 5; ++i) bmc.on_corrected(trace, ce_at(100 + i));
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].type, dram::MemEventType::kCeStorm);
  EXPECT_EQ(trace.events[1].type, dram::MemEventType::kCeStormSuppressed);
  // Only the first 4 CEs were individually logged; the trigger is counted
  // as suppressed.
  EXPECT_EQ(trace.ces.size(), 4u);
  EXPECT_EQ(trace.suppressed_ce_count, 1u);

  // During suppression nothing is materialized.
  bmc.on_corrected(trace, ce_at(200));
  EXPECT_EQ(trace.ces.size(), 4u);
  EXPECT_EQ(trace.suppressed_ce_count, 2u);

  // After the suppression period logging resumes.
  bmc.on_corrected(trace, ce_at(100 + hours(1) + 10));
  EXPECT_EQ(trace.ces.size(), 5u);
}

TEST(Bmc, SlowCesNeverStorm) {
  BmcPolicy policy;
  policy.storm_threshold = 5;
  BmcCollector bmc(policy);
  DimmTrace trace;
  for (int i = 0; i < 20; ++i) {
    bmc.on_corrected(trace, ce_at(i * minutes(5)));
  }
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace.ces.size(), 20u);
}

TEST(Bmc, BufferCapRollsToSuppressed) {
  BmcPolicy policy;
  policy.max_logged_ces = 3;
  policy.storm_threshold = 1000;
  BmcCollector bmc(policy);
  DimmTrace trace;
  for (int i = 0; i < 10; ++i) {
    bmc.on_corrected(trace, ce_at(i * minutes(10)));
  }
  EXPECT_EQ(trace.ces.size(), 3u);
  EXPECT_EQ(trace.suppressed_ce_count, 7u);
}

TEST(Bmc, FirstUeWinsAndSetsPredictableFlag) {
  BmcCollector bmc;
  DimmTrace trace;
  bmc.on_corrected(trace, ce_at(10));
  dram::UeEvent ue;
  ue.time = 100;
  bmc.on_uncorrected(trace, ue);
  ASSERT_TRUE(trace.ue.has_value());
  EXPECT_TRUE(trace.ue->had_prior_ce);
  EXPECT_TRUE(trace.predictable_ue());

  dram::UeEvent second;
  second.time = 200;
  bmc.on_uncorrected(trace, second);
  EXPECT_EQ(trace.ue->time, 100);
}

TEST(Bmc, SuddenUeHasNoPriorCe) {
  BmcCollector bmc;
  DimmTrace trace;
  dram::UeEvent ue;
  ue.time = 50;
  bmc.on_uncorrected(trace, ue);
  EXPECT_TRUE(trace.sudden_ue());
  EXPECT_FALSE(trace.predictable_ue());
}

TEST(Trace, FleetCounters) {
  FleetTrace fleet;
  DimmTrace with_ce;
  with_ce.ces.push_back(ce_at(1));
  DimmTrace with_pred_ue = with_ce;
  with_pred_ue.ue = dram::UeEvent{};
  with_pred_ue.ue->had_prior_ce = true;
  DimmTrace with_sudden;
  with_sudden.ue = dram::UeEvent{};
  fleet.dimms = {with_ce, with_pred_ue, with_sudden};
  EXPECT_EQ(fleet.dimms_with_ce(), 2u);
  EXPECT_EQ(fleet.dimms_with_ue(), 2u);
  EXPECT_EQ(fleet.predictable_ue_dimms(), 1u);
  EXPECT_EQ(fleet.sudden_ue_dimms(), 1u);
}

}  // namespace
}  // namespace memfp::sim
