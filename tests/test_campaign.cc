// Campaign engine contracts (src/core/campaign.h):
//  - shared (work-sharing) and naive per-config sweeps are byte-identical,
//    at any thread count (suite name carries "Determinism" for the TSan leg
//    of tools/check.sh);
//  - the content-addressed stage cache shares exactly the artifacts whose
//    key axes agree, and perturbing one sweep axis re-executes only the
//    stages downstream of it (hit/miss counters per stage);
//  - the vectorized multi-threshold sweep equals the scalar per-threshold
//    replay, including the score-==-threshold tie, which must also agree
//    with the serving-layer latch feeding AlarmSystem.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/stage_cache.h"
#include "ml/model.h"
#include "mlops/feature_store.h"
#include "mlops/monitoring.h"
#include "mlops/serving.h"
#include "sim/scenario.h"

namespace memfp::core {
namespace {

std::string temp_store(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Small sweep: 1 scenario x 2 ECC x 1 predictor x 3 policies = 6 points,
/// sized so the naive path stays fast while every axis is non-trivial.
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test-sweep";

  ScenarioSpec scenario;
  scenario.name = "purley";
  scenario.params = sim::purley_scenario(/*seed=*/7).scaled(0.05);
  spec.scenarios.push_back(scenario);

  EccSpec platform_ecc;
  platform_ecc.name = "platform";
  spec.eccs.push_back(platform_ecc);
  EccSpec secded;
  secded.name = "sec-ded";
  secded.ecc = dram::EccChoice::kSecDed;
  spec.eccs.push_back(secded);

  PredictorSpec predictor;
  predictor.name = "gbdt";
  predictor.algorithm = Algorithm::kLightGbm;
  spec.predictors.push_back(predictor);

  PolicySpec tuned;
  tuned.name = "tuned";
  spec.policies.push_back(tuned);
  PolicySpec eager;
  eager.name = "eager";
  eager.tuned_scale = 0.8;
  spec.policies.push_back(eager);
  PolicySpec fixed;
  fixed.name = "fixed-0.9";
  fixed.mode = PolicySpec::Threshold::kFixed;
  fixed.fixed_threshold = 0.9;
  fixed.prediction_guided_offlining = false;
  spec.policies.push_back(fixed);

  return spec;
}

/// 1x1x1x1 spec for the axis-perturbation tests.
CampaignSpec point_spec() {
  CampaignSpec spec = small_spec();
  spec.scenarios.resize(1);
  spec.eccs.resize(1);
  spec.predictors.resize(1);
  spec.policies.resize(1);
  return spec;
}

// ---------------------------------------------------------------------------
// Stage cache / key unit tests
// ---------------------------------------------------------------------------

TEST(StageKey, FieldOrderAndLengthPrefixMatter) {
  const auto key = [](auto&&... mixes) {
    StageKey k;
    (k.mix_string(mixes), ...);
    return k.value();
  };
  // Length prefixing keeps adjacent strings from colliding by concatenation.
  EXPECT_NE(key("ab", "c"), key("a", "bc"));
  EXPECT_EQ(key("ab", "c"), key("ab", "c"));
}

TEST(StageKey, SignedZeroCanonicalized) {
  // -0.0 == +0.0 as a config value, so the keys must agree too.
  EXPECT_EQ(StageKey().mix_double(0.0).value(),
            StageKey().mix_double(-0.0).value());
  EXPECT_NE(StageKey().mix_double(0.0).value(),
            StageKey().mix_double(1.0).value());
}

TEST(StageCacheCounters, HitAndMissPerStage) {
  StageCache cache;
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return std::make_shared<const int>(42);
  };
  const auto first = cache.get_or_compute<int>(Stage::kTrain, 1, compute);
  const auto again = cache.get_or_compute<int>(Stage::kTrain, 1, compute);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(first.get(), again.get());
  // Same key under a different stage is a distinct entry.
  cache.get_or_compute<int>(Stage::kScore, 1, compute);
  EXPECT_EQ(computed, 2);
  EXPECT_EQ(cache.counters(Stage::kTrain).hits, 1u);
  EXPECT_EQ(cache.counters(Stage::kTrain).misses, 1u);
  EXPECT_EQ(cache.counters(Stage::kScore).misses, 1u);
  EXPECT_EQ(cache.total_hits(), 1u);
  EXPECT_EQ(cache.total_misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_misses(), 0u);
}

// ---------------------------------------------------------------------------
// Vectorized threshold sweep
// ---------------------------------------------------------------------------

TEST(CampaignSweep, VectorizedMatchesScalarReplay) {
  ScoreStreamSet set;
  // Four streams, one empty, with ties and repeated scores.
  set.times = {10, 20, 30, 40, 50, 60, 70, 80};
  set.scores = {0.1, 0.5, 0.9, 0.5, 0.2, 0.9, 0.9, 0.05};
  set.offsets = {0, 3, 5, 5, 8};
  ASSERT_EQ(set.streams(), 4u);

  // Unsorted, with a duplicate, exact tie values, and a never-crossed top.
  const std::vector<double> thresholds = {0.5, 0.9, 0.5, 0.2, 1.5, 0.0};
  const std::vector<std::optional<SimTime>> vectorized =
      set.first_alarms(thresholds);
  ASSERT_EQ(vectorized.size(), thresholds.size() * set.streams());
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    for (std::size_t s = 0; s < set.streams(); ++s) {
      SCOPED_TRACE(testing::Message() << "threshold " << thresholds[t]
                                      << " stream " << s);
      EXPECT_EQ(vectorized[t * set.streams() + s],
                set.stream(s).first_alarm(thresholds[t]));
    }
  }
}

TEST(CampaignSweep, ScoreAtThresholdAlarmsEverywhere) {
  // The tie rule (score >= threshold alarms) must agree across the scalar
  // stream, the vectorized sweep, and the serving-layer latch that feeds
  // AlarmSystem. 0.1 + 0.2 != 0.3 in doubles, so use an exactly
  // representable value to make the tie genuine.
  const double threshold = 0.5;

  ScoredStream scalar;
  scalar.times = {100};
  scalar.scores = {threshold};
  ASSERT_EQ(scalar.first_alarm(threshold), std::optional<SimTime>(100));
  EXPECT_EQ(scalar.first_alarm(std::nextafter(threshold, 1.0)), std::nullopt);

  ScoreStreamSet set;
  set.times = {100};
  set.scores = {threshold};
  set.offsets = {0, 1};
  const std::vector<double> thresholds = {
      threshold, std::nextafter(threshold, 1.0)};
  const auto alarms = set.first_alarms(thresholds);
  EXPECT_EQ(alarms[0], std::optional<SimTime>(100));
  EXPECT_EQ(alarms[1], std::nullopt);

  // Serving latch: a model scoring exactly the threshold must raise.
  class ConstantModel final : public ml::BinaryClassifier {
   public:
    explicit ConstantModel(double value) : value_(value) {}
    void fit(const ml::Dataset&, Rng&) override {}
    double predict(std::span<const float>) const override { return value_; }
    std::string name() const override { return "constant"; }
    Json to_json() const override { return Json::object(); }

   private:
    double value_;
  };
  const mlops::FeatureStore store;
  const std::vector<float> row(store.schema().size(), 1.0f);

  const ConstantModel at(threshold);
  mlops::AlarmSystem raised;
  mlops::Monitoring monitoring;
  mlops::ServingEngine engine(at, threshold, store, raised, monitoring);
  ASSERT_EQ(engine.score_row(7, 100, row), std::optional<double>(threshold));
  EXPECT_EQ(raised.first_alarm(7), std::optional<SimTime>(100));

  const ConstantModel below(std::nextafter(threshold, 0.0));
  mlops::AlarmSystem quiet;
  mlops::ServingEngine below_engine(below, threshold, store, quiet,
                                    monitoring);
  ASSERT_TRUE(below_engine.score_row(7, 100, row).has_value());
  EXPECT_EQ(quiet.first_alarm(7), std::nullopt);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: shared == naive, any thread count
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, SharedMatchesNaiveAcrossThreads) {
  const CampaignSpec spec = small_spec();
  const std::string store = temp_store("memfp_campaign_matrix");

  std::optional<CampaignResult> reference;
  for (const int threads : {1, 2, 4}) {
    CampaignConfig config;
    config.store_dir = store;
    config.num_threads = threads;
    CampaignEngine engine(config);
    const CampaignResult run = engine.run(spec);
    SCOPED_TRACE(testing::Message() << "shared, " << threads << " threads");
    ASSERT_EQ(run.points.size(), spec.points());
    if (!reference) {
      reference = run;
      continue;
    }
    EXPECT_EQ(run.campaign_hash, reference->campaign_hash);
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      EXPECT_EQ(run.points[i].result_hash(),
                reference->points[i].result_hash());
    }
  }

  // The naive per-config pipeline recomputes everything and replays the
  // policy axis scalar-wise — byte-identical results, none of the sharing.
  CampaignConfig naive_config;
  naive_config.store_dir = store;
  naive_config.share_stages = false;
  CampaignEngine naive(naive_config);
  const CampaignResult naive_run = naive.run(spec);
  EXPECT_EQ(naive_run.campaign_hash, reference->campaign_hash);

  // Work accounting. Shared: one pipeline per distinct (scenario, ECC,
  // predictor) triple, one vectorized sweep each. Naive: one per point.
  const std::size_t triples =
      spec.scenarios.size() * spec.eccs.size() * spec.predictors.size();
  const CampaignRunStats& shared = reference->stats;
  EXPECT_EQ(shared.simulate.misses, triples);  // ECC rides the sim key
  EXPECT_EQ(shared.extract.misses, triples);
  EXPECT_EQ(shared.train.misses, triples);
  EXPECT_EQ(shared.score.misses, triples);
  EXPECT_EQ(shared.policy_sweeps, triples);
  EXPECT_EQ(naive_run.stats.simulate.misses, spec.points());
  EXPECT_EQ(naive_run.stats.score.misses, spec.points());
  EXPECT_EQ(naive_run.stats.simulate.hits, 0u);
  EXPECT_EQ(naive_run.stats.policy_sweeps, spec.points());

  std::filesystem::remove_all(store);
}

TEST(CampaignDeterminism, RerunOnWarmEngineHitsAndMatches) {
  const CampaignSpec spec = point_spec();
  const std::string store = temp_store("memfp_campaign_rerun");
  CampaignConfig config;
  config.store_dir = store;
  CampaignEngine engine(config);

  const CampaignResult cold = engine.run(spec);
  const CampaignResult warm = engine.run(spec);
  EXPECT_EQ(warm.campaign_hash, cold.campaign_hash);
  // A warm run resolves at the score stage: upstream stages are never even
  // consulted, so the only counter movement is one score hit.
  EXPECT_EQ(warm.stats.score.hits, 1u);
  EXPECT_EQ(warm.stats.score.misses, 0u);
  EXPECT_EQ(warm.stats.train.hits + warm.stats.train.misses, 0u);
  EXPECT_EQ(warm.stats.simulate.hits + warm.stats.simulate.misses, 0u);
  std::filesystem::remove_all(store);
}

// ---------------------------------------------------------------------------
// Axis perturbation: only downstream stages re-execute
// ---------------------------------------------------------------------------

TEST(CampaignCache, PerturbingOneAxisReexecutesOnlyDownstream) {
  const CampaignSpec base = point_spec();
  const std::string store = temp_store("memfp_campaign_perturb");
  CampaignConfig config;
  config.store_dir = store;
  CampaignEngine engine(config);
  engine.run(base);

  // Policy axis: pure consumer of the cached score artifact.
  {
    CampaignSpec spec = base;
    spec.policies[0].mode = PolicySpec::Threshold::kFixed;
    spec.policies[0].fixed_threshold = 0.25;
    const CampaignRunStats stats = engine.run(spec).stats;
    EXPECT_EQ(stats.score.hits, 1u);
    EXPECT_EQ(stats.score.misses, 0u);
    EXPECT_EQ(stats.train.misses + stats.extract.misses +
                  stats.simulate.misses,
              0u);
  }
  // Train seed: invalidates train + score, extraction is shared.
  {
    CampaignSpec spec = base;
    spec.predictors[0].train_seed = 99;
    const CampaignRunStats stats = engine.run(spec).stats;
    EXPECT_EQ(stats.score.misses, 1u);
    EXPECT_EQ(stats.train.misses, 1u);
    EXPECT_EQ(stats.extract.hits, 1u);
    EXPECT_EQ(stats.extract.misses, 0u);
    EXPECT_EQ(stats.simulate.hits + stats.simulate.misses, 0u);
  }
  // Window config: invalidates extraction and below, the fleet is shared.
  {
    CampaignSpec spec = base;
    spec.predictors[0].windows.observation = days(21);
    const CampaignRunStats stats = engine.run(spec).stats;
    EXPECT_EQ(stats.extract.misses, 1u);
    EXPECT_EQ(stats.train.misses, 1u);
    EXPECT_EQ(stats.score.misses, 1u);
    EXPECT_EQ(stats.simulate.hits, 1u);
    EXPECT_EQ(stats.simulate.misses, 0u);
  }
  // ECC scheme rides the simulate key: everything re-executes.
  {
    CampaignSpec spec = base;
    spec.eccs[0].ecc = dram::EccChoice::kSecDed;
    const CampaignRunStats stats = engine.run(spec).stats;
    EXPECT_EQ(stats.simulate.misses, 1u);
    EXPECT_EQ(stats.extract.misses, 1u);
    EXPECT_EQ(stats.train.misses, 1u);
    EXPECT_EQ(stats.score.misses, 1u);
  }
  // So does the scenario seed.
  {
    CampaignSpec spec = base;
    spec.scenarios[0].params.seed = 1234;
    const CampaignRunStats stats = engine.run(spec).stats;
    EXPECT_EQ(stats.simulate.misses, 1u);
    EXPECT_EQ(stats.score.misses, 1u);
  }
  std::filesystem::remove_all(store);
}

TEST(CampaignCache, StageKeysExposeSharingStructure) {
  const CampaignSpec base = point_spec();
  CampaignConfig config;
  config.store_dir = temp_store("memfp_campaign_keys");
  CampaignEngine engine(config);
  const ScenarioSpec& sc = base.scenarios[0];
  const EccSpec& ecc = base.eccs[0];
  const PredictorSpec& pred = base.predictors[0];
  const CampaignSampling& sampling = base.sampling;

  // Algorithm and train seed are invisible to simulate/extract keys.
  PredictorSpec other_algo = pred;
  other_algo.algorithm = Algorithm::kRandomForest;
  other_algo.train_seed = 5;
  EXPECT_EQ(engine.extract_key(sc, ecc, pred, sampling),
            engine.extract_key(sc, ecc, other_algo, sampling));
  EXPECT_NE(engine.train_key(sc, ecc, pred, sampling),
            engine.train_key(sc, ecc, other_algo, sampling));

  // Windows are invisible to the simulate key only.
  PredictorSpec other_windows = pred;
  other_windows.windows.lead = hours(6);
  EXPECT_EQ(engine.simulate_key(sc, ecc), engine.simulate_key(sc, ecc));
  EXPECT_NE(engine.extract_key(sc, ecc, pred, sampling),
            engine.extract_key(sc, ecc, other_windows, sampling));

  // BMC policy rides the ECC axis into the simulate key.
  EccSpec other_bmc = ecc;
  other_bmc.bmc.storm_threshold += 1;
  EXPECT_NE(engine.simulate_key(sc, ecc), engine.simulate_key(sc, other_bmc));

  // Sampling perturbs extract but not simulate.
  CampaignSampling other_sampling = sampling;
  other_sampling.seed = 77;
  EXPECT_NE(engine.extract_key(sc, ecc, pred, sampling),
            engine.extract_key(sc, ecc, pred, other_sampling));
  std::filesystem::remove_all(config.store_dir);
}

// ---------------------------------------------------------------------------
// Result-shape invariants
// ---------------------------------------------------------------------------

TEST(CampaignResultShape, AttributionAndAccountingConsistent) {
  const CampaignSpec spec = small_spec();
  CampaignConfig config;
  config.store_dir = temp_store("memfp_campaign_shape");
  CampaignEngine engine(config);
  const CampaignResult result = engine.run(spec);
  ASSERT_EQ(result.points.size(), spec.points());

  std::size_t index = 0;
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (std::size_t e = 0; e < spec.eccs.size(); ++e) {
      for (std::size_t p = 0; p < spec.predictors.size(); ++p) {
        for (std::size_t q = 0; q < spec.policies.size(); ++q, ++index) {
          const CampaignPointResult& point = result.points[index];
          SCOPED_TRACE(point.name);
          EXPECT_EQ(point.scenario, s);
          EXPECT_EQ(point.policy, q);
          EXPECT_EQ(point.name, spec.scenarios[s].name + "/" +
                                    spec.eccs[e].name + "/" +
                                    spec.predictors[p].name + "/" +
                                    spec.policies[q].name);

          // The attribution table partitions the evaluated DIMMs: summed
          // per-class counts reproduce the point's confusion exactly.
          ASSERT_EQ(point.attribution.size(), kFaultClassCount);
          ml::Confusion summed;
          std::size_t dimms = 0;
          for (const FaultClassAttribution& row : point.attribution) {
            dimms += row.dimms;
            summed.tp += row.true_positives;
            summed.fp += row.false_positives;
            summed.fn += row.false_negatives;
            summed.tn += row.true_negatives;
          }
          EXPECT_EQ(summed.tp, point.confusion.tp);
          EXPECT_EQ(summed.fp, point.confusion.fp);
          EXPECT_EQ(summed.fn, point.confusion.fn);
          EXPECT_EQ(summed.tn, point.confusion.tn);
          EXPECT_GT(dimms, 0u);

          // Mitigation accounting is the pure function of the confusion.
          const mlops::MitigationReport expect = mlops::account_confusion(
              point.confusion.tp, point.confusion.fp, point.confusion.fn,
              spec.policies[q].mitigation);
          EXPECT_EQ(point.mitigation.realized_virr, expect.realized_virr);
          EXPECT_EQ(point.mitigation.interruptions_with_prediction,
                    expect.interruptions_with_prediction);

          // Sudden UEs are evaluated (policy-level protocol): their class
          // never produces a true positive, only misses.
          const FaultClassAttribution& sudden =
              point.attribution[static_cast<std::size_t>(FaultClass::kSudden)];
          EXPECT_EQ(sudden.true_positives, 0u);
          if (sudden.dimms > 0) {
            EXPECT_EQ(sudden.fn_rate, 1.0);
          }
        }
      }
    }
  }
  std::filesystem::remove_all(config.store_dir);
}

TEST(CampaignResultShape, StoreCleanupFollowsKeepFlag) {
  const CampaignSpec spec = point_spec();
  const std::string store = temp_store("memfp_campaign_cleanup");
  {
    CampaignConfig config;
    config.store_dir = store;
    CampaignEngine engine(config);
    engine.run(spec);
    EXPECT_FALSE(std::filesystem::is_empty(store));  // spilled shards live
  }
  // Engine destruction removes the spill dirs it created.
  EXPECT_TRUE(std::filesystem::is_empty(store));
  {
    CampaignConfig config;
    config.store_dir = store;
    config.keep_store = true;
    CampaignEngine engine(config);
    engine.run(spec);
  }
  EXPECT_FALSE(std::filesystem::is_empty(store));
  std::filesystem::remove_all(store);
}

}  // namespace
}  // namespace memfp::core
