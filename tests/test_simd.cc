// Runtime SIMD dispatch (src/common/simd.*): the dispatcher must expose
// every lane the host can run, and every lane must be *unobservable* in
// results — forest/GBDT training, flat float and binned inference, gemm,
// binning and histogram fills are pinned bit-identical to the scalar
// reference lane via FNV-1a hashes and bitwise compares, at 1/2/4 threads.
// The near-buffer-end partition cases double as the overread guard's ASan
// exercise (check.sh's asan leg runs this binary).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "ml/decision_tree.h"
#include "ml/flat_ensemble.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace memfp::simd {
namespace {

using memfp::ml::BinnedDataset;
using memfp::ml::Dataset;
using memfp::ml::FlatEnsemble;
using memfp::ml::Gbdt;
using memfp::ml::GbdtParams;
using memfp::ml::Matrix;
using memfp::ml::RandomForest;
using memfp::ml::RandomForestParams;
using memfp::ml::Tree;
using memfp::ml::TreeNode;

std::uint64_t fnv1a64_u64(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_scores(const std::vector<double>& scores) {
  std::uint64_t h = 1469598103934665603ULL;
  for (double s : scores) h = fnv1a64_u64(h, std::bit_cast<std::uint64_t>(s));
  return h;
}

Dataset make_data(std::size_t rows, std::uint64_t seed) {
  memfp::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(16);
    for (float& v : row) v = static_cast<float>(rng.normal());
    row[5] = static_cast<float>(rng.uniform_u64(4));
    const bool positive = rng.bernoulli(0.3);
    if (positive) {
      row[2] += 1.5f;
      row[7] -= 2.0f;
    }
    d.y.push_back(positive ? 1 : 0);
    d.x.push_row(row);
    d.weight.push_back(i % 5 == 0 ? 2.5f : 1.0f);
    d.dimm.push_back(static_cast<memfp::dram::DimmId>(i));
    d.time.push_back(0);
  }
  d.categorical.push_back(5);
  return d;
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ScalarLaneAlwaysAvailable) {
  const std::vector<Level> levels = supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  const KernelTable* scalar = table_for(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->level, Level::kScalar);
}

TEST(SimdDispatch, EverySupportedLaneReportsItsOwnLevel) {
  for (Level level : supported_levels()) {
    const KernelTable* table = table_for(level);
    ASSERT_NE(table, nullptr) << level_name(level);
    EXPECT_EQ(table->level, level);
    // The non-nullable entries must all be populated.
    EXPECT_NE(table->hist_rowmajor, nullptr) << level_name(level);
    EXPECT_NE(table->hist_column, nullptr) << level_name(level);
    EXPECT_NE(table->hist_subtract, nullptr) << level_name(level);
    EXPECT_NE(table->pair_sum, nullptr) << level_name(level);
    EXPECT_NE(table->gini_gain_scan, nullptr) << level_name(level);
    EXPECT_NE(table->bin_transform, nullptr) << level_name(level);
    EXPECT_NE(table->fixed_bins, nullptr) << level_name(level);
    EXPECT_NE(table->gemm, nullptr) << level_name(level);
    EXPECT_NE(table->gemm_at, nullptr) << level_name(level);
    EXPECT_NE(table->gemm_bt, nullptr) << level_name(level);
  }
}

TEST(SimdDispatch, LevelNamesRoundTripThroughParse) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512,
                      Level::kNeon}) {
    Level parsed = Level::kScalar;
    ASSERT_TRUE(parse_level(level_name(level), &parsed)) << level_name(level);
    EXPECT_EQ(parsed, level);
  }
  Level out = Level::kScalar;
  EXPECT_FALSE(parse_level("sse9", &out));
  EXPECT_FALSE(parse_level("", &out));
}

TEST(SimdDispatch, ScopedLevelSwapsAndRestores) {
  const Level before = active_level();
  {
    ScopedLevel outer(Level::kScalar);
    EXPECT_EQ(active_level(), Level::kScalar);
    EXPECT_EQ(kernels().level, Level::kScalar);
    for (Level level : supported_levels()) {
      ScopedLevel inner(level);
      EXPECT_EQ(active_level(), level);
    }
    EXPECT_EQ(active_level(), Level::kScalar);
  }
  EXPECT_EQ(active_level(), before);
}

TEST(SimdDispatch, CpuFeaturesIsStable) {
  // Exact content is host-specific; it must at least be consistent between
  // calls (bench context blocks record it).
  EXPECT_EQ(cpu_features(), cpu_features());
}

// ---------------------------------------------------------------------------
// Cross-level golden equality: training and inference
// ---------------------------------------------------------------------------

TEST(SimdGolden, ForestFitAndPredictIdenticalOnEveryLane) {
  const Dataset train = make_data(700, 21);
  const Dataset test = make_data(300, 22);

  std::string golden_model;
  std::uint64_t golden_scores = 0;
  {
    ScopedLevel scalar(Level::kScalar);
    RandomForestParams params;
    params.trees = 8;
    RandomForest model(params);
    memfp::Rng rng(5);
    model.fit(train, rng);
    golden_model = model.to_json().dump();
    golden_scores = hash_scores(model.predict_batch(test.x));
  }

  for (Level level : supported_levels()) {
    ScopedLevel active(level);
    for (int threads : {1, 2, 4}) {
      memfp::ThreadPool::ScopedLimit cap(threads);
      RandomForestParams params;
      params.trees = 8;
      RandomForest model(params);
      memfp::Rng rng(5);
      model.fit(train, rng);
      EXPECT_EQ(model.to_json().dump(), golden_model)
          << level_name(level) << " at " << threads << " threads";
      EXPECT_EQ(hash_scores(model.predict_batch(test.x)), golden_scores)
          << level_name(level) << " at " << threads << " threads";
    }
  }
}

TEST(SimdGolden, GbdtFitAndPredictIdenticalOnEveryLane) {
  const Dataset train = make_data(500, 31);
  const Dataset test = make_data(200, 32);

  std::string golden_model;
  std::uint64_t golden_scores = 0;
  {
    ScopedLevel scalar(Level::kScalar);
    GbdtParams params;
    params.max_rounds = 8;
    Gbdt model(params);
    memfp::Rng rng(7);
    model.fit(train, rng);
    golden_model = model.to_json().dump();
    golden_scores = hash_scores(model.predict_batch(test.x));
  }

  for (Level level : supported_levels()) {
    ScopedLevel active(level);
    for (int threads : {1, 2, 4}) {
      memfp::ThreadPool::ScopedLimit cap(threads);
      GbdtParams params;
      params.max_rounds = 8;
      Gbdt model(params);
      memfp::Rng rng(7);
      model.fit(train, rng);
      EXPECT_EQ(model.to_json().dump(), golden_model)
          << level_name(level) << " at " << threads << " threads";
      EXPECT_EQ(hash_scores(model.predict_batch(test.x)), golden_scores)
          << level_name(level) << " at " << threads << " threads";
    }
  }
}

TEST(SimdGolden, BinnedInferenceIdenticalOnEveryLane) {
  const Dataset train = make_data(600, 41);
  RandomForestParams params;
  params.trees = 8;
  RandomForest model(params);
  memfp::Rng rng(9);
  model.fit(train, rng);

  // Bind against the training mapper and score the training codes: exact
  // by the bind() quantization rule, so every lane must agree bitwise.
  const BinnedDataset binned = BinnedDataset::build(train);
  FlatEnsemble flat = FlatEnsemble::build(model.trees(), 1.0);
  ASSERT_TRUE(flat.bind(binned.mapper));

  std::vector<double> golden(train.size());
  {
    ScopedLevel scalar(Level::kScalar);
    flat.predict_binned(binned.codes.data(), binned.rows, 0.0, golden);
  }
  for (Level level : supported_levels()) {
    ScopedLevel active(level);
    for (int threads : {1, 2, 4}) {
      memfp::ThreadPool::ScopedLimit cap(threads);
      std::vector<double> scores(train.size());
      flat.predict_binned(binned.codes.data(), binned.rows, 0.0, scores);
      EXPECT_EQ(hash_scores(scores), hash_scores(golden))
          << level_name(level) << " at " << threads << " threads";
    }
  }
}

TEST(SimdGolden, GemmKernelsIdenticalOnEveryLane) {
  memfp::Rng rng(55);
  const std::size_t m = 17, k = 23, n = 29;  // deliberately off-width
  std::vector<float> a(m * k), b(k * n), bt(n * k);
  for (float& v : a) v = static_cast<float>(rng.normal());
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto v = static_cast<float>(rng.normal());
      b[p * n + j] = v;
      bt[j * k + p] = v;
    }
  }
  std::vector<float> at(k * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }

  const KernelTable* scalar = table_for(Level::kScalar);
  std::vector<float> ref_ab(m * n, 0.125f), ref_atb(m * n, 0.125f),
      ref_abt(m * n, 0.125f);
  scalar->gemm(a.data(), b.data(), ref_ab.data(), m, k, n);
  scalar->gemm_at(at.data(), b.data(), ref_atb.data(), m, k, n);
  scalar->gemm_bt(a.data(), bt.data(), ref_abt.data(), m, k, n);

  for (Level level : supported_levels()) {
    const KernelTable* table = table_for(level);
    std::vector<float> ab(m * n, 0.125f), atb(m * n, 0.125f),
        abt(m * n, 0.125f);
    table->gemm(a.data(), b.data(), ab.data(), m, k, n);
    table->gemm_at(at.data(), b.data(), atb.data(), m, k, n);
    table->gemm_bt(a.data(), bt.data(), abt.data(), m, k, n);
    EXPECT_EQ(std::memcmp(ab.data(), ref_ab.data(), 4 * m * n), 0)
        << level_name(level);
    EXPECT_EQ(std::memcmp(atb.data(), ref_atb.data(), 4 * m * n), 0)
        << level_name(level);
    EXPECT_EQ(std::memcmp(abt.data(), ref_abt.data(), 4 * m * n), 0)
        << level_name(level);
  }
}

// ---------------------------------------------------------------------------
// Kernel contracts at the edges
// ---------------------------------------------------------------------------

TEST(SimdKernels, PartitionMatchesScalarAtBufferEnd) {
  // Rows deliberately concentrated at the top of the codes buffer and NOT
  // ascending: a gathering lane must detect that a step's 4-byte loads
  // would cross the end (guard) and classify those rows in place instead.
  // Under ASan this is the overread regression test.
  const std::size_t rows = 1000;
  std::vector<std::uint8_t> codes(rows);
  memfp::Rng rng(3);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.uniform_u64(48));

  std::vector<std::uint32_t> order;
  for (std::size_t r = rows; r-- > 0;) {
    order.push_back(static_cast<std::uint32_t>(r));  // descending
  }
  for (std::size_t r = rows - 40; r < rows; ++r) {
    order.push_back(static_cast<std::uint32_t>(r));  // tail duplicates
  }

  const KernelTable* scalar = table_for(Level::kScalar);
  for (Level level : supported_levels()) {
    const KernelTable* table = table_for(level);
    if (table->partition == nullptr) continue;
    for (std::uint8_t bin : {std::uint8_t{0}, std::uint8_t{20},
                             std::uint8_t{47}}) {
      std::vector<std::uint32_t> expect = order, got = order;
      std::vector<std::uint32_t> scratch(order.size());
      const std::size_t mid_ref =
          scalar->partition(expect.data(), expect.size(), codes.data(), bin,
                            scratch.data(), codes.size());
      const std::size_t mid =
          table->partition(got.data(), got.size(), codes.data(), bin,
                           scratch.data(), codes.size());
      EXPECT_EQ(mid, mid_ref) << level_name(level) << " bin " << int(bin);
      EXPECT_EQ(got, expect) << level_name(level) << " bin " << int(bin);
    }
  }
}

TEST(SimdKernels, BinTransformHandlesNanAndInfinity) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> thresholds = {-1.0f, 0.0f, 1.0f, 2.5f};
  std::vector<float> column = {nan,  -inf, inf,   -2.0f, -1.0f, -0.5f,
                               0.0f, 1.0f, 2.5f,  3.0f,  nan,   1.5f,
                               inf,  0.5f, -3.0f, 2.5f,  0.25f};
  while (column.size() < 70) column.push_back(column[column.size() % 17]);

  const KernelTable* scalar = table_for(Level::kScalar);
  std::vector<std::uint8_t> ref(column.size());
  scalar->bin_transform(column.data(), column.size(), thresholds.data(),
                        static_cast<int>(thresholds.size()), ref.data());
  // The scalar lane is lower_bound: NaN compares false against every
  // threshold, so it lands in bin 0 like -inf.
  EXPECT_EQ(static_cast<int>(ref[0]), 0);
  EXPECT_EQ(static_cast<int>(ref[1]), 0);
  EXPECT_EQ(static_cast<int>(ref[2]), static_cast<int>(thresholds.size()));

  for (Level level : supported_levels()) {
    const KernelTable* table = table_for(level);
    std::vector<std::uint8_t> got(column.size());
    table->bin_transform(column.data(), column.size(), thresholds.data(),
                         static_cast<int>(thresholds.size()), got.data());
    EXPECT_EQ(got, ref) << level_name(level);
  }
}

TEST(SimdKernels, GainScanHonorsPaddedContractOnEveryLane) {
  // count deliberately not a multiple of kGainScanPad; arrays padded with
  // zeros as the contract requires. All lanes must agree bitwise on the
  // first `count` gains (pad slots are unspecified).
  const int count = 43;
  const int padded = (count + kGainScanPad - 1) & ~(kGainScanPad - 1);
  std::vector<double> left_total(padded, 0.0), left_pos(padded, 0.0);
  memfp::Rng rng(17);
  double lt = 0.0, lp = 0.0;
  for (int b = 0; b < count; ++b) {
    const double w = 1.0 + rng.uniform() * 50.0;
    lt += w;
    lp += w * rng.uniform();
    left_total[b] = lt;
    left_pos[b] = lp;
  }
  const double total = lt + 25.0, pos = lp + 10.0;
  const double parent = 2.0 * (pos / total) * (1.0 - pos / total) * total;

  const KernelTable* scalar = table_for(Level::kScalar);
  std::vector<double> ref(padded, 0.0);
  scalar->gini_gain_scan(left_total.data(), left_pos.data(), count, total,
                         pos, parent, 8.0, ref.data());

  for (Level level : supported_levels()) {
    const KernelTable* table = table_for(level);
    std::vector<double> got(padded, 0.0);
    table->gini_gain_scan(left_total.data(), left_pos.data(), count, total,
                          pos, parent, 8.0, got.data());
    for (int b = 0; b < count; ++b) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[b]),
                std::bit_cast<std::uint64_t>(ref[b]))
          << level_name(level) << " bin " << b;
    }
  }
}

TEST(SimdKernels, HistogramAddRangeMatchesRepeatedAdd) {
  memfp::Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 700; ++i) {
    values.push_back(rng.normal() * 3.0);  // includes out-of-range tails
  }
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-std::numeric_limits<double>::infinity());

  for (Level level : supported_levels()) {
    ScopedLevel active(level);
    memfp::Histogram bulk(-2.0, 2.0, 37);
    memfp::Histogram loop(-2.0, 2.0, 37);
    bulk.add_range(values, 0.75);
    for (double v : values) loop.add(v, 0.75);
    ASSERT_EQ(bulk.total(), loop.total()) << level_name(level);
    for (std::size_t b = 0; b < bulk.bins(); ++b) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(bulk.count(b)),
                std::bit_cast<std::uint64_t>(loop.count(b)))
          << level_name(level) << " bin " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Flat-ensemble pack failure: the SIMD block kernels need 16-bit left-child
// deltas; a wide-enough tree level overflows them and the scorer must fall
// back to the scalar block loop with identical results.
// ---------------------------------------------------------------------------

/// Perfect binary tree of the given depth over feature 0: the level-order
/// flat layout puts >65535 nodes between a deep level's first parent and
/// its children, overflowing the packed delta on purpose.
Tree perfect_tree(int depth) {
  Tree tree;
  auto& nodes = tree.mutable_nodes();
  nodes.resize((std::size_t{2} << depth) - 1);  // pre-sized: indices stable
  struct Todo {
    int index;
    int level;
    float lo, hi;
  };
  int next = 1;
  std::vector<Todo> stack = {{0, 0, -4.0f, 4.0f}};
  while (!stack.empty()) {
    const Todo todo = stack.back();
    stack.pop_back();
    TreeNode& node = nodes[static_cast<std::size_t>(todo.index)];
    if (todo.level == depth) {
      node.feature = -1;
      node.value = static_cast<double>(todo.lo);
      continue;
    }
    const float mid = 0.5f * (todo.lo + todo.hi);
    node.feature = 0;
    node.threshold = mid;
    node.left = next;
    node.right = next + 1;
    next += 2;
    stack.push_back({node.left, todo.level + 1, todo.lo, mid});
    stack.push_back({node.right, todo.level + 1, mid, todo.hi});
  }
  return tree;
}

TEST(SimdFlatEnsemble, PackOverflowFallsBackIdentically) {
  // Depth 17 => a level of 2^16 internal nodes => left-child deltas beyond
  // 0xFFFF. (The packed kernels cap at depth ~16 trees; real forests stay
  // far below this.)
  std::vector<Tree> trees;
  trees.push_back(perfect_tree(17));
  const FlatEnsemble flat = FlatEnsemble::build(trees, 1.0);

  memfp::Rng rng(77);
  Matrix x;
  for (int r = 0; r < 80; ++r) {
    std::vector<float> row(3);
    for (float& v : row) v = static_cast<float>(rng.normal() * 2.0);
    x.push_row(row);
  }

  std::vector<double> walker;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    walker.push_back(trees[0].predict(x.row(r)));
  }
  for (Level level : supported_levels()) {
    ScopedLevel active(level);
    std::vector<double> scores(x.rows());
    flat.predict(x, 0.0, scores);
    EXPECT_EQ(hash_scores(scores), hash_scores(walker)) << level_name(level);
  }
}

}  // namespace
}  // namespace memfp::simd
