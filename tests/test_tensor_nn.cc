#include <gtest/gtest.h>

#include <cmath>

#include "ml/nn.h"
#include "ml/tensor.h"

namespace memfp::ml {
namespace {

Tensor filled(std::size_t rows, std::size_t cols,
              std::initializer_list<float> values) {
  Tensor t(rows, cols);
  std::size_t i = 0;
  for (float v : values) t.data()[i++] = v;
  return t;
}

TEST(Tensor, GemmKnownValues) {
  const Tensor a = filled(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = filled(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out;
  gemm(a, b, out);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 154.0f);
}

TEST(Tensor, GemmAtMatchesExplicitTranspose) {
  Rng rng(1);
  const Tensor a = Tensor::random_uniform(4, 3, 1.0f, rng);
  const Tensor b = Tensor::random_uniform(4, 5, 1.0f, rng);
  Tensor via_at;
  gemm_at(a, b, via_at);  // a^T @ b -> 3x5
  // Build a^T explicitly and multiply.
  Tensor at(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) at(c, r) = a(r, c);
  }
  Tensor direct;
  gemm(at, b, direct);
  for (std::size_t i = 0; i < via_at.size(); ++i) {
    EXPECT_NEAR(via_at.data()[i], direct.data()[i], 1e-5);
  }
}

TEST(Tensor, GemmBtMatchesExplicitTranspose) {
  Rng rng(2);
  const Tensor a = Tensor::random_uniform(3, 4, 1.0f, rng);
  const Tensor b = Tensor::random_uniform(5, 4, 1.0f, rng);
  Tensor via_bt;
  gemm_bt(a, b, via_bt);  // a @ b^T -> 3x5
  Tensor bt(4, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 4; ++c) bt(c, r) = b(r, c);
  }
  Tensor direct;
  gemm(a, bt, direct);
  for (std::size_t i = 0; i < via_bt.size(); ++i) {
    EXPECT_NEAR(via_bt.data()[i], direct.data()[i], 1e-5);
  }
}

TEST(Tensor, GemmAccumulates) {
  const Tensor a = filled(1, 1, {2});
  const Tensor b = filled(1, 1, {3});
  Tensor out(1, 1, 10.0f);
  gemm(a, b, out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out(0, 0), 16.0f);
}

TEST(Tensor, Axpy) {
  const Tensor x = filled(1, 3, {1, 2, 3});
  Tensor y = filled(1, 3, {10, 20, 30});
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y(0, 2), 36.0f);
}

TEST(Tensor, RandomUniformWithinBound) {
  Rng rng(3);
  const Tensor t = Tensor::random_uniform(10, 10, 0.25f, rng);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -0.25f);
    EXPECT_LE(t.data()[i], 0.25f);
  }
}

TEST(Adam, MinimizesQuadratic) {
  // minimize f(w) = sum (w - target)^2 by feeding Adam the gradient.
  Param w(Tensor(1, 4, 0.0f));
  const float targets[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  Adam adam({0.05, 0.9, 0.999, 1e-8, 0.0});
  for (int step = 0; step < 400; ++step) {
    Tensor grad(1, 4);
    for (std::size_t c = 0; c < 4; ++c) {
      grad(0, c) = 2.0f * (w.value(0, c) - targets[c]);
    }
    adam.begin_step();
    adam.update(w, grad);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(w.value(0, c), targets[c], 0.05);
  }
}

TEST(Adam, WeightDecayShrinksParameters) {
  Param w(Tensor(1, 1, 5.0f));
  Adam adam({0.01, 0.9, 0.999, 1e-8, 0.1});
  const Tensor zero_grad(1, 1, 0.0f);
  for (int step = 0; step < 200; ++step) {
    adam.begin_step();
    adam.update(w, zero_grad);
  }
  EXPECT_LT(std::fabs(w.value(0, 0)), 5.0f);
}

TEST(BoundParams, AppliesGradientsBackToParams) {
  Param w(Tensor(1, 2, 1.0f));
  Graph graph;
  BoundParams bound(graph, {&w});
  // loss = sum over a matmul with a fixed vector.
  Tensor v(2, 1);
  v(0, 0) = 1.0f;
  v(1, 0) = 2.0f;
  const int vid = graph.leaf(v, false);
  const int out = graph.matmul(bound.id(0), vid);
  graph.backward(out);
  Adam adam({0.1, 0.9, 0.999, 1e-8, 0.0});
  adam.begin_step();
  const float before0 = w.value(0, 0);
  bound.apply(adam);
  // Gradient is positive (1.0 and 2.0), so Adam moves both weights down.
  EXPECT_LT(w.value(0, 0), before0);
  EXPECT_LT(w.value(0, 1), 1.0f);
}

}  // namespace
}  // namespace memfp::ml
