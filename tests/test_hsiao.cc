#include "dram/hsiao.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.h"

namespace memfp::dram {
namespace {

Codeword72 flip(const Codeword72& word, int position) {
  Codeword72 out = word;
  if (position < 64) out.data ^= 1ULL << position;
  else out.check ^= static_cast<std::uint8_t>(1u << (position - 64));
  return out;
}

TEST(Hsiao, ColumnsAreDistinctAndOddWeight) {
  const HsiaoCode code;
  std::set<std::uint8_t> seen;
  for (int position = 0; position < 72; ++position) {
    const std::uint8_t column = code.column(position);
    EXPECT_EQ(std::popcount(static_cast<unsigned>(column)) % 2, 1)
        << "even-weight column at " << position;
    EXPECT_TRUE(seen.insert(column).second)
        << "duplicate column at " << position;
  }
}

TEST(Hsiao, CleanWordsDecodeClean) {
  const HsiaoCode code;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t data = rng.next();
    const DecodeResult result = code.decode(code.encode(data));
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Hsiao, EverySingleBitErrorIsCorrected) {
  const HsiaoCode code;
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t data = rng.next();
    const Codeword72 word = code.encode(data);
    for (int position = 0; position < 72; ++position) {
      const DecodeResult result = code.decode(flip(word, position));
      EXPECT_EQ(result.data, data) << "payload lost at bit " << position;
      EXPECT_TRUE(result.corrected_bit.has_value());
      EXPECT_EQ(*result.corrected_bit, position);
      EXPECT_EQ(result.status, position < 64 ? DecodeStatus::kCorrectedData
                                             : DecodeStatus::kCorrectedCheck);
    }
  }
}

TEST(Hsiao, EveryDoubleBitErrorIsDetectedNeverMiscorrected) {
  // The defining Hsiao property: odd-weight columns make every double-error
  // syndrome even-weight, so it can never alias a column. Exhaustive over
  // all C(72,2) = 2556 pairs.
  const HsiaoCode code;
  Rng rng(3);
  const std::uint64_t data = rng.next();
  const Codeword72 word = code.encode(data);
  for (int a = 0; a < 72; ++a) {
    for (int b = a + 1; b < 72; ++b) {
      const DecodeResult result = code.decode(flip(flip(word, a), b));
      EXPECT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
          << "double error (" << a << "," << b << ") slipped through";
    }
  }
}

TEST(Hsiao, SomeTripleErrorsEscape) {
  // SEC-DED makes no promise beyond two bits: with odd-weight columns a
  // triple error has an odd-weight syndrome and typically *miscorrects*.
  // This documents the real limitation the paper's platforms inherit.
  const HsiaoCode code;
  Rng rng(4);
  const Codeword72 word = code.encode(rng.next());
  int miscorrected = 0, detected = 0;
  for (int i = 0; i < 500; ++i) {
    int a = static_cast<int>(rng.uniform_u64(72));
    int b = static_cast<int>(rng.uniform_u64(72));
    int c = static_cast<int>(rng.uniform_u64(72));
    if (a == b || b == c || a == c) continue;
    const DecodeResult result =
        code.decode(flip(flip(flip(word, a), b), c));
    if (result.status == DecodeStatus::kDetectedUncorrectable) ++detected;
    else ++miscorrected;
  }
  EXPECT_GT(miscorrected, 0);  // silent data corruption is possible
}

TEST(Hsiao, EncodeIsLinear) {
  const HsiaoCode code;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    EXPECT_EQ(code.encode(a ^ b).check,
              code.encode(a).check ^ code.encode(b).check);
  }
  EXPECT_EQ(code.encode(0).check, 0);
}

TEST(Hsiao, AgreesWithPatternLevelClassifier) {
  // The outcome-level SecDedEcc in ecc.h and this mechanism-level codec
  // must tell the same story per beat: one flipped bit in a beat word is
  // correctable, two are not.
  const HsiaoCode code;
  const Codeword72 clean = code.encode(0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(code.decode(flip(clean, 17)).status,
            DecodeStatus::kCorrectedData);
  EXPECT_EQ(code.decode(flip(flip(clean, 17), 40)).status,
            DecodeStatus::kDetectedUncorrectable);
}

}  // namespace
}  // namespace memfp::dram
