// The binned-training data path: columnar code layout invariants, the
// row-bundled (weight, positive-weight) SoA, and the golden-model regression
// locking RF/GBDT training to the exact pre-refactor output.
//
// The golden hashes below were captured from the pre-columnar,
// pre-histogram-subtraction trainers (commit 2ff4ea7) on this exact dataset
// generator, then verified unchanged against the refactored path: training
// must stay byte-identical (same splits, same thresholds, same leaf doubles
// — Json::dump prints %.17g, which round-trips doubles exactly) for the
// same seed at every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace memfp::ml {
namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Frozen generator behind the golden hashes — mixed signal/noise columns,
/// a low-cardinality categorical, and non-unit weights so the weighted
/// histogram paths are exercised. Do not change without recapturing.
Dataset golden_dataset(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(16);
    for (float& v : row) v = static_cast<float>(rng.normal());
    row[5] = static_cast<float>(rng.uniform_u64(4));  // low-cardinality
    const bool positive = rng.bernoulli(0.3);
    if (positive) {
      row[2] += 1.5f;
      row[7] -= 2.0f;
    }
    d.y.push_back(positive ? 1 : 0);
    d.x.push_row(row);
    d.weight.push_back(i % 5 == 0 ? 2.5f : 1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  d.categorical.push_back(5);
  return d;
}

constexpr std::uint64_t kGoldenForestHash = 2902769759517422982ULL;
constexpr std::uint64_t kGoldenGbdtHash = 15462416807067093000ULL;

TEST(GoldenModels, RandomForestByteIdenticalToPreRefactorPath) {
  const Dataset d = golden_dataset(1200, 77);
  for (int threads : {1, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    RandomForestParams params;
    params.trees = 25;
    RandomForest model(params);
    Rng rng(101);
    model.fit(d, rng);
    EXPECT_EQ(fnv1a64(model.to_json().dump()), kGoldenForestHash)
        << "at " << threads << " threads";
  }
}

TEST(GoldenModels, GbdtByteIdenticalToPreRefactorPath) {
  const Dataset d = golden_dataset(1200, 77);
  for (int threads : {1, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    GbdtParams params;
    params.max_rounds = 25;
    Gbdt model(params);
    Rng rng(202);
    model.fit(d, rng);
    EXPECT_EQ(fnv1a64(model.to_json().dump()), kGoldenGbdtHash)
        << "at " << threads << " threads";
  }
}

TEST(BinnedLayout, CodesAreFeatureMajor) {
  const Dataset d = golden_dataset(200, 3);
  const BinnedDataset binned = BinnedDataset::build(d);
  ASSERT_EQ(binned.rows, d.size());
  ASSERT_EQ(binned.codes.size(), d.size() * d.x.cols());
  for (std::size_t f = 0; f < d.x.cols(); ++f) {
    const std::uint8_t* column = binned.feature_codes(f);
    for (std::size_t r = 0; r < d.size(); ++r) {
      EXPECT_EQ(column[r], binned.mapper.bin(f, d.x.at(r, f)));
      EXPECT_EQ(binned.code(r, f), column[r]);
    }
  }
}

TEST(BinnedLayout, BinOffsetsPrefixSumTheMapperBins) {
  const Dataset d = golden_dataset(150, 4);
  const BinnedDataset binned = BinnedDataset::build(d);
  ASSERT_EQ(binned.bin_offset.size(), d.x.cols() + 1);
  EXPECT_EQ(binned.bin_offset.front(), 0u);
  for (std::size_t f = 0; f < d.x.cols(); ++f) {
    EXPECT_EQ(binned.bin_offset[f + 1] - binned.bin_offset[f],
              static_cast<std::uint32_t>(binned.mapper.bins(f)));
  }
  EXPECT_EQ(binned.total_bins(), binned.bin_offset.back());
}

TEST(BinnedLayout, WeightPairsBundleWeightAndPositiveWeight) {
  const Dataset d = golden_dataset(300, 5);
  const BinnedDataset binned = BinnedDataset::build(d);
  ASSERT_EQ(binned.weight_pairs.size(), 2 * d.size());
  for (std::size_t r = 0; r < d.size(); ++r) {
    EXPECT_EQ(binned.weight_pairs[2 * r], static_cast<double>(d.weight[r]));
    EXPECT_EQ(binned.weight_pairs[2 * r + 1],
              d.y[r] == 1 ? static_cast<double>(d.weight[r]) : 0.0);
  }
}

TEST(BinnedLayout, DuplicateBootstrapRowsTrainTheSameTree) {
  // The in-place arena must handle repeated row indices (RF bootstraps draw
  // with replacement) exactly like the old per-node row vectors did:
  // duplicates stay adjacent in draw order through every stable partition.
  const Dataset d = golden_dataset(400, 6);
  const BinnedDataset binned = BinnedDataset::build(d);
  std::vector<std::size_t> rows;
  Rng draw(9);
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.push_back(draw.uniform_u64(d.size()));
  }
  ClassificationTreeParams params;
  params.feature_fraction = 1.0;
  Rng rng_a(11), rng_b(11);
  const Tree once = fit_classification_tree(binned, rows, params, rng_a);
  const Tree twice = fit_classification_tree(binned, rows, params, rng_b);
  EXPECT_EQ(once.to_json().dump(), twice.to_json().dump());
  EXPECT_GT(once.leaves(), 1u);
}

TEST(BinnedLayout, EmptyRowSelectionYieldsSingleLeaf) {
  const Dataset d = golden_dataset(50, 7);
  const BinnedDataset binned = BinnedDataset::build(d);
  const std::vector<std::size_t> none;
  Rng rng(12);
  const Tree cls = fit_classification_tree(binned, none, {}, rng);
  EXPECT_EQ(cls.nodes().size(), 1u);
  EXPECT_EQ(cls.predict(d.x.row(0)), 0.0);
  std::vector<double> grad(d.size(), -1.0), hess(d.size(), 1.0);
  const Tree grd = fit_gradient_tree(binned, none, grad, hess, {}, rng);
  EXPECT_EQ(grd.leaves(), 1u);
}

}  // namespace
}  // namespace memfp::ml
