#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace memfp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformU64StaysBelowBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(rng.poisson(mean));
  }
  EXPECT_NEAR(total / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 20.0, 100.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, GeometricMean) {
  Rng rng(31);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.geometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(total / n, 3.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(33);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) values.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(values.begin(), values.begin() + 10000, values.end());
  EXPECT_NEAR(values[10000], std::exp(1.0), 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(35);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace memfp
