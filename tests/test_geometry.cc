#include "dram/geometry.h"

#include <gtest/gtest.h>

namespace memfp::dram {
namespace {

TEST(Geometry, X4TransferWidth) {
  const Geometry g = Geometry::ddr4_x4();
  EXPECT_EQ(g.devices_per_rank(), 18);
  EXPECT_EQ(g.dq_per_device(), 4);
  EXPECT_EQ(g.total_dq(), 72);  // 64 data + 8 ECC bits per beat
  EXPECT_EQ(g.beats, 8);
}

TEST(Geometry, X8TransferWidth) {
  const Geometry g = Geometry::ddr4_x8();
  EXPECT_EQ(g.devices_per_rank(), 9);
  EXPECT_EQ(g.dq_per_device(), 8);
  EXPECT_EQ(g.total_dq(), 72);
}

TEST(Geometry, DqDeviceMappingIsInverse) {
  const Geometry g = Geometry::ddr4_x4();
  for (int device = 0; device < g.devices_per_rank(); ++device) {
    const int base = g.device_dq_base(device);
    for (int lane = 0; lane < g.dq_per_device(); ++lane) {
      EXPECT_EQ(g.device_of_dq(base + lane), device);
    }
  }
}

TEST(Geometry, NamesAreStable) {
  EXPECT_STREQ(platform_name(Platform::kIntelPurley), "Intel Purley");
  EXPECT_STREQ(platform_name(Platform::kIntelWhitley), "Intel Whitley");
  EXPECT_STREQ(platform_name(Platform::kK920), "K920");
  EXPECT_STREQ(manufacturer_name(Manufacturer::kB), "B");
  EXPECT_STREQ(process_name(DramProcess::k1z), "1z");
}

TEST(DimmConfig, GeometryFollowsWidth) {
  DimmConfig config;
  config.width = DeviceWidth::kX4;
  EXPECT_EQ(config.geometry().devices_per_rank(), 18);
  config.width = DeviceWidth::kX8;
  EXPECT_EQ(config.geometry().devices_per_rank(), 9);
}

TEST(CellCoord, Equality) {
  CellCoord a{0, 1, 2, 3, 4};
  CellCoord b = a;
  EXPECT_EQ(a, b);
  b.column = 5;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace memfp::dram
