#include <gtest/gtest.h>

#include "mlops/alarm.h"
#include "mlops/data_lake.h"
#include "mlops/feature_store.h"
#include "mlops/model_registry.h"
#include "mlops/monitoring.h"
#include "sim/fleet.h"

namespace memfp::mlops {
namespace {

TEST(DataLake, IngestAndRetrieve) {
  DataLake lake;
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kK920;
  sim::DimmTrace dimm;
  dram::CeEvent ce;
  ce.time = days(1);
  ce.pattern.add({0, 0});
  dimm.ces.push_back(ce);
  fleet.dimms.push_back(dimm);
  lake.ingest("bmc/k920/h1", std::move(fleet));

  EXPECT_TRUE(lake.contains("bmc/k920/h1"));
  EXPECT_FALSE(lake.contains("bmc/k920/h2"));
  EXPECT_EQ(lake.get("bmc/k920/h1").platform, dram::Platform::kK920);
  EXPECT_EQ(lake.record_count(), 1u);
  EXPECT_THROW(lake.get("missing"), std::out_of_range);
  EXPECT_EQ(lake.partitions().size(), 1u);
}

TEST(DataLake, ReIngestReplaces) {
  DataLake lake;
  lake.ingest("p", sim::FleetTrace{});
  sim::FleetTrace bigger;
  bigger.dimms.resize(3);
  lake.ingest("p", std::move(bigger));
  EXPECT_EQ(lake.get("p").dimms.size(), 3u);
  EXPECT_EQ(lake.partitions().size(), 1u);
}

TEST(FeatureStore, CatalogListsAllFeatures) {
  FeatureStore store;
  const Json catalog = store.catalog();
  EXPECT_EQ(catalog.at("features").as_array().size(), store.schema().size());
  // Categorical entries carry their cardinality.
  bool saw_categorical = false;
  for (const Json& entry : catalog.at("features").as_array()) {
    if (entry.at("type").as_string() == "categorical") {
      saw_categorical = true;
      EXPECT_GT(entry.at("cardinality").as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_categorical);
}

TEST(FeatureStore, TrainingServingConsistency) {
  FeatureStore store;
  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.02));
  int checked = 0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    for (SimTime t : {days(30), days(100), days(200)}) {
      EXPECT_TRUE(store.check_consistency(dimm, t, fleet.horizon))
          << "dimm " << dimm.id << " t=" << t;
    }
    if (++checked >= 10) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(ModelRegistry, FirstPromotionAlwaysPasses) {
  ModelRegistry registry;
  ModelVersion v;
  v.platform = dram::Platform::kIntelPurley;
  v.benchmark_f1 = 0.5;
  const int id = registry.add(std::move(v));
  EXPECT_TRUE(registry.promote(id));
  ASSERT_NE(registry.production(dram::Platform::kIntelPurley), nullptr);
  EXPECT_EQ(registry.production(dram::Platform::kIntelPurley)->version, id);
}

TEST(ModelRegistry, GateRejectsWorseCandidate) {
  ModelRegistry registry;
  ModelVersion good;
  good.platform = dram::Platform::kIntelPurley;
  good.benchmark_f1 = 0.6;
  const int good_id = registry.add(std::move(good));
  registry.promote(good_id);

  ModelVersion worse;
  worse.platform = dram::Platform::kIntelPurley;
  worse.benchmark_f1 = 0.55;
  const int worse_id = registry.add(std::move(worse));
  EXPECT_FALSE(registry.promote(worse_id, 0.0));
  EXPECT_EQ(registry.production(dram::Platform::kIntelPurley)->version,
            good_id);
  EXPECT_EQ(registry.get(worse_id)->stage, ModelStage::kStaging);
}

TEST(ModelRegistry, PromotionArchivesIncumbent) {
  ModelRegistry registry;
  ModelVersion first;
  first.platform = dram::Platform::kK920;
  first.benchmark_f1 = 0.4;
  const int first_id = registry.add(std::move(first));
  registry.promote(first_id);

  ModelVersion second;
  second.platform = dram::Platform::kK920;
  second.benchmark_f1 = 0.5;
  const int second_id = registry.add(std::move(second));
  EXPECT_TRUE(registry.promote(second_id));
  EXPECT_EQ(registry.get(first_id)->stage, ModelStage::kArchived);
  EXPECT_EQ(registry.production(dram::Platform::kK920)->version, second_id);
}

TEST(ModelRegistry, PlatformsAreIndependent) {
  ModelRegistry registry;
  ModelVersion purley;
  purley.platform = dram::Platform::kIntelPurley;
  purley.benchmark_f1 = 0.9;
  registry.promote(registry.add(std::move(purley)));
  EXPECT_EQ(registry.production(dram::Platform::kK920), nullptr);

  ModelVersion k920;
  k920.platform = dram::Platform::kK920;
  k920.benchmark_f1 = 0.1;  // worse than Purley's, but a different platform
  const int id = registry.add(std::move(k920));
  EXPECT_TRUE(registry.promote(id));
}

TEST(ModelRegistry, JsonRoundTrip) {
  ModelRegistry registry;
  ModelVersion v;
  v.platform = dram::Platform::kIntelWhitley;
  v.algorithm = "LightGBM";
  v.benchmark_f1 = 0.49;
  v.threshold = 0.8;
  v.artifact = Json::object().set("type", "gbdt");
  const int id = registry.add(std::move(v));
  registry.promote(id);

  const ModelRegistry restored =
      ModelRegistry::from_json(Json::parse(registry.to_json().dump()));
  const ModelVersion* production =
      restored.production(dram::Platform::kIntelWhitley);
  ASSERT_NE(production, nullptr);
  EXPECT_EQ(production->algorithm, "LightGBM");
  EXPECT_DOUBLE_EQ(production->threshold, 0.8);
  // Version numbering continues after the restore.
  ModelRegistry mutable_restored = restored;
  ModelVersion next;
  next.platform = dram::Platform::kIntelWhitley;
  EXPECT_GT(mutable_restored.add(std::move(next)), id);
}

TEST(AlarmSystem, CoalescesRepeatAlarms) {
  AlarmSystem alarms;
  alarms.raise(1, days(1), 0.9);
  alarms.raise(1, days(2), 0.95);
  alarms.raise(2, days(3), 0.8);
  EXPECT_EQ(alarms.alarms().size(), 2u);
  EXPECT_EQ(*alarms.first_alarm(1), days(1));
  EXPECT_FALSE(alarms.first_alarm(99).has_value());
}

TEST(Mitigation, AccountingMatchesPaperFormula) {
  // 2 timely TPs, 1 FP, 1 missed FN.
  sim::FleetTrace fleet;
  AlarmSystem alarms;
  features::PredictionWindows windows;
  for (int i = 0; i < 2; ++i) {
    sim::DimmTrace dimm;
    dimm.id = static_cast<dram::DimmId>(i);
    dram::CeEvent ce;
    ce.time = days(1);
    ce.pattern.add({0, 0});
    dimm.ces.push_back(ce);
    dimm.ue = dram::UeEvent{};
    dimm.ue->time = days(20);
    dimm.ue->had_prior_ce = true;
    fleet.dimms.push_back(dimm);
    alarms.raise(dimm.id, days(19), 0.9);
  }
  sim::DimmTrace missed = fleet.dimms[0];
  missed.id = 10;
  fleet.dimms.push_back(missed);
  sim::DimmTrace healthy;
  healthy.id = 20;
  fleet.dimms.push_back(healthy);
  alarms.raise(20, days(5), 0.7);

  MitigationPolicy policy;
  policy.vms_per_server = 10.0;
  policy.cold_migration_fraction = 0.1;
  const MitigationReport report =
      account_mitigations(fleet, alarms, windows, policy);
  EXPECT_EQ(report.true_positives, 2u);
  EXPECT_EQ(report.false_positives, 1u);
  EXPECT_EQ(report.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(report.interruptions_without_prediction, 30.0);
  EXPECT_DOUBLE_EQ(report.interruptions_with_prediction, 10.0 * 0.1 * 3 + 10.0);
  EXPECT_NEAR(report.realized_virr, (30.0 - 13.0) / 30.0, 1e-12);
}

TEST(Monitoring, CountersAndFeedback) {
  Monitoring monitoring;
  monitoring.record_ingest(100);
  monitoring.record_prediction(0.2);
  monitoring.record_prediction(0.9);
  monitoring.record_alarm();
  monitoring.record_alarm_feedback(true);
  monitoring.record_alarm_feedback(false);
  monitoring.record_missed_failure();
  EXPECT_EQ(monitoring.ingested(), 100u);
  EXPECT_EQ(monitoring.predictions(), 2u);
  EXPECT_EQ(monitoring.alarms(), 1u);
  EXPECT_DOUBLE_EQ(monitoring.online_precision(), 0.5);
  EXPECT_DOUBLE_EQ(monitoring.online_recall(), 0.5);
  EXPECT_NE(monitoring.dashboard().find("alarms raised"), std::string::npos);
}

TEST(Monitoring, DriftDetection) {
  Monitoring monitoring;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    monitoring.record_prediction(rng.uniform(0.0, 0.3));
  }
  monitoring.freeze_reference();
  // Same distribution: no drift.
  for (int i = 0; i < 2000; ++i) {
    monitoring.record_prediction(rng.uniform(0.0, 0.3));
  }
  EXPECT_FALSE(monitoring.drift_detected());
  // Shifted scores: drift.
  for (int i = 0; i < 4000; ++i) {
    monitoring.record_prediction(rng.uniform(0.5, 1.0));
  }
  EXPECT_TRUE(monitoring.drift_detected());
}

}  // namespace
}  // namespace memfp::mlops
