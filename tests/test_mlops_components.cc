#include <gtest/gtest.h>

#include <filesystem>

#include "mlops/alarm.h"
#include "mlops/data_lake.h"
#include "sim/trace_store.h"
#include "mlops/feature_store.h"
#include "mlops/model_registry.h"
#include "mlops/monitoring.h"
#include "sim/fleet.h"

namespace memfp::mlops {
namespace {

TEST(DataLake, IngestAndRetrieve) {
  DataLake lake;
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kK920;
  sim::DimmTrace dimm;
  dram::CeEvent ce;
  ce.time = days(1);
  ce.pattern.add({0, 0});
  dimm.ces.push_back(ce);
  fleet.dimms.push_back(dimm);
  lake.ingest("bmc/k920/h1", std::move(fleet));

  EXPECT_TRUE(lake.contains("bmc/k920/h1"));
  EXPECT_FALSE(lake.contains("bmc/k920/h2"));
  EXPECT_EQ(lake.get("bmc/k920/h1").platform, dram::Platform::kK920);
  EXPECT_EQ(lake.record_count(), 1u);
  EXPECT_THROW(lake.get("missing"), std::out_of_range);
  EXPECT_EQ(lake.partitions().size(), 1u);
}

TEST(DataLake, ReIngestReplaces) {
  DataLake lake;
  lake.ingest("p", sim::FleetTrace{});
  sim::FleetTrace bigger;
  bigger.dimms.resize(3);
  lake.ingest("p", std::move(bigger));
  EXPECT_EQ(lake.get("p").dimms.size(), 3u);
  EXPECT_EQ(lake.partitions().size(), 1u);
}

sim::FleetTrace tiny_fleet(int dimms, int ces_per_dimm) {
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kIntelPurley;
  fleet.horizon = days(30);
  for (int d = 0; d < dimms; ++d) {
    sim::DimmTrace dimm;
    dimm.id = static_cast<dram::DimmId>(d);
    dimm.config.part_number = "PN-tiny";
    for (int i = 0; i < ces_per_dimm; ++i) {
      dram::CeEvent ce;
      ce.time = days(1) + hours(d) + minutes(i);
      ce.pattern.add({0, 0});
      dimm.ces.push_back(ce);
    }
    fleet.dimms.push_back(std::move(dimm));
  }
  return fleet;
}

TEST(DataLake, RecordCountCachedAcrossIdempotentBackfill) {
  DataLake lake;
  lake.ingest("p1", tiny_fleet(3, 4));
  lake.ingest("p2", tiny_fleet(2, 5));
  EXPECT_EQ(lake.record_count(), 3u * 4u + 2u * 5u);

  // Idempotent backfill: re-ingesting the same snapshot must replace, not
  // double-count (the cached counter regression this guards against).
  lake.ingest("p1", tiny_fleet(3, 4));
  EXPECT_EQ(lake.record_count(), 3u * 4u + 2u * 5u);
  lake.ingest("p1", tiny_fleet(1, 2));
  EXPECT_EQ(lake.record_count(), 1u * 2u + 2u * 5u);
}

TEST(DataLake, SpillOnIngestRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_lake_spill_test";
  std::filesystem::remove_all(dir);

  DataLake lake;
  lake.set_spill_policy({dir.string(), /*max_resident_dimms=*/2,
                         /*dimms_per_shard=*/2});
  const sim::FleetTrace original = tiny_fleet(5, 3);
  lake.ingest("bmc/purley/big", tiny_fleet(5, 3));

  EXPECT_TRUE(lake.spilled("bmc/purley/big"));
  EXPECT_EQ(lake.record_count(), 15u);
  EXPECT_THROW(lake.get("bmc/purley/big"), std::logic_error);
  const DataLake::PartitionInfo info = lake.info("bmc/purley/big");
  EXPECT_EQ(info.dimms, 5u);
  EXPECT_EQ(info.horizon, days(30));
  EXPECT_TRUE(info.spilled);

  // Stream-on-read sees the identical DIMM sequence...
  std::size_t next = 0;
  lake.for_each_dimm("bmc/purley/big", [&](const sim::DimmTrace& dimm) {
    ASSERT_LT(next, original.dimms.size());
    EXPECT_EQ(sim::trace_content_hash(dimm),
              sim::trace_content_hash(original.dimms[next]));
    ++next;
  });
  EXPECT_EQ(next, original.dimms.size());

  // ...and materialize round-trips the whole snapshot.
  const sim::FleetTrace decoded = lake.materialize("bmc/purley/big");
  ASSERT_EQ(decoded.dimms.size(), original.dimms.size());
  EXPECT_EQ(decoded.horizon, original.horizon);

  // A small backfill replaces the spill with a resident partition, deletes
  // the dead shard files, and prunes the emptied generation directory.
  lake.ingest("bmc/purley/big", tiny_fleet(1, 1));
  EXPECT_FALSE(lake.spilled("bmc/purley/big"));
  EXPECT_EQ(lake.record_count(), 1u);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(DataLake, ReIngestSpilledPartitionWithSpill) {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_lake_respill_test";
  std::filesystem::remove_all(dir);

  DataLake lake;
  lake.set_spill_policy({dir.string(), /*max_resident_dimms=*/2,
                         /*dimms_per_shard=*/2});
  lake.ingest("p", tiny_fleet(5, 3));
  ASSERT_TRUE(lake.spilled("p"));

  // Idempotent backfill of a live spill: the replacement generation must
  // survive the deletion of the old generation's shard files (the two must
  // never share paths).
  const sim::FleetTrace second = tiny_fleet(6, 2);
  lake.ingest("p", tiny_fleet(6, 2));
  EXPECT_TRUE(lake.spilled("p"));
  EXPECT_EQ(lake.record_count(), 12u);
  std::size_t next = 0;
  lake.for_each_dimm("p", [&](const sim::DimmTrace& dimm) {
    ASSERT_LT(next, second.dimms.size());
    EXPECT_EQ(sim::trace_content_hash(dimm),
              sim::trace_content_hash(second.dimms[next]));
    ++next;
  });
  EXPECT_EQ(next, second.dimms.size());
  EXPECT_EQ(lake.materialize("p").dimms.size(), 6u);
  std::filesystem::remove_all(dir);
}

TEST(DataLake, SpillDirsCollisionFreeAcrossPartitions) {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_lake_collide_test";
  std::filesystem::remove_all(dir);

  // "a/b" and "a_b" sanitize to the same leaf; their spills must not share
  // shard files (neither overwriting on ingest nor deleting on replace).
  DataLake lake;
  lake.set_spill_policy({dir.string(), /*max_resident_dimms=*/0,
                         /*dimms_per_shard=*/2});
  const sim::FleetTrace slash = tiny_fleet(3, 2);
  const sim::FleetTrace underscore = tiny_fleet(3, 5);
  lake.ingest("a/b", tiny_fleet(3, 2));
  lake.ingest("a_b", tiny_fleet(3, 5));

  std::size_t next = 0;
  lake.for_each_dimm("a/b", [&](const sim::DimmTrace& dimm) {
    ASSERT_LT(next, slash.dimms.size());
    EXPECT_EQ(sim::trace_content_hash(dimm),
              sim::trace_content_hash(slash.dimms[next]));
    ++next;
  });
  EXPECT_EQ(next, slash.dimms.size());

  // Replacing one partition must leave the other's files intact.
  lake.ingest("a/b", tiny_fleet(4, 1));
  next = 0;
  lake.for_each_dimm("a_b", [&](const sim::DimmTrace& dimm) {
    ASSERT_LT(next, underscore.dimms.size());
    EXPECT_EQ(sim::trace_content_hash(dimm),
              sim::trace_content_hash(underscore.dimms[next]));
    ++next;
  });
  EXPECT_EQ(next, underscore.dimms.size());
  std::filesystem::remove_all(dir);
}

TEST(DataLake, AdoptExistingShardSet) {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_lake_adopt_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const sim::FleetTrace fleet = tiny_fleet(4, 2);
  {
    sim::ShardWriter writer(sim::shard_path(dir.string(), 0),
                            fleet.platform, fleet.horizon);
    for (const sim::DimmTrace& dimm : fleet.dimms) writer.append(dimm);
    writer.finish();
  }
  DataLake lake;
  lake.ingest_shards("adopted", dir.string());
  EXPECT_TRUE(lake.spilled("adopted"));
  EXPECT_EQ(lake.record_count(), 8u);
  EXPECT_EQ(lake.info("adopted").dimms, 4u);
  EXPECT_THROW(lake.ingest_shards("empty", (dir / "nope").string()),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(FeatureStore, CatalogListsAllFeatures) {
  FeatureStore store;
  const Json catalog = store.catalog();
  EXPECT_EQ(catalog.at("features").as_array().size(), store.schema().size());
  // Categorical entries carry their cardinality.
  bool saw_categorical = false;
  for (const Json& entry : catalog.at("features").as_array()) {
    if (entry.at("type").as_string() == "categorical") {
      saw_categorical = true;
      EXPECT_GT(entry.at("cardinality").as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_categorical);
}

TEST(FeatureStore, TrainingServingConsistency) {
  FeatureStore store;
  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.02));
  int checked = 0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    for (SimTime t : {days(30), days(100), days(200)}) {
      EXPECT_TRUE(store.check_consistency(dimm, t, fleet.horizon))
          << "dimm " << dimm.id << " t=" << t;
    }
    if (++checked >= 10) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(ModelRegistry, FirstPromotionAlwaysPasses) {
  ModelRegistry registry;
  ModelVersion v;
  v.platform = dram::Platform::kIntelPurley;
  v.benchmark_f1 = 0.5;
  const int id = registry.add(std::move(v));
  EXPECT_TRUE(registry.promote(id));
  ASSERT_NE(registry.production(dram::Platform::kIntelPurley), nullptr);
  EXPECT_EQ(registry.production(dram::Platform::kIntelPurley)->version, id);
}

TEST(ModelRegistry, GateRejectsWorseCandidate) {
  ModelRegistry registry;
  ModelVersion good;
  good.platform = dram::Platform::kIntelPurley;
  good.benchmark_f1 = 0.6;
  const int good_id = registry.add(std::move(good));
  registry.promote(good_id);

  ModelVersion worse;
  worse.platform = dram::Platform::kIntelPurley;
  worse.benchmark_f1 = 0.55;
  const int worse_id = registry.add(std::move(worse));
  EXPECT_FALSE(registry.promote(worse_id, 0.0));
  EXPECT_EQ(registry.production(dram::Platform::kIntelPurley)->version,
            good_id);
  EXPECT_EQ(registry.get(worse_id)->stage, ModelStage::kStaging);
}

TEST(ModelRegistry, PromotionArchivesIncumbent) {
  ModelRegistry registry;
  ModelVersion first;
  first.platform = dram::Platform::kK920;
  first.benchmark_f1 = 0.4;
  const int first_id = registry.add(std::move(first));
  registry.promote(first_id);

  ModelVersion second;
  second.platform = dram::Platform::kK920;
  second.benchmark_f1 = 0.5;
  const int second_id = registry.add(std::move(second));
  EXPECT_TRUE(registry.promote(second_id));
  EXPECT_EQ(registry.get(first_id)->stage, ModelStage::kArchived);
  EXPECT_EQ(registry.production(dram::Platform::kK920)->version, second_id);
}

TEST(ModelRegistry, PlatformsAreIndependent) {
  ModelRegistry registry;
  ModelVersion purley;
  purley.platform = dram::Platform::kIntelPurley;
  purley.benchmark_f1 = 0.9;
  registry.promote(registry.add(std::move(purley)));
  EXPECT_EQ(registry.production(dram::Platform::kK920), nullptr);

  ModelVersion k920;
  k920.platform = dram::Platform::kK920;
  k920.benchmark_f1 = 0.1;  // worse than Purley's, but a different platform
  const int id = registry.add(std::move(k920));
  EXPECT_TRUE(registry.promote(id));
}

TEST(ModelRegistry, JsonRoundTrip) {
  ModelRegistry registry;
  ModelVersion v;
  v.platform = dram::Platform::kIntelWhitley;
  v.algorithm = "LightGBM";
  v.benchmark_f1 = 0.49;
  v.threshold = 0.8;
  v.artifact = Json::object().set("type", "gbdt");
  const int id = registry.add(std::move(v));
  registry.promote(id);

  const ModelRegistry restored =
      ModelRegistry::from_json(Json::parse(registry.to_json().dump()));
  const ModelVersion* production =
      restored.production(dram::Platform::kIntelWhitley);
  ASSERT_NE(production, nullptr);
  EXPECT_EQ(production->algorithm, "LightGBM");
  EXPECT_DOUBLE_EQ(production->threshold, 0.8);
  // Version numbering continues after the restore.
  ModelRegistry mutable_restored = restored;
  ModelVersion next;
  next.platform = dram::Platform::kIntelWhitley;
  EXPECT_GT(mutable_restored.add(std::move(next)), id);
}

TEST(AlarmSystem, CoalescesRepeatAlarms) {
  AlarmSystem alarms;
  alarms.raise(1, days(1), 0.9);
  alarms.raise(1, days(2), 0.95);
  alarms.raise(2, days(3), 0.8);
  EXPECT_EQ(alarms.alarms().size(), 2u);
  EXPECT_EQ(*alarms.first_alarm(1), days(1));
  EXPECT_FALSE(alarms.first_alarm(99).has_value());
}

TEST(Mitigation, AccountingMatchesPaperFormula) {
  // 2 timely TPs, 1 FP, 1 missed FN.
  sim::FleetTrace fleet;
  AlarmSystem alarms;
  features::PredictionWindows windows;
  for (int i = 0; i < 2; ++i) {
    sim::DimmTrace dimm;
    dimm.id = static_cast<dram::DimmId>(i);
    dram::CeEvent ce;
    ce.time = days(1);
    ce.pattern.add({0, 0});
    dimm.ces.push_back(ce);
    dimm.ue = dram::UeEvent{};
    dimm.ue->time = days(20);
    dimm.ue->had_prior_ce = true;
    fleet.dimms.push_back(dimm);
    alarms.raise(dimm.id, days(19), 0.9);
  }
  sim::DimmTrace missed = fleet.dimms[0];
  missed.id = 10;
  fleet.dimms.push_back(missed);
  sim::DimmTrace healthy;
  healthy.id = 20;
  fleet.dimms.push_back(healthy);
  alarms.raise(20, days(5), 0.7);

  MitigationPolicy policy;
  policy.vms_per_server = 10.0;
  policy.cold_migration_fraction = 0.1;
  const MitigationReport report =
      account_mitigations(fleet, alarms, windows, policy);
  EXPECT_EQ(report.true_positives, 2u);
  EXPECT_EQ(report.false_positives, 1u);
  EXPECT_EQ(report.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(report.interruptions_without_prediction, 30.0);
  EXPECT_DOUBLE_EQ(report.interruptions_with_prediction, 10.0 * 0.1 * 3 + 10.0);
  EXPECT_NEAR(report.realized_virr, (30.0 - 13.0) / 30.0, 1e-12);
}

TEST(Monitoring, CountersAndFeedback) {
  Monitoring monitoring;
  monitoring.record_ingest(100);
  monitoring.record_prediction(0.2);
  monitoring.record_prediction(0.9);
  monitoring.record_alarm();
  monitoring.record_alarm_feedback(true);
  monitoring.record_alarm_feedback(false);
  monitoring.record_missed_failure();
  EXPECT_EQ(monitoring.ingested(), 100u);
  EXPECT_EQ(monitoring.predictions(), 2u);
  EXPECT_EQ(monitoring.alarms(), 1u);
  EXPECT_DOUBLE_EQ(monitoring.online_precision(), 0.5);
  EXPECT_DOUBLE_EQ(monitoring.online_recall(), 0.5);
  EXPECT_NE(monitoring.dashboard().find("alarms raised"), std::string::npos);
}

TEST(Monitoring, DriftDetection) {
  Monitoring monitoring;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    monitoring.record_prediction(rng.uniform(0.0, 0.3));
  }
  monitoring.freeze_reference();
  // Same distribution: no drift.
  for (int i = 0; i < 2000; ++i) {
    monitoring.record_prediction(rng.uniform(0.0, 0.3));
  }
  EXPECT_FALSE(monitoring.drift_detected());
  // Shifted scores: drift.
  for (int i = 0; i < 4000; ++i) {
    monitoring.record_prediction(rng.uniform(0.5, 1.0));
  }
  EXPECT_TRUE(monitoring.drift_detected());
}

}  // namespace
}  // namespace memfp::mlops
