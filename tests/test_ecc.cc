#include "dram/ecc.h"

#include <gtest/gtest.h>

namespace memfp::dram {
namespace {

const Geometry kX4 = Geometry::ddr4_x4();

ErrorPattern bits(std::initializer_list<ErrorBit> list) {
  return ErrorPattern(std::vector<ErrorBit>(list));
}

TEST(AllEcc, EmptyPatternIsNoError) {
  for (Platform platform : {Platform::kIntelPurley, Platform::kIntelWhitley,
                            Platform::kK920}) {
    const auto ecc = make_platform_ecc(platform);
    EXPECT_EQ(ecc->classify(ErrorPattern{}, kX4), EccVerdict::kNoError);
  }
  EXPECT_EQ(SecDedEcc().classify(ErrorPattern{}, kX4), EccVerdict::kNoError);
}

// ---- SEC-DED ----

TEST(SecDed, CorrectsSingleBitPerBeat) {
  SecDedEcc ecc;
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {5, 1}, {70, 7}}), kX4),
            EccVerdict::kCorrected);
}

TEST(SecDed, DetectsDoubleBitInOneBeat) {
  SecDedEcc ecc;
  EXPECT_EQ(ecc.classify(bits({{0, 3}, {1, 3}}), kX4),
            EccVerdict::kUncorrected);
}

// ---- Chipkill / K920-SDDC ----

TEST(Chipkill, CorrectsArbitrarySingleDevicePattern) {
  ChipkillSddcEcc ecc;
  // Whole device 2 (lanes 8-11), all beats.
  ErrorPattern p;
  for (std::uint8_t lane = 8; lane < 12; ++lane) {
    for (std::uint8_t beat = 0; beat < 8; ++beat) p.add({lane, beat});
  }
  EXPECT_EQ(ecc.classify(p, kX4), EccVerdict::kCorrected);
}

TEST(Chipkill, TwoDevicesUncorrectable) {
  ChipkillSddcEcc ecc;
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {4, 0}}), kX4),
            EccVerdict::kUncorrected);
}

// ---- Purley ----

TEST(Purley, CorrectsNarrowSingleDevicePatterns) {
  PurleyEcc ecc;
  // 1 bit.
  EXPECT_EQ(ecc.classify(bits({{0, 0}}), kX4), EccVerdict::kCorrected);
  // 2 DQs, 1 beat.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 0}}), kX4),
            EccVerdict::kCorrected);
  // 2 DQs, 2 beats, span 3 (< 4): still inside the correction capability.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 3}}), kX4),
            EccVerdict::kCorrected);
  // 1 DQ, wide span: single-lane faults are always correctable.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {0, 7}}), kX4),
            EccVerdict::kCorrected);
}

TEST(Purley, WeakRegionSingleChipPatternEscapes) {
  PurleyEcc ecc;
  // The risky shape of [7]: 2 DQs, 2 beats, beat span >= 4 — one device.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 4}}), kX4),
            EccVerdict::kUncorrected);
  EXPECT_EQ(ecc.classify(bits({{2, 1}, {3, 7}}), kX4),
            EccVerdict::kUncorrected);
}

TEST(Purley, ExactBoundaryOfWeakRegion) {
  PurleyEcc ecc;
  // span exactly 4 -> uncorrectable; span 3 -> corrected.
  EXPECT_EQ(ecc.classify(bits({{0, 1}, {1, 5}}), kX4),
            EccVerdict::kUncorrected);
  EXPECT_EQ(ecc.classify(bits({{0, 1}, {1, 4}}), kX4),
            EccVerdict::kCorrected);
}

TEST(Purley, AnyMultiDevicePatternUncorrectable) {
  PurleyEcc ecc;
  EXPECT_EQ(ecc.classify(bits({{3, 0}, {4, 0}}), kX4),
            EccVerdict::kUncorrected);
}

// ---- Whitley ----

TEST(Whitley, CorrectsAllSingleDevicePatterns) {
  WhitleyEcc ecc;
  // Even the Purley weak-region shape is absorbed.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 4}}), kX4),
            EccVerdict::kCorrected);
  // Whole-device wipeout.
  ErrorPattern p;
  for (std::uint8_t lane = 0; lane < 4; ++lane) {
    for (std::uint8_t beat = 0; beat < 8; ++beat) p.add({lane, beat});
  }
  EXPECT_EQ(ecc.classify(p, kX4), EccVerdict::kCorrected);
}

TEST(Whitley, AbsorbsNarrowCrossDeviceErrors) {
  WhitleyEcc ecc;
  // 2 devices but only 2 DQs / 1 beat: adaptive correction handles it.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {4, 0}}), kX4),
            EccVerdict::kCorrected);
}

TEST(Whitley, WideMultiDevicePatternUncorrectable) {
  WhitleyEcc ecc;
  // 4 DQs across 2 devices over 5 beats.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 1}, {4, 2}, {5, 3}, {4, 4}}), kX4),
            EccVerdict::kUncorrected);
}

TEST(Whitley, BelowEitherThresholdIsCorrected) {
  WhitleyEcc ecc;
  // 4 DQs but only 4 beats.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 1}, {4, 2}, {5, 3}}), kX4),
            EccVerdict::kCorrected);
  // 5 beats but only 3 DQs.
  EXPECT_EQ(ecc.classify(bits({{0, 0}, {1, 1}, {4, 2}, {4, 3}, {4, 4}}), kX4),
            EccVerdict::kCorrected);
}

// ---- Factory ----

TEST(Factory, MapsPlatformsToSchemes) {
  EXPECT_EQ(make_platform_ecc(Platform::kIntelPurley)->name(), "Purley-SDDC");
  EXPECT_EQ(make_platform_ecc(Platform::kIntelWhitley)->name(),
            "Whitley-SDDC");
  EXPECT_EQ(make_platform_ecc(Platform::kK920)->name(), "K920-SDDC");
}

// Cross-platform property: the ordering of correction strength against
// single-device patterns is Whitley >= K920 > Purley (Finding 2's cause).
class SingleDevicePatternTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SingleDevicePatternTest, StrengthOrdering) {
  const auto [dqs, beats, span] = GetParam();
  ErrorPattern p;
  for (int d = 0; d < dqs; ++d) {
    for (int b = 0; b < beats; ++b) {
      const int beat = b == beats - 1 ? std::min(7, span) : b;
      p.add({static_cast<std::uint8_t>(d), static_cast<std::uint8_t>(beat)});
    }
  }
  const auto purley = PurleyEcc().classify(p, kX4);
  const auto whitley = WhitleyEcc().classify(p, kX4);
  const auto k920 = ChipkillSddcEcc().classify(p, kX4);
  // Single-device: Whitley and K920 always correct.
  EXPECT_EQ(whitley, EccVerdict::kCorrected);
  EXPECT_EQ(k920, EccVerdict::kCorrected);
  // Purley corrects at most what the others do (never rescues a pattern
  // they would miss).
  if (purley == EccVerdict::kUncorrected) {
    EXPECT_TRUE(p.dq_count() >= 2 && p.beat_count() >= 2 && p.beat_span() >= 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SingleDevicePatternTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 3, 5, 7)));

}  // namespace
}  // namespace memfp::dram
