#include "common/csv.h"

#include <gtest/gtest.h>

namespace memfp {
namespace {

TEST(CsvWriter, SimpleRoundTrip) {
  CsvWriter writer({"a", "b"});
  writer.add_row({"1", "2"});
  writer.add_row({"3", "4"});
  const CsvTable table = parse_csv(writer.to_string());
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "1");
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(CsvWriter, RejectsRaggedRow) {
  CsvWriter writer({"a", "b"});
  EXPECT_THROW(writer.add_row({"only-one"}), std::runtime_error);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter writer({"text"});
  writer.add_row({"hello, \"world\"\nline2"});
  const CsvTable table = parse_csv(writer.to_string());
  EXPECT_EQ(table.rows[0][0], "hello, \"world\"\nline2");
}

TEST(ParseCsv, HandlesCrLf) {
  const CsvTable table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(ParseCsv, EmptyFields) {
  const CsvTable table = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "");
  EXPECT_EQ(table.rows[0][2], "");
}

TEST(ParseCsv, ThrowsOnRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), std::runtime_error);
}

TEST(ParseCsv, ThrowsOnUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"unterminated\n"), std::runtime_error);
}

TEST(ParseCsv, ThrowsOnEmptyInput) {
  EXPECT_THROW(parse_csv(""), std::runtime_error);
}

TEST(CsvTable, ColumnLookup) {
  const CsvTable table = parse_csv("x,y,z\n1,2,3\n");
  EXPECT_EQ(table.column("y"), 1u);
  EXPECT_THROW(table.column("missing"), std::out_of_range);
}

TEST(Csv, FileRoundTrip) {
  CsvWriter writer({"k", "v"});
  writer.add_row({"alpha", "1"});
  const std::string path = testing::TempDir() + "/memfp_test.csv";
  writer.save(path);
  const CsvTable table = load_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "alpha");
}

TEST(Csv, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace memfp
