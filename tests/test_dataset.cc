#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace memfp::ml {
namespace {

features::SampleSet tiny_sample_set() {
  features::SampleSet set;
  set.schema = features::FeatureSchema::standard().subset({0, 1});
  for (int d = 0; d < 4; ++d) {
    for (int s = 0; s < 3; ++s) {
      features::Sample sample;
      sample.dimm = static_cast<dram::DimmId>(d);
      sample.time = days(s + 1);
      sample.label = d == 0 ? 1 : 0;
      sample.features = {static_cast<float>(d), static_cast<float>(s)};
      set.samples.push_back(sample);
    }
  }
  // One ambiguous sample that must be dropped from training.
  features::Sample too_late;
  too_late.dimm = 0;
  too_late.label = -1;
  too_late.features = {9.0f, 9.0f};
  set.samples.push_back(too_late);
  return set;
}

TEST(Dataset, MakeDatasetDropsAmbiguousSamples) {
  const Dataset dataset = make_dataset(tiny_sample_set());
  EXPECT_EQ(dataset.size(), 12u);
  EXPECT_EQ(dataset.positives(), 3u);
}

TEST(Dataset, SelectKeepsRowContent) {
  const Dataset dataset = make_dataset(tiny_sample_set());
  const Dataset subset = dataset.select({0, 5});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset.x.at(1, 0), dataset.x.at(5, 0));
  EXPECT_EQ(subset.dimm[1], dataset.dimm[5]);
  EXPECT_EQ(subset.categorical, dataset.categorical);
}

TEST(Matrix, PushRowSetsWidth) {
  Matrix m;
  m.push_row(std::vector<float>{1.0f, 2.0f, 3.0f});
  m.push_row(std::vector<float>{4.0f, 5.0f, 6.0f});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(SplitDimms, DisjointAndComplete) {
  Rng rng(3);
  std::vector<dram::DimmId> pos{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<dram::DimmId> neg;
  for (dram::DimmId i = 100; i < 200; ++i) neg.push_back(i);
  const DimmSplit split = split_dimms(pos, neg, 0.3, rng);
  std::set<dram::DimmId> train(split.train.begin(), split.train.end());
  std::set<dram::DimmId> test(split.test.begin(), split.test.end());
  EXPECT_EQ(train.size() + test.size(), 110u);
  for (dram::DimmId id : test) EXPECT_EQ(train.count(id), 0u);
}

TEST(SplitDimms, StratifiesPositives) {
  Rng rng(5);
  std::vector<dram::DimmId> pos{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<dram::DimmId> neg;
  for (dram::DimmId i = 100; i < 200; ++i) neg.push_back(i);
  const DimmSplit split = split_dimms(pos, neg, 0.3, rng);
  int test_pos = 0;
  for (dram::DimmId id : split.test) test_pos += id <= 10;
  EXPECT_EQ(test_pos, 3);  // exactly 30% of the positives
}

TEST(Downsample, CapsNegativesPerDimm) {
  const Dataset dataset = make_dataset(tiny_sample_set());
  Rng rng(7);
  const Dataset down = downsample(dataset, 1, 10, rng);
  // 3 negative DIMMs capped at 1 row each + 3 positive rows.
  EXPECT_EQ(down.size(), 6u);
  EXPECT_EQ(down.positives(), 3u);
}

TEST(Downsample, KeepsLatestPositives) {
  const Dataset dataset = make_dataset(tiny_sample_set());
  Rng rng(7);
  const Dataset down = downsample(dataset, 10, 1, rng);
  ASSERT_EQ(down.positives(), 1u);
  for (std::size_t r = 0; r < down.size(); ++r) {
    if (down.y[r] == 1) {
      EXPECT_EQ(down.time[r], days(3));  // the latest positive sample
    }
  }
}

TEST(RebalanceWeights, HitsTargetShare) {
  Dataset dataset = make_dataset(tiny_sample_set());
  rebalance_weights(dataset, 0.4);
  double pos_weight = 0.0, total = 0.0;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    total += dataset.weight[r];
    if (dataset.y[r] == 1) pos_weight += dataset.weight[r];
  }
  EXPECT_NEAR(pos_weight / total, 0.4, 1e-9);
}

TEST(RebalanceWeights, NoOpWithoutBothClasses) {
  Dataset dataset = make_dataset(tiny_sample_set());
  for (auto& label : dataset.y) label = 0;
  rebalance_weights(dataset, 0.4);
  for (float w : dataset.weight) EXPECT_EQ(w, 1.0f);
}

}  // namespace
}  // namespace memfp::ml
