#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memfp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_DOUBLE_EQ(stats.sum(), 31.0);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  // Sample variance with n-1 denominator.
  double m2 = 0.0;
  for (double v : values) m2 += (v - 6.2) * (v - 6.2);
  EXPECT_NEAR(stats.variance(), m2 / 4.0, 1e-12);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10;
    all.add(v);
    (i < 20 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 0.5), 0.0); }

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideIsZero) {
  EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, MismatchedSizesIsZero) {
  EXPECT_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Psi, IdenticalDistributionsNearZero) {
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 10);
    b.push_back(i % 10);
  }
  EXPECT_LT(population_stability_index(a, b, 10), 0.01);
}

TEST(Psi, ShiftedDistributionIsLarge) {
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(static_cast<double>(i % 10));
    b.push_back(static_cast<double>(i % 10) + 8.0);
  }
  EXPECT_GT(population_stability_index(a, b, 10), 0.5);
}

TEST(Psi, EmptyInputIsZero) {
  EXPECT_EQ(population_stability_index({}, {1.0}, 10), 0.0);
  EXPECT_EQ(population_stability_index({1.0}, {}, 10), 0.0);
}

TEST(Psi, SymmetricInMagnitude) {
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(i % 7);
    b.push_back((i % 7) + 2.0);
  }
  const double ab = population_stability_index(a, b, 8);
  const double ba = population_stability_index(b, a, 8);
  EXPECT_NEAR(ab, ba, 0.15 * std::max(ab, ba));
}

}  // namespace
}  // namespace memfp
