// Golden-equivalence suite for the incremental sliding-window extractor.
//
// `naive_extract` below is a retained verbatim copy of the pre-incremental
// FeatureExtractor::extract (the O(ticks × window) rescanning version this
// PR replaced): it is the executable specification the incremental engine
// must match byte-for-byte — same samples, same labels, same float bits — on
// storm-heavy, sparse and UE-truncated traces, at every thread count. The
// golden hashes pin both implementations against silent drift: they were
// captured from the rescanning extractor on these exact trace generators.
// Do not change the generators without recapturing.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "features/extractor.h"

namespace memfp::features {
namespace {

// ---------------------------------------------------------------------------
// Retained naive reference (pre-incremental extractor, verbatim).
// ---------------------------------------------------------------------------

float log1pf_clamped(double value) {
  return static_cast<float>(std::log1p(std::max(0.0, value)));
}

std::uint64_t naive_pack_cell(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         (static_cast<std::uint64_t>(c.row & 0xffffff) << 16) |
         static_cast<std::uint64_t>(c.column & 0xffff);
}

/// Lifetime fault structure of the naive extractor, updated one CE at a time.
class NaiveLifetimeState {
 public:
  explicit NaiveLifetimeState(const FaultThresholds& thresholds)
      : thresholds_(thresholds) {}

  void add(const dram::CeEvent& ce) {
    const dram::CellCoord& c = ce.coord;
    const std::uint64_t cell = naive_pack_cell(c);
    if (++cell_counts_[cell] == thresholds_.cell_repeat) ++cell_faults_;

    const std::uint64_t row = cell >> 16;
    auto& row_cols = row_columns_[row];
    if (row_cols.insert(c.column).second &&
        static_cast<int>(row_cols.size()) == thresholds_.row_columns) {
      ++row_faults_;
    }

    const std::uint64_t col =
        (cell & 0xffffff000000ffffULL) | 0xff0000ULL;  // row wildcarded
    auto& col_rows = column_rows_[col];
    if (col_rows.insert(c.row).second &&
        static_cast<int>(col_rows.size()) == thresholds_.column_rows) {
      ++column_faults_;
    }

    const std::uint64_t bank = cell >> 40;
    auto& bank_state = banks_[bank];
    bank_state.rows.insert(c.row);
    bank_state.columns.insert(c.column);
    if (!bank_state.counted &&
        static_cast<int>(bank_state.rows.size()) >= thresholds_.bank_rows &&
        static_cast<int>(bank_state.columns.size()) >=
            thresholds_.bank_columns) {
      bank_state.counted = true;
      ++bank_faults_;
    }

    const int device = (c.rank << 8) | c.device;
    if (++device_counts_[device] == thresholds_.device_min_ces) {
      ++faulty_devices_;
    }
    devices_seen_.insert(device);

    acc_pattern_.merge(ce.pattern);
    if (first_ce_ < 0) first_ce_ = ce.time;
    last_ce_ = ce.time;
    ++total_ces_;
  }

  int cell_faults() const { return cell_faults_; }
  int row_faults() const { return row_faults_; }
  int column_faults() const { return column_faults_; }
  int bank_faults() const { return bank_faults_; }
  int faulty_devices() const { return faulty_devices_; }
  int devices_seen() const { return static_cast<int>(devices_seen_.size()); }
  const dram::ErrorPattern& pattern() const { return acc_pattern_; }
  SimTime first_ce() const { return first_ce_; }
  SimTime last_ce() const { return last_ce_; }
  std::uint64_t total_ces() const { return total_ces_; }

 private:
  struct BankState {
    std::unordered_set<int> rows;
    std::unordered_set<int> columns;
    bool counted = false;
  };

  FaultThresholds thresholds_;
  int cell_faults_ = 0;
  int row_faults_ = 0;
  int column_faults_ = 0;
  int bank_faults_ = 0;
  int faulty_devices_ = 0;
  std::unordered_map<std::uint64_t, int> cell_counts_;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> row_columns_;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> column_rows_;
  std::unordered_map<std::uint64_t, BankState> banks_;
  std::unordered_map<int, int> device_counts_;
  std::unordered_set<int> devices_seen_;
  dram::ErrorPattern acc_pattern_;
  SimTime first_ce_ = -1;
  SimTime last_ce_ = -1;
  std::uint64_t total_ces_ = 0;
};

std::vector<Sample> naive_extract(const sim::DimmTrace& trace, SimTime horizon,
                                  const PredictionWindows& windows,
                                  const FaultThresholds& thresholds,
                                  std::size_t n_features) {
  std::vector<Sample> samples;
  if (trace.ces.empty()) return samples;

  const dram::Geometry geometry = trace.config.geometry();
  const SimTime end =
      trace.ue ? std::min(horizon, trace.ue->time - 1) : horizon;

  NaiveLifetimeState lifetime(thresholds);
  std::size_t window_begin = 0;
  std::size_t consumed = 0;
  std::size_t storm_begin = 0;
  std::size_t storm_end = 0;

  for (SimTime t = windows.cadence; t <= end; t += windows.cadence) {
    while (consumed < trace.ces.size() && trace.ces[consumed].time <= t) {
      lifetime.add(trace.ces[consumed]);
      ++consumed;
    }
    const SimTime window_start = t - windows.observation;
    while (window_begin < consumed &&
           trace.ces[window_begin].time <= window_start) {
      ++window_begin;
    }
    while (storm_end < trace.events.size() &&
           trace.events[storm_end].time <= t) {
      ++storm_end;
    }
    while (storm_begin < storm_end &&
           trace.events[storm_begin].time <= window_start) {
      ++storm_begin;
    }

    const std::size_t window_size = consumed - window_begin;
    if (window_size == 0) continue;

    Sample sample;
    sample.dimm = trace.id;
    sample.time = t;
    sample.label = trace.ue ? windows.label_for(t, trace.ue->time) : 0;
    sample.features.assign(n_features, 0.0f);
    auto& f = sample.features;
    std::size_t k = 0;

    // ---- Temporal ----
    std::uint64_t count_1h = 0, count_6h = 0, count_1d = 0, count_3d = 0;
    SimTime prev = -1;
    double inter_sum = 0.0, inter_sq = 0.0, inter_min = 1e18;
    std::size_t inter_n = 0;
    std::unordered_set<int> active_days;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const SimTime ce_time = trace.ces[i].time;
      const SimTime age = t - ce_time;
      count_1h += age <= kHour;
      count_6h += age <= hours(6);
      count_1d += age <= kDay;
      count_3d += age <= days(3);
      active_days.insert(static_cast<int>(ce_time / kDay));
      if (prev >= 0) {
        const double gap_h = static_cast<double>(ce_time - prev) /
                             static_cast<double>(kHour);
        inter_sum += gap_h;
        inter_sq += gap_h * gap_h;
        inter_min = std::min(inter_min, gap_h);
        ++inter_n;
      }
      prev = ce_time;
    }
    const std::uint64_t count_5d = window_size;
    f[k++] = log1pf_clamped(static_cast<double>(count_1h));
    f[k++] = log1pf_clamped(static_cast<double>(count_6h));
    f[k++] = log1pf_clamped(static_cast<double>(count_1d));
    f[k++] = log1pf_clamped(static_cast<double>(count_3d));
    f[k++] = log1pf_clamped(static_cast<double>(count_5d));

    int storms = 0, suppressions = 0;
    for (std::size_t i = storm_begin; i < storm_end; ++i) {
      storms += trace.events[i].type == dram::MemEventType::kCeStorm;
      suppressions +=
          trace.events[i].type == dram::MemEventType::kCeStormSuppressed;
    }
    f[k++] = static_cast<float>(storms);
    f[k++] = static_cast<float>(suppressions);

    const double inter_mean = inter_n > 0 ? inter_sum / inter_n : 120.0;
    const double inter_var =
        inter_n > 1 ? std::max(0.0, inter_sq / inter_n - inter_mean * inter_mean)
                    : 0.0;
    f[k++] = log1pf_clamped(inter_mean);
    f[k++] = log1pf_clamped(inter_n > 0 ? inter_min : 120.0);
    f[k++] = static_cast<float>(
        inter_mean > 0.0 ? std::sqrt(inter_var) / inter_mean : 0.0);
    f[k++] = static_cast<float>(
        std::log1p(static_cast<double>(count_1d)) -
        std::log1p(static_cast<double>(count_5d) / 5.0));
    f[k++] = static_cast<float>(
        static_cast<double>(t - lifetime.first_ce()) /
        static_cast<double>(kDay));
    f[k++] = static_cast<float>(
        static_cast<double>(t - lifetime.last_ce()) /
        static_cast<double>(kHour));
    f[k++] = log1pf_clamped(static_cast<double>(lifetime.total_ces()));
    f[k++] = static_cast<float>(active_days.size());

    // ---- Spatial (window structure + lifetime fault inference) ----
    std::unordered_set<std::uint64_t> cells, rows, cols, banks;
    std::unordered_map<int, int> window_devices;
    std::unordered_map<std::uint64_t, int> row_ces;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const std::uint64_t cell = naive_pack_cell(trace.ces[i].coord);
      cells.insert(cell);
      const std::uint64_t row = cell >> 16;
      rows.insert(row);
      cols.insert((cell & 0xffffff000000ffffULL));
      banks.insert(cell >> 40);
      ++window_devices[(trace.ces[i].coord.rank << 8) |
                       trace.ces[i].coord.device];
      ++row_ces[row];
    }
    int dominant = 0;
    // (unordered iteration is fine here: max() is order-independent)
    for (const auto& [device, count] : window_devices) {
      dominant = std::max(dominant, count);
    }
    int max_row = 0;
    // (unordered iteration is fine here: max() is order-independent)
    for (const auto& [row, count] : row_ces) max_row = std::max(max_row, count);

    f[k++] = log1pf_clamped(static_cast<double>(cells.size()));
    f[k++] = log1pf_clamped(static_cast<double>(rows.size()));
    f[k++] = log1pf_clamped(static_cast<double>(cols.size()));
    f[k++] = log1pf_clamped(static_cast<double>(banks.size()));
    f[k++] = static_cast<float>(window_devices.size());
    f[k++] = static_cast<float>(lifetime.devices_seen());
    f[k++] = static_cast<float>(window_size > 0 ? static_cast<double>(dominant) /
                                                      static_cast<double>(window_size)
                                                : 0.0);
    f[k++] = log1pf_clamped(lifetime.cell_faults());
    f[k++] = log1pf_clamped(lifetime.row_faults());
    f[k++] = log1pf_clamped(lifetime.column_faults());
    f[k++] = log1pf_clamped(lifetime.bank_faults());
    f[k++] = lifetime.faulty_devices() >= 2 ? 1.0f : 0.0f;
    f[k++] = lifetime.faulty_devices() == 1 ? 1.0f : 0.0f;
    f[k++] = log1pf_clamped(max_row);

    // ---- Bit-level ----
    dram::ErrorPattern window_pattern;
    int max_dq = 0, max_beats = 0, multibit = 0, cross_device = 0;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const dram::ErrorPattern& p = trace.ces[i].pattern;
      window_pattern.merge(p);
      max_dq = std::max(max_dq, p.dq_count());
      max_beats = std::max(max_beats, p.beat_count());
      multibit += p.bit_count() > 1;
      cross_device += p.device_count(geometry) > 1;
    }
    const dram::ErrorPattern& life_pattern = lifetime.pattern();
    f[k++] = static_cast<float>(window_pattern.dq_count());
    f[k++] = static_cast<float>(window_pattern.beat_count());
    f[k++] = static_cast<float>(window_pattern.max_dq_interval());
    f[k++] = static_cast<float>(window_pattern.max_beat_interval());
    f[k++] = static_cast<float>(window_pattern.beat_span());
    f[k++] = static_cast<float>(life_pattern.dq_count());
    f[k++] = static_cast<float>(life_pattern.beat_count());
    f[k++] = static_cast<float>(life_pattern.max_beat_interval());
    f[k++] = static_cast<float>(life_pattern.beat_span());
    f[k++] = log1pf_clamped(static_cast<double>(life_pattern.bit_count()));
    f[k++] = static_cast<float>(max_dq);
    f[k++] = static_cast<float>(max_beats);
    f[k++] = static_cast<float>(static_cast<double>(multibit) /
                                static_cast<double>(window_size));
    f[k++] = log1pf_clamped(cross_device);
    bool purley_risky = false;
    {
      std::unordered_map<int, dram::ErrorPattern> per_device;
      for (const dram::ErrorBit& bit : life_pattern.bits()) {
        per_device[geometry.device_of_dq(bit.dq)].add(bit);
      }
      // (unordered iteration is fine here: any-of match; the bool result)
      for (const auto& [device, pattern] : per_device) {
        if (pattern.dq_count() >= 2 && pattern.beat_count() >= 2 &&
            pattern.beat_span() >= 4) {
          purley_risky = true;
          break;
        }
      }
    }
    f[k++] = purley_risky ? 1.0f : 0.0f;
    f[k++] = life_pattern.dq_count() >= 4 && life_pattern.beat_count() >= 5
                 ? 1.0f
                 : 0.0f;

    // ---- Static ----
    f[k++] = static_cast<float>(trace.config.manufacturer);
    f[k++] = static_cast<float>(trace.config.process);
    f[k++] = static_cast<float>(trace.config.frequency_mhz) / 1000.0f;
    f[k++] = static_cast<float>(trace.config.capacity_gib);
    f[k++] = static_cast<float>(trace.config.width);

    // ---- Workload ----
    f[k++] = trace.workload.cpu_utilization;
    f[k++] = trace.workload.memory_utilization;
    f[k++] = trace.workload.read_write_ratio;

    samples.push_back(std::move(sample));
  }
  return samples;
}

/// Pre-incremental features_at: truncated trace copy + throwaway extractor
/// configured for a single tick at exactly t.
std::vector<float> naive_features_at(const sim::DimmTrace& trace, SimTime t,
                                     const PredictionWindows& windows,
                                     const FaultThresholds& thresholds,
                                     std::size_t n_features) {
  sim::DimmTrace truncated;
  truncated.id = trace.id;
  truncated.config = trace.config;
  truncated.workload = trace.workload;
  std::copy_if(trace.ces.begin(), trace.ces.end(),
               std::back_inserter(truncated.ces),
               [&](const dram::CeEvent& ce) { return ce.time <= t; });
  std::copy_if(trace.events.begin(), trace.events.end(),
               std::back_inserter(truncated.events),
               [&](const dram::MemEvent& event) { return event.time <= t; });
  PredictionWindows point = windows;
  point.cadence = std::max<SimDuration>(t, 1);
  std::vector<Sample> samples =
      naive_extract(truncated, t, point, thresholds, n_features);
  if (samples.empty()) return {};
  return std::move(samples.front().features);
}

// ---------------------------------------------------------------------------
// Trace generators (frozen — the golden hashes depend on them).
// ---------------------------------------------------------------------------

/// Bursty trace: storm bursts of clustered CEs over a narrow coordinate
/// range (so fault thresholds trip), multibit and occasionally cross-device
/// patterns, plus storm / suppression events.
sim::DimmTrace synthetic_trace(std::uint64_t seed, int bursts,
                               int ces_per_burst, SimTime span) {
  Rng rng(seed);
  sim::DimmTrace trace;
  trace.id = static_cast<dram::DimmId>(seed);
  trace.config.manufacturer = dram::Manufacturer::kB;
  trace.config.process = dram::DramProcess::k1z;
  trace.config.frequency_mhz = 3200;
  trace.workload.cpu_utilization = 0.7f;
  std::vector<dram::CeEvent> ces;
  for (int burst = 0; burst < bursts; ++burst) {
    const SimTime start =
        1 + static_cast<SimTime>(rng.uniform_u64(static_cast<std::uint64_t>(span)));
    if (rng.bernoulli(0.5)) {
      dram::MemEvent event;
      event.time = start;
      event.type = rng.bernoulli(0.5) ? dram::MemEventType::kCeStorm
                                      : dram::MemEventType::kCeStormSuppressed;
      trace.events.push_back(event);
    }
    for (int i = 0; i < ces_per_burst; ++i) {
      dram::CeEvent ce;
      ce.time = start + static_cast<SimTime>(rng.uniform_u64(hours(8)));
      ce.coord = {static_cast<int>(rng.uniform_u64(2)),
                  static_cast<int>(rng.uniform_u64(18)),
                  static_cast<int>(rng.uniform_u64(16)),
                  static_cast<int>(rng.uniform_u64(64)),
                  static_cast<int>(rng.uniform_u64(32))};
      const int dq = static_cast<int>(rng.uniform_u64(72));
      ce.pattern.add({static_cast<std::uint8_t>(dq),
                      static_cast<std::uint8_t>(rng.uniform_u64(8))});
      if (rng.bernoulli(0.35)) {
        ce.pattern.add({static_cast<std::uint8_t>((dq + 5) % 72),
                        static_cast<std::uint8_t>(rng.uniform_u64(8))});
      }
      if (rng.bernoulli(0.1)) {
        ce.pattern.add({static_cast<std::uint8_t>(rng.uniform_u64(72)),
                        static_cast<std::uint8_t>(rng.uniform_u64(8))});
      }
      ces.push_back(ce);
    }
  }
  std::stable_sort(ces.begin(), ces.end(),
                   [](const dram::CeEvent& a, const dram::CeEvent& b) {
                     return a.time < b.time;
                   });
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const dram::MemEvent& a, const dram::MemEvent& b) {
                     return a.time < b.time;
                   });
  trace.ces = std::move(ces);
  return trace;
}

sim::DimmTrace storm_heavy_trace(std::uint64_t seed) {
  return synthetic_trace(seed, 30, 60, days(50));
}

/// Sparse trace: isolated CEs days apart, so the observation window
/// repeatedly empties (eviction down to zero, skipped ticks) and refills.
sim::DimmTrace sparse_trace(std::uint64_t seed) {
  return synthetic_trace(seed, 12, 2, days(80));
}

sim::DimmTrace ue_truncated_trace(std::uint64_t seed) {
  sim::DimmTrace trace = synthetic_trace(seed, 25, 40, days(50));
  trace.ue = dram::UeEvent{};
  trace.ue->time = days(33) + hours(7);
  trace.ue->had_prior_ce = true;
  return trace;
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

std::uint64_t fnv1a64_u32(std::uint64_t h, std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_samples(const std::vector<Sample>& samples) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Sample& sample : samples) {
    h = fnv1a64_u32(h, static_cast<std::uint32_t>(sample.time / kHour));
    h = fnv1a64_u32(h, static_cast<std::uint32_t>(sample.label + 1));
    for (float value : sample.features) {
      h = fnv1a64_u32(h, std::bit_cast<std::uint32_t>(value));
    }
  }
  return h;
}

PredictionWindows test_windows() {
  PredictionWindows windows;
  windows.cadence = hours(6);  // many ticks per observation window
  return windows;
}

// Golden hashes captured from naive_extract (the retained pre-incremental
// extractor) on the frozen generators above, windows = test_windows().
constexpr std::uint64_t kGoldenStormHash = 17739176330598536077ULL;
constexpr std::uint64_t kGoldenSparseHash = 5198835115104375519ULL;
constexpr std::uint64_t kGoldenUeHash = 8647230958712640813ULL;

void expect_identical(const std::vector<Sample>& naive,
                      const std::vector<Sample>& incremental) {
  ASSERT_EQ(naive.size(), incremental.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive[i].time, incremental[i].time);
    EXPECT_EQ(naive[i].label, incremental[i].label);
    ASSERT_EQ(naive[i].features.size(), incremental[i].features.size());
    for (std::size_t j = 0; j < naive[i].features.size(); ++j) {
      // Bit-level comparison: byte-identical, not just numerically close.
      EXPECT_EQ(std::bit_cast<std::uint32_t>(naive[i].features[j]),
                std::bit_cast<std::uint32_t>(incremental[i].features[j]))
          << "sample " << i << " (t=" << naive[i].time << ") feature " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

TEST(ExtractorIncremental, StormHeavyMatchesNaiveByteForByte) {
  const PredictionWindows windows = test_windows();
  const FaultThresholds thresholds;
  const FeatureExtractor extractor(windows, thresholds);
  const sim::DimmTrace trace = storm_heavy_trace(91);
  const SimTime horizon = days(55);

  const std::vector<Sample> naive = naive_extract(
      trace, horizon, windows, thresholds, extractor.schema().size());
  const std::vector<Sample> incremental = extractor.extract(trace, horizon);
  ASSERT_GT(naive.size(), 100u);
  expect_identical(naive, incremental);
  EXPECT_EQ(hash_samples(naive), kGoldenStormHash);
  EXPECT_EQ(hash_samples(incremental), kGoldenStormHash);
}

TEST(ExtractorIncremental, SparseMatchesNaiveByteForByte) {
  const PredictionWindows windows = test_windows();
  const FaultThresholds thresholds;
  const FeatureExtractor extractor(windows, thresholds);
  const sim::DimmTrace trace = sparse_trace(92);
  const SimTime horizon = days(85);

  const std::vector<Sample> naive = naive_extract(
      trace, horizon, windows, thresholds, extractor.schema().size());
  const std::vector<Sample> incremental = extractor.extract(trace, horizon);
  ASSERT_FALSE(naive.empty());
  // The sparse generator must actually exercise empty-window skipping.
  const std::size_t possible_ticks =
      static_cast<std::size_t>(horizon / windows.cadence);
  ASSERT_LT(naive.size(), possible_ticks);
  expect_identical(naive, incremental);
  EXPECT_EQ(hash_samples(naive), kGoldenSparseHash);
  EXPECT_EQ(hash_samples(incremental), kGoldenSparseHash);
}

TEST(ExtractorIncremental, UeTruncatedMatchesNaiveByteForByte) {
  const PredictionWindows windows = test_windows();
  const FaultThresholds thresholds;
  const FeatureExtractor extractor(windows, thresholds);
  const sim::DimmTrace trace = ue_truncated_trace(93);
  const SimTime horizon = days(55);

  const std::vector<Sample> naive = naive_extract(
      trace, horizon, windows, thresholds, extractor.schema().size());
  const std::vector<Sample> incremental = extractor.extract(trace, horizon);
  ASSERT_FALSE(naive.empty());
  // Truncation and labels: no sample at or past the UE, positives present.
  EXPECT_LT(naive.back().time, trace.ue->time);
  EXPECT_TRUE(std::any_of(naive.begin(), naive.end(),
                          [](const Sample& s) { return s.label == 1; }));
  expect_identical(naive, incremental);
  EXPECT_EQ(hash_samples(naive), kGoldenUeHash);
  EXPECT_EQ(hash_samples(incremental), kGoldenUeHash);
}

TEST(ExtractorIncremental, ParallelExtractionIdenticalAtEveryThreadCount) {
  const PredictionWindows windows = test_windows();
  const FaultThresholds thresholds;
  const FeatureExtractor extractor(windows, thresholds);
  const SimTime horizon = days(55);
  std::vector<sim::DimmTrace> dimms;
  for (std::uint64_t seed = 200; seed < 212; ++seed) {
    dimms.push_back(synthetic_trace(seed, 15, 25, days(50)));
  }
  dimms.push_back(ue_truncated_trace(93));

  std::vector<std::uint64_t> reference;
  for (int threads : {1, 2, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    std::vector<std::vector<Sample>> extracted(dimms.size());
    ThreadPool::global().parallel_for(
        dimms.size(),
        [&](std::size_t d) {
          extracted[d] = extractor.extract(dimms[d], horizon);
        },
        /*grain=*/1);
    std::vector<std::uint64_t> hashes;
    for (const std::vector<Sample>& samples : extracted) {
      hashes.push_back(hash_samples(samples));
    }
    if (reference.empty()) {
      reference = hashes;
      // Cross-check thread count 1 against the naive reference per DIMM.
      for (std::size_t d = 0; d < dimms.size(); ++d) {
        const std::vector<Sample> naive =
            naive_extract(dimms[d], horizon, windows, thresholds,
                          extractor.schema().size());
        expect_identical(naive, extracted[d]);
      }
    } else {
      EXPECT_EQ(hashes, reference) << "divergence at " << threads << " threads";
    }
  }
}

TEST(ExtractorIncremental, StreamingStateMatchesOneShotServing) {
  const PredictionWindows windows = test_windows();
  const FaultThresholds thresholds;
  const FeatureExtractor extractor(windows, thresholds);
  const sim::DimmTrace trace = storm_heavy_trace(94);

  OnlineExtractorState stream =
      extractor.open_stream(trace.config, trace.workload);
  std::size_t next_ce = 0;
  std::size_t next_event = 0;
  std::vector<float> streamed;
  // Query off-cadence times too: serving is not tied to the tick grid.
  for (SimTime t = hours(5); t <= days(54); t += hours(17)) {
    while (next_ce < trace.ces.size() && trace.ces[next_ce].time <= t) {
      stream.observe_ce(trace.ces[next_ce++]);
    }
    while (next_event < trace.events.size() &&
           trace.events[next_event].time <= t) {
      stream.observe_event(trace.events[next_event++]);
    }
    stream.features_at(t, streamed);
    const std::vector<float> naive = naive_features_at(
        trace, t, windows, thresholds, extractor.schema().size());
    const std::vector<float> one_shot = extractor.features_at(trace, t);
    ASSERT_EQ(streamed, naive) << "streaming divergence at t=" << t;
    ASSERT_EQ(one_shot, naive) << "one-shot divergence at t=" << t;
  }
  EXPECT_EQ(next_ce, trace.ces.size());  // the sweep consumed the trace
}

TEST(ExtractorIncremental, StreamingHonorsPendingFutureEvents) {
  const PredictionWindows windows = test_windows();
  const FeatureExtractor extractor(windows);
  const sim::DimmTrace trace = storm_heavy_trace(95);

  // Feed the whole trace up front; queries must still only see time <= t.
  OnlineExtractorState stream =
      extractor.open_stream(trace.config, trace.workload);
  for (const dram::CeEvent& ce : trace.ces) stream.observe_ce(ce);
  for (const dram::MemEvent& event : trace.events) stream.observe_event(event);

  std::vector<float> streamed;
  for (SimTime t = days(2); t <= days(54); t += days(13)) {
    stream.features_at(t, streamed);
    const std::vector<float> one_shot = extractor.features_at(trace, t);
    ASSERT_EQ(streamed, one_shot) << "pending-event leakage at t=" << t;
  }
}

}  // namespace
}  // namespace memfp::features
