#include "ml/binning.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memfp::ml {
namespace {

Dataset dataset_from_column(const std::vector<float>& values,
                            bool categorical = false) {
  Dataset d;
  for (float v : values) {
    d.x.push_row(std::vector<float>{v});
    d.y.push_back(0);
    d.weight.push_back(1.0f);
    d.dimm.push_back(0);
    d.time.push_back(0);
  }
  if (categorical) d.categorical.push_back(0);
  return d;
}

TEST(BinMapper, ConstantFeatureHasOneBin) {
  const Dataset d = dataset_from_column({2.0f, 2.0f, 2.0f});
  const BinMapper mapper = BinMapper::fit(d);
  EXPECT_EQ(mapper.bins(0), 1);
}

TEST(BinMapper, FewDistinctValuesGetExactBins) {
  const Dataset d = dataset_from_column({0.0f, 1.0f, 2.0f, 1.0f, 0.0f});
  const BinMapper mapper = BinMapper::fit(d);
  EXPECT_EQ(mapper.bins(0), 3);
  EXPECT_EQ(mapper.bin(0, 0.0f), 0);
  EXPECT_EQ(mapper.bin(0, 1.0f), 1);
  EXPECT_EQ(mapper.bin(0, 2.0f), 2);
}

TEST(BinMapper, QuantileBinsBoundedByMax) {
  Rng rng(3);
  std::vector<float> values;
  for (int i = 0; i < 5000; ++i) values.push_back(static_cast<float>(rng.normal()));
  const Dataset d = dataset_from_column(values);
  const BinMapper mapper = BinMapper::fit(d, 16);
  EXPECT_LE(mapper.bins(0), 16);
  EXPECT_GT(mapper.bins(0), 8);
}

TEST(BinMapper, BinThresholdConsistency) {
  // Property: bin(v) <= b  <=>  v <= threshold(b) for every split bin b.
  Rng rng(5);
  std::vector<float> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<float>(rng.uniform(-10.0, 10.0)));
  }
  const Dataset d = dataset_from_column(values);
  const BinMapper mapper = BinMapper::fit(d, 24);
  for (int b = 0; b + 1 < mapper.bins(0); ++b) {
    const float threshold = mapper.threshold(0, b);
    for (float probe : {threshold - 0.01f, threshold, threshold + 0.01f}) {
      const bool left_by_bin = mapper.bin(0, probe) <= b;
      const bool left_by_value = probe <= threshold;
      EXPECT_EQ(left_by_bin, left_by_value)
          << "bin/threshold disagree at b=" << b << " probe=" << probe;
    }
  }
}

TEST(BinMapper, TransformShape) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.x.push_row(std::vector<float>{static_cast<float>(i),
                                    static_cast<float>(i % 3)});
    d.y.push_back(0);
    d.weight.push_back(1.0f);
    d.dimm.push_back(0);
    d.time.push_back(0);
  }
  const BinMapper mapper = BinMapper::fit(d);
  const std::vector<std::uint8_t> codes = mapper.transform(d.x);
  EXPECT_EQ(codes.size(), 20u);
}

TEST(BinMapper, OutOfRangeValuesClampToEdgeBins) {
  const Dataset d = dataset_from_column({0.0f, 1.0f, 2.0f});
  const BinMapper mapper = BinMapper::fit(d);
  EXPECT_EQ(mapper.bin(0, -100.0f), 0);
  EXPECT_EQ(mapper.bin(0, 100.0f), mapper.bins(0) - 1);
}

}  // namespace
}  // namespace memfp::ml
