#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace memfp::core {
namespace {

features::PredictionWindows test_windows() {
  features::PredictionWindows w;
  w.lead = hours(3);
  w.prediction = days(30);
  return w;
}

TEST(DimmConfusion, TimelyAlarmIsTp) {
  AlarmOutcome outcome;
  outcome.positive = true;
  outcome.ue_time = days(10);
  outcome.alarm = days(10) - hours(5);  // 5h lead: inside [3h, 3h+30d]
  const ml::Confusion c = dimm_confusion({outcome}, test_windows());
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 0u);
}

TEST(DimmConfusion, TooLateAlarmIsFnPlusFp) {
  AlarmOutcome outcome;
  outcome.positive = true;
  outcome.ue_time = days(10);
  outcome.alarm = days(10) - hours(1);  // only 1h of lead
  const ml::Confusion c = dimm_confusion({outcome}, test_windows());
  EXPECT_EQ(c.tp, 0u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);  // the migration was still spent
}

TEST(DimmConfusion, TooEarlyAlarmIsMiss) {
  AlarmOutcome outcome;
  outcome.positive = true;
  outcome.ue_time = days(60);
  outcome.alarm = days(10);  // 50 days early: outside the validity window
  const ml::Confusion c = dimm_confusion({outcome}, test_windows());
  EXPECT_EQ(c.tp, 0u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
}

TEST(DimmConfusion, BoundaryLeadTimes) {
  features::PredictionWindows w = test_windows();
  AlarmOutcome exact;
  exact.positive = true;
  exact.ue_time = days(10);
  exact.alarm = days(10) - w.lead;  // exactly the minimum lead
  EXPECT_EQ(dimm_confusion({exact}, w).tp, 1u);

  AlarmOutcome edge;
  edge.positive = true;
  edge.ue_time = days(40);
  edge.alarm = days(40) - (w.lead + w.prediction);  // exactly max validity
  EXPECT_EQ(dimm_confusion({edge}, w).tp, 1u);
}

TEST(DimmConfusion, NegativesClassified) {
  AlarmOutcome quiet;
  quiet.positive = false;
  AlarmOutcome noisy;
  noisy.positive = false;
  noisy.alarm = days(3);
  const ml::Confusion c = dimm_confusion({quiet, noisy}, test_windows());
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fp, 1u);
}

TEST(DimmConfusion, MissedPositiveIsFn) {
  AlarmOutcome missed;
  missed.positive = true;
  missed.ue_time = days(5);
  const ml::Confusion c = dimm_confusion({missed}, test_windows());
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 0u);
}

TEST(ScoredStream, FirstAlarmFindsFirstCrossing) {
  ScoredStream stream;
  stream.times = {days(1), days(2), days(3), days(4)};
  stream.scores = {0.1, 0.6, 0.4, 0.9};
  EXPECT_EQ(stream.first_alarm(0.5), days(2));
  EXPECT_EQ(stream.first_alarm(0.7), days(4));
  EXPECT_FALSE(stream.first_alarm(0.95).has_value());
  EXPECT_DOUBLE_EQ(stream.max_score(), 0.9);
}

TEST(TuneThreshold, SeparatesCleanStreams) {
  // Positive DIMM peaks at 0.9 well before its UE; negative peaks at 0.3.
  ScoredStream positive;
  positive.times = {days(1), days(2)};
  positive.scores = {0.2, 0.9};
  ScoredStream negative;
  negative.times = {days(1), days(2)};
  negative.scores = {0.3, 0.25};

  AlarmOutcome pos_outcome;
  pos_outcome.positive = true;
  pos_outcome.ue_time = days(5);
  AlarmOutcome neg_outcome;
  neg_outcome.positive = false;

  const double threshold = tune_threshold(
      {positive, negative}, {pos_outcome, neg_outcome}, test_windows());
  EXPECT_GT(threshold, 0.3);
  EXPECT_LE(threshold, 0.9);
}

TEST(TuneThreshold, EmptyStreamsFallBack) {
  EXPECT_DOUBLE_EQ(tune_threshold({}, {}, test_windows()), 0.5);
}

}  // namespace
}  // namespace memfp::core
