#include "ml/ft_transformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"

namespace memfp::ml {
namespace {

/// Mixed numeric + categorical task: y depends on one numeric feature and
/// one categorical code.
Dataset mixed_dataset(std::size_t n, Rng& rng) {
  Dataset d;
  d.categorical = {2};
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.normal());
    const float x1 = static_cast<float>(rng.normal());
    const int cat = static_cast<int>(rng.uniform_u64(3));
    const double logit = 1.5 * x0 + (cat == 2 ? 2.0 : -0.5);
    const int y = rng.bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1 : 0;
    d.x.push_row(std::vector<float>{x0, x1, static_cast<float>(cat)});
    d.y.push_back(y);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

FtTransformerParams small_params() {
  FtTransformerParams p;
  p.d_model = 8;
  p.blocks = 1;
  p.epochs = 16;
  p.early_stopping_epochs = 16;
  p.max_train_rows = 2000;
  return p;
}

TEST(FtTransformer, LearnsMixedTask) {
  Rng rng(1);
  const Dataset train = mixed_dataset(2000, rng);
  const Dataset test = mixed_dataset(500, rng);
  FtTransformer model(small_params());
  model.fit(train, rng);
  const std::vector<double> scores = model.predict_batch(test.x);
  EXPECT_GT(roc_auc(scores, test.y), 0.74);
}

TEST(FtTransformer, UsesCategoricalSignal) {
  // Same task with the numeric signal removed: only the embedding can help.
  Rng rng(2);
  Dataset train = mixed_dataset(2000, rng);
  for (std::size_t r = 0; r < train.size(); ++r) {
    train.x.at(r, 0) = 0.0f;
    train.x.at(r, 1) = 0.0f;
  }
  FtTransformer model(small_params());
  model.fit(train, rng);
  const std::vector<double> scores = model.predict_batch(train.x);
  EXPECT_GT(roc_auc(scores, train.y), 0.60);
}

TEST(FtTransformer, PredictMatchesBatch) {
  Rng rng(3);
  const Dataset train = mixed_dataset(800, rng);
  FtTransformer model(small_params());
  model.fit(train, rng);
  const std::vector<double> batch = model.predict_batch(train.x);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(model.predict(train.x.row(r)), batch[r], 1e-6);
  }
}

TEST(FtTransformer, DeterministicGivenSeed) {
  Rng rng_data(4);
  const Dataset train = mixed_dataset(600, rng_data);
  FtTransformer a(small_params()), b(small_params());
  Rng rng_a(5), rng_b(5);
  a.fit(train, rng_a);
  b.fit(train, rng_b);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_DOUBLE_EQ(a.predict(train.x.row(r)), b.predict(train.x.row(r)));
  }
}

TEST(FtTransformer, ScoresAreProbabilities) {
  Rng rng(6);
  const Dataset train = mixed_dataset(600, rng);
  FtTransformer model(small_params());
  model.fit(train, rng);
  for (double p : model.predict_batch(train.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FtTransformer, UnfittedPredictsHalfBatchZeros) {
  FtTransformer model(small_params());
  Matrix x;
  x.push_row(std::vector<float>{0.0f, 0.0f, 0.0f});
  EXPECT_EQ(model.predict_batch(x)[0], 0.0);
}

TEST(FtTransformer, ExportContainsWeights) {
  Rng rng(7);
  const Dataset train = mixed_dataset(400, rng);
  FtTransformer model(small_params());
  model.fit(train, rng);
  const Json exported = model.to_json();
  EXPECT_EQ(exported.at("type").as_string(), "ft_transformer");
  EXPECT_GT(exported.at("tensors").as_array().size(), 10u);
}

}  // namespace
}  // namespace memfp::ml
