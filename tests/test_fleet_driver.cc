// Determinism contract of the sharded fleet driver (src/core/fleet_driver.h):
// for any shard count and any thread count, the spill-and-stream pipeline
// produces traces, features, and scores byte-identical to the in-memory
// path. Suite names carry "Determinism" so the TSan leg of tools/check.sh
// picks these up alongside the thread-pool suites.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <span>
#include <string>

#include "common/thread_pool.h"
#include "ml/model.h"
#include "core/fleet_driver.h"

namespace memfp::core {
namespace {

std::string temp_store(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Deterministic stand-in for a trained classifier: cheap, stateless, and
/// exercising every feature value, so a single flipped feature bit flips
/// the folded score hash.
class LinearStub final : public ml::BinaryClassifier {
 public:
  void fit(const ml::Dataset&, Rng&) override {}
  double predict(std::span<const float> features) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      s += static_cast<double>(i % 7 + 1) * static_cast<double>(features[i]);
    }
    return s / (1.0 + std::fabs(s));
  }
  std::string name() const override { return "linear-stub"; }
  Json to_json() const override { return Json::object(); }
};

sim::ScenarioParams small_scenario() {
  // ~170 planned DIMMs: big enough that every shard in a 16-way split is
  // non-trivial, small enough for a sub-minute matrix on one core.
  return sim::purley_scenario(/*seed=*/99).scaled(0.04);
}

TEST(FleetDriverDeterminism, ShardAndThreadInvariant) {
  const sim::ScenarioParams params = small_scenario();
  const LinearStub model;
  const features::PredictionWindows windows;
  const FleetDriverResult reference =
      reference_fleet_result(params, windows, &model);
  ASSERT_GT(reference.observed_dimms, 0u);
  ASSERT_GT(reference.samples, 0u);

  const std::string store = temp_store("memfp_fleet_driver_matrix");
  for (const std::size_t shards : {1, 4, 16}) {
    for (const int threads : {1, 2, 4}) {
      FleetDriverConfig config;
      config.store_dir = store;
      config.shards = shards;
      config.num_threads = threads;
      config.windows = windows;
      const FleetDriverResult run =
          run_fleet_driver(params, config, &model);
      SCOPED_TRACE(testing::Message()
                   << shards << " shards, " << threads << " threads");
      EXPECT_EQ(run.planned_dimms, reference.planned_dimms);
      EXPECT_EQ(run.observed_dimms, reference.observed_dimms);
      EXPECT_EQ(run.events(), reference.events());
      EXPECT_EQ(run.samples, reference.samples);
      EXPECT_EQ(run.trace_hash, reference.trace_hash);
      EXPECT_EQ(run.feature_hash, reference.feature_hash);
      EXPECT_EQ(run.score_hash, reference.score_hash);
      EXPECT_EQ(run.score_sum, reference.score_sum);
    }
  }
  std::filesystem::remove_all(store);
}

TEST(FleetDriverDeterminism, PlannerChunkingImmaterial) {
  const sim::ScenarioParams params = small_scenario();
  sim::FleetPlanner whole(params);
  const std::vector<sim::PlannedDimm> all = whole.take(whole.plan().total());

  sim::FleetPlanner chunked(params);
  std::vector<sim::PlannedDimm> pieces;
  // Deliberately ragged chunks, including empty ones.
  for (const std::size_t chunk : {1u, 0u, 7u, 64u, 3u, 1000u, 9u}) {
    for (const sim::PlannedDimm& job : chunked.take(chunk)) {
      pieces.push_back(job);
    }
  }
  ASSERT_EQ(pieces.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(pieces[i].id, all[i].id);
    EXPECT_EQ(pieces[i].kind, all[i].kind);
    // Identical RNG state <=> identical draw stream.
    Rng a = all[i].rng;
    Rng b = pieces[i].rng;
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
  }
  EXPECT_EQ(chunked.take(1).size(), 0u);  // population exhausted
}

TEST(FleetDriverDeterminism, SimulateFleetMatchesDriverTraces) {
  // The refactored in-memory builder and the sharded driver must agree on
  // the observed population, not just on hashes of it.
  const sim::ScenarioParams params = small_scenario();
  const sim::FleetTrace fleet = sim::simulate_fleet(params);

  const std::string store = temp_store("memfp_fleet_driver_traces");
  FleetDriverConfig config;
  config.store_dir = store;
  config.shards = 5;
  config.keep_store = true;
  const FleetDriverResult run = run_fleet_driver(params, config, nullptr);
  ASSERT_EQ(run.observed_dimms, fleet.dimms.size());

  std::uint64_t resident_hash = sim::kFnvOffset;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    resident_hash = sim::fnv1a_u64(resident_hash, sim::trace_content_hash(dimm));
  }
  EXPECT_EQ(run.trace_hash, resident_hash);

  // And the spilled records decode back to the same DIMMs in id order.
  std::size_t next = 0;
  for (const std::string& path : run.shard_files) {
    const sim::TraceReader reader(path);
    for (std::size_t i = 0; i < reader.dimm_count(); ++i, ++next) {
      EXPECT_EQ(reader.read_dimm(i).id, fleet.dimms[next].id);
      EXPECT_EQ(sim::trace_content_hash(reader.read_dimm(i)),
                sim::trace_content_hash(fleet.dimms[next]));
    }
  }
  EXPECT_EQ(next, fleet.dimms.size());
  std::filesystem::remove_all(store);
}

TEST(FleetDriverDeterminism, BoundedWorkingSetStats) {
  // Spilled bytes and event counts add up across shards exactly.
  const sim::ScenarioParams params = small_scenario();
  const std::string store = temp_store("memfp_fleet_driver_stats");
  FleetDriverConfig config;
  config.store_dir = store;
  config.shards = 3;
  config.keep_store = true;
  const FleetDriverResult run = run_fleet_driver(params, config, nullptr);

  std::uint64_t file_bytes = 0;
  std::size_t dimms = 0;
  for (const std::string& path : run.shard_files) {
    file_bytes += std::filesystem::file_size(path);
    dimms += sim::TraceReader(path).dimm_count();
  }
  EXPECT_EQ(file_bytes, run.encoded_bytes);
  EXPECT_EQ(dimms, run.observed_dimms);
  std::filesystem::remove_all(store);
}

}  // namespace
}  // namespace memfp::core
