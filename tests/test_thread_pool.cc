#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace memfp {
namespace {

TEST(ThreadPool, StartStopIsClean) {
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
  }  // destructor joins without deadlock even when idle
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleThreadPoolRunsSubmitInline) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // no workers: synchronous
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPool, ParallelForZeroIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);
  // The pool is still usable after a failed section.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const auto sum = pool.parallel_reduce(
      n, std::uint64_t{0},
      [](std::size_t begin, std::size_t end) {
        std::uint64_t s = 0;
        for (std::size_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPool, ReduceFoldsChunksInOrder) {
  // String concatenation is non-commutative: any out-of-order fold would
  // scramble the digits. Run many times to give racy schedules a chance.
  ThreadPool pool(4);
  std::string expected;
  for (int i = 0; i < 26; ++i) expected += static_cast<char>('a' + i);
  for (int round = 0; round < 20; ++round) {
    const std::string got = pool.parallel_reduce(
        26, std::string{},
        [](std::size_t begin, std::size_t end) {
          std::string s;
          for (std::size_t i = begin; i < end; ++i) {
            s += static_cast<char>('a' + static_cast<int>(i));
          }
          return s;
        },
        [](std::string a, std::string b) { return a + b; },
        /*grain=*/3);
    EXPECT_EQ(got, expected);
  }
}

TEST(ThreadPool, ReduceIsIdenticalAcrossThreadCounts) {
  // Same chunking (grain fixed) => bit-identical floating-point sums.
  ThreadPool pool(4);
  const std::size_t n = 4096;
  const auto run = [&](int limit) {
    ThreadPool::ScopedLimit cap(limit);
    return pool.parallel_reduce(
        n, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += 1.0 / (1.0 + static_cast<double>(i));
          }
          return s;
        },
        [](double a, double b) { return a + b; },
        /*grain=*/64);
  };
  const double serial = run(1);
  const double wide = run(4);
  EXPECT_EQ(serial, wide);  // EXPECT_EQ, not NEAR: bit-identical
}

TEST(ThreadPool, ScopedLimitOneForcesCallerThread) {
  ThreadPool pool(4);
  ThreadPool::ScopedLimit cap(1);
  std::set<std::thread::id> ids;
  std::mutex mutex;
  pool.parallel_for(100, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, ScopedLimitRestoresOnExit) {
  EXPECT_EQ(ThreadPool::current_limit(), 0);
  {
    ThreadPool::ScopedLimit outer(2);
    EXPECT_EQ(ThreadPool::current_limit(), 2);
    {
      ThreadPool::ScopedLimit inner(1);
      EXPECT_EQ(ThreadPool::current_limit(), 1);
      ThreadPool::ScopedLimit noop(0);  // <= 0 leaves the cap unchanged
      EXPECT_EQ(ThreadPool::current_limit(), 1);
    }
    EXPECT_EQ(ThreadPool::current_limit(), 2);
  }
  EXPECT_EQ(ThreadPool::current_limit(), 0);
}

TEST(ThreadPool, NestedParallelSectionsDoNotDeadlock) {
  // Stress: every outer task opens an inner parallel section, so runner
  // tasks are submitted from worker threads (nested submission) while the
  // outer section is still draining.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(
        8,
        [&](std::size_t) {
          pool.parallel_for(
              64, [&](std::size_t) { count.fetch_add(1); }, /*grain=*/4);
        },
        /*grain=*/1);
  }
  EXPECT_EQ(count.load(), 10 * 8 * 64);
}

TEST(ThreadPool, NestedSubmissionFromTasks) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for(16, [&](std::size_t) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&inner] { inner.fetch_add(1); });
    }
  });
  // Fire-and-forget tasks are only guaranteed done once the pool drains.
  // Run a barriered section to flush, then destroy-free check via spin.
  while (inner.load() < 16 * 8) std::this_thread::yield();
  EXPECT_EQ(inner.load(), 16 * 8);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
  EXPECT_GE(ThreadPool::global().size(), 1);
}

TEST(ThreadPoolRng, IndexedForkDoesNotAdvanceParent) {
  Rng parent(42);
  Rng copy = parent;
  (void)parent.fork(0);
  (void)parent.fork(123456);
  // Parent stream untouched by const forks.
  EXPECT_EQ(parent.next(), copy.next());
}

TEST(ThreadPoolRng, IndexedForkIsOrderIndependent) {
  Rng a(7), b(7);
  Rng a0 = a.fork(0);
  Rng a1 = a.fork(1);
  Rng b1 = b.fork(1);  // forked before index 0
  Rng b0 = b.fork(0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a0.next(), b0.next());
    EXPECT_EQ(a1.next(), b1.next());
  }
}

TEST(ThreadPoolRng, IndexedForkStreamsAreDistinct) {
  Rng parent(99);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += c0.next() == c1.next();
  EXPECT_LT(equal, 4);  // adjacent indices decorrelated
  // Different parents give different children for the same index.
  Rng other(100);
  Rng d0 = other.fork(0);
  Rng e0 = Rng(99).fork(0);
  EXPECT_NE(d0.next(), e0.next());
}

}  // namespace
}  // namespace memfp
