#include "core/fault_analysis.h"

#include <gtest/gtest.h>

#include "sim/fleet.h"

namespace memfp::core {
namespace {

sim::DimmTrace trace_with_coords(
    const std::vector<dram::CellCoord>& coords, bool ue) {
  static dram::DimmId next_id = 0;
  sim::DimmTrace trace;
  trace.id = next_id++;
  SimTime t = days(1);
  for (const dram::CellCoord& coord : coords) {
    dram::CeEvent ce;
    ce.time = t;
    t += hours(1);
    ce.coord = coord;
    ce.pattern.add({static_cast<std::uint8_t>(coord.device * 4),
                    static_cast<std::uint8_t>(coord.column % 8)});
    trace.ces.push_back(ce);
  }
  if (ue) {
    trace.ue = dram::UeEvent{};
    trace.ue->time = t + days(1);
    trace.ue->had_prior_ce = true;
  }
  return trace;
}

TEST(FaultModeUeRates, CategorizesAndComputesRates) {
  sim::FleetTrace fleet;
  // Two row-fault DIMMs, one fails.
  fleet.dimms.push_back(trace_with_coords(
      {{0, 1, 2, 100, 10}, {0, 1, 2, 100, 20}}, true));
  fleet.dimms.push_back(trace_with_coords(
      {{0, 1, 2, 200, 10}, {0, 1, 2, 200, 20}}, false));
  // One cell-fault DIMM, healthy.
  fleet.dimms.push_back(trace_with_coords(
      {{0, 2, 3, 50, 5}, {0, 2, 3, 50, 5}}, false));

  const std::vector<FaultModeEntry> entries = fault_mode_ue_rates(fleet);
  const auto find = [&](const std::string& name) -> const FaultModeEntry& {
    for (const FaultModeEntry& e : entries) {
      if (e.category == name) return e;
    }
    throw std::logic_error("missing category " + name);
  };
  EXPECT_EQ(find("row").dimms, 2u);
  EXPECT_EQ(find("row").ue_dimms, 1u);
  EXPECT_DOUBLE_EQ(find("row").ue_rate, 0.5);
  EXPECT_EQ(find("cell").dimms, 1u);
  EXPECT_EQ(find("cell").ue_dimms, 0u);
  // Relative normalization: the max category sits at 1.0.
  double max_relative = 0.0;
  for (const FaultModeEntry& e : entries) {
    max_relative = std::max(max_relative, e.relative);
  }
  EXPECT_DOUBLE_EQ(max_relative, 1.0);
}

TEST(FaultModeUeRates, SkipsCeFreeDimms) {
  sim::FleetTrace fleet;
  sim::DimmTrace sudden;
  sudden.ue = dram::UeEvent{};
  fleet.dimms.push_back(sudden);
  const std::vector<FaultModeEntry> entries = fault_mode_ue_rates(fleet);
  for (const FaultModeEntry& e : entries) EXPECT_EQ(e.dimms, 0u);
}

TEST(BitPatternUeRates, GroupsByAccumulatedStats) {
  sim::FleetTrace fleet;
  // DIMM with accumulated 2 DQs / 2 beats / beat interval 4 -> fails.
  sim::DimmTrace risky;
  risky.id = 100;
  dram::CeEvent a;
  a.time = days(1);
  a.pattern.add({0, 0});
  dram::CeEvent b;
  b.time = days(2);
  b.pattern.add({1, 4});
  risky.ces = {a, b};
  risky.ue = dram::UeEvent{};
  risky.ue->time = days(3);
  risky.ue->had_prior_ce = true;
  fleet.dimms.push_back(risky);

  // DIMM with a single accumulated bit -> healthy.
  sim::DimmTrace narrow;
  narrow.id = 101;
  narrow.ces = {a};
  fleet.dimms.push_back(narrow);

  const std::vector<BitStatSeries> series = bit_pattern_ue_rates(fleet);
  ASSERT_EQ(series.size(), 4u);
  const BitStatSeries& dq = series[0];
  EXPECT_EQ(dq.stat, "error DQs");
  EXPECT_DOUBLE_EQ(dq.ue_rate[2], 1.0);  // the 2-DQ bucket
  EXPECT_DOUBLE_EQ(dq.ue_rate[1], 0.0);  // the 1-DQ bucket
  const BitStatSeries& beat_interval = series[3];
  EXPECT_DOUBLE_EQ(beat_interval.ue_rate[4], 1.0);
  EXPECT_EQ(beat_interval.peak_value(1), 4);
}

TEST(BitPatternUeRates, ClampsToMaxValue) {
  sim::FleetTrace fleet;
  sim::DimmTrace wide;
  wide.id = 1;
  dram::CeEvent ce;
  ce.time = days(1);
  for (std::uint8_t dq = 0; dq < 40; ++dq) ce.pattern.add({dq, 0});
  wide.ces = {ce};
  fleet.dimms.push_back(wide);
  const std::vector<BitStatSeries> series = bit_pattern_ue_rates(fleet, 8);
  EXPECT_EQ(series[0].dimms[8], 1u);  // clamped into the top bucket
}

// Integration: the simulated platforms reproduce the paper's Fig 4/5 shapes.
class AnalysisShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    purley_ = new sim::FleetTrace(
        sim::simulate_fleet(sim::purley_scenario().scaled(0.4)));
    whitley_ = new sim::FleetTrace(
        sim::simulate_fleet(sim::whitley_scenario().scaled(0.4)));
    k920_ = new sim::FleetTrace(
        sim::simulate_fleet(sim::k920_scenario().scaled(0.4)));
  }
  static void TearDownTestSuite() {
    delete purley_;
    delete whitley_;
    delete k920_;
  }
  static double relative(const std::vector<FaultModeEntry>& entries,
                         const std::string& name) {
    for (const FaultModeEntry& e : entries) {
      if (e.category == name) return e.relative;
    }
    return 0.0;
  }
  static sim::FleetTrace* purley_;
  static sim::FleetTrace* whitley_;
  static sim::FleetTrace* k920_;
};

sim::FleetTrace* AnalysisShapeTest::purley_ = nullptr;
sim::FleetTrace* AnalysisShapeTest::whitley_ = nullptr;
sim::FleetTrace* AnalysisShapeTest::k920_ = nullptr;

TEST_F(AnalysisShapeTest, Finding2FaultModeShapes) {
  // "The primary source of UEs on Purley is single-device faults; on
  // Whitley and K920, multi-device faults."
  const UeComposition purley_comp = ue_device_composition(*purley_);
  const UeComposition whitley_comp = ue_device_composition(*whitley_);
  const UeComposition k920_comp = ue_device_composition(*k920_);
  EXPECT_GT(purley_comp.single_device_share, 0.5);
  EXPECT_GT(whitley_comp.multi_device_share, 0.5);
  EXPECT_GT(k920_comp.multi_device_share, 0.5);
  EXPECT_GT(purley_comp.single_device_share,
            whitley_comp.single_device_share);

  // Within each platform: multi-device UE *rate* beats single-device on
  // Whitley/K920, and row/bank fault rates out-rank cell faults.
  const auto purley = fault_mode_ue_rates(*purley_);
  const auto whitley = fault_mode_ue_rates(*whitley_);
  const auto k920 = fault_mode_ue_rates(*k920_);
  EXPECT_GT(relative(whitley, "multi-device"),
            relative(whitley, "single-device"));
  EXPECT_GT(relative(k920, "multi-device"),
            relative(k920, "single-device"));
  for (const auto* fleet_entries : {&purley, &whitley, &k920}) {
    EXPECT_GT(relative(*fleet_entries, "row") +
                  relative(*fleet_entries, "bank"),
              relative(*fleet_entries, "cell"));
  }
}

TEST_F(AnalysisShapeTest, Finding3BitPatternPeaks) {
  const auto purley = bit_pattern_ue_rates(*purley_);
  // Purley: UE risk peaks at 2 error DQs, 2 error beats, beat interval 4.
  EXPECT_EQ(purley[0].peak_value(10), 2);   // error DQs
  EXPECT_EQ(purley[1].peak_value(10), 2);   // error beats
  EXPECT_GE(purley[3].peak_value(10), 4);   // beat interval

  const auto whitley = bit_pattern_ue_rates(*whitley_);
  // Whitley: wider patterns dominate (>= 4 DQs, >= 5 beats).
  EXPECT_GE(whitley[0].peak_value(10), 4);
  EXPECT_GE(whitley[1].peak_value(10), 5);
}

}  // namespace
}  // namespace memfp::core
