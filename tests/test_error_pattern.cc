#include "dram/error_pattern.h"

#include <gtest/gtest.h>

namespace memfp::dram {
namespace {

TEST(ErrorPattern, EmptyStats) {
  ErrorPattern p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.dq_count(), 0);
  EXPECT_EQ(p.beat_count(), 0);
  EXPECT_EQ(p.max_dq_interval(), 0);
  EXPECT_EQ(p.max_beat_interval(), 0);
  EXPECT_EQ(p.beat_span(), 0);
}

TEST(ErrorPattern, AddDeduplicates) {
  ErrorPattern p;
  p.add({3, 2});
  p.add({3, 2});
  EXPECT_EQ(p.bit_count(), 1u);
}

TEST(ErrorPattern, ConstructorSortsAndDeduplicates) {
  ErrorPattern p({{5, 1}, {2, 0}, {5, 1}});
  ASSERT_EQ(p.bit_count(), 2u);
  EXPECT_EQ(p.bits()[0], (ErrorBit{2, 0}));
  EXPECT_EQ(p.bits()[1], (ErrorBit{5, 1}));
}

TEST(ErrorPattern, CountsDistinctLanesAndBeats) {
  ErrorPattern p({{0, 0}, {0, 4}, {1, 0}});
  EXPECT_EQ(p.dq_count(), 2);
  EXPECT_EQ(p.beat_count(), 2);
}

TEST(ErrorPattern, IntervalsAreMaxAdjacentGaps) {
  ErrorPattern p({{0, 0}, {1, 0}, {5, 0}});
  EXPECT_EQ(p.max_dq_interval(), 4);  // gap between lanes 1 and 5
  ErrorPattern q({{0, 0}, {0, 2}, {0, 7}});
  EXPECT_EQ(q.max_beat_interval(), 5);  // gap between beats 2 and 7
}

TEST(ErrorPattern, SpansAreOuterDistances) {
  ErrorPattern p({{2, 1}, {6, 3}, {4, 6}});
  EXPECT_EQ(p.dq_span(), 4);
  EXPECT_EQ(p.beat_span(), 5);
}

TEST(ErrorPattern, SingleBitHasZeroIntervals) {
  ErrorPattern p({{7, 3}});
  EXPECT_EQ(p.max_dq_interval(), 0);
  EXPECT_EQ(p.max_beat_interval(), 0);
}

TEST(ErrorPattern, DeviceMapping) {
  const Geometry g = Geometry::ddr4_x4();
  ErrorPattern single({{0, 0}, {3, 1}});  // lanes 0-3 = device 0
  EXPECT_TRUE(single.single_device(g));
  EXPECT_EQ(single.device_count(g), 1);

  ErrorPattern multi({{0, 0}, {4, 0}});  // lane 4 = device 1
  EXPECT_FALSE(multi.single_device(g));
  const std::vector<int> expected{0, 1};
  EXPECT_EQ(multi.devices(g), expected);
}

TEST(ErrorPattern, MergeIsUnion) {
  ErrorPattern a({{0, 0}, {1, 1}});
  ErrorPattern b({{1, 1}, {2, 2}});
  a.merge(b);
  EXPECT_EQ(a.bit_count(), 3u);
}

TEST(ErrorPattern, MergeIsIdempotent) {
  ErrorPattern a({{0, 0}, {1, 1}});
  ErrorPattern copy = a;
  a.merge(copy);
  EXPECT_EQ(a, copy);
}

}  // namespace
}  // namespace memfp::dram
