// Flattened ensemble inference engine (src/ml/flat_ensemble.*): locks the
// pointer walker, the flat float path, the binned uint8 fast path and the
// batch-parallel path to bit-identical predictions via FNV-1a hashes over
// the raw score doubles, at 1/2/4 threads, through serialization
// round-trips, and on degenerate trees (single leaf, max-depth chains).
//
// The reference hash is always computed from the pointer walker
// (Tree::predict summed in tree order) — the pre-flat semantics every other
// path must reproduce exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/flat_ensemble.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace memfp::ml {
namespace {

std::uint64_t fnv1a64_u64(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the exact bit patterns of the scores: any single-ulp drift
/// anywhere in the batch changes the hash.
std::uint64_t hash_scores(const std::vector<double>& scores) {
  std::uint64_t h = 1469598103934665603ULL;
  for (double s : scores) h = fnv1a64_u64(h, std::bit_cast<std::uint64_t>(s));
  return h;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Mixed signal/noise columns, a low-cardinality categorical and non-unit
/// weights (same shape as the binned-layout golden generator).
Dataset make_data(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(16);
    for (float& v : row) v = static_cast<float>(rng.normal());
    row[5] = static_cast<float>(rng.uniform_u64(4));
    const bool positive = rng.bernoulli(0.3);
    if (positive) {
      row[2] += 1.5f;
      row[7] -= 2.0f;
    }
    d.y.push_back(positive ? 1 : 0);
    d.x.push_row(row);
    d.weight.push_back(i % 5 == 0 ? 2.5f : 1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  d.categorical.push_back(5);
  return d;
}

/// The pre-flat forest semantics: walk every pointer-linked tree per row.
std::vector<double> walker_forest(const RandomForest& model, const Matrix& x) {
  std::vector<double> scores;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double total = 0.0;
    for (const Tree& tree : model.trees()) total += tree.predict(x.row(r));
    scores.push_back(total / static_cast<double>(model.trees().size()));
  }
  return scores;
}

/// The pre-flat GBDT semantics; prior and shrinkage read back from the
/// serialized form (they are private).
std::vector<double> walker_gbdt(const Gbdt& model, const Matrix& x) {
  const Json json = model.to_json();
  const double base = json.at("base_score").as_number();
  const double lr = json.at("learning_rate").as_number();
  std::vector<double> scores;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double raw = base;
    for (const Tree& tree : model.trees()) {
      raw += lr * tree.predict(x.row(r));
    }
    scores.push_back(sigmoid(raw));
  }
  return scores;
}

RandomForest fitted_forest(const Dataset& d) {
  RandomForestParams params;
  params.trees = 25;
  RandomForest model(params);
  Rng rng(101);
  model.fit(d, rng);
  return model;
}

Gbdt fitted_gbdt(const Dataset& d) {
  GbdtParams params;
  params.max_rounds = 25;
  Gbdt model(params);
  Rng rng(202);
  model.fit(d, rng);
  return model;
}

TEST(FlatEnsemble, ForestBatchMatchesWalkerAtEveryThreadCount) {
  const Dataset d = make_data(900, 77);
  const RandomForest model = fitted_forest(d);
  const std::uint64_t golden = hash_scores(walker_forest(model, d.x));
  for (int threads : {1, 2, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    EXPECT_EQ(hash_scores(model.predict_batch(d.x)), golden)
        << "at " << threads << " threads";
  }
}

TEST(FlatEnsemble, GbdtBatchMatchesWalkerAtEveryThreadCount) {
  const Dataset d = make_data(900, 77);
  const Gbdt model = fitted_gbdt(d);
  const std::uint64_t golden = hash_scores(walker_gbdt(model, d.x));
  for (int threads : {1, 2, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    EXPECT_EQ(hash_scores(model.predict_batch(d.x)), golden)
        << "at " << threads << " threads";
  }
}

TEST(FlatEnsemble, SingleRowPredictMatchesWalker) {
  const Dataset d = make_data(400, 31);
  const RandomForest forest = fitted_forest(d);
  const Gbdt gbdt = fitted_gbdt(d);
  const std::vector<double> forest_ref = walker_forest(forest, d.x);
  const std::vector<double> gbdt_ref = walker_gbdt(gbdt, d.x);
  for (std::size_t r = 0; r < d.size(); ++r) {
    EXPECT_EQ(forest.predict(d.x.row(r)), forest_ref[r]);
    EXPECT_EQ(gbdt.predict(d.x.row(r)), gbdt_ref[r]);
  }
}

// The binned fast path must be *exact* on codes produced by the mapper the
// trees were trained through — this is the no-float-requantization-drift
// assertion behind the GBDT per-round rescoring.
TEST(FlatEnsemble, BinnedFastPathMatchesFloatPathOnTrainingCodes) {
  const Dataset d = make_data(700, 55);
  const BinnedDataset binned = BinnedDataset::build(d);
  const RandomForest forest = fitted_forest(d);
  const Gbdt gbdt = fitted_gbdt(d);
  const Json gbdt_json = gbdt.to_json();
  const double base = gbdt_json.at("base_score").as_number();
  const double lr = gbdt_json.at("learning_rate").as_number();

  FlatEnsemble flat_forest = FlatEnsemble::build(forest.trees());
  ASSERT_TRUE(flat_forest.bind(binned.mapper));
  FlatEnsemble flat_gbdt = FlatEnsemble::build(gbdt.trees(), lr);
  ASSERT_TRUE(flat_gbdt.bind(binned.mapper));

  std::vector<double> from_floats(d.size()), from_codes(d.size());
  for (int threads : {1, 2, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    flat_forest.predict(d.x, 0.0, from_floats);
    flat_forest.predict_binned(binned.codes.data(), binned.rows, 0.0,
                               from_codes);
    EXPECT_EQ(hash_scores(from_codes), hash_scores(from_floats))
        << "forest at " << threads << " threads";
    flat_gbdt.predict(d.x, base, from_floats);
    flat_gbdt.predict_binned(binned.codes.data(), binned.rows, base,
                             from_codes);
    EXPECT_EQ(hash_scores(from_codes), hash_scores(from_floats))
        << "gbdt at " << threads << " threads";
  }
}

TEST(FlatEnsemble, AccumulateAddsExactlyThePredictedSum) {
  const Dataset d = make_data(300, 21);
  const BinnedDataset binned = BinnedDataset::build(d);
  const Gbdt gbdt = fitted_gbdt(d);
  const double lr = gbdt.to_json().at("learning_rate").as_number();
  FlatEnsemble flat = FlatEnsemble::build(gbdt.trees(), lr);
  ASSERT_TRUE(flat.bind(binned.mapper));

  std::vector<double> predicted(d.size());
  flat.predict(d.x, 0.0, predicted);
  std::vector<double> accumulated(d.size(), 0.0);
  flat.accumulate(d.x, accumulated);
  EXPECT_EQ(hash_scores(accumulated), hash_scores(predicted));
  std::fill(accumulated.begin(), accumulated.end(), 0.0);
  flat.accumulate_binned(binned.codes.data(), binned.rows, accumulated);
  EXPECT_EQ(hash_scores(accumulated), hash_scores(predicted));
}

TEST(FlatEnsemble, SerializationRoundTripPredictsIdentically) {
  const Dataset d = make_data(500, 91);
  const RandomForest forest = fitted_forest(d);
  const Gbdt gbdt = fitted_gbdt(d);
  const RandomForest forest2 = RandomForest::from_json(forest.to_json());
  const Gbdt gbdt2 = Gbdt::from_json(gbdt.to_json());
  for (int threads : {1, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    EXPECT_EQ(hash_scores(forest2.predict_batch(d.x)),
              hash_scores(walker_forest(forest, d.x)));
    EXPECT_EQ(hash_scores(gbdt2.predict_batch(d.x)),
              hash_scores(walker_gbdt(gbdt, d.x)));
  }
  EXPECT_EQ(forest2.predict(d.x.row(7)), forest.predict(d.x.row(7)));
  EXPECT_EQ(gbdt2.predict(d.x.row(7)), gbdt.predict(d.x.row(7)));
}

TEST(FlatEnsemble, SingleLeafTreeNeedsNoFeatures) {
  Tree leaf;
  leaf.mutable_nodes().push_back({-1, 0.0f, -1, -1, 0.375});
  const FlatEnsemble flat = FlatEnsemble::build({&leaf, 1});
  EXPECT_EQ(flat.max_depth(), 0);
  // A pure-leaf ensemble never touches the feature row — even an empty one.
  EXPECT_EQ(flat.predict_row({}, 0.0), 0.375);
  const Matrix x(3, 0);
  std::vector<double> out(3, -1.0);
  flat.predict(x, 0.0, out);
  for (double v : out) EXPECT_EQ(v, 0.375);
}

TEST(FlatEnsemble, EmptyTreeAndEmptyEnsembleScoreLikeTheWalker) {
  const Tree empty;  // Tree::predict returns 0.0 on an empty node vector
  const FlatEnsemble flat = FlatEnsemble::build({&empty, 1});
  std::vector<float> row(4, 1.0f);
  EXPECT_EQ(flat.predict_row(row, 2.5), 2.5 + empty.predict(row));
  const FlatEnsemble none = FlatEnsemble::build({});
  EXPECT_EQ(none.predict_row(row, 1.25), 1.25);
  EXPECT_EQ(none.trees(), 0u);
}

/// A maximally skewed tree: `depth` internal nodes chained down the right
/// spine, each hanging one leaf off the left.
Tree chain_tree(int depth) {
  Tree tree;
  auto& nodes = tree.mutable_nodes();
  for (int k = 0; k < depth; ++k) {
    TreeNode node;
    node.feature = 0;
    node.threshold = -10.0f + 0.5f * static_cast<float>(k);
    node.left = depth + k;
    node.right = k + 1 < depth ? k + 1 : 2 * depth;
    nodes.push_back(node);
  }
  for (int k = 0; k <= depth; ++k) {
    nodes.push_back({-1, 0.0f, -1, -1, 0.125 * static_cast<double>(k) - 1.0});
  }
  return tree;
}

TEST(FlatEnsemble, MaxDepthChainMatchesWalkerLevelForLevel) {
  const Tree chain = chain_tree(200);
  const FlatEnsemble flat = FlatEnsemble::build({&chain, 1});
  EXPECT_EQ(flat.max_depth(), 200);
  Matrix x;
  for (float v = -12.0f; v <= 95.0f; v += 0.25f) {
    x.push_row(std::vector<float>{v});
  }
  std::vector<double> batch(x.rows());
  for (int threads : {1, 2, 4}) {
    ThreadPool::ScopedLimit cap(threads);
    flat.predict(x, 0.0, batch);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_EQ(batch[r], chain.predict(x.row(r))) << "row " << r;
      EXPECT_EQ(flat.predict_row(x.row(r), 0.0), chain.predict(x.row(r)));
    }
  }
}

TEST(FlatEnsemble, BindRejectsThresholdsTheMapperCannotRepresent) {
  // Mapper boundaries for integer-valued columns sit at k + 0.5; a chain
  // tree's -10 + 0.5k thresholds never coincide, so the exactness proof
  // fails and bind() must refuse rather than quantize with drift.
  Dataset d;
  Rng rng(5);
  for (std::size_t i = 0; i < 64; ++i) {
    d.x.push_row(std::vector<float>{static_cast<float>(rng.uniform_u64(10))});
    d.y.push_back(static_cast<int>(i % 2));
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  const BinnedDataset binned = BinnedDataset::build(d);
  const Tree chain = chain_tree(8);
  FlatEnsemble flat = FlatEnsemble::build({&chain, 1});
  EXPECT_FALSE(flat.bind(binned.mapper));
  EXPECT_FALSE(flat.binned());
}

TEST(FlatEnsemble, LazyCacheRebuildsAfterInvalidate) {
  const Dataset d = make_data(200, 8);
  LazyFlatEnsemble cache;
  const RandomForest model = fitted_forest(d);
  const auto first = cache.get(model.trees(), 1.0);
  const auto second = cache.get(model.trees(), 1.0);
  EXPECT_EQ(first.get(), second.get());  // shared compiled form
  cache.invalidate();
  const auto third = cache.get(model.trees(), 1.0);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(third->trees(), model.trees().size());
}

}  // namespace
}  // namespace memfp::ml
