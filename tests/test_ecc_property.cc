// Property tests over random error patterns: each platform scheme's verdict
// must match an independently restated predicate of its correction boundary,
// and the cross-scheme strength ordering must hold pattern-by-pattern.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/ecc.h"

namespace memfp::dram {
namespace {

const Geometry kX4 = Geometry::ddr4_x4();

ErrorPattern random_pattern(Rng& rng, int max_bits) {
  ErrorPattern p;
  const int bits = 1 + static_cast<int>(rng.uniform_u64(
                           static_cast<std::uint64_t>(max_bits)));
  for (int i = 0; i < bits; ++i) {
    p.add({static_cast<std::uint8_t>(rng.uniform_u64(
               static_cast<std::uint64_t>(kX4.total_dq()))),
           static_cast<std::uint8_t>(rng.uniform_u64(
               static_cast<std::uint64_t>(kX4.beats)))});
  }
  return p;
}

class EccPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EccPropertyTest, VerdictsMatchPredicates) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const PurleyEcc purley;
  const WhitleyEcc whitley;
  const ChipkillSddcEcc chipkill;
  for (int i = 0; i < 2000; ++i) {
    const ErrorPattern p = random_pattern(rng, GetParam());
    const bool multi = !p.single_device(kX4);
    const bool purley_weak =
        !multi && p.dq_count() >= 2 && p.beat_count() >= 2 && p.beat_span() >= 4;
    const bool whitley_wide =
        multi && p.dq_count() >= 4 && p.beat_count() >= 5;

    EXPECT_EQ(purley.classify(p, kX4) == EccVerdict::kUncorrected,
              multi || purley_weak);
    EXPECT_EQ(whitley.classify(p, kX4) == EccVerdict::kUncorrected,
              whitley_wide);
    EXPECT_EQ(chipkill.classify(p, kX4) == EccVerdict::kUncorrected, multi);

    // Strength ordering per pattern: whatever Whitley fails on, K920 fails
    // on too (wide multi-device is a subset of multi-device), and whatever
    // K920 fails on, Purley fails on too.
    if (whitley.classify(p, kX4) == EccVerdict::kUncorrected) {
      EXPECT_EQ(chipkill.classify(p, kX4), EccVerdict::kUncorrected);
    }
    if (chipkill.classify(p, kX4) == EccVerdict::kUncorrected) {
      EXPECT_EQ(purley.classify(p, kX4), EccVerdict::kUncorrected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitBudgets, EccPropertyTest,
                         ::testing::Values(2, 4, 8, 16));

TEST(EccProperty, VerdictInvariantUnderBitOrder) {
  Rng rng(99);
  const PurleyEcc ecc;
  for (int i = 0; i < 200; ++i) {
    const ErrorPattern p = random_pattern(rng, 6);
    // Re-add the bits in reverse order; the pattern (a set) must classify
    // identically.
    std::vector<ErrorBit> reversed(p.bits().rbegin(), p.bits().rend());
    const ErrorPattern q{std::move(reversed)};
    EXPECT_EQ(ecc.classify(p, kX4), ecc.classify(q, kX4));
  }
}

TEST(EccProperty, AddingBitsNeverImprovesVerdict) {
  // Monotonicity: a superset pattern can only stay equal or get worse.
  Rng rng(123);
  const auto rank = [](EccVerdict v) {
    return v == EccVerdict::kNoError ? 0 : v == EccVerdict::kCorrected ? 1 : 2;
  };
  for (Platform platform : {Platform::kIntelPurley, Platform::kIntelWhitley,
                            Platform::kK920}) {
    const auto ecc = make_platform_ecc(platform);
    for (int i = 0; i < 500; ++i) {
      ErrorPattern p = random_pattern(rng, 4);
      const int before = rank(ecc->classify(p, kX4));
      p.add({static_cast<std::uint8_t>(rng.uniform_u64(72)),
             static_cast<std::uint8_t>(rng.uniform_u64(8))});
      EXPECT_GE(rank(ecc->classify(p, kX4)), before)
          << platform_name(platform);
    }
  }
}

}  // namespace
}  // namespace memfp::dram
