// Determinism and behavior contract of the sharded serving engine
// (src/mlops/serving.h): with admission control off, scores, alarms and
// monitoring counters are byte-identical to the serial single-row oracle at
// every shard/thread/batch/queue configuration; admission control degrades
// and sheds under CE storms without ever touching ingestion. Suite names
// carry "Serving" so the TSan leg of tools/check.sh picks them up.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "ml/model.h"
#include "mlops/serving.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "sim/trace_store.h"

namespace memfp::mlops {
namespace {

/// Deterministic stand-in for a trained classifier: cheap, stateless, and
/// exercising every feature value, so a single flipped feature bit flips
/// the folded score hash.
class LinearStub final : public ml::BinaryClassifier {
 public:
  void fit(const ml::Dataset&, Rng&) override {}
  double predict(std::span<const float> features) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      s += static_cast<double>(i % 7 + 1) * static_cast<double>(features[i]);
    }
    return s / (1.0 + std::fabs(s));
  }
  std::string name() const override { return "linear-stub"; }
  Json to_json() const override { return Json::object(); }
};

/// Always returns the same score — used to probe the threshold edge.
class ConstantStub final : public ml::BinaryClassifier {
 public:
  explicit ConstantStub(double score) : score_(score) {}
  void fit(const ml::Dataset&, Rng&) override {}
  double predict(std::span<const float>) const override { return score_; }
  std::string name() const override { return "constant-stub"; }
  Json to_json() const override { return Json::object(); }

 private:
  double score_;
};

sim::ScenarioParams small_scenario() {
  // ~170 planned DIMMs: big enough that every shard in a 16-way split is
  // non-trivial, small enough for a sub-minute matrix on one core.
  return sim::purley_scenario(/*seed=*/99).scaled(0.04);
}

constexpr SimTime kStart = days(40);
constexpr SimTime kEnd = days(160);
constexpr SimDuration kCadence = days(3);
constexpr double kThreshold = 0.9;

struct RunResult {
  ServingStats stats;
  std::vector<Alarm> alarms;
  std::size_t monitored_predictions = 0;
  std::size_t monitored_alarms = 0;
};

enum class Path { kEngine, kReference, kStore };

RunResult run(const sim::FleetTrace& fleet, const ml::BinaryClassifier& model,
              const FeatureStore& store, ServingConfig config, Path path,
              const std::vector<std::string>& shard_files = {}) {
  AlarmSystem alarms;
  Monitoring monitoring;
  ServingEngine engine(model, kThreshold, store, alarms, monitoring,
                       std::move(config));
  RunResult result;
  switch (path) {
    case Path::kEngine:
      result.stats = engine.run_over(fleet, kStart, kEnd, kCadence);
      break;
    case Path::kReference:
      result.stats = engine.run_reference(fleet, kStart, kEnd, kCadence);
      break;
    case Path::kStore:
      result.stats = engine.run_over_store(shard_files, kStart, kEnd, kCadence);
      break;
  }
  result.alarms = alarms.alarms();
  result.monitored_predictions = monitoring.predictions();
  result.monitored_alarms = monitoring.alarms();
  return result;
}

void expect_identical(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.stats.score_hash, want.stats.score_hash);
  EXPECT_EQ(got.stats.alarm_hash, want.stats.alarm_hash);
  EXPECT_EQ(got.stats.scored, want.stats.scored);
  EXPECT_EQ(got.stats.alarms, want.stats.alarms);
  EXPECT_EQ(got.stats.dimms, want.stats.dimms);
  EXPECT_EQ(got.stats.ingested_ces, want.stats.ingested_ces);
  EXPECT_EQ(got.stats.ingested_events, want.stats.ingested_events);
  EXPECT_EQ(got.monitored_predictions, want.monitored_predictions);
  EXPECT_EQ(got.monitored_alarms, want.monitored_alarms);
  ASSERT_EQ(got.alarms.size(), want.alarms.size());
  for (std::size_t i = 0; i < got.alarms.size(); ++i) {
    EXPECT_EQ(got.alarms[i].dimm, want.alarms[i].dimm);
    EXPECT_EQ(got.alarms[i].time, want.alarms[i].time);
    EXPECT_EQ(got.alarms[i].score, want.alarms[i].score);
  }
}

TEST(ServingDeterminism, ShardAndThreadInvariant) {
  const sim::FleetTrace fleet = sim::simulate_fleet(small_scenario());
  const LinearStub model;
  const FeatureStore store;
  const RunResult reference = run(fleet, model, store, {}, Path::kReference);
  ASSERT_GT(reference.stats.scored, 0u);
  ASSERT_GT(reference.stats.alarms, 0u);  // alarm replay ordering exercised
  ASSERT_LT(reference.stats.alarms, reference.stats.dimms);

  for (const std::size_t shards : {1, 4, 16}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE(testing::Message()
                   << shards << " shards, " << threads << " threads");
      ServingConfig config;
      config.shards = shards;
      config.num_threads = threads;
      expect_identical(run(fleet, model, store, config, Path::kEngine),
                       reference);
    }
  }
}

TEST(ServingDeterminism, BatchSizeImmaterial) {
  const sim::FleetTrace fleet = sim::simulate_fleet(small_scenario());
  const LinearStub model;
  const FeatureStore store;
  const RunResult reference = run(fleet, model, store, {}, Path::kReference);

  for (const std::size_t batch_rows : {1, 3, 64, 1024}) {
    SCOPED_TRACE(testing::Message() << batch_rows << "-row batches");
    ServingConfig config;
    config.shards = 4;
    config.batch_rows = batch_rows;
    expect_identical(run(fleet, model, store, config, Path::kEngine),
                     reference);
  }
}

TEST(ServingDeterminism, StorePathMatchesInMemory) {
  const sim::FleetTrace fleet = sim::simulate_fleet(small_scenario());
  const LinearStub model;
  const FeatureStore store;
  const RunResult reference = run(fleet, model, store, {}, Path::kReference);

  // Spill the fleet into 3 contiguous id-range shard files, the layout the
  // fleet driver's trace store produces.
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_serving_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::size_t n = fleet.dimms.size();
  constexpr std::size_t kFiles = 3;
  std::vector<std::string> files;
  for (std::size_t s = 0; s < kFiles; ++s) {
    files.push_back(sim::shard_path(dir.string(), s));
    sim::ShardWriter writer(files.back(), fleet.platform, fleet.horizon);
    for (std::size_t i = s * n / kFiles; i < (s + 1) * n / kFiles; ++i) {
      writer.append(fleet.dimms[i]);
    }
    writer.finish();
  }

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    ServingConfig config;
    config.num_threads = threads;
    expect_identical(run(fleet, model, store, config, Path::kStore, files),
                     reference);
  }
  std::filesystem::remove_all(dir);
}

TEST(ServingBackpressure, BoundedQueueStallsWithoutDivergence) {
  const sim::FleetTrace fleet = sim::simulate_fleet(small_scenario());
  const LinearStub model;
  const FeatureStore store;
  const RunResult reference = run(fleet, model, store, {}, Path::kReference);

  ServingConfig config;
  config.shards = 4;
  config.queue_capacity = 2;  // absurdly tight: force constant drains
  const RunResult tight = run(fleet, model, store, config, Path::kEngine);
  EXPECT_GT(tight.stats.queue_stalls, 0u);
  EXPECT_LE(tight.stats.peak_queue_depth, 2u);
  // Backpressure is a memory bound, not a semantic switch.
  expect_identical(tight, reference);

  // A roomy queue stalls far less (the first tick still drains the whole
  // pre-start backlog) and is allowed to run much deeper.
  ServingConfig roomy;
  roomy.shards = 4;
  const RunResult loose = run(fleet, model, store, roomy, Path::kEngine);
  EXPECT_LT(loose.stats.queue_stalls, tight.stats.queue_stalls / 10);
  EXPECT_GT(loose.stats.peak_queue_depth, 2u);
}

/// A fleet where a few DIMMs emit CE storms (hundreds of events per cadence
/// tick) and the rest trickle — the admission-control scenario.
sim::FleetTrace storm_fleet() {
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kIntelPurley;
  fleet.horizon = days(200);
  for (dram::DimmId id = 0; id < 12; ++id) {
    sim::DimmTrace dimm;
    dimm.id = id;
    const bool stormy = id % 4 == 0;  // DIMMs 0, 4, 8 storm
    const int per_tick = stormy ? 200 : 1;
    for (SimTime t = kStart; t <= kEnd; t += kCadence) {
      for (int k = 0; k < per_tick; ++k) {
        dram::CeEvent ce;
        ce.time = t - kCadence + 1 + k % (kCadence - 1);
        ce.coord.bank = static_cast<int>(id) % 16;
        ce.coord.row = k % 512;
        ce.coord.column = (k / 512) % 64;
        ce.pattern.add({static_cast<std::uint8_t>(k % 4), 0});
        dimm.ces.push_back(ce);
      }
    }
    fleet.dimms.push_back(std::move(dimm));
  }
  return fleet;
}

TEST(ServingAdmission, StormDimmsDegradeAndShed) {
  const sim::FleetTrace fleet = storm_fleet();
  const ConstantStub model(0.1);  // never alarms: every DIMM keeps scoring
  const FeatureStore store;

  ServingConfig off;
  off.shards = 2;
  const RunResult baseline = run(fleet, model, store, off, Path::kEngine);
  EXPECT_EQ(baseline.stats.shed_scores, 0u);
  EXPECT_EQ(baseline.stats.degraded_dimms, 0u);

  ServingConfig on = off;
  on.admission.enabled = true;
  on.admission.tokens_per_tick = 8.0;
  on.admission.bucket_capacity = 64.0;
  on.admission.degraded_stride = 4;

  AlarmSystem alarms;
  Monitoring monitoring;
  ServingEngine engine(model, kThreshold, store, alarms, monitoring, on);
  const ServingStats stats = engine.run_over(fleet, kStart, kEnd, kCadence);

  // The 3 storm DIMMs drain their buckets and degrade; the trickle DIMMs
  // never do. Ingestion is untouched — only scoring cadence degrades.
  EXPECT_EQ(stats.degraded_dimms, 3u);
  EXPECT_GT(stats.shed_scores, 0u);
  EXPECT_EQ(stats.ingested_ces, baseline.stats.ingested_ces);
  EXPECT_LT(stats.scored, baseline.stats.scored);
  // Shed decisions land in the monitoring counters.
  EXPECT_EQ(monitoring.shed_scores(), stats.shed_scores);
  EXPECT_EQ(monitoring.degraded_dimms(), stats.degraded_dimms);
  EXPECT_EQ(monitoring.overload_ticks(), stats.overload_ticks);
}

TEST(ServingAdmission, OverloadTicksShedDegradedDimmsEntirely) {
  const sim::FleetTrace fleet = storm_fleet();
  const ConstantStub model(0.1);
  const FeatureStore store;

  ServingConfig config;
  config.shards = 1;
  config.admission.enabled = true;
  config.admission.tokens_per_tick = 8.0;
  config.admission.bucket_capacity = 64.0;
  config.admission.degraded_stride = 1;  // stride alone would shed nothing
  config.admission.shard_overload_events = 100;  // every storm tick overloads

  AlarmSystem alarms;
  Monitoring monitoring;
  ServingEngine engine(model, kThreshold, store, alarms, monitoring, config);
  const ServingStats stats = engine.run_over(fleet, kStart, kEnd, kCadence);
  EXPECT_GT(stats.overload_ticks, 0u);
  EXPECT_GT(stats.shed_scores, 0u);  // shed only via the overload rule
}

TEST(ServingThresholdEdge, ScoreEqualToThresholdAlarmsOnBothPaths) {
  // A score exactly equal to threshold() must alarm, and identically so on
  // the one-shot (score_row) and streaming (run_over) paths.
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kIntelPurley;
  fleet.horizon = days(200);
  sim::DimmTrace dimm;
  dimm.id = 7;
  dram::CeEvent ce;
  ce.time = kStart - days(1);
  ce.pattern.add({3, 0});
  dimm.ces.push_back(ce);
  fleet.dimms.push_back(dimm);

  const ConstantStub model(kThreshold);  // score == threshold exactly
  const FeatureStore store;

  AlarmSystem one_shot_alarms;
  Monitoring one_shot_monitoring;
  ServingEngine one_shot(model, kThreshold, store, one_shot_alarms,
                         one_shot_monitoring, {});
  const std::optional<double> score =
      one_shot.score_row(dimm.id, kStart, store.serve(dimm, kStart));
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ(*score, kThreshold);

  AlarmSystem streaming_alarms;
  Monitoring streaming_monitoring;
  ServingEngine streaming(model, kThreshold, store, streaming_alarms,
                          streaming_monitoring, {});
  streaming.run_over(fleet, kStart, kEnd, kCadence);

  ASSERT_EQ(one_shot_alarms.alarms().size(), 1u);
  ASSERT_EQ(streaming_alarms.alarms().size(), 1u);
  EXPECT_EQ(one_shot_alarms.alarms()[0].dimm, 7u);
  EXPECT_EQ(streaming_alarms.alarms()[0].dimm, 7u);
  EXPECT_EQ(one_shot_alarms.alarms()[0].time, kStart);
  EXPECT_EQ(streaming_alarms.alarms()[0].time, kStart);
  EXPECT_EQ(one_shot_alarms.alarms()[0].score, kThreshold);
  EXPECT_EQ(streaming_alarms.alarms()[0].score, kThreshold);
  EXPECT_EQ(one_shot_monitoring.alarms(), 1u);
  EXPECT_EQ(streaming_monitoring.alarms(), 1u);
}

TEST(ServingThresholdEdge, EmptyWindowIsNulloptNotZero) {
  const ConstantStub model(0.0);  // a genuine score of 0.0
  const FeatureStore store;
  AlarmSystem alarms;
  Monitoring monitoring;
  ServingEngine engine(model, kThreshold, store, alarms, monitoring, {});

  sim::DimmTrace dimm;
  dimm.id = 1;
  dram::CeEvent ce;
  ce.time = days(50);
  ce.pattern.add({0, 0});
  dimm.ces.push_back(ce);

  // Before the first CE the observation window is empty: nothing to score.
  EXPECT_EQ(engine.score_row(dimm.id, days(10), store.serve(dimm, days(10))),
            std::nullopt);
  EXPECT_EQ(monitoring.predictions(), 0u);
  // After it, the score is a real value — which happens to be 0.0 here, and
  // must not be confused with "no score".
  const std::optional<double> score =
      engine.score_row(dimm.id, days(51), store.serve(dimm, days(51)));
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ(*score, 0.0);
  EXPECT_EQ(monitoring.predictions(), 1u);
}

TEST(ServingShardMap, MatchesContiguousRangesAndCoversFleet) {
  for (const std::size_t total : {1u, 7u, 97u, 1000u}) {
    for (const std::size_t shards : {1u, 3u, 16u, 1000u}) {
      SCOPED_TRACE(testing::Message() << total << " DIMMs, " << shards
                                      << " shards");
      std::size_t prev = 0;
      for (std::size_t i = 0; i < total; ++i) {
        const std::size_t s = serving_shard_of(i, total, shards);
        ASSERT_LT(s, shards);
        // Consistent with the contiguous range rule begin(s) = s*total/shards.
        ASSERT_GE(i, s * total / shards);
        ASSERT_LT(i, (s + 1) * total / shards);
        ASSERT_GE(s, prev);  // monotone: ranges are contiguous
        prev = s;
      }
    }
  }
}

}  // namespace
}  // namespace memfp::mlops
