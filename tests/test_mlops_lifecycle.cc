// Integration test of the full MLOps loop (paper Fig 6): ingest -> train via
// CI/CD -> gated promote -> online prediction -> alarms + feedback ->
// monitoring. Uses a small fleet so it stays inside unit-test budgets.
#include <gtest/gtest.h>

#include "mlops/cicd.h"
#include "mlops/online_service.h"
#include "sim/fleet.h"

namespace memfp::mlops {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet_ = new sim::FleetTrace(
        sim::simulate_fleet(sim::purley_scenario().scaled(0.12)));
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }
  static sim::FleetTrace* fleet_;
};

sim::FleetTrace* LifecycleTest::fleet_ = nullptr;

TEST_F(LifecycleTest, EndToEndLoop) {
  DataLake lake;
  lake.ingest("bmc/purley/h1", *fleet_);
  EXPECT_GT(lake.record_count(), 1000u);

  // CI/CD: train + benchmark + register + promote.
  ModelRegistry registry;
  TrainingPipelineConfig config;
  config.algorithm = core::Algorithm::kLightGbm;
  const TrainingRunReport report =
      run_training_pipeline(lake, "bmc/purley/h1", registry, config);
  EXPECT_TRUE(report.promoted);
  ASSERT_NE(registry.production(dram::Platform::kIntelPurley), nullptr);

  // Online serving over the tail of the horizon.
  FeatureStore store;
  AlarmSystem alarms;
  Monitoring monitoring;
  OnlinePredictionService service(registry, dram::Platform::kIntelPurley,
                                  store, alarms, monitoring);
  ASSERT_TRUE(service.ready());
  monitoring.record_ingest(lake.record_count());
  service.run_over(*fleet_, days(100), days(160), days(5));
  EXPECT_GT(monitoring.predictions(), 0u);

  // Feedback loop: alarms joined with later ground truth.
  service.apply_feedback(*fleet_);
  const MitigationReport mitigation =
      account_mitigations(*fleet_, alarms, store.windows());
  // The loop is wired: alarms are coalesced per DIMM, and every alarmed DIMM
  // is accounted as exactly one true or false positive.
  EXPECT_EQ(mitigation.true_positives + mitigation.false_positives,
            alarms.alarms().size());
  EXPECT_NE(monitoring.dashboard().find("online precision"),
            std::string::npos);
}

TEST_F(LifecycleTest, GateHoldsWorseRetrain) {
  DataLake lake;
  lake.ingest("bmc/purley/h1", *fleet_);
  ModelRegistry registry;

  TrainingPipelineConfig strong;
  strong.algorithm = core::Algorithm::kLightGbm;
  const TrainingRunReport first =
      run_training_pipeline(lake, "bmc/purley/h1", registry, strong);
  ASSERT_TRUE(first.promoted);
  const double incumbent_f1 =
      registry.production(dram::Platform::kIntelPurley)->benchmark_f1;

  // A crippled retrain (static features only) must not displace the
  // incumbent through the gate.
  TrainingPipelineConfig weak;
  weak.algorithm = core::Algorithm::kLightGbm;
  weak.pipeline.active_features =
      features::FeatureSchema::standard().group_indices(
          features::FeatureGroup::kStatic);
  const TrainingRunReport second =
      run_training_pipeline(lake, "bmc/purley/h1", registry, weak);
  EXPECT_LT(second.evaluation.f1, incumbent_f1);
  EXPECT_FALSE(second.promoted);
  EXPECT_EQ(registry.production(dram::Platform::kIntelPurley)->version,
            first.version);
}

TEST_F(LifecycleTest, RuleBaselineIsNotDeployable) {
  DataLake lake;
  lake.ingest("p", *fleet_);
  ModelRegistry registry;
  TrainingPipelineConfig config;
  config.algorithm = core::Algorithm::kRiskyCePattern;
  EXPECT_THROW(run_training_pipeline(lake, "p", registry, config),
               std::invalid_argument);
}

TEST_F(LifecycleTest, ServiceWithoutProductionModelIsNotReady) {
  ModelRegistry registry;
  FeatureStore store;
  AlarmSystem alarms;
  Monitoring monitoring;
  OnlinePredictionService service(registry, dram::Platform::kK920, store,
                                  alarms, monitoring);
  EXPECT_FALSE(service.ready());
  // Scoring is a no-op rather than a crash, and "nothing to score" is
  // distinguishable from a genuine 0.0 score.
  EXPECT_EQ(service.score_dimm(fleet_->dimms.front(), days(10)), std::nullopt);
}

}  // namespace
}  // namespace memfp::mlops
