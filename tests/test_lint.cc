// Tests for the in-tree analyzer (tools/lint): every rule must fire on its
// violation fixture, stay silent on the clean fixture, and respect an
// allow() suppression with a justification. The fixtures live in raw
// strings, which also exercises the scrubber: when memfp_lint walks the real
// tree it lints THIS file, and none of the snippets below may leak out of
// their literals.
#include "lint_core.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace memfp::lint {
namespace {

std::vector<std::string> rules_found(std::string_view path,
                                     std::string_view source) {
  std::vector<std::string> rules;
  for (const Violation& v : lint_source(path, source)) {
    rules.push_back(v.rule);
  }
  return rules;
}

int count_rule(const std::vector<std::string>& rules,
               const std::string& rule) {
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

// ---------------------------------------------------------------------------
// unseeded-random
// ---------------------------------------------------------------------------

TEST(LintUnseededRandom, FiresOnEveryBannedSource) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    int draw() { return rand() % 6; }
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    std::mt19937 gen(42);
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    std::random_device rd;
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void reseed() { srand(7); }
  )cc"),
                       "unseeded-random"),
            1);
}

TEST(LintUnseededRandom, SilentOnCleanCodeAndProjectRng) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    double draw(memfp::Rng& rng) { return rng.uniform(); }
    int spread(int operand) { return operand; }  // 'rand' inside a word
  )cc")
                  .empty());
  // The sanctioned implementation file is exempt.
  EXPECT_TRUE(rules_found("src/common/rng.cc", R"cc(
    std::uint64_t splitmix64_not_mt19937_but_exempt = rand();
  )cc")
                  .empty());
}

TEST(LintUnseededRandom, AppliesInTestsAndBench) {
  EXPECT_EQ(count_rule(rules_found("tests/test_x.cc", R"cc(
    std::mt19937 gen;
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("bench/bench_x.cc", R"cc(
    std::random_device rd;
  )cc"),
                       "unseeded-random"),
            1);
}

TEST(LintUnseededRandom, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    // memfp-lint: allow(unseeded-random): seeding study needs raw entropy
    std::random_device rd;
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

TEST(LintWallClock, FiresOnClockReads) {
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    auto t0 = std::chrono::steady_clock::now();
  )cc"),
                       "wall-clock"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    std::time_t stamp = time(nullptr);
  )cc"),
                       "wall-clock"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    long ticks = clock();
  )cc"),
                       "wall-clock"),
            1);
}

TEST(LintWallClock, SilentOnSimTimeAndMembers) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    SimTime due = sample.time + windows.lead;
    bool late(const Sample& s) { return s.time > due; }
  )cc")
                  .empty());
}

TEST(LintWallClock, ScopedToSrcOnly) {
  // Benches and tests may time things; the contract covers library code.
  EXPECT_TRUE(rules_found("bench/bench_x.cc", R"cc(
    auto t0 = std::chrono::steady_clock::now();
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FiresOnRangeForOverUnorderedContainer) {
  const auto rules = rules_found("src/features/x.cc", R"cc(
    std::unordered_map<std::uint64_t, int> counts;
    void tally(std::vector<int>& out) {
      for (const auto& [key, count] : counts) out.push_back(count);
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, TracksCommaSeparatedDeclarators) {
  const auto rules = rules_found("src/features/x.cc", R"cc(
    std::unordered_map<int, int> neg, pos;
    int sum() {
      int total = 0;
      for (const auto& [k, v] : pos) total += v;
      return total;
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, SilentOnOrderedContainersAndIndexLoops) {
  EXPECT_TRUE(rules_found("src/features/x.cc", R"cc(
    std::map<std::uint64_t, int> counts;
    std::unordered_map<std::uint64_t, int> hist;
    void tally(std::vector<int>& out) {
      for (const auto& [key, count] : counts) out.push_back(count);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += 1;
    }
  )cc")
                  .empty());
}

TEST(LintUnorderedIter, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/features/x.cc", R"cc(
    std::unordered_map<std::uint64_t, int> counts;
    int max_count() {
      int best = 0;
      // memfp-lint: allow(unordered-iter): max() is order-independent
      for (const auto& [key, count] : counts) best = std::max(best, count);
      return best;
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// bare-assert
// ---------------------------------------------------------------------------

TEST(LintBareAssert, FiresInLibraryCode) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    void f(int n) { assert(n > 0); }
  )cc"),
                       "bare-assert"),
            1);
}

TEST(LintBareAssert, SilentOnCheckMacrosStaticAssertAndTests) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(int n) {
      MEMFP_CHECK(n > 0) << "need rows";
      static_assert(sizeof(int) == 4);
    }
  )cc")
                  .empty());
  // gtest's ASSERT_* family and test-local assert() are out of scope.
  EXPECT_TRUE(rules_found("tests/test_x.cc", R"cc(
    void f(int n) { assert(n > 0); }
  )cc")
                  .empty());
}

TEST(LintBareAssert, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert): constexpr context, CHECK cannot run
    void f(int n) { assert(n > 0); }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(LintNakedNew, FiresOnNewAndDelete) {
  const auto rules = rules_found("src/core/x.cc", R"cc(
    void f() {
      int* p = new int(7);
      delete p;
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "naked-new"), 2);
}

TEST(LintNakedNew, SilentOnSmartPointersAndDeletedFunctions) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    struct Pool {
      Pool(const Pool&) = delete;
      Pool& operator=(const Pool&) = delete;
      std::unique_ptr<int> slot = std::make_unique<int>(7);
      int renewals = 0;  // 'new' inside a word
    };
  )cc")
                  .empty());
}

TEST(LintNakedNew, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    void* grab(std::size_t n) {
      // memfp-lint: allow(naked-new): arena handroll measured in BENCH.md
      return new char[n];
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// thread-spawn
// ---------------------------------------------------------------------------

TEST(LintThreadSpawn, FiresOutsideThePool) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void f() { std::thread worker([] {}); worker.join(); }
  )cc"),
                       "thread-spawn"),
            1);
}

TEST(LintThreadSpawn, SilentOnPoolFileAndNonSpawnUses) {
  EXPECT_TRUE(rules_found("src/common/thread_pool.cc", R"cc(
    std::thread worker([] {});
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    unsigned hw = std::thread::hardware_concurrency();
    std::set<std::thread::id> ids;
  )cc")
                  .empty());
}

TEST(LintThreadSpawn, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    // memfp-lint: allow(thread-spawn): watchdog must outlive the pool
    std::thread watchdog([] {});
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(LintPragmaOnce, FiresOnGuardlessHeader) {
  EXPECT_EQ(count_rule(rules_found("src/dram/x.h", R"cc(
    struct Coord { int row; int column; };
  )cc"),
                       "pragma-once"),
            1);
}

TEST(LintPragmaOnce, SilentWithGuardAndOnSourceFiles) {
  EXPECT_TRUE(rules_found("src/dram/x.h", R"cc(
    #pragma once
    struct Coord { int row; int column; };
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/dram/x.cc", R"cc(
    static int local = 0;
  )cc")
                  .empty());
}

TEST(LintPragmaOnce, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/dram/x.h", R"cc(
    // memfp-lint: allow(pragma-once): generated multi-include x-macro header
    struct Coord { int row; };
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// banned-include
// ---------------------------------------------------------------------------

TEST(LintBannedInclude, FiresOnBannedHeaders) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <random>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <cassert>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <ctime>
  )cc"),
                       "banned-include"),
            1);
}

TEST(LintBannedInclude, IostreamBannedInHeadersOnly) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.h", R"cc(
    #pragma once
    #include <iostream>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include <iostream>
  )cc")
                  .empty());
}

TEST(LintBannedInclude, SilentOnAllowedHeaders) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include <algorithm>
    #include <vector>
    #include "common/check.h"
  )cc")
                  .empty());
}

TEST(LintBannedInclude, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(banned-include): bridging to a vendored API
    #include <ctime>
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// arch-intrinsics
// ---------------------------------------------------------------------------

TEST(LintArchIntrinsics, FiresOnIntrinsicHeaders) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <immintrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <emmintrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/features/x.cc", R"cc(
    #include <arm_neon.h>
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, FiresOnRawIntrinsicsAndVectorTypes) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    __m256d acc = _mm256_setzero_pd();
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    void f(double* p) { _mm512_storeu_pd(p, _mm512_setzero_pd()); }
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    float32x4_t v = vld1q_f32(ptr);
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, AppliesInTestsAndBench) {
  EXPECT_EQ(count_rule(rules_found("tests/test_x.cc", R"cc(
    __m128i block = _mm_setzero_si128();
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("bench/bench_x.cc", R"cc(
    #include <x86intrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, SimdSeamIsExempt) {
  // The per-lane kernel TUs and headers under src/common/simd* are the one
  // sanctioned home for raw intrinsics.
  EXPECT_TRUE(rules_found("src/common/simd_kernels_avx512.cc", R"cc(
    #include <immintrin.h>
    __m512d z = _mm512_setzero_pd();
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/common/simd_kernels_neon.cc", R"cc(
    #include <arm_neon.h>
    float64x2_t v = vld1q_f64(p);
  )cc")
                  .empty());
}

TEST(LintArchIntrinsics, SilentOnDispatchApiUse) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include "common/simd.h"
    void f() { const memfp::simd::KernelTable& kt = memfp::simd::kernels(); }
    int summed(int s) { return s; }  // 'mm' inside words stays clean
  )cc")
                  .empty());
}

TEST(LintArchIntrinsics, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(arch-intrinsics): one-off diagnostic harness
    __m128d w = _mm_setzero_pd();
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppression mechanics
// ---------------------------------------------------------------------------

TEST(LintSuppressions, SameLineCommentAlsoSuppresses) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(int n) { assert(n); }  // memfp-lint: allow(bare-assert): hot loop
  )cc")
                  .empty());
}

TEST(LintSuppressions, MissingJustificationIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert)
    void f(int n) { assert(n > 0); }
  )cc");
  EXPECT_EQ(count_rule(rules, "missing-justification"), 1);
  // And the waiver does not take effect.
  EXPECT_EQ(count_rule(rules, "bare-assert"), 1);
}

TEST(LintSuppressions, UnknownRuleIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(no-such-rule): whatever
    int x = 0;
  )cc");
  EXPECT_EQ(count_rule(rules, "unknown-rule"), 1);
}

TEST(LintSuppressions, UnusedAllowIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert): nothing here actually asserts
    int x = 0;
  )cc");
  EXPECT_EQ(count_rule(rules, "unused-allow"), 1);
}

TEST(LintSuppressions, AllowOnlyCoversItsOwnRule) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(naked-new): wrong rule for this line
    void f(int n) { assert(n > 0); }
  )cc");
  EXPECT_EQ(count_rule(rules, "bare-assert"), 1);
  EXPECT_EQ(count_rule(rules, "unused-allow"), 1);
}

// ---------------------------------------------------------------------------
// Scrubber: literals and comments never trigger rules
// ---------------------------------------------------------------------------

TEST(LintScrubber, CommentsAndStringsAreInvisible) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // calling rand() here would be bad; so would new int
    /* std::thread t; assert(false); */
    const char* doc = "use std::mt19937 and rand() and new and delete";
  )cc")
                  .empty());
}

TEST(LintScrubber, RawStringsAreInvisible) {
  // Mirrors this very file: fixture code embedded in a raw string must not
  // fire when the tree walk lints the test itself.
  const std::string nested = std::string("const char* fixture = R\"(") +
                             "assert(1); std::thread t; new int;" + ")\";";
  EXPECT_TRUE(rules_found("src/ml/x.cc", nested).empty());
}

TEST(LintScrubber, ViolationCarriesFileLineAndRule) {
  const auto violations = lint_source("src/ml/x.cc",
                                      "int a = 0;\n"
                                      "int* p = new int(3);\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/ml/x.cc");
  EXPECT_EQ(violations[0].line, 2);
  EXPECT_EQ(violations[0].rule, "naked-new");
}

TEST(LintFormat, OneLinePerViolation) {
  const auto violations = lint_source("src/ml/x.cc", "int* p = new int;\n");
  const std::string text = format(violations);
  EXPECT_NE(text.find("src/ml/x.cc:1: [naked-new]"), std::string::npos);
}

// The catalog the suppression parser accepts must cover every rule the
// engine can emit (meta rules excluded — they are never suppressible).
TEST(LintRules, CatalogIsComplete) {
  const std::vector<std::string> expected = {
      "unseeded-random", "wall-clock",     "unordered-iter",
      "bare-assert",     "naked-new",      "thread-spawn",
      "pragma-once",     "banned-include", "arch-intrinsics"};
  EXPECT_EQ(rule_names(), expected);
}

}  // namespace
}  // namespace memfp::lint
