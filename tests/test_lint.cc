// Tests for the in-tree analyzer (tools/lint): every rule must fire on its
// violation fixture, stay silent on the clean fixture, and respect an
// allow() suppression with a justification. The fixtures live in raw
// strings, which also exercises the lexer: when memfp_lint walks the real
// tree it lints THIS file, and none of the snippets below may leak out of
// their literals. Cross-TU rules (layering, cross-file unordered-iter) are
// driven through lint_files() with multi-file fixture sets, and the
// self-hosting test at the bottom lints the real checkout.
#include "lint_core.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace memfp::lint {
namespace {

std::vector<std::string> rules_found(std::string_view path,
                                     std::string_view source) {
  std::vector<std::string> rules;
  for (const Violation& v : lint_source(path, source)) {
    rules.push_back(v.rule);
  }
  return rules;
}

int count_rule(const std::vector<std::string>& rules,
               const std::string& rule) {
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

// ---------------------------------------------------------------------------
// unseeded-random
// ---------------------------------------------------------------------------

TEST(LintUnseededRandom, FiresOnEveryBannedSource) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    int draw() { return rand() % 6; }
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    std::mt19937 gen(42);
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    std::random_device rd;
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void reseed() { srand(7); }
  )cc"),
                       "unseeded-random"),
            1);
}

TEST(LintUnseededRandom, SilentOnCleanCodeAndProjectRng) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    double draw(memfp::Rng& rng) { return rng.uniform(); }
    int spread(int operand) { return operand; }  // 'rand' inside a word
  )cc")
                  .empty());
  // The sanctioned implementation file is exempt.
  EXPECT_TRUE(rules_found("src/common/rng.cc", R"cc(
    std::uint64_t splitmix64_not_mt19937_but_exempt = rand();
  )cc")
                  .empty());
}

TEST(LintUnseededRandom, AppliesInTestsAndBench) {
  EXPECT_EQ(count_rule(rules_found("tests/test_x.cc", R"cc(
    std::mt19937 gen;
  )cc"),
                       "unseeded-random"),
            1);
  EXPECT_EQ(count_rule(rules_found("bench/bench_x.cc", R"cc(
    std::random_device rd;
  )cc"),
                       "unseeded-random"),
            1);
}

TEST(LintUnseededRandom, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    // memfp-lint: allow(unseeded-random): seeding study needs raw entropy
    std::random_device rd;
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

TEST(LintWallClock, FiresOnClockReads) {
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    auto t0 = std::chrono::steady_clock::now();
  )cc"),
                       "wall-clock"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    std::time_t stamp = time(nullptr);
  )cc"),
                       "wall-clock"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/core/x.cc", R"cc(
    long ticks = clock();
  )cc"),
                       "wall-clock"),
            1);
}

TEST(LintWallClock, SilentOnSimTimeAndMembers) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    SimTime due = sample.time + windows.lead;
    bool late(const Sample& s) { return s.time > due; }
  )cc")
                  .empty());
}

TEST(LintWallClock, ScopedToSrcOnly) {
  // Benches and tests may time things; the contract covers library code.
  EXPECT_TRUE(rules_found("bench/bench_x.cc", R"cc(
    auto t0 = std::chrono::steady_clock::now();
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FiresOnRangeForOverUnorderedContainer) {
  const auto rules = rules_found("src/features/x.cc", R"cc(
    std::unordered_map<std::uint64_t, int> counts;
    void tally(std::vector<int>& out) {
      for (const auto& [key, count] : counts) out.push_back(count);
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, TracksCommaSeparatedDeclarators) {
  const auto rules = rules_found("src/features/x.cc", R"cc(
    std::unordered_map<int, int> neg, pos;
    int sum() {
      int total = 0;
      for (const auto& [k, v] : pos) total += v;
      return total;
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, SilentOnOrderedContainersAndIndexLoops) {
  EXPECT_TRUE(rules_found("src/features/x.cc", R"cc(
    std::map<std::uint64_t, int> counts;
    std::unordered_map<std::uint64_t, int> hist;
    void tally(std::vector<int>& out) {
      for (const auto& [key, count] : counts) out.push_back(count);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += 1;
    }
  )cc")
                  .empty());
}

TEST(LintUnorderedIter, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/features/x.cc", R"cc(
    std::unordered_map<std::uint64_t, int> counts;
    int max_count() {
      int best = 0;
      // memfp-lint: allow(unordered-iter): max() is order-independent
      for (const auto& [key, count] : counts) best = std::max(best, count);
      return best;
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// bare-assert
// ---------------------------------------------------------------------------

TEST(LintBareAssert, FiresInLibraryCode) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    void f(int n) { assert(n > 0); }
  )cc"),
                       "bare-assert"),
            1);
}

TEST(LintBareAssert, SilentOnCheckMacrosStaticAssertAndTests) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(int n) {
      MEMFP_CHECK(n > 0) << "need rows";
      static_assert(sizeof(int) == 4);
    }
  )cc")
                  .empty());
  // gtest's ASSERT_* family and test-local assert() are out of scope.
  EXPECT_TRUE(rules_found("tests/test_x.cc", R"cc(
    void f(int n) { assert(n > 0); }
  )cc")
                  .empty());
}

TEST(LintBareAssert, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert): constexpr context, CHECK cannot run
    void f(int n) { assert(n > 0); }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(LintNakedNew, FiresOnNewAndDelete) {
  const auto rules = rules_found("src/core/x.cc", R"cc(
    void f() {
      int* p = new int(7);
      delete p;
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "naked-new"), 2);
}

TEST(LintNakedNew, SilentOnSmartPointersAndDeletedFunctions) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    struct Pool {
      Pool(const Pool&) = delete;
      Pool& operator=(const Pool&) = delete;
      std::unique_ptr<int> slot = std::make_unique<int>(7);
      int renewals = 0;  // 'new' inside a word
    };
  )cc")
                  .empty());
}

TEST(LintNakedNew, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/core/x.cc", R"cc(
    void* grab(std::size_t n) {
      // memfp-lint: allow(naked-new): arena handroll measured in BENCH.md
      return new char[n];
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// thread-spawn
// ---------------------------------------------------------------------------

TEST(LintThreadSpawn, FiresOutsideThePool) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void f() { std::thread worker([] {}); worker.join(); }
  )cc"),
                       "thread-spawn"),
            1);
}

TEST(LintThreadSpawn, SilentOnPoolFileAndNonSpawnUses) {
  EXPECT_TRUE(rules_found("src/common/thread_pool.cc", R"cc(
    std::thread worker([] {});
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    unsigned hw = std::thread::hardware_concurrency();
    std::set<std::thread::id> ids;
  )cc")
                  .empty());
}

TEST(LintThreadSpawn, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    // memfp-lint: allow(thread-spawn): watchdog must outlive the pool
    std::thread watchdog([] {});
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(LintPragmaOnce, FiresOnGuardlessHeader) {
  EXPECT_EQ(count_rule(rules_found("src/dram/x.h", R"cc(
    struct Coord { int row; int column; };
  )cc"),
                       "pragma-once"),
            1);
}

TEST(LintPragmaOnce, SilentWithGuardAndOnSourceFiles) {
  EXPECT_TRUE(rules_found("src/dram/x.h", R"cc(
    #pragma once
    struct Coord { int row; int column; };
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/dram/x.cc", R"cc(
    static int local = 0;
  )cc")
                  .empty());
}

TEST(LintPragmaOnce, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/dram/x.h", R"cc(
    // memfp-lint: allow(pragma-once): generated multi-include x-macro header
    struct Coord { int row; };
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// banned-include
// ---------------------------------------------------------------------------

TEST(LintBannedInclude, FiresOnBannedHeaders) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <random>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <cassert>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <ctime>
  )cc"),
                       "banned-include"),
            1);
}

TEST(LintBannedInclude, IostreamBannedInHeadersOnly) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.h", R"cc(
    #pragma once
    #include <iostream>
  )cc"),
                       "banned-include"),
            1);
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include <iostream>
  )cc")
                  .empty());
}

TEST(LintBannedInclude, SilentOnAllowedHeaders) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include <algorithm>
    #include <vector>
    #include "common/check.h"
  )cc")
                  .empty());
}

TEST(LintBannedInclude, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(banned-include): bridging to a vendored API
    #include <ctime>
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// arch-intrinsics
// ---------------------------------------------------------------------------

TEST(LintArchIntrinsics, FiresOnIntrinsicHeaders) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <immintrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    #include <emmintrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/features/x.cc", R"cc(
    #include <arm_neon.h>
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, FiresOnRawIntrinsicsAndVectorTypes) {
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    __m256d acc = _mm256_setzero_pd();
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    void f(double* p) { _mm512_storeu_pd(p, _mm512_setzero_pd()); }
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("src/ml/x.cc", R"cc(
    float32x4_t v = vld1q_f32(ptr);
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, AppliesInTestsAndBench) {
  EXPECT_EQ(count_rule(rules_found("tests/test_x.cc", R"cc(
    __m128i block = _mm_setzero_si128();
  )cc"),
                       "arch-intrinsics"),
            1);
  EXPECT_EQ(count_rule(rules_found("bench/bench_x.cc", R"cc(
    #include <x86intrin.h>
  )cc"),
                       "arch-intrinsics"),
            1);
}

TEST(LintArchIntrinsics, SimdSeamIsExempt) {
  // The per-lane kernel TUs and headers under src/common/simd* are the one
  // sanctioned home for raw intrinsics.
  EXPECT_TRUE(rules_found("src/common/simd_kernels_avx512.cc", R"cc(
    #include <immintrin.h>
    __m512d z = _mm512_setzero_pd();
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/common/simd_kernels_neon.cc", R"cc(
    #include <arm_neon.h>
    float64x2_t v = vld1q_f64(p);
  )cc")
                  .empty());
}

TEST(LintArchIntrinsics, SilentOnDispatchApiUse) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include "common/simd.h"
    void f() { const memfp::simd::KernelTable& kt = memfp::simd::kernels(); }
    int summed(int s) { return s; }  // 'mm' inside words stays clean
  )cc")
                  .empty());
}

TEST(LintArchIntrinsics, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(arch-intrinsics): one-off diagnostic harness
    __m128d w = _mm_setzero_pd();
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// layering (cross-TU: the module DAG is machine-checked)
// ---------------------------------------------------------------------------

TEST(LintLayering, FiresOnUpwardInclude) {
  const auto violations =
      lint_source("src/sim/x.cc", "#include \"ml/model.h\"\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "layering");
  EXPECT_NE(violations[0].message.find("climbs the module DAG"),
            std::string::npos);
}

TEST(LintLayering, FiresOnServingShapedUpwardInclude) {
  // The serving engine lives in mlops (layer 4). A lower layer reaching up
  // for it — say ml grabbing the engine to score "in place" — is exactly
  // the inversion the DAG exists to block: ml is what serving serves.
  const auto violations =
      lint_source("src/ml/x.cc", "#include \"mlops/serving.h\"\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "layering");
  EXPECT_NE(violations[0].message.find("climbs the module DAG"),
            std::string::npos);
  EXPECT_NE(violations[0].message.find("mlops"), std::string::npos);
}

TEST(LintLayering, FiresOnUnsanctionedSiblingInclude) {
  const auto rules = rules_found("src/sim/x.cc",
                                 "#include \"features/extractor.h\"\n");
  EXPECT_EQ(count_rule(rules, "layering"), 1);
}

TEST(LintLayering, SilentOnDownwardAndSanctionedLateralIncludes) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    #include "common/check.h"
    #include "features/extractor.h"
    #include "ml/model.h"
  )cc")
                  .empty());
  // The four sanctioned lateral edges.
  EXPECT_TRUE(
      rules_found("src/features/x.cc", "#include \"sim/trace.h\"\n")
          .empty());
  EXPECT_TRUE(
      rules_found("src/core/x.cc", "#include \"baseline/risky_ce_pattern.h\"\n")
          .empty());
  EXPECT_TRUE(
      rules_found("src/mlops/x.cc", "#include \"core/pipeline.h\"\n").empty());
  EXPECT_TRUE(
      rules_found("src/core/x.cc", "#include \"mlops/alarm.h\"\n").empty());
}

TEST(LintLayering, CampaignEngineEdgesAreSanctioned) {
  // The campaign engine's include shape: core reaching down to sim/ml and
  // laterally into mlops for the policy-accounting headers must all pass.
  EXPECT_TRUE(rules_found("src/core/campaign.cc", R"cc(
    #include "core/campaign.h"
    #include "core/stage_cache.h"
    #include "ml/metrics.h"
    #include "mlops/alarm.h"
    #include "sim/dimm_sim.h"
    #include "sim/page_offline.h"
    #include "sim/trace_store.h"
  )cc")
                  .empty());
}

TEST(LintLayering, CoreMlopsEdgeDoesNotOpenTheWholeLayer) {
  // core->mlops is sanctioned; the other sibling pairs in layer 4 are not.
  const auto violations =
      lint_source("src/baseline/x.cc", "#include \"mlops/alarm.h\"\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "layering");
  EXPECT_NE(violations[0].message.find("core->mlops"), std::string::npos);
  EXPECT_EQ(
      lint_source("src/mlops/x.cc", "#include \"baseline/risky_ce_pattern.h\"\n")
          .size(),
      1u);
}

TEST(LintLayering, FiresOnUnknownModule) {
  const auto violations = lint_source("src/telemetry/x.cc", "int x = 0;\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "layering");
  EXPECT_NE(violations[0].message.find("not in the layering DAG"),
            std::string::npos);
}

TEST(LintLayering, ReportsIncludeCyclesWithTheChain) {
  const auto violations = lint_files({
      {"src/dram/a.h", "#pragma once\n#include \"dram/b.h\"\n"},
      {"src/dram/b.h", "#pragma once\n#include \"dram/a.h\"\n"},
  });
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "layering");
  EXPECT_NE(violations[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(violations[0].message.find(
                "src/dram/a.h -> src/dram/b.h -> src/dram/a.h"),
            std::string::npos);
}

TEST(LintLayering, ScopedToSrcAndSuppressible) {
  // Tests may include anything.
  EXPECT_TRUE(rules_found("tests/test_x.cc", R"cc(
    #include "ml/model.h"
    #include "sim/fleet.h"
  )cc")
                  .empty());
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    // memfp-lint: allow(layering): transitional edge, removal in ROADMAP
    #include "ml/model.h"
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// unordered-iter, cross-file (the symbol table crosses the include DAG)
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, SeesMembersDeclaredInTransitiveHeaders) {
  const auto violations = lint_files({
      {"src/features/bank.h",
       "#pragma once\n"
       "struct BankState { std::unordered_map<int, int> rows; };\n"},
      {"src/features/state.h",
       "#pragma once\n"
       "#include \"features/bank.h\"\n"
       "struct State { BankState bank; };\n"},
      {"src/features/use.cc",
       "#include \"features/state.h\"\n"
       "int f(const State& s) {\n"
       "  int t = 0;\n"
       "  for (const auto& [k, v] : s.bank.rows) t += v;\n"
       "  return t;\n"
       "}\n"},
  });
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/features/use.cc");
  EXPECT_EQ(violations[0].rule, "unordered-iter");
  // The diagnostic names the declaring header, two includes away.
  EXPECT_NE(violations[0].message.find("src/features/bank.h:2"),
            std::string::npos);
}

TEST(LintUnorderedIter, BareNameBindsWithinModuleOnly) {
  // Same module: a bare member name declared in the module's header fires.
  EXPECT_EQ(lint_files({
                {"src/features/state.h",
                 "#pragma once\n"
                 "struct S { std::unordered_set<int> devices_seen_; };\n"},
                {"src/features/use.cc",
                 "#include \"features/state.h\"\n"
                 "int S_count() {\n"
                 "  int t = 0;\n"
                 "  for (int d : devices_seen_) t += d;\n"
                 "  return t;\n"
                 "}\n"},
            })
                .size(),
            1u);
  // Another module's bare local with a colliding name does not: only
  // member access (s.rows / s->rows) binds across module boundaries.
  EXPECT_TRUE(lint_files({
                  {"src/features/state.h",
                   "#pragma once\n"
                   "struct S { std::unordered_set<int> rows; };\n"},
                  {"src/ml/use.cc",
                   "#include \"features/state.h\"\n"
                   "int f(const std::vector<int>& rows) {\n"
                   "  int t = 0;\n"
                   "  for (int v : rows) t += v;\n"
                   "  return t;\n"
                   "}\n"},
              })
                  .empty());
}

// ---------------------------------------------------------------------------
// parallel-capture
// ---------------------------------------------------------------------------

TEST(LintParallelCapture, FiresOnSharedAccumulatorWrite) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    void f(std::vector<double>& out) {
      double total = 0.0;
      ThreadPool::global().parallel_for(out.size(), [&](std::size_t i) {
        total += out[i];
      });
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "parallel-capture"), 1);
}

TEST(LintParallelCapture, FiresOnPushBackToSharedVector) {
  const auto rules = rules_found("src/features/x.cc", R"cc(
    void gather(std::vector<int>& hits) {
      ThreadPool::global().parallel_for_chunks(
          0, 100, [&](std::size_t begin, std::size_t end) {
            hits.push_back(static_cast<int>(begin));
          });
    }
  )cc");
  EXPECT_EQ(count_rule(rules, "parallel-capture"), 1);
}

TEST(LintParallelCapture, SilentOnIndexedSlotsAndLocals) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(std::vector<double>& out, const std::vector<double>& in) {
      ThreadPool::global().parallel_for(out.size(), [&](std::size_t i) {
        double acc = 0.0;
        acc += in[i];
        out[i] = acc;
      });
    }
  )cc")
                  .empty());
}

TEST(LintParallelCapture, SilentOutsideParallelBodies) {
  // The same shape in a plain lambda is just serial code.
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(const std::vector<double>& in) {
      double total = 0.0;
      std::for_each(in.begin(), in.end(), [&](double v) { total += v; });
    }
  )cc")
                  .empty());
}

TEST(LintParallelCapture, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(std::vector<double>& out, double& total) {
      ThreadPool::global().parallel_for(out.size(), [&](std::size_t i) {
        // memfp-lint: allow(parallel-capture): slot is mutex-guarded
        total += out[i];
      });
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

TEST(LintRngDiscipline, FiresOnByValueParameter) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    double jitter(Rng rng, double scale);
  )cc"),
                       "rng-discipline"),
            1);
}

TEST(LintRngDiscipline, FiresOnPlainCopy) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void f(Rng& parent) {
      Rng child = parent;
      child.next();
    }
  )cc"),
                       "rng-discipline"),
            1);
}

TEST(LintRngDiscipline, FiresOnConstructionInParallelBody) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void f(std::vector<double>& out, std::uint64_t seed) {
      ThreadPool::global().parallel_for(out.size(), [&, seed](std::size_t i) {
        Rng task_rng(seed + i);
        out[i] = task_rng.uniform();
      });
    }
  )cc"),
                       "rng-discipline"),
            1);
}

TEST(LintRngDiscipline, FiresOnDiscardedFork) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void burn(Rng& rng) {
      rng.fork();
    }
  )cc"),
                       "rng-discipline"),
            1);
}

TEST(LintRngDiscipline, FiresOnValueCapturedRng) {
  EXPECT_EQ(count_rule(rules_found("src/sim/x.cc", R"cc(
    void f(Rng& parent) {
      Rng master = parent.fork(0);
      auto draw = [master]() mutable { return master.uniform(); };
      draw();
    }
  )cc"),
                       "rng-discipline"),
            1);
}

TEST(LintRngDiscipline, SilentOnForkedStreamsAndReferences) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    double jitter(Rng& rng, double scale) { return rng.uniform() * scale; }
    void f(std::vector<double>& out, Rng& base) {
      Rng child = base.fork(7);
      ThreadPool::global().parallel_for(out.size(), [&](std::size_t i) {
        Rng task_rng = base.fork(i);
        out[i] = task_rng.uniform();
      });
      auto draw = [rng = child.fork(1)]() mutable { return rng.uniform(); };
      out[0] += draw();
    }
  )cc")
                  .empty());
  // The Rng implementation itself is exempt.
  EXPECT_TRUE(rules_found("src/common/rng.cc", R"cc(
    Rng copy = other;
  )cc")
                  .empty());
}

TEST(LintRngDiscipline, SuppressedWithJustification) {
  EXPECT_TRUE(rules_found("src/sim/x.cc", R"cc(
    void f(const PlannedDimm& job) {
      // memfp-lint: allow(rng-discipline): job is const; sole advancing copy
      Rng dimm_rng = job.rng;
      dimm_rng.next();
    }
  )cc")
                  .empty());
}

// ---------------------------------------------------------------------------
// Project graph: include resolution, reachability, DOT emission
// ---------------------------------------------------------------------------

TEST(LintGraph, DotIsDeterministicAndClusteredByModule) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"src/ml/a.h", "#pragma once\n"},
      {"src/common/b.h", "#pragma once\n"},
      {"src/ml/c.cc", "#include \"ml/a.h\"\n#include \"common/b.h\"\n"},
  };
  const std::string forward = ProjectGraph::build(sources).to_dot();
  std::reverse(sources.begin(), sources.end());
  const std::string reversed = ProjectGraph::build(sources).to_dot();
  EXPECT_EQ(forward, reversed);  // byte-identical for any input order
  EXPECT_NE(forward.find("cluster_common"), std::string::npos);
  EXPECT_NE(forward.find("cluster_ml"), std::string::npos);
  EXPECT_NE(forward.find("->"), std::string::npos);
}

TEST(LintGraph, ReachabilityIsTransitive) {
  const ProjectGraph graph = ProjectGraph::build({
      {"src/common/a.h", "#pragma once\n"},
      {"src/dram/b.h", "#pragma once\n#include \"common/a.h\"\n"},
      {"src/sim/c.cc", "#include \"dram/b.h\"\n"},
  });
  const int c = graph.find("src/sim/c.cc");
  ASSERT_GE(c, 0);
  const std::vector<int> seen = graph.reachable(c);
  ASSERT_EQ(seen.size(), 2u);  // b.h directly, a.h transitively
  EXPECT_EQ(graph.files()[static_cast<std::size_t>(seen[0])].path,
            "src/common/a.h");
  EXPECT_EQ(graph.files()[static_cast<std::size_t>(seen[1])].path,
            "src/dram/b.h");
}

// ---------------------------------------------------------------------------
// Suppression mechanics
// ---------------------------------------------------------------------------

TEST(LintSuppressions, SameLineCommentAlsoSuppresses) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    void f(int n) { assert(n); }  // memfp-lint: allow(bare-assert): hot loop
  )cc")
                  .empty());
}

TEST(LintSuppressions, MissingJustificationIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert)
    void f(int n) { assert(n > 0); }
  )cc");
  EXPECT_EQ(count_rule(rules, "missing-justification"), 1);
  // And the waiver does not take effect.
  EXPECT_EQ(count_rule(rules, "bare-assert"), 1);
}

TEST(LintSuppressions, UnknownRuleIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(no-such-rule): whatever
    int x = 0;
  )cc");
  EXPECT_EQ(count_rule(rules, "unknown-rule"), 1);
}

TEST(LintSuppressions, UnusedAllowIsAViolation) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(bare-assert): nothing here actually asserts
    int x = 0;
  )cc");
  EXPECT_EQ(count_rule(rules, "unused-allow"), 1);
}

TEST(LintSuppressions, AllowOnlyCoversItsOwnRule) {
  const auto rules = rules_found("src/ml/x.cc", R"cc(
    // memfp-lint: allow(naked-new): wrong rule for this line
    void f(int n) { assert(n > 0); }
  )cc");
  EXPECT_EQ(count_rule(rules, "bare-assert"), 1);
  EXPECT_EQ(count_rule(rules, "unused-allow"), 1);
}

TEST(LintSuppressions, UnusedAllowsForCrossTuRulesAreFlagged) {
  for (const char* rule : {"layering", "parallel-capture", "rng-discipline",
                           "unordered-iter"}) {
    const auto rules = rules_found(
        "src/ml/x.cc", std::string("// memfp-lint: allow(") + rule +
                           "): stale waiver\nint x = 0;\n");
    EXPECT_EQ(count_rule(rules, "unused-allow"), 1) << rule;
  }
}

// ---------------------------------------------------------------------------
// Scrubber: literals and comments never trigger rules
// ---------------------------------------------------------------------------

TEST(LintScrubber, CommentsAndStringsAreInvisible) {
  EXPECT_TRUE(rules_found("src/ml/x.cc", R"cc(
    // calling rand() here would be bad; so would new int
    /* std::thread t; assert(false); */
    const char* doc = "use std::mt19937 and rand() and new and delete";
  )cc")
                  .empty());
}

TEST(LintScrubber, RawStringsAreInvisible) {
  // Mirrors this very file: fixture code embedded in a raw string must not
  // fire when the tree walk lints the test itself.
  const std::string nested = std::string("const char* fixture = R\"(") +
                             "assert(1); std::thread t; new int;" + ")\";";
  EXPECT_TRUE(rules_found("src/ml/x.cc", nested).empty());
}

TEST(LintScrubber, ViolationCarriesFileLineColAndRule) {
  const auto violations = lint_source("src/ml/x.cc",
                                      "int a = 0;\n"
                                      "int* p = new int(3);\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/ml/x.cc");
  EXPECT_EQ(violations[0].line, 2);
  EXPECT_EQ(violations[0].col, 10);
  EXPECT_EQ(violations[0].rule, "naked-new");
}

TEST(LintFormat, CompilerStyleOneLinePerViolation) {
  const auto violations = lint_source("src/ml/x.cc", "int* p = new int;\n");
  const std::string text = format(violations);
  EXPECT_NE(text.find("src/ml/x.cc:1:10: [naked-new]"), std::string::npos);
}

// The catalog the suppression parser accepts must cover every rule the
// engine can emit (meta rules excluded — they are never suppressible).
TEST(LintRules, CatalogIsComplete) {
  const std::vector<std::string> expected = {
      "unseeded-random", "wall-clock",       "unordered-iter",
      "bare-assert",     "naked-new",        "thread-spawn",
      "pragma-once",     "banned-include",   "arch-intrinsics",
      "layering",        "parallel-capture", "rng-discipline"};
  EXPECT_EQ(rule_names(), expected);
}

// ---------------------------------------------------------------------------
// Self-hosting: the real checkout must lint clean
// ---------------------------------------------------------------------------

#ifdef MEMFP_LINT_SELF_HOST_ROOT
TEST(LintSelfHost, RepoTreeIsClean) {
  const auto violations = lint_tree(MEMFP_LINT_SELF_HOST_ROOT);
  EXPECT_TRUE(violations.empty()) << "\n" << format(violations);
}
#endif

}  // namespace
}  // namespace memfp::lint
