#include "baseline/risky_ce_pattern.h"

#include <gtest/gtest.h>

namespace memfp::baseline {
namespace {

sim::DimmTrace make_trace(dram::Manufacturer manufacturer) {
  sim::DimmTrace trace;
  trace.config.manufacturer = manufacturer;
  return trace;
}

void add_ce(sim::DimmTrace& trace, SimTime t, std::uint8_t dq,
            std::uint8_t beat) {
  dram::CeEvent ce;
  ce.time = t;
  ce.pattern.add({dq, beat});
  trace.ces.push_back(ce);
}

void add_ue(sim::DimmTrace& trace, SimTime t) {
  dram::UeEvent ue;
  ue.time = t;
  ue.had_prior_ce = !trace.ces.empty();
  trace.ue = ue;
}

TEST(PatternRule, MatchesAccumulatedShape) {
  PatternRule rule{2, 2, 4, 1};
  dram::ErrorPattern risky({{0, 0}, {1, 4}});
  EXPECT_TRUE(rule.matches(risky, 10));
  dram::ErrorPattern narrow({{0, 0}, {1, 1}});
  EXPECT_FALSE(rule.matches(narrow, 10));
  // CE-count gate.
  PatternRule gated{1, 1, 0, 100};
  EXPECT_FALSE(gated.matches(risky, 10));
  EXPECT_TRUE(gated.matches(risky, 100));
}

TEST(RiskyCePattern, FiresWhenDeviceMapTurnsRisky) {
  // Train: one failing DIMM that accumulates the wide 2-DQ shape before its
  // UE, one healthy DIMM with a narrow shape.
  sim::DimmTrace failing = make_trace(dram::Manufacturer::kA);
  add_ce(failing, days(1), 0, 0);
  add_ce(failing, days(2), 1, 5);  // device 0, span 5
  add_ue(failing, days(10));

  sim::DimmTrace healthy = make_trace(dram::Manufacturer::kA);
  add_ce(healthy, days(1), 8, 2);
  add_ce(healthy, days(2), 8, 3);  // single lane

  RiskyCePattern model;
  model.fit({&failing, &healthy}, days(60));

  const auto alarm = model.first_alarm(failing);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(*alarm, days(2));  // the CE that completed the risky shape
  EXPECT_FALSE(model.first_alarm(healthy).has_value());
}

TEST(RiskyCePattern, RulesAreSeparatePerManufacturer) {
  // Manufacturer A fails via the wide shape; manufacturer B's wide shapes
  // are harmless (its failures are elsewhere). The mined rules must differ
  // in effect.
  std::vector<sim::DimmTrace> traces;
  for (int i = 0; i < 6; ++i) {
    sim::DimmTrace t = make_trace(dram::Manufacturer::kA);
    add_ce(t, days(1), 0, 0);
    add_ce(t, days(2), 1, 5);
    if (i < 4) add_ue(t, days(5));  // mostly failing
    traces.push_back(std::move(t));
  }
  for (int i = 0; i < 6; ++i) {
    sim::DimmTrace t = make_trace(dram::Manufacturer::kB);
    add_ce(t, days(1), 4, 0);
    add_ce(t, days(2), 5, 5);  // same shape, never fails
    traces.push_back(std::move(t));
  }
  std::vector<const sim::DimmTrace*> pointers;
  for (const auto& t : traces) pointers.push_back(&t);

  RiskyCePattern model;
  model.fit(pointers, days(60));
  ASSERT_TRUE(model.rules().count(dram::Manufacturer::kA));
  ASSERT_TRUE(model.rules().count(dram::Manufacturer::kB));
  // A's rule should fire on A's risky DIMMs.
  EXPECT_TRUE(model.first_alarm(traces[0]).has_value());
}

TEST(RiskyCePattern, UnknownManufacturerNeverFires) {
  sim::DimmTrace a = make_trace(dram::Manufacturer::kA);
  add_ce(a, days(1), 0, 0);
  add_ue(a, days(5));
  RiskyCePattern model;
  model.fit({&a}, days(60));

  sim::DimmTrace d = make_trace(dram::Manufacturer::kD);
  add_ce(d, days(1), 0, 0);
  add_ce(d, days(2), 1, 5);
  EXPECT_FALSE(model.first_alarm(d).has_value());
}

TEST(RiskyCePattern, PerDeviceAccumulation) {
  // Bits on two different devices must not combine into one risky map.
  sim::DimmTrace cross = make_trace(dram::Manufacturer::kA);
  add_ce(cross, days(1), 0, 0);   // device 0
  add_ce(cross, days(2), 5, 5);   // device 1

  sim::DimmTrace same = make_trace(dram::Manufacturer::kA);
  add_ce(same, days(1), 0, 0);
  add_ce(same, days(2), 1, 5);
  add_ue(same, days(6));

  RiskyCePattern model;
  model.fit({&cross, &same}, days(60));
  EXPECT_TRUE(model.first_alarm(same).has_value());
  EXPECT_FALSE(model.first_alarm(cross).has_value());
}

}  // namespace
}  // namespace memfp::baseline
