#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"

namespace memfp::ml {
namespace {

/// XOR-ish: y = 1 iff (x0 > 0.5) xor (x1 > 0.5). Not linearly separable;
/// a single stump cannot solve it.
Dataset xor_dataset(std::size_t n, Rng& rng, double noise = 0.0) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform());
    const float x1 = static_cast<float>(rng.uniform());
    int y = (x0 > 0.5f) != (x1 > 0.5f) ? 1 : 0;
    if (noise > 0.0 && rng.bernoulli(noise)) y = 1 - y;
    d.x.push_row(std::vector<float>{x0, x1});
    d.y.push_back(y);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

double accuracy(const BinaryClassifier& model, const Dataset& d) {
  int correct = 0;
  for (std::size_t r = 0; r < d.size(); ++r) {
    correct += (model.predict(d.x.row(r)) > 0.5) == (d.y[r] == 1);
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

TEST(RandomForest, LearnsXor) {
  Rng rng(1);
  const Dataset train = xor_dataset(1500, rng);
  const Dataset test = xor_dataset(500, rng);
  RandomForest model;
  model.fit(train, rng);
  EXPECT_GT(accuracy(model, test), 0.9);
}

TEST(RandomForest, ProbabilitiesInUnitInterval) {
  Rng rng(2);
  const Dataset train = xor_dataset(400, rng, 0.2);
  RandomForest model;
  model.fit(train, rng);
  for (std::size_t r = 0; r < train.size(); ++r) {
    const double p = model.predict(train.x.row(r));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, JsonRoundTrip) {
  Rng rng(3);
  const Dataset train = xor_dataset(300, rng);
  RandomForestParams params;
  params.trees = 10;
  RandomForest model(params);
  model.fit(train, rng);
  const auto restored = model_from_json(Json::parse(model.to_json().dump()));
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(model.predict(train.x.row(r)),
                     restored->predict(train.x.row(r)));
  }
}

TEST(RandomForest, FeatureSplitCountsFavorInformativeFeatures) {
  Rng rng(4);
  // Feature 0 is informative, feature 1 is noise.
  Dataset d;
  for (int i = 0; i < 1000; ++i) {
    const float x0 = static_cast<float>(rng.uniform());
    d.x.push_row(std::vector<float>{x0, static_cast<float>(rng.uniform())});
    d.y.push_back(x0 > 0.5f ? 1 : 0);
    d.weight.push_back(1.0f);
    d.dimm.push_back(0);
    d.time.push_back(0);
  }
  RandomForest model;
  model.fit(d, rng);
  const std::vector<double> counts = model.feature_split_counts(2);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Gbdt, LearnsXor) {
  Rng rng(5);
  const Dataset train = xor_dataset(1500, rng);
  const Dataset test = xor_dataset(500, rng);
  Gbdt model;
  model.fit(train, rng);
  EXPECT_GT(accuracy(model, test), 0.93);
}

TEST(Gbdt, BeatsForestOnNoisyXor) {
  // Not a strict theorem, but with matched budgets boosting usually edges
  // out bagging on this task — mirroring the paper's LightGBM > RF finding.
  Rng rng(6);
  const Dataset train = xor_dataset(2000, rng, 0.1);
  const Dataset test = xor_dataset(800, rng, 0.0);
  Gbdt gbdt;
  RandomForest forest;
  Rng rng_a(7), rng_b(7);
  gbdt.fit(train, rng_a);
  forest.fit(train, rng_b);
  EXPECT_GE(accuracy(gbdt, test) + 0.03, accuracy(forest, test));
}

TEST(Gbdt, EarlyStoppingBoundsRounds) {
  Rng rng(8);
  // Pure noise: validation loss cannot improve for long.
  const Dataset train = xor_dataset(600, rng, 0.5);
  GbdtParams params;
  params.max_rounds = 200;
  params.early_stopping_rounds = 10;
  Gbdt model(params);
  model.fit(train, rng);
  EXPECT_LT(model.rounds_used(), 100);
}

TEST(Gbdt, JsonRoundTrip) {
  Rng rng(9);
  const Dataset train = xor_dataset(400, rng);
  GbdtParams params;
  params.max_rounds = 30;
  Gbdt model(params);
  model.fit(train, rng);
  const auto restored = model_from_json(Json::parse(model.to_json().dump()));
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(model.predict(train.x.row(r)),
                restored->predict(train.x.row(r)), 1e-9);
  }
}

TEST(Gbdt, ClassWeightsShiftScores) {
  Rng rng(10);
  Dataset train = xor_dataset(800, rng, 0.2);
  Gbdt unweighted;
  Rng rng_a(11);
  unweighted.fit(train, rng_a);
  double base = 0.0;
  for (std::size_t r = 0; r < train.size(); ++r) {
    base += unweighted.predict(train.x.row(r));
  }

  for (std::size_t r = 0; r < train.size(); ++r) {
    if (train.y[r] == 1) train.weight[r] = 5.0f;
  }
  Gbdt weighted;
  Rng rng_b(11);
  weighted.fit(train, rng_b);
  double up = 0.0;
  for (std::size_t r = 0; r < train.size(); ++r) {
    up += weighted.predict(train.x.row(r));
  }
  EXPECT_GT(up, base);  // up-weighting positives raises average score
}

TEST(PredictBatch, MatchesSinglePredictions) {
  Rng rng(12);
  const Dataset train = xor_dataset(300, rng);
  Gbdt model;
  model.fit(train, rng);
  const std::vector<double> batch = model.predict_batch(train.x);
  for (std::size_t r = 0; r < train.size(); ++r) {
    EXPECT_DOUBLE_EQ(batch[r], model.predict(train.x.row(r)));
  }
}

TEST(ModelFromJson, RejectsUnknownType) {
  Json bad = Json::object();
  bad.set("type", "alien");
  EXPECT_THROW(model_from_json(bad), std::runtime_error);
}

}  // namespace
}  // namespace memfp::ml
