#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/platform_profile.h"
#include "features/windows.h"

namespace memfp {
namespace {

TEST(PredictionWindows, PaperDefaults) {
  const features::PredictionWindows w;
  EXPECT_EQ(w.observation, days(5));
  EXPECT_EQ(w.lead, hours(3));
  EXPECT_EQ(w.prediction, days(30));
}

class LabelForTest
    : public ::testing::TestWithParam<std::tuple<SimTime, int>> {};

TEST_P(LabelForTest, ZonesMatchFig3) {
  const auto [delta, expected] = GetParam();
  features::PredictionWindows w;
  const SimTime ue = days(100);
  EXPECT_EQ(w.label_for(ue - delta, ue), expected) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(
    Zones, LabelForTest,
    ::testing::Values(
        std::make_tuple(-kHour, 0),              // UE already past
        std::make_tuple(kMinute, -1),            // inside too-late zone
        std::make_tuple(hours(3) - 1, -1),       // just inside too-late
        std::make_tuple(hours(3), 1),            // exactly min lead
        std::make_tuple(days(15), 1),            // mid prediction window
        std::make_tuple(hours(3) + days(30), 1), // exactly max validity
        std::make_tuple(hours(4) + days(30), 0), // beyond the window
        std::make_tuple(days(200), 0)));         // far future

TEST(PlatformProfile, PaperTableIIRows) {
  const core::PlatformProfile purley =
      core::profile_for(dram::Platform::kIntelPurley);
  EXPECT_TRUE(purley.risky_ce_baseline_applicable);
  ASSERT_TRUE(purley.paper_risky_ce.has_value());
  EXPECT_DOUBLE_EQ(purley.paper_risky_ce->f1, 0.49);
  EXPECT_DOUBLE_EQ(purley.paper_lightgbm.f1, 0.64);

  const core::PlatformProfile whitley =
      core::profile_for(dram::Platform::kIntelWhitley);
  EXPECT_FALSE(whitley.risky_ce_baseline_applicable);
  EXPECT_FALSE(whitley.paper_risky_ce.has_value());
  EXPECT_DOUBLE_EQ(whitley.paper_ft_transformer.f1, 0.50);

  const core::PlatformProfile k920 = core::profile_for(dram::Platform::kK920);
  EXPECT_DOUBLE_EQ(k920.paper_lightgbm.f1, 0.54);
  EXPECT_NE(purley.ecc_name, k920.ecc_name);
}

TEST(Logging, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must not crash and is simply dropped.
  MEMFP_DEBUG << "dropped";
  MEMFP_INFO << "dropped";
  set_log_level(before);
}

}  // namespace
}  // namespace memfp
