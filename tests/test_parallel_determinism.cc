// The determinism contract of the threading work: the fleet simulator, the
// forest/GBDT trainers and the pipeline scorer must produce byte-identical
// results at every thread count (same seed => same Table II numbers at 1, 4
// and N threads). These tests run each hot path under ScopedLimit(1) and
// ScopedLimit(4) and compare outputs exactly — no tolerances.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "sim/fleet.h"

namespace memfp {
namespace {

sim::FleetTrace fleet_at(int threads) {
  ThreadPool::ScopedLimit cap(threads);
  return sim::simulate_fleet(sim::purley_scenario().scaled(0.05));
}

void expect_identical_fleets(const sim::FleetTrace& a,
                             const sim::FleetTrace& b) {
  ASSERT_EQ(a.dimms.size(), b.dimms.size());
  for (std::size_t i = 0; i < a.dimms.size(); ++i) {
    const sim::DimmTrace& x = a.dimms[i];
    const sim::DimmTrace& y = b.dimms[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.server_id, y.server_id);
    EXPECT_EQ(x.config.part_number, y.config.part_number);
    ASSERT_EQ(x.ces.size(), y.ces.size()) << "DIMM " << x.id;
    for (std::size_t e = 0; e < x.ces.size(); ++e) {
      EXPECT_EQ(x.ces[e].time, y.ces[e].time);
      EXPECT_EQ(x.ces[e].coord.row, y.ces[e].coord.row);
      EXPECT_EQ(x.ces[e].coord.column, y.ces[e].coord.column);
    }
    ASSERT_EQ(x.ue.has_value(), y.ue.has_value()) << "DIMM " << x.id;
    if (x.ue) {
      EXPECT_EQ(x.ue->time, y.ue->time);
    }
    EXPECT_EQ(x.workload.cpu_utilization, y.workload.cpu_utilization);
  }
}

TEST(ParallelDeterminism, FleetTraceIdenticalAcrossThreadCounts) {
  const sim::FleetTrace serial = fleet_at(1);
  const sim::FleetTrace wide = fleet_at(4);
  expect_identical_fleets(serial, wide);
}

ml::Dataset synthetic_dataset(std::size_t rows) {
  Rng rng(17);
  ml::Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(24);
    for (float& v : row) v = static_cast<float>(rng.normal());
    // Plant signal so trees actually split.
    if (rng.bernoulli(0.25)) {
      row[3] += 2.0f;
      d.y.push_back(1);
    } else {
      d.y.push_back(0);
    }
    d.x.push_row(row);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

TEST(ParallelDeterminism, RandomForestIdenticalAcrossThreadCounts) {
  const ml::Dataset d = synthetic_dataset(600);
  const auto fit_at = [&](int threads) {
    ThreadPool::ScopedLimit cap(threads);
    ml::RandomForestParams params;
    params.trees = 20;
    ml::RandomForest model(params);
    Rng rng(5);
    model.fit(d, rng);
    return model;
  };
  const ml::RandomForest serial = fit_at(1);
  const ml::RandomForest wide = fit_at(4);
  ASSERT_EQ(serial.trees().size(), wide.trees().size());
  // Tree-for-tree structural identity via the JSON serialization.
  EXPECT_EQ(serial.to_json().dump(), wide.to_json().dump());
  for (std::size_t r = 0; r < d.size(); r += 37) {
    EXPECT_EQ(serial.predict(d.x.row(r)), wide.predict(d.x.row(r)));
  }
}

TEST(ParallelDeterminism, GbdtIdenticalAcrossThreadCounts) {
  const ml::Dataset d = synthetic_dataset(800);
  const auto fit_at = [&](int threads) {
    ThreadPool::ScopedLimit cap(threads);
    ml::GbdtParams params;
    params.max_rounds = 20;
    params.early_stopping_rounds = 0;
    ml::Gbdt model(params);
    Rng rng(6);
    model.fit(d, rng);
    return model;
  };
  const ml::Gbdt serial = fit_at(1);
  const ml::Gbdt wide = fit_at(4);
  EXPECT_EQ(serial.to_json().dump(), wide.to_json().dump());
}

ml::Dataset weighted_dataset(std::size_t rows) {
  // Non-unit weights + several correlated signal columns: drives deep trees
  // whose histograms chain through repeated parent-minus-child subtractions.
  Rng rng(23);
  ml::Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(20);
    for (float& v : row) v = static_cast<float>(rng.normal());
    const bool positive = rng.bernoulli(0.3);
    if (positive) {
      row[1] += 1.0f;
      row[4] += static_cast<float>(rng.uniform());
      row[9] -= 1.5f;
    }
    d.y.push_back(positive ? 1 : 0);
    d.x.push_row(row);
    d.weight.push_back(static_cast<float>(0.5 + rng.uniform()));
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

TEST(ParallelDeterminism, GbdtSubtractionPathIdenticalAcrossThreadCounts) {
  // Deep leaf-wise trees so sibling histograms are derived by subtraction
  // many levels down; the derived splits must still be a pure function of
  // the seed, never of the thread count.
  const ml::Dataset d = weighted_dataset(3000);
  const auto fit_at = [&](int threads) {
    ThreadPool::ScopedLimit cap(threads);
    ml::GbdtParams params;
    params.max_rounds = 12;
    params.early_stopping_rounds = 0;
    params.tree.max_leaves = 63;
    params.tree.max_depth = 16;
    ml::Gbdt model(params);
    Rng rng(31);
    model.fit(d, rng);
    return model.to_json().dump();
  };
  const std::string serial = fit_at(1);
  EXPECT_EQ(serial, fit_at(2));
  EXPECT_EQ(serial, fit_at(4));
}

TEST(ParallelDeterminism, ForestSubtractionPathIdenticalAcrossThreadCounts) {
  const ml::Dataset d = weighted_dataset(2000);
  const auto fit_at = [&](int threads) {
    ThreadPool::ScopedLimit cap(threads);
    ml::RandomForestParams params;
    params.trees = 12;
    params.tree.max_depth = 16;
    params.tree.min_samples_leaf = 2.0;
    ml::RandomForest model(params);
    Rng rng(37);
    model.fit(d, rng);
    return model.to_json().dump();
  };
  const std::string serial = fit_at(1);
  EXPECT_EQ(serial, fit_at(2));
  EXPECT_EQ(serial, fit_at(4));
}

TEST(ParallelDeterminism, ExperimentResultIdenticalAcrossThreadCounts) {
  // End to end: confusion matrix, tuned threshold and PR-AUC of a Random
  // Forest run must not depend on the thread count (the seed fully
  // determines Table II).
  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.05));
  const auto run_at = [&](int threads) {
    core::PipelineConfig config;
    config.num_threads = threads;
    core::Experiment experiment(fleet, config);
    return experiment.run(core::Algorithm::kRandomForest);
  };
  const core::Experiment::Result serial = run_at(1);
  const core::Experiment::Result wide = run_at(4);
  EXPECT_EQ(serial.confusion.tp, wide.confusion.tp);
  EXPECT_EQ(serial.confusion.fp, wide.confusion.fp);
  EXPECT_EQ(serial.confusion.fn, wide.confusion.fn);
  EXPECT_EQ(serial.confusion.tn, wide.confusion.tn);
  EXPECT_EQ(serial.threshold, wide.threshold);
  EXPECT_EQ(serial.precision, wide.precision);
  EXPECT_EQ(serial.recall, wide.recall);
  EXPECT_EQ(serial.f1, wide.f1);
  EXPECT_EQ(serial.sample_pr_auc, wide.sample_pr_auc);
}

TEST(ParallelDeterminism, ScoreDimmsMergesInDimmOrder) {
  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.05));
  core::PipelineConfig config;
  core::Experiment experiment(fleet, config);
  auto [result, model] =
      experiment.run_with_model(core::Algorithm::kRandomForest);
  ASSERT_NE(model, nullptr);

  const auto score_at = [&](int threads) {
    ThreadPool::ScopedLimit cap(threads);
    std::vector<core::ScoredStream> streams;
    std::vector<core::AlarmOutcome> outcomes;
    std::vector<double> pooled;
    std::vector<int> labels;
    experiment.score_dimms(*model, experiment.test_dimms(), streams, outcomes,
                           &pooled, &labels);
    return std::make_tuple(std::move(streams), std::move(pooled),
                           std::move(labels));
  };
  const auto [streams1, pooled1, labels1] = score_at(1);
  const auto [streams4, pooled4, labels4] = score_at(4);
  ASSERT_EQ(streams1.size(), streams4.size());
  for (std::size_t i = 0; i < streams1.size(); ++i) {
    EXPECT_EQ(streams1[i].times, streams4[i].times);
    EXPECT_EQ(streams1[i].scores, streams4[i].scores);
  }
  EXPECT_EQ(pooled1, pooled4);  // ordered merge: element-for-element
  EXPECT_EQ(labels1, labels4);
}

}  // namespace
}  // namespace memfp
