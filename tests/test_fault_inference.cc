#include "features/fault_inference.h"

#include <gtest/gtest.h>

namespace memfp::features {
namespace {

dram::CeEvent ce(int device, int bank, int row, int column) {
  dram::CeEvent event;
  event.coord = {0, device, bank, row, column};
  event.pattern.add({static_cast<std::uint8_t>(device * 4), 0});
  return event;
}

TEST(FaultInference, EmptyHistory) {
  const InferredFaults result = infer_faults({});
  EXPECT_FALSE(result.any());
  EXPECT_FALSE(result.single_device);
  EXPECT_FALSE(result.multi_device);
}

TEST(FaultInference, RepeatedCellIsCellFault) {
  std::vector<dram::CeEvent> ces{ce(1, 2, 100, 50), ce(1, 2, 100, 50)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.cell_faults, 1);
  EXPECT_EQ(result.row_faults, 0);
  EXPECT_EQ(result.column_faults, 0);
  EXPECT_TRUE(result.single_device);
}

TEST(FaultInference, SingleCeIsNoFault) {
  std::vector<dram::CeEvent> ces{ce(1, 2, 100, 50)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.cell_faults, 0);
  EXPECT_EQ(result.faulty_devices, 0);
}

TEST(FaultInference, RowFaultNeedsDistinctColumns) {
  std::vector<dram::CeEvent> ces{ce(0, 1, 500, 10), ce(0, 1, 500, 20)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.row_faults, 1);
  EXPECT_EQ(result.cell_faults, 0);
}

TEST(FaultInference, ColumnFaultNeedsDistinctRows) {
  std::vector<dram::CeEvent> ces{ce(0, 1, 10, 99), ce(0, 1, 20, 99)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.column_faults, 1);
  EXPECT_EQ(result.row_faults, 0);
}

TEST(FaultInference, BankFaultNeedsSpreadRowsAndColumns) {
  std::vector<dram::CeEvent> ces;
  for (int i = 0; i < 5; ++i) {
    ces.push_back(ce(2, 3, 100 + i, 10 + i));
  }
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.bank_faults, 1);
}

TEST(FaultInference, ConcentratedRowIsNotBankFault) {
  std::vector<dram::CeEvent> ces;
  for (int i = 0; i < 10; ++i) {
    ces.push_back(ce(2, 3, 100, 10 + i));  // one row, many columns
  }
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.bank_faults, 0);
  EXPECT_EQ(result.row_faults, 1);
}

TEST(FaultInference, MultiDeviceDetection) {
  std::vector<dram::CeEvent> ces{ce(0, 0, 1, 1), ce(0, 0, 1, 1),
                                 ce(7, 0, 2, 2), ce(7, 0, 2, 2)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.faulty_devices, 2);
  EXPECT_TRUE(result.multi_device);
  EXPECT_FALSE(result.single_device);
}

TEST(FaultInference, DeviceNeedsMinimumCes) {
  // One CE on a second device does not make it faulty.
  std::vector<dram::CeEvent> ces{ce(0, 0, 1, 1), ce(0, 0, 1, 1),
                                 ce(7, 0, 2, 2)};
  const InferredFaults result = infer_faults(ces);
  EXPECT_EQ(result.faulty_devices, 1);
  EXPECT_TRUE(result.single_device);
}

TEST(FaultInference, RankSeparatesDevices) {
  dram::CeEvent a = ce(3, 0, 1, 1);
  dram::CeEvent b = ce(3, 0, 1, 1);
  b.coord.rank = 1;
  const InferredFaults result = infer_faults(std::vector<dram::CeEvent>{a, b, a, b});
  EXPECT_EQ(result.faulty_devices, 2);
}

TEST(FaultInference, CustomThresholds) {
  FaultThresholds strict;
  strict.cell_repeat = 5;
  std::vector<dram::CeEvent> ces(4, ce(0, 0, 1, 1));
  EXPECT_EQ(infer_faults(ces, strict).cell_faults, 0);
  ces.push_back(ce(0, 0, 1, 1));
  EXPECT_EQ(infer_faults(ces, strict).cell_faults, 1);
}

}  // namespace
}  // namespace memfp::features
