#include "sim/page_offline.h"

#include <gtest/gtest.h>

#include "sim/fleet.h"

namespace memfp::sim {
namespace {

dram::CeEvent ce_on_row(SimTime t, int row, int column = 1) {
  dram::CeEvent ce;
  ce.time = t;
  ce.coord = {0, 2, 3, row, column};
  ce.pattern.add({8, 0});
  return ce;
}

TEST(PageOffline, RetiresRowAtThreshold) {
  DimmTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.ces.push_back(ce_on_row(days(1) + i * kHour, /*row=*/500));
  }
  PageOfflinePolicy policy;
  policy.ce_threshold = 5;
  const OfflineOutcome outcome = apply_page_offlining(trace, policy);
  EXPECT_EQ(outcome.rows_offlined, 1);
  // CEs 6..20 land on the retired page.
  EXPECT_EQ(outcome.ces_avoided, 15u);
}

TEST(PageOffline, BelowThresholdNothingHappens) {
  DimmTrace trace;
  for (int row = 0; row < 10; ++row) {
    trace.ces.push_back(ce_on_row(days(1) + row * kHour, row));
  }
  PageOfflinePolicy policy;
  policy.ce_threshold = 5;
  const OfflineOutcome outcome = apply_page_offlining(trace, policy);
  EXPECT_EQ(outcome.rows_offlined, 0);
  EXPECT_EQ(outcome.ces_avoided, 0u);
}

TEST(PageOffline, CapacityBudgetCapsRows) {
  DimmTrace trace;
  for (int row = 0; row < 10; ++row) {
    for (int i = 0; i < 6; ++i) {
      trace.ces.push_back(ce_on_row(days(1) + (row * 10 + i) * kHour, row));
    }
  }
  PageOfflinePolicy policy;
  policy.ce_threshold = 3;
  policy.max_rows_per_dimm = 4;
  const OfflineOutcome outcome = apply_page_offlining(trace, policy);
  EXPECT_EQ(outcome.rows_offlined, 4);
}

TEST(PageOffline, UePreventedWhenItsRowRetired) {
  DimmTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.ces.push_back(ce_on_row(days(1) + i * kHour, 500));
  }
  trace.ue = dram::UeEvent{};
  trace.ue->time = days(5);
  trace.ue->coord = {0, 2, 3, 500, 77};  // same row as the CE storm
  trace.ue->had_prior_ce = true;
  PageOfflinePolicy policy;
  policy.ce_threshold = 4;
  EXPECT_TRUE(apply_page_offlining(trace, policy).ue_row_offlined);

  // UE on a different row: reactive offlining does not help.
  trace.ue->coord.row = 9999;
  EXPECT_FALSE(apply_page_offlining(trace, policy).ue_row_offlined);
}

TEST(PageOffline, PredictionGuidedRetiresHottestRows) {
  DimmTrace trace;
  // Row 500 errs 3 times (below the reactive threshold), row 7 errs once.
  for (int i = 0; i < 3; ++i) {
    trace.ces.push_back(ce_on_row(days(1) + i * kHour, 500));
  }
  trace.ces.push_back(ce_on_row(days(2), 7));
  trace.ue = dram::UeEvent{};
  trace.ue->time = days(10);
  trace.ue->coord = {0, 2, 3, 500, 1};
  trace.ue->had_prior_ce = true;

  PageOfflinePolicy policy;
  policy.ce_threshold = 100;  // reactive path never fires
  policy.max_rows_per_dimm = 1;

  // Without a predictor alarm the UE goes through.
  EXPECT_FALSE(apply_page_offlining(trace, policy).ue_row_offlined);
  // A timely alarm retires the hottest row (500) and dodges the UE.
  EXPECT_TRUE(apply_page_offlining(trace, policy, days(3)).ue_row_offlined);
  // An alarm after the failure is useless.
  EXPECT_FALSE(
      apply_page_offlining(trace, policy, days(30)).ue_row_offlined);
}

TEST(PageOffline, FleetEvaluationAggregates) {
  const FleetTrace fleet = simulate_fleet(purley_scenario().scaled(0.1));
  PageOfflinePolicy policy;
  policy.ce_threshold = 8;
  const FleetOfflineReport report = evaluate_page_offlining(fleet, policy);
  EXPECT_GT(report.dimms, 0u);
  EXPECT_GT(report.rows_offlined, 0u);
  EXPECT_GT(report.ues_total, 0u);
  EXPECT_GE(report.prevention_rate, 0.0);
  EXPECT_LE(report.prevention_rate, 1.0);
  // Reactive offlining alone cannot stop Purley's UEs reliably: the fatal
  // pattern needs only two bits in one transfer, often before any row gets
  // hot enough to retire.
  EXPECT_LT(report.prevention_rate, 0.9);
}

}  // namespace
}  // namespace memfp::sim
