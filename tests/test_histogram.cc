#include "common/histogram.h"

#include <gtest/gtest.h>

namespace memfp {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(5), 1.0);
  EXPECT_EQ(h.count(9), 1.0);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(4), 1.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.25, 0.5);
  EXPECT_EQ(h.count(0), 3.0);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  for (double v : {0.1, 0.3, 0.6, 0.9, 0.95}) h.add(v);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total += h.fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.fraction(0), 0.0);
}

TEST(RatioByCategory, TracksRates) {
  RatioByCategory r;
  r.add("row", true);
  r.add("row", false);
  r.add("row", true);
  r.add("cell", false);
  EXPECT_NEAR(r.rate("row"), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.rate("cell"), 0.0);
  EXPECT_EQ(r.trials("row"), 3u);
  EXPECT_EQ(r.hits("row"), 2u);
}

TEST(RatioByCategory, UnknownCategoryIsZero) {
  RatioByCategory r;
  EXPECT_EQ(r.rate("nope"), 0.0);
  EXPECT_EQ(r.trials("nope"), 0u);
}

TEST(RatioByCategory, CategoriesSorted) {
  RatioByCategory r;
  r.add("b", true);
  r.add("a", false);
  const std::vector<std::string> expected{"a", "b"};
  EXPECT_EQ(r.categories(), expected);
}

}  // namespace
}  // namespace memfp
