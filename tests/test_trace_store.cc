// Codec contract of the compact binary trace store (src/sim/trace_store.h):
// encode→decode round-trips every DimmTrace field exactly, re-encoding
// reproduces the identical bytes (the golden-hash contract), and corrupt or
// truncated shards die with a clean MEMFP_CHECK diagnostic, never UB.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/fleet.h"
#include "sim/trace_store.h"

namespace memfp::sim {
namespace {

std::string temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_trace_store_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Storm-heavy trace: dense CE bursts with multi-bit patterns, storm +
/// suppression + page-offline events, and a large suppressed counter.
DimmTrace storm_heavy_trace() {
  DimmTrace trace;
  trace.id = 42;
  trace.server_id = 7;
  trace.config.manufacturer = dram::Manufacturer::kC;
  trace.config.process = dram::DramProcess::k1a;
  trace.config.width = dram::DeviceWidth::kX8;
  trace.config.frequency_mhz = 3200;
  trace.config.capacity_gib = 64;
  trace.config.part_number = "PN-C1A-3200-64G";
  trace.workload = {0.83f, 0.41f, 2.5f};
  SimTime t = hours(3);
  for (int burst = 0; burst < 20; ++burst) {
    t += minutes(7 + burst);
    for (int i = 0; i < 25; ++i) {
      dram::CeEvent ce;
      ce.time = t + i;  // sub-minute burst spacing: tiny deltas
      ce.coord = {0, 3, 2, 4000 + burst, 128 + i};
      ce.pattern.add({static_cast<std::uint8_t>(i % 8), 0});
      ce.pattern.add({static_cast<std::uint8_t>(i % 8),
                      static_cast<std::uint8_t>(1 + i % 7)});
      ce.pattern.add({static_cast<std::uint8_t>(8 + i % 4), 3});
      trace.ces.push_back(ce);
    }
    trace.events.push_back({t, dram::MemEventType::kCeStorm});
    trace.events.push_back({t + 30, dram::MemEventType::kCeStormSuppressed});
  }
  trace.events.push_back({t + hours(1), dram::MemEventType::kPageOffline});
  trace.suppressed_ce_count = 123456;
  return trace;
}

/// Sparse trace: a handful of single-bit CEs weeks apart.
DimmTrace sparse_trace() {
  DimmTrace trace;
  trace.id = 3;
  trace.server_id = 1;
  trace.config.part_number = "PN-sparse";
  trace.workload = {0.1f, 0.9f, 0.7f};
  for (int i = 0; i < 4; ++i) {
    dram::CeEvent ce;
    ce.time = days(30 * (i + 1)) + hours(i);
    ce.coord = {1, i, 7, 100 * i, 42};
    ce.pattern.add({4, static_cast<std::uint8_t>(i % 8)});
    trace.ces.push_back(ce);
  }
  return trace;
}

/// Empty DIMM: config + workload only, no telemetry at all.
DimmTrace empty_trace() {
  DimmTrace trace;
  trace.id = 0;
  trace.workload = {0.0f, 0.0f, 1.0f};
  return trace;
}

/// UE-truncated trace: CE prelude ending in an uncorrectable hit.
DimmTrace ue_truncated_trace() {
  DimmTrace trace = sparse_trace();
  trace.id = 77;
  dram::UeEvent ue;
  ue.time = trace.ces.back().time + days(2);
  ue.coord = {0, 9, 1, 777, 13};
  ue.pattern.add({2, 1});
  ue.pattern.add({14, 1});
  ue.had_prior_ce = true;
  trace.ue = ue;
  return trace;
}

std::vector<DimmTrace> corpus() {
  return {storm_heavy_trace(), sparse_trace(), empty_trace(),
          ue_truncated_trace()};
}

void expect_traces_equal(const DimmTrace& a, const DimmTrace& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.server_id, b.server_id);
  EXPECT_EQ(a.platform, b.platform);
  EXPECT_EQ(a.config.manufacturer, b.config.manufacturer);
  EXPECT_EQ(a.config.process, b.config.process);
  EXPECT_EQ(a.config.width, b.config.width);
  EXPECT_EQ(a.config.frequency_mhz, b.config.frequency_mhz);
  EXPECT_EQ(a.config.capacity_gib, b.config.capacity_gib);
  EXPECT_EQ(a.config.part_number, b.config.part_number);
  EXPECT_EQ(a.workload.cpu_utilization, b.workload.cpu_utilization);
  EXPECT_EQ(a.workload.memory_utilization, b.workload.memory_utilization);
  EXPECT_EQ(a.workload.read_write_ratio, b.workload.read_write_ratio);
  ASSERT_EQ(a.ces.size(), b.ces.size());
  for (std::size_t i = 0; i < a.ces.size(); ++i) {
    EXPECT_EQ(a.ces[i].time, b.ces[i].time);
    EXPECT_EQ(a.ces[i].coord.rank, b.ces[i].coord.rank);
    EXPECT_EQ(a.ces[i].coord.device, b.ces[i].coord.device);
    EXPECT_EQ(a.ces[i].coord.bank, b.ces[i].coord.bank);
    EXPECT_EQ(a.ces[i].coord.row, b.ces[i].coord.row);
    EXPECT_EQ(a.ces[i].coord.column, b.ces[i].coord.column);
    EXPECT_EQ(a.ces[i].pattern.bits(), b.ces[i].pattern.bits());
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].type, b.events[i].type);
  }
  EXPECT_EQ(a.suppressed_ce_count, b.suppressed_ce_count);
  ASSERT_EQ(a.ue.has_value(), b.ue.has_value());
  if (a.ue) {
    EXPECT_EQ(a.ue->time, b.ue->time);
    EXPECT_EQ(a.ue->pattern.bits(), b.ue->pattern.bits());
    EXPECT_EQ(a.ue->had_prior_ce, b.ue->had_prior_ce);
  }
}

TEST(TraceStoreCodec, GoldenHashRoundTrip) {
  for (const DimmTrace& trace : corpus()) {
    std::vector<std::uint8_t> encoded;
    encode_dimm_record(trace, encoded);
    const DimmTrace decoded =
        decode_dimm_record({encoded.data(), encoded.size()}, trace.platform);
    expect_traces_equal(trace, decoded);

    // Golden-hash: re-encoding the decoded trace reproduces the identical
    // byte stream, so resident and spilled representations hash the same.
    std::vector<std::uint8_t> re_encoded;
    encode_dimm_record(decoded, re_encoded);
    EXPECT_EQ(encoded, re_encoded) << "DIMM " << trace.id;
    EXPECT_EQ(trace_content_hash(trace), trace_content_hash(decoded));
    EXPECT_EQ(trace_content_hash(trace),
              fnv1a_bytes(kFnvOffset, encoded.data(), encoded.size()));
  }
}

TEST(TraceStoreCodec, DeltaTimestampsCompact) {
  // 500 storm CEs spaced 1 tick apart must cost ~1 byte of timestamp each,
  // not 8 — the point of delta + varint.
  DimmTrace trace = empty_trace();
  for (int i = 0; i < 500; ++i) {
    dram::CeEvent ce;
    ce.time = days(200) + i;
    ce.pattern.add({0, 0});
    trace.ces.push_back(ce);
  }
  std::vector<std::uint8_t> encoded;
  encode_dimm_record(trace, encoded);
  EXPECT_LT(encoded.size(), trace.ces.size() * 12);
}

TEST(TraceStoreShard, WriteReadRoundTrip) {
  const std::string path = shard_path(temp_dir(), 0);
  std::vector<DimmTrace> traces = corpus();
  // Platform is a fleet-level field: it lives in the shard header and is
  // stamped onto every decoded record.
  for (DimmTrace& trace : traces) {
    trace.platform = dram::Platform::kIntelWhitley;
  }
  ShardWriter writer(path, dram::Platform::kIntelWhitley, days(273));
  for (const DimmTrace& trace : traces) {
    writer.append(trace);
  }
  const ShardStats stats = writer.finish();
  EXPECT_EQ(stats.dimms, traces.size());
  EXPECT_GT(stats.file_bytes, 0u);

  const TraceReader reader(path);
  EXPECT_EQ(reader.platform(), dram::Platform::kIntelWhitley);
  EXPECT_EQ(reader.horizon(), days(273));
  ASSERT_EQ(reader.dimm_count(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_traces_equal(traces[i], reader.read_dimm(i));
  }
  std::remove(path.c_str());
}

TEST(TraceStoreShard, AppendReturnsContentHash) {
  const std::string path = shard_path(temp_dir(), 1);
  ShardWriter writer(path, dram::Platform::kIntelPurley, days(10));
  const DimmTrace trace = storm_heavy_trace();
  EXPECT_EQ(writer.append(trace), trace_content_hash(trace));
  writer.finish();
  std::remove(path.c_str());
}

TEST(TraceStoreDeathTest, TruncatedShardRejected) {
  const std::string path = shard_path(temp_dir(), 2);
  {
    ShardWriter writer(path, dram::Platform::kIntelPurley, days(10));
    writer.append(sparse_trace());
    writer.finish();
  }
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 9);
  EXPECT_DEATH({ TraceReader reader(path); }, "trace store");
  std::remove(path.c_str());
}

TEST(TraceStoreDeathTest, CorruptRecordRejected) {
  const std::string path = shard_path(temp_dir(), 3);
  {
    ShardWriter writer(path, dram::Platform::kIntelPurley, days(10));
    writer.append(storm_heavy_trace());
    writer.finish();
  }
  // Flip a byte in the record region: the footer checksum must catch it.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(64);
    char byte = 0;
    file.seekg(64);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(64);
    file.write(&byte, 1);
  }
  EXPECT_DEATH({ TraceReader reader(path); }, "trace store");
  std::remove(path.c_str());
}

TEST(TraceStoreDeathTest, GarbagePayloadRejected) {
  // A syntactically well-formed span of garbage must die in the decoder's
  // bounds checks, not wander off the end.
  const std::vector<std::uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0xff,
                                             0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_DEATH(
      decode_dimm_record({garbage.data(), garbage.size()},
                         dram::Platform::kIntelPurley),
      "trace store");
}

TEST(TraceStoreDeathTest, OversizeFrameLengthRejected) {
  // A frame whose varint length is 2^64-1 makes `payload_start + len` wrap
  // around uint64, sailing under an additive bounds check. FNV-1a is not
  // cryptographic, so a hostile file can carry a consistent region checksum
  // — the reader must reject the length itself, not rely on the checksum.
  const std::string path = shard_path(temp_dir(), 4);
  const auto push_u32 = [](std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
  };
  const auto push_u64 = [](std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
  };

  std::vector<std::uint8_t> file;
  const char header_magic[8] = {'M', 'F', 'T', 'S', 'H', 'R', 'D', '1'};
  file.insert(file.end(), header_magic, header_magic + 8);
  push_u32(file, 1);                        // format version
  file.insert(file.end(), 4, 0);            // platform + padding
  push_u64(file, 0);                        // horizon

  // Record region: a single frame prefix, varint(2^64 - 1) = ff*9 01.
  std::vector<std::uint8_t> region(9, 0xff);
  region.push_back(0x01);
  file.insert(file.end(), region.begin(), region.end());

  std::vector<std::uint8_t> tail;
  tail.push_back(0x01);                     // index: one record...
  tail.push_back(0x00);                     // ...at offset 0
  push_u64(tail, 24 + region.size());       // index offset
  push_u64(tail, fnv1a_bytes(kFnvOffset, region.data(), region.size()));
  const char footer_magic[8] = {'M', 'F', 'T', 'S', 'E', 'N', 'D', '1'};
  tail.insert(tail.end(), footer_magic, footer_magic + 8);
  file.insert(file.end(), tail.begin(), tail.end());

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
  }
  EXPECT_DEATH({ TraceReader reader(path); }, "overruns the region");
  std::remove(path.c_str());
}

TEST(TraceStoreDeathTest, DiagnosticsNameTheShardFile) {
  // Which shard of a thousand-file fleet store died used to be guesswork:
  // reader diagnostics must carry the offending path.
  const std::string path = shard_path(temp_dir(), 5);
  {
    ShardWriter writer(path, dram::Platform::kIntelPurley, days(10));
    writer.append(sparse_trace());
    writer.finish();
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 9);
  EXPECT_DEATH({ TraceReader reader(path); }, "shard-00005\\.mft");
  std::remove(path.c_str());
}

TEST(TraceStoreDeathTest, DecodeContextNamesPathAndRecord) {
  // The per-record decode context (" in <path> (record N)") reaches the
  // cursor-level checks, so a payload that dies mid-field still reports
  // which record of which shard it came from.
  const std::vector<std::uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0xff,
                                             0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_DEATH(
      decode_dimm_record({garbage.data(), garbage.size()},
                         dram::Platform::kIntelPurley,
                         " in shard-00042.mft (record 7)"),
      "in shard-00042\\.mft \\(record 7\\)");
}

TEST(TraceStoreDeathTest, WriterRejectsUnopenablePath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "memfp_no_such_dir" /
       "shard-00000.mft")
          .string();
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "memfp_no_such_dir");
  EXPECT_DEATH(ShardWriter(path, dram::Platform::kIntelPurley, days(10)),
               "cannot open .*shard-00000\\.mft");
}

TEST(TraceStoreDeathTest, WriterChecksStreamStateOnAppend) {
  // Full-disk regression: a failing write used to pass silently and only
  // surface as a checksum mismatch at the next decode. /dev/full opens fine
  // but fails every flush with ENOSPC, so appending past the stream buffer
  // must die at the append-side check, naming the path.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  EXPECT_DEATH(
      {
        ShardWriter writer("/dev/full", dram::Platform::kIntelPurley,
                           days(10));
        for (int i = 0; i < 256; ++i) writer.append(storm_heavy_trace());
      },
      "append write failed on /dev/full");
}

TEST(TraceStoreDeathTest, WriterChecksStreamStateOnFinish) {
  // finish() flushes before close, so even a shard whose appends all fit in
  // the stream buffer reports the full disk here — with the path — instead
  // of handing back a truncated file.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  EXPECT_DEATH(
      {
        ShardWriter writer("/dev/full", dram::Platform::kIntelPurley,
                           days(10));
        writer.finish();
      },
      "footer write failed on /dev/full");
}

TEST(TraceStoreShard, ListShardsNumericOrderBeyondPadding) {
  // Past 99,999 shards the %05zu names widen, where lexicographic order
  // puts shard-100000 before shard-99999; the listing must sort by the
  // parsed numeric index. list_shards never opens the files, so empty
  // placeholders are enough.
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_trace_store_wide";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const char* name : {"shard-100000.mft", "shard-99999.mft",
                           "shard-00002.mft"}) {
    std::ofstream(dir / name, std::ios::binary);
  }
  const std::vector<std::string> shards = list_shards(dir.string());
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (dir / "shard-00002.mft").string());
  EXPECT_EQ(shards[1], (dir / "shard-99999.mft").string());
  EXPECT_EQ(shards[2], (dir / "shard-100000.mft").string());
  std::filesystem::remove_all(dir);
}

TEST(TraceStoreShard, ListShardsSorted) {
  const auto dir =
      std::filesystem::temp_directory_path() / "memfp_trace_store_list";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const std::size_t index : {2u, 0u, 1u}) {
    ShardWriter writer(shard_path(dir.string(), index),
                       dram::Platform::kIntelPurley, days(1));
    writer.finish();
  }
  const std::vector<std::string> shards = list_shards(dir.string());
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], shard_path(dir.string(), 0));
  EXPECT_EQ(shards[2], shard_path(dir.string(), 2));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace memfp::sim
