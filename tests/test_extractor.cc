#include "features/extractor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memfp::features {
namespace {

sim::DimmTrace trace_with_ces(std::initializer_list<SimTime> times) {
  sim::DimmTrace trace;
  trace.id = 7;
  int row = 0;
  for (SimTime t : times) {
    dram::CeEvent ce;
    ce.time = t;
    ce.coord = {0, 3, 1, 100 + row++, 40};
    ce.pattern.add({12, 2});
    trace.ces.push_back(ce);
  }
  return trace;
}

TEST(Extractor, NoCesNoSamples) {
  const FeatureExtractor extractor;
  sim::DimmTrace trace;
  EXPECT_TRUE(extractor.extract(trace, days(30)).empty());
}

TEST(Extractor, SampleOnlyWhenWindowHasCe) {
  const FeatureExtractor extractor;
  // One CE on day 10; the 5-day observation window covers days 10..15.
  const sim::DimmTrace trace = trace_with_ces({days(10) + hours(1)});
  const std::vector<Sample> samples = extractor.extract(trace, days(30));
  ASSERT_FALSE(samples.empty());
  for (const Sample& sample : samples) {
    EXPECT_GT(sample.time, days(10));
    EXPECT_LE(sample.time, days(15) + hours(1) + days(1));
  }
}

TEST(Extractor, FeatureVectorMatchesSchema) {
  const FeatureExtractor extractor;
  const sim::DimmTrace trace = trace_with_ces({days(3), days(4)});
  const std::vector<Sample> samples = extractor.extract(trace, days(10));
  ASSERT_FALSE(samples.empty());
  for (const Sample& sample : samples) {
    EXPECT_EQ(sample.features.size(), extractor.schema().size());
  }
}

TEST(Extractor, LabelsFollowFig3Windows) {
  PredictionWindows windows;
  windows.lead = hours(3);
  windows.prediction = days(30);
  const FeatureExtractor extractor(windows);

  sim::DimmTrace trace = trace_with_ces({days(1), days(2), days(3), days(40)});
  trace.ue = dram::UeEvent{};
  trace.ue->time = days(42);
  trace.ue->had_prior_ce = true;

  const std::vector<Sample> samples = extractor.extract(trace, days(100));
  ASSERT_FALSE(samples.empty());
  for (const Sample& sample : samples) {
    const SimTime delta = trace.ue->time - sample.time;
    if (delta < hours(3)) {
      EXPECT_EQ(sample.label, -1) << "too-late zone at t=" << sample.time;
    } else if (delta <= hours(3) + days(30)) {
      EXPECT_EQ(sample.label, 1) << "positive window at t=" << sample.time;
    } else {
      EXPECT_EQ(sample.label, 0);
    }
    // No samples at or after the UE.
    EXPECT_LT(sample.time, trace.ue->time);
  }
}

TEST(Extractor, NoLeakageFromFutureEvents) {
  const FeatureExtractor extractor;
  sim::DimmTrace trace = trace_with_ces({days(2), days(3)});
  const std::vector<Sample> before = extractor.extract(trace, days(6));

  // Append future telemetry (after day 6) and re-extract the same horizon.
  sim::DimmTrace extended = trace;
  dram::CeEvent late;
  late.time = days(20);
  late.coord = {0, 9, 2, 5, 6};
  late.pattern.add({40, 7});
  extended.ces.push_back(late);

  const std::vector<Sample> after = extractor.extract(extended, days(6));
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].features, after[i].features)
        << "future event leaked into sample at t=" << before[i].time;
  }
}

TEST(Extractor, ServingPathMatchesBatchPath) {
  const FeatureExtractor extractor;
  const sim::DimmTrace trace =
      trace_with_ces({days(2), days(2) + hours(5), days(3), days(4)});
  const std::vector<Sample> batch = extractor.extract(trace, days(8));
  ASSERT_FALSE(batch.empty());
  for (const Sample& sample : batch) {
    const std::vector<float> served = extractor.features_at(trace, sample.time);
    EXPECT_EQ(served, sample.features)
        << "divergence at t=" << sample.time;
  }
}

TEST(Extractor, CountsReflectWindowContents) {
  const FeatureExtractor extractor;
  const FeatureSchema& schema = extractor.schema();
  const std::size_t idx_5d = schema.index_of("ce_count_5d");
  const std::size_t idx_1d = schema.index_of("ce_count_1d");

  // Three CEs on day 2; sample at day 3 sees all three in both windows.
  const sim::DimmTrace trace = trace_with_ces(
      {days(2), days(2) + hours(1), days(2) + hours(2)});
  const std::vector<Sample> samples = extractor.extract(trace, days(4));
  const Sample* day3 = nullptr;
  for (const Sample& sample : samples) {
    if (sample.time == days(3)) day3 = &sample;
  }
  ASSERT_NE(day3, nullptr);
  EXPECT_NEAR(day3->features[idx_5d], std::log1p(3.0), 1e-5);
  EXPECT_NEAR(day3->features[idx_1d], std::log1p(3.0), 1e-5);
}

TEST(Extractor, SpatialFeaturesSeeDistinctRows) {
  const FeatureExtractor extractor;
  const FeatureSchema& schema = extractor.schema();
  const std::size_t idx_rows = schema.index_of("distinct_rows_5d");
  const sim::DimmTrace trace = trace_with_ces({days(1), days(1) + 10,
                                               days(1) + 20});
  const std::vector<Sample> samples = extractor.extract(trace, days(3));
  const Sample* day2 = nullptr;
  for (const Sample& sample : samples) {
    if (sample.time == days(2)) day2 = &sample;
  }
  ASSERT_NE(day2, nullptr);
  // trace_with_ces uses a fresh row per CE.
  EXPECT_NEAR(day2->features[idx_rows], std::log1p(3.0), 1e-5);
}

TEST(Extractor, StaticFeaturesEncodeConfig) {
  const FeatureExtractor extractor;
  const FeatureSchema& schema = extractor.schema();
  sim::DimmTrace trace = trace_with_ces({days(1)});
  trace.config.manufacturer = dram::Manufacturer::kC;
  trace.config.process = dram::DramProcess::k1z;
  trace.config.frequency_mhz = 3200;
  const std::vector<Sample> samples = extractor.extract(trace, days(3));
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.front().features[schema.index_of("manufacturer")], 2.0f);
  EXPECT_EQ(samples.front().features[schema.index_of("dram_process")], 3.0f);
  EXPECT_NEAR(samples.front().features[schema.index_of("frequency_ghz")], 3.2f,
              1e-5);
}

TEST(Schema, GroupsCoverAllFeatures) {
  const FeatureSchema schema = FeatureSchema::standard();
  std::size_t total = 0;
  for (FeatureGroup group :
       {FeatureGroup::kTemporal, FeatureGroup::kSpatial,
        FeatureGroup::kBitLevel, FeatureGroup::kStatic,
        FeatureGroup::kWorkload}) {
    total += schema.group_indices(group).size();
  }
  EXPECT_EQ(total, schema.size());
}

TEST(Schema, SubsetPreservesOrder) {
  const FeatureSchema schema = FeatureSchema::standard();
  const FeatureSchema sub = schema.subset({0, 5, 10});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.def(0).name, schema.def(0).name);
  EXPECT_EQ(sub.def(2).name, schema.def(10).name);
}

TEST(Schema, IndexOfThrowsOnUnknown) {
  EXPECT_THROW(FeatureSchema::standard().index_of("bogus"), std::out_of_range);
}

TEST(Schema, CategoricalMetadata) {
  const FeatureSchema schema = FeatureSchema::standard();
  const FeatureDef& manufacturer =
      schema.def(schema.index_of("manufacturer"));
  EXPECT_TRUE(manufacturer.categorical);
  EXPECT_EQ(manufacturer.cardinality, 4);
  const FeatureDef& count = schema.def(schema.index_of("ce_count_5d"));
  EXPECT_FALSE(count.categorical);
}

}  // namespace
}  // namespace memfp::features
