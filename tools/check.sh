#!/usr/bin/env bash
# Verification matrix: the correctness gate every PR runs before merging.
#
#   leg 1  lint      memfp-lint v2 static analysis over src/, tests/, bench/
#                    (token streams + cross-TU project graph: layering,
#                    parallel-capture, rng-discipline, unordered-iter).
#                    Builds ONLY the memfp_lint target, so the leg answers
#                    in seconds; `memfp_lint --rule=<name>` and `--graph`
#                    (include-DAG DOT dump) are available for local triage.
#   leg 2  werror    clean -Wall -Wextra -Werror build + full ctest
#   leg 3  asan      AddressSanitizer + UBSan build, full ctest
#   leg 4  tsan      ThreadSanitizer build, thread-pool + parallel
#                    determinism + sharded serving suites (the racy
#                    surface; the full suite under TSan is ~20x and adds
#                    no extra coverage)
#   leg 5  scalar    full ctest with MEMFP_SIMD=scalar forced: the SIMD
#                    reference lane stays green on its own, and the
#                    dispatch-equality suites (Simd*, GoldenModels) re-run
#                    with every kernel pinned to the scalar table
#   leg 6  bench     bench_micro smoke run (tracked benches execute with
#                    minimal iterations, so bench binaries can't bit-rot)
#                    plus tiny-scale bench_fleet, bench_serving and
#                    bench_campaign passes (sharded driver spill→stream→
#                    score, the batched serving engine, and the shared-vs-
#                    naive campaign sweep with its hash identity check)
#   leg 7  tidy      clang-tidy over src/ (advisory; skipped when the
#                    binary is not installed)
#
# Sanitizer coverage of the new trace-store/fleet-driver surface: the asan
# leg runs the full ctest (codec round-trip + corruption death tests), and
# the tsan leg's Determinism filter matches the FleetDriverDeterminism
# suites (parallel simulate/extract across shards).
#
# Every leg builds out-of-source under build-check/ so the developer build/
# tree is never poisoned by sanitizer objects. Usage:
#
#   tools/check.sh          # full matrix
#   tools/check.sh lint     # one leg (lint|werror|asan|tsan|scalar|bench|tidy)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MATRIX_ROOT="${MATRIX_ROOT:-$ROOT/build-check}"
JOBS="${JOBS:-$(nproc)}"
LEG="${1:-all}"

log() { printf '\n==== check.sh: %s ====\n' "$*" >&2; }

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$ROOT" "$@" > /dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_lint() {
  log "leg: lint (memfp-lint v2 static analysis)"
  # Shares the plain configure with scalar/bench/tidy but builds only the
  # analyzer target: a standalone `tools/check.sh lint` stays a seconds-fast
  # pre-commit gate even on a cold tree.
  local dir="$MATRIX_ROOT/plain"
  cmake -B "$dir" -S "$ROOT" > /dev/null
  cmake --build "$dir" -j "$JOBS" --target memfp_lint
  "$dir/tools/lint/memfp_lint" "$ROOT"
}

run_werror() {
  log "leg: werror (-Wall -Wextra -Werror, full ctest)"
  local dir="$MATRIX_ROOT/werror"
  configure_and_build "$dir" -DMEMFP_WERROR=ON
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_asan() {
  log "leg: asan (AddressSanitizer + UBSan, full ctest)"
  local dir="$MATRIX_ROOT/asan"
  configure_and_build "$dir" -DMEMFP_SANITIZE=address,undefined
  # halt_on_error: a UBSan report must fail the leg, not scroll past.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_tsan() {
  log "leg: tsan (ThreadSanitizer, thread-pool + parallel determinism)"
  local dir="$MATRIX_ROOT/tsan"
  configure_and_build "$dir" -DMEMFP_SANITIZE=thread
  # The concurrency surface: the pool itself plus every parallelised path
  # (fleet sim, forest/GBDT training, scoring, sharded serving) exercised
  # with >1 thread.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|Parallel|Determinism|Serving'
}

run_scalar() {
  log "leg: scalar (MEMFP_SIMD=scalar, full ctest)"
  local dir="$MATRIX_ROOT/plain"  # reuse the plain (non-sanitizer) configure
  cmake -B "$dir" -S "$ROOT" > /dev/null
  cmake --build "$dir" -j "$JOBS"
  # Same binaries, reference kernel table only: proves nothing silently
  # depends on a vector lane, and that scalar output still matches every
  # golden hash the vector lanes were verified against.
  MEMFP_SIMD=scalar \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_bench() {
  log "leg: bench (bench_micro smoke run)"
  local dir="$MATRIX_ROOT/plain"  # reuse the plain (non-sanitizer) configure
  cmake -B "$dir" -S "$ROOT" > /dev/null
  cmake --build "$dir" -j "$JOBS" --target bench_micro
  # One fast pass over the perf-tracked benches: catches bench-only build
  # breaks and runtime crashes without recording numbers (run_benches.sh
  # owns the recorded trajectory).
  "$dir/bench/bench_micro" \
    --benchmark_filter='^BM_(Extract|FeaturesAt|Gemm|GemmBt)$|^BM_(GbdtTrain|TreeTrain)/rows:2000|^BM_(ForestPredict|GbdtPredict)(Walker)?/rows:2000' \
    --benchmark_min_time=0.01 > /dev/null
  # Fleet smoke: a few hundred DIMMs through simulate → spill → stream →
  # extract → score, so the sharded driver can't bit-rot between perf runs.
  cmake --build "$dir" -j "$JOBS" --target bench_fleet
  MEMFP_BENCH_SCALE=0.02 "$dir/bench/bench_fleet" > /dev/null
  # Serving smoke: the sharded/batched engine end to end (in-memory +
  # store-backed sweeps and both storm admission runs) at toy scale.
  cmake --build "$dir" -j "$JOBS" --target bench_serving
  MEMFP_BENCH_SCALE=0.02 "$dir/bench/bench_serving" > /dev/null
  # Campaign smoke: the full 48-point sweep shared and naive at toy scale —
  # the bench aborts if the two campaign hashes diverge, so this doubles as
  # a byte-identity check on the stage cache.
  cmake --build "$dir" -j "$JOBS" --target bench_campaign
  MEMFP_BENCH_SCALE=0.05 "$dir/bench/bench_campaign" > /dev/null
}

run_tidy() {
  log "leg: tidy (clang-tidy, advisory)"
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "clang-tidy not installed; skipping advisory leg" >&2
    return 0
  fi
  local dir="$MATRIX_ROOT/plain"  # reuse the plain configure
  cmake -B "$dir" -S "$ROOT" > /dev/null
  find "$ROOT/src" -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$dir" --quiet
}

case "$LEG" in
  lint)   run_lint ;;
  werror) run_werror ;;
  asan)   run_asan ;;
  tsan)   run_tsan ;;
  scalar) run_scalar ;;
  bench)  run_bench ;;
  tidy)   run_tidy ;;
  all)
    run_lint
    run_werror
    run_asan
    run_tsan
    run_scalar
    run_bench
    run_tidy
    log "matrix green"
    ;;
  *)
    echo "usage: tools/check.sh [lint|werror|asan|tsan|scalar|bench|tidy]" >&2
    exit 2
    ;;
esac
