#!/usr/bin/env bash
# Runs the perf-tracked micro-benches and emits the trajectory files at the
# repo root:
#   BENCH_train.json    BM_TreeTrain / BM_GbdtTrain row-count scaling vs the
#                       pre-binned-training baseline — rerun after changes
#                       to src/ml/{binning,decision_tree}*.
#   BENCH_extract.json  BM_Extract / BM_FeaturesAt (incremental sliding-
#                       window extraction + streaming serving) and
#                       BM_Gemm / BM_GemmBt (dense kernel unrolling) vs the
#                       pre-incremental baseline — rerun after changes to
#                       src/features/ or src/ml/tensor.cc.
#   BENCH_predict.json  BM_ForestPredict / BM_GbdtPredict row-count scaling
#                       of the flat batched inference engine. The baseline
#                       here is not frozen: the *Walker variants re-measure
#                       the pointer-walking per-row loop in the same run, so
#                       the speedup column compares the two layouts on
#                       identical hardware/load — rerun after changes to
#                       src/ml/flat_ensemble.* or the tree structures.
#   BENCH_simd.json     the tracked train/predict/gemm benches re-run with
#                       MEMFP_SIMD forced to every dispatch lane this host
#                       supports, plus the detected CPU features: records
#                       what each vector lane is worth over the scalar
#                       reference on this hardware — rerun after changes to
#                       src/common/simd*.
#   BENCH_fleet.json    sharded fleet driver scale sweep (10^4 -> 10^6
#                       DIMMs, 56-day horizon): DIMMs/sec, events/sec,
#                       encoded bytes/event and peak RSS per point — rerun
#                       after changes to src/sim/trace_store.* or
#                       src/core/fleet_driver.*. Written by bench_fleet
#                       itself; expect ~15 minutes for the full sweep.
#   BENCH_serving.json  online serving engine: events/sec and p50/p99 tick
#                       latency for the frozen serial-baseline workload
#                       (vs the pre-engine loop at d688675), a 10^5-DIMM
#                       in-memory + store-backed sweep, and the CE-storm
#                       admission on/off comparison — rerun after changes
#                       to src/mlops/serving.* or src/features/window_*.
#                       Written by bench_serving itself.
#   BENCH_campaign.json campaign engine: a 48-point fault × ECC × predictor
#                       × policy sweep run through the content-addressed
#                       stage cache vs the naive per-config pipeline at the
#                       same thread count — records per-stage execution
#                       counts, the wall-clock speedup and the matched
#                       campaign hash (the two paths are byte-identical) —
#                       rerun after changes to src/core/campaign.* or
#                       src/core/stage_cache.*. Written by bench_campaign
#                       itself.
# Each file records the baseline, the current numbers, and the speedup.
# The sanitizer refusal below covers every emitted file, BENCH_fleet.json
# included: instrumented builds never record numbers.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT"
fi

# Never record numbers from an instrumented build: sanitizers are 2-20x
# slowdowns, so the "speedup" column would be garbage that silently poisons
# the perf trajectory in BENCH_train.json.
SANITIZE="$(grep -E '^MEMFP_SANITIZE:' "$BUILD/CMakeCache.txt" | cut -d= -f2-)"
if [ -n "$SANITIZE" ]; then
  echo "refusing to record benchmarks: $BUILD is a sanitizer build" \
       "(MEMFP_SANITIZE=$SANITIZE); use a plain build dir" >&2
  exit 1
fi

cmake --build "$BUILD" -j --target bench_micro

RAW="$BUILD/bench_train_raw.json"
"$BUILD/bench/bench_micro" \
  --benchmark_filter='^BM_(GbdtTrain|TreeTrain)/' \
  --benchmark_out="$RAW" --benchmark_out_format=json >&2

python3 - "$RAW" "$ROOT/BENCH_train.json" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Pre-refactor single-thread wall times (ms, best of 3) measured at commit
# 2ff4ea7 with the same generators/params as the benches: 30 features,
# GBDT 30 rounds / single default classification tree.
BASELINE_MS = {
    "BM_GbdtTrain": {"2000": 31.28, "10000": 139.64, "50000": 994.61},
    "BM_TreeTrain": {"2000": 1.01, "10000": 7.87, "50000": 49.08},
}

current = {}
for entry in raw.get("benchmarks", []):
    name = entry["name"]  # e.g. BM_GbdtTrain/rows:50000
    if entry.get("run_type", "iteration") != "iteration":
        continue
    bench, _, arg = name.partition("/rows:")
    if bench not in BASELINE_MS or not arg:
        continue
    current.setdefault(bench, {})[arg] = round(entry["real_time"], 2)

speedup = {}
for bench, rows in BASELINE_MS.items():
    for arg, base in rows.items():
        now = current.get(bench, {}).get(arg)
        if now:
            speedup.setdefault(bench, {})[arg] = round(base / now, 2)

out = {
    "generated_by": "tools/run_benches.sh",
    "threads": 1,
    "context": raw.get("context", {}),
    "baseline_commit": "2ff4ea7",
    "baseline_ms": BASELINE_MS,
    "current_ms": current,
    "speedup": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(speedup, indent=2, sort_keys=True))
EOF

RAW_EXTRACT="$BUILD/bench_extract_raw.json"
"$BUILD/bench/bench_micro" \
  --benchmark_filter='^BM_(Extract|FeaturesAt|Gemm|GemmBt)$' \
  --benchmark_out="$RAW_EXTRACT" --benchmark_out_format=json >&2

python3 - "$RAW_EXTRACT" "$ROOT/BENCH_extract.json" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Pre-incremental wall times (ms, median) measured at commit 65df1cd with
# the same generators as the benches: BM_Extract = full-trace batch
# extraction (storm-heavy, hourly cadence, 5000 ticks); BM_FeaturesAt = 200
# successive per-DIMM serving calls (the old path deep-copied the trace and
# rebuilt an extractor per call); BM_Gemm / BM_GemmBt = dense 256x64 @ 64x64
# products before the unrolled kernels.
BASELINE_MS = {
    "BM_Extract": 800.0,
    "BM_FeaturesAt": 391.0,
    "BM_Gemm": 0.617,
    "BM_GemmBt": 0.437,
}

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

current = {}
for entry in raw.get("benchmarks", []):
    name = entry["name"]
    if entry.get("run_type", "iteration") != "iteration":
        continue
    if name not in BASELINE_MS:
        continue
    scale = UNIT_TO_MS[entry.get("time_unit", "ns")]
    current[name] = round(entry["real_time"] * scale, 4)

speedup = {
    bench: round(base / current[bench], 2)
    for bench, base in BASELINE_MS.items()
    if current.get(bench)
}

out = {
    "generated_by": "tools/run_benches.sh",
    "threads": 1,
    "context": raw.get("context", {}),
    "baseline_commit": "65df1cd",
    "baseline_ms": BASELINE_MS,
    "current_ms": current,
    "speedup": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(speedup, indent=2, sort_keys=True))
EOF

RAW_PREDICT="$BUILD/bench_predict_raw.json"
"$BUILD/bench/bench_micro" \
  --benchmark_filter='^BM_(ForestPredict|GbdtPredict)(Walker)?/' \
  --benchmark_out="$RAW_PREDICT" --benchmark_out_format=json >&2

python3 - "$RAW_PREDICT" "$ROOT/BENCH_predict.json" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Baseline = the *Walker benches from this same run: per row, walk every
# pointer-linked tree (the pre-flat-ensemble inference path, semantics frozen
# at commit 3f39d4a). Current = Model::predict_batch through the compiled
# FlatEnsemble. Both run single-threaded on identical inputs, so the speedup
# column isolates the flat-layout + 64-row-block batching win.
BENCHES = ("BM_ForestPredict", "BM_GbdtPredict")

baseline = {}
current = {}
for entry in raw.get("benchmarks", []):
    name = entry["name"]  # e.g. BM_GbdtPredictWalker/rows:50000
    if entry.get("run_type", "iteration") != "iteration":
        continue
    bench, _, arg = name.partition("/rows:")
    if not arg:
        continue
    ms = round(entry["real_time"], 2)
    if bench.endswith("Walker"):
        baseline.setdefault(bench[: -len("Walker")], {})[arg] = ms
    elif bench in BENCHES:
        current.setdefault(bench, {})[arg] = ms

speedup = {}
for bench, rows in baseline.items():
    for arg, base in rows.items():
        now = current.get(bench, {}).get(arg)
        if now:
            speedup.setdefault(bench, {})[arg] = round(base / now, 2)

out = {
    "generated_by": "tools/run_benches.sh",
    "threads": 1,
    "context": raw.get("context", {}),
    "baseline_commit": "3f39d4a",
    "baseline_ms": baseline,
    "current_ms": current,
    "speedup": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(speedup, indent=2, sort_keys=True))
EOF

# Per-dispatch-lane timings. The context block knows which lanes this host
# can run (bench_micro stamps simd_supported into every raw file — reuse
# the predict run's); each supported lane re-runs the tracked kernels with
# MEMFP_SIMD forced, so the file shows the vector lanes' worth over the
# scalar reference on identical hardware/load.
SUPPORTED="$(python3 -c \
  "import json,sys; print(json.load(open(sys.argv[1]))['context']['simd_supported'])" \
  "$RAW_PREDICT")"
SIMD_RAWS=()
for level in $SUPPORTED; do
  raw="$BUILD/bench_simd_${level}_raw.json"
  MEMFP_SIMD="$level" "$BUILD/bench/bench_micro" \
    --benchmark_filter='^BM_(TreeTrain|ForestPredict|GbdtPredict)/rows:50000$|^BM_(Gemm|GemmBt)$' \
    --benchmark_out="$raw" --benchmark_out_format=json >&2
  SIMD_RAWS+=("$raw")
done

python3 - "$ROOT/BENCH_simd.json" "${SIMD_RAWS[@]}" <<'EOF'
import json
import sys

out_path, raw_paths = sys.argv[1], sys.argv[2:]

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

levels_ms = {}
context = {}
for raw_path in raw_paths:
    with open(raw_path) as f:
        raw = json.load(f)
    ctx = raw.get("context", {})
    level = ctx.get("simd_level", "unknown")
    if not context:
        context = ctx
    timings = {}
    for entry in raw.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue
        scale = UNIT_TO_MS[entry.get("time_unit", "ns")]
        timings[entry["name"]] = round(entry["real_time"] * scale, 4)
    levels_ms[level] = timings

scalar = levels_ms.get("scalar", {})
speedup = {
    level: {
        name: round(scalar[name] / ms, 2)
        for name, ms in timings.items()
        if scalar.get(name)
    }
    for level, timings in levels_ms.items()
    if level != "scalar"
}

out = {
    "generated_by": "tools/run_benches.sh",
    "threads": 1,
    "context": context,
    "cpu_features": context.get("cpu_features", ""),
    "simd_supported": context.get("simd_supported", ""),
    "levels_ms": levels_ms,
    "speedup_vs_scalar": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(speedup, indent=2, sort_keys=True))
EOF

cmake --build "$BUILD" -j --target bench_fleet
"$BUILD/bench/bench_fleet" "$ROOT/BENCH_fleet.json" >&2
python3 -c "import json,sys; print(json.dumps(json.load(open(sys.argv[1]))['points'], indent=2))" "$ROOT/BENCH_fleet.json"

cmake --build "$BUILD" -j --target bench_serving
"$BUILD/bench/bench_serving" "$ROOT/BENCH_serving.json" >&2
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); print(json.dumps({'points': d['points'], 'storm': d['storm']}, indent=2))" "$ROOT/BENCH_serving.json"

cmake --build "$BUILD" -j --target bench_campaign
"$BUILD/bench/bench_campaign" "$ROOT/BENCH_campaign.json" >&2
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); print(json.dumps({'naive': d['naive'], 'shared': d['shared'], 'speedup': d['speedup']}, indent=2))" "$ROOT/BENCH_campaign.json"
