#!/usr/bin/env bash
# Runs the training micro-benches (BM_TreeTrain / BM_GbdtTrain row-count
# scaling) and emits BENCH_train.json at the repo root: the pre-refactor
# single-thread baseline, the current numbers, and the speedup per row
# count. This file seeds the perf trajectory for the binned-training work —
# rerun after any change to src/ml/{binning,decision_tree}*.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT"
fi

# Never record numbers from an instrumented build: sanitizers are 2-20x
# slowdowns, so the "speedup" column would be garbage that silently poisons
# the perf trajectory in BENCH_train.json.
SANITIZE="$(grep -E '^MEMFP_SANITIZE:' "$BUILD/CMakeCache.txt" | cut -d= -f2-)"
if [ -n "$SANITIZE" ]; then
  echo "refusing to record benchmarks: $BUILD is a sanitizer build" \
       "(MEMFP_SANITIZE=$SANITIZE); use a plain build dir" >&2
  exit 1
fi

cmake --build "$BUILD" -j --target bench_micro

RAW="$BUILD/bench_train_raw.json"
"$BUILD/bench/bench_micro" \
  --benchmark_filter='^BM_(GbdtTrain|TreeTrain)/' \
  --benchmark_out="$RAW" --benchmark_out_format=json >&2

python3 - "$RAW" "$ROOT/BENCH_train.json" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Pre-refactor single-thread wall times (ms, best of 3) measured at commit
# 2ff4ea7 with the same generators/params as the benches: 30 features,
# GBDT 30 rounds / single default classification tree.
BASELINE_MS = {
    "BM_GbdtTrain": {"2000": 31.28, "10000": 139.64, "50000": 994.61},
    "BM_TreeTrain": {"2000": 1.01, "10000": 7.87, "50000": 49.08},
}

current = {}
for entry in raw.get("benchmarks", []):
    name = entry["name"]  # e.g. BM_GbdtTrain/rows:50000
    if entry.get("run_type", "iteration") != "iteration":
        continue
    bench, _, arg = name.partition("/rows:")
    if bench not in BASELINE_MS or not arg:
        continue
    current.setdefault(bench, {})[arg] = round(entry["real_time"], 2)

speedup = {}
for bench, rows in BASELINE_MS.items():
    for arg, base in rows.items():
        now = current.get(bench, {}).get(arg)
        if now:
            speedup.setdefault(bench, {})[arg] = round(base / now, 2)

out = {
    "generated_by": "tools/run_benches.sh",
    "threads": 1,
    "context": raw.get("context", {}),
    "baseline_commit": "2ff4ea7",
    "baseline_ms": BASELINE_MS,
    "current_ms": current,
    "speedup": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(speedup, indent=2, sort_keys=True))
EOF
