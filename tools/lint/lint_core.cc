#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace memfp::lint {
namespace {

constexpr std::size_t npos = std::string::npos;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A file split into comment-and-literal-blanked code lines plus the
/// comment texts (for suppression parsing). 1-based line numbers.
struct Scrubbed {
  std::vector<std::string> code;
  std::vector<std::pair<int, std::string>> comments;
};

/// Strips comments, string literals (including raw strings) and char
/// literals. Literal bodies simply vanish from the code view; comments are
/// collected verbatim with the line they start on.
Scrubbed scrub(std::string_view text) {
  Scrubbed out;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string line;
  std::string comment;
  std::string raw_terminator;  // ")delim\"" of the active raw string
  int line_no = 1;
  int comment_line = 1;

  const auto flush_line = [&] {
    out.code.push_back(line);
    line.clear();
    ++line_no;
  };
  const auto flush_comment = [&] {
    out.comments.emplace_back(comment_line, comment);
    comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line_no;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line_no;
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R' &&
                   (i < 2 || !ident_char(text[i - 2]))) {
          // Raw string: R"delim( body )delim"
          std::size_t open = text.find('(', i + 1);
          if (open == npos) open = text.size();
          raw_terminator = ")";
          raw_terminator.append(text.substr(i + 1, open - i - 1));
          raw_terminator.push_back('"');
          line.pop_back();  // drop the R prefix from the code view
          i = open;         // skip delimiter; body consumed in kRawString
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (line.empty() || !ident_char(line.back()))) {
          // The look-behind keeps digit separators (1'000'000) in code.
          state = State::kChar;
        } else if (c == '\n') {
          flush_line();
        } else {
          line.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          flush_comment();
          flush_line();
          state = State::kCode;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          ++i;
          state = State::kCode;
        } else if (c == '\n') {
          flush_line();
        } else {
          comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c == '\n') {
          flush_line();  // unterminated; keep line numbers aligned
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'' || c == '\n') {
          if (c == '\n') flush_line();
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == '\n') {
          flush_line();
        } else if (c == raw_terminator.front() &&
                   text.compare(i, raw_terminator.size(), raw_terminator) ==
                       0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  out.code.push_back(line);
  return out;
}

/// First occurrence of `word` in `line` at or after `from` with identifier
/// boundaries on both sides.
std::size_t find_word(const std::string& line, std::string_view word,
                      std::size_t from = 0) {
  while (from <= line.size()) {
    const std::size_t p = line.find(word, from);
    if (p == npos) return npos;
    const std::size_t end = p + word.size();
    const bool left_ok = p == 0 || !ident_char(line[p - 1]);
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
  return npos;
}

/// Whether `word` occurs in `line` immediately followed (modulo spaces) by
/// `follower`.
bool word_followed_by(const std::string& line, std::string_view word,
                      char follower, std::size_t* at = nullptr) {
  std::size_t from = 0;
  while (true) {
    const std::size_t p = find_word(line, word, from);
    if (p == npos) return false;
    std::size_t j = p + word.size();
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && line[j] == follower) {
      if (at != nullptr) *at = p;
      return true;
    }
    from = p + 1;
  }
}

char prev_nonspace(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
  }
  return '\0';
}

struct Allow {
  int line = 0;
  std::string rule;
  bool used = false;
};

struct Linter {
  std::string path;
  bool header = false;
  bool in_src = false;
  bool in_tests = false;
  bool in_bench = false;
  Scrubbed scrubbed;
  std::vector<Allow> allows;
  std::vector<Violation> violations;

  void report(int line, const std::string& rule, std::string message) {
    for (Allow& allow : allows) {
      if (allow.rule == rule &&
          (allow.line == line || allow.line == line - 1)) {
        allow.used = true;
        return;
      }
    }
    violations.push_back({path, line, rule, std::move(message)});
  }
};

bool known_rule(const std::string& rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

/// Parses `memfp-lint: allow(<rule>): <justification>` suppressions out of
/// the comment stream. Malformed suppressions are violations themselves.
void collect_allows(Linter& lint) {
  for (const auto& [line, text] : lint.scrubbed.comments) {
    const std::size_t tag = text.find("memfp-lint:");
    if (tag == npos) continue;
    const std::size_t open = text.find("allow(", tag);
    const std::size_t close =
        open == npos ? npos : text.find(')', open + 6);
    if (open == npos || close == npos) {
      lint.violations.push_back(
          {lint.path, line, "lint-syntax",
           "malformed memfp-lint comment; expected "
           "'memfp-lint: allow(<rule>): <justification>'"});
      continue;
    }
    const std::string rule = text.substr(open + 6, close - open - 6);
    if (!known_rule(rule)) {
      lint.violations.push_back({lint.path, line, "unknown-rule",
                                 "allow() names unknown rule '" + rule +
                                     "'"});
      continue;
    }
    std::size_t j = close + 1;
    while (j < text.size() && (text[j] == ' ' || text[j] == ':')) ++j;
    const bool has_colon = text.find(':', close) != npos;
    if (!has_colon || j >= text.size()) {
      lint.violations.push_back(
          {lint.path, line, "missing-justification",
           "allow(" + rule + ") requires a justification: "
           "'memfp-lint: allow(" + rule + "): <why this is safe>'"});
      continue;
    }
    lint.allows.push_back({line, rule, false});
  }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_unseeded_random(Linter& lint) {
  if (!(lint.in_src || lint.in_tests || lint.in_bench)) return;
  if (lint.path == "src/common/rng.h" || lint.path == "src/common/rng.cc") {
    return;  // the one sanctioned randomness source
  }
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    const int n = static_cast<int>(i) + 1;
    const char* found = nullptr;
    if (find_word(line, "random_device") != npos) {
      found = "std::random_device";
    } else if (find_word(line, "mt19937") != npos ||
               find_word(line, "mt19937_64") != npos) {
      found = "std::mt19937";
    } else if (find_word(line, "default_random_engine") != npos) {
      found = "std::default_random_engine";
    } else if (find_word(line, "srand") != npos) {
      found = "srand()";
    } else if (word_followed_by(line, "rand", '(')) {
      found = "rand()";
    }
    if (found != nullptr) {
      lint.report(n, "unseeded-random",
                  std::string(found) +
                      " breaks seed-reproducibility; draw from memfp::Rng "
                      "(common/rng.h) instead");
    }
  }
}

void rule_wall_clock(Linter& lint) {
  if (!lint.in_src) return;
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    const int n = static_cast<int>(i) + 1;
    const char* found = nullptr;
    for (const char* clock : {"system_clock", "steady_clock",
                              "high_resolution_clock", "gettimeofday",
                              "clock_gettime"}) {
      if (find_word(line, clock) != npos) {
        found = clock;
        break;
      }
    }
    std::size_t at = npos;
    if (found == nullptr && word_followed_by(line, "time", '(', &at) &&
        prev_nonspace(line, at) != '.') {
      found = "time()";
    }
    if (found == nullptr && word_followed_by(line, "clock", '(', &at) &&
        prev_nonspace(line, at) != '.') {
      found = "clock()";
    }
    if (found != nullptr) {
      lint.report(n, "wall-clock",
                  std::string(found) +
                      " reads the wall clock; model-affecting code runs on "
                      "SimTime (common/time.h) so runs replay exactly");
    }
  }
}

void rule_unordered_iter(Linter& lint) {
  if (!lint.in_src) return;
  // Pass 1: names declared with an unordered container type in this file.
  std::vector<std::string> unordered_names;
  for (const std::string& line : lint.scrubbed.code) {
    for (std::size_t from = 0;;) {
      std::size_t p = find_word(line, "unordered_map", from);
      if (p == npos) p = find_word(line, "unordered_set", from);
      if (p == npos) break;
      const std::size_t open = line.find('<', p);
      if (open == npos) break;
      int depth = 0;
      std::size_t j = open;
      for (; j < line.size(); ++j) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>' && --depth == 0) break;
      }
      if (j >= line.size()) break;  // template args continue past this line
      ++j;
      while (j < line.size() &&
             (line[j] == ' ' || line[j] == '&' || line[j] == '*')) {
        ++j;
      }
      // One or more comma-separated declarators: `... > neg, pos;`
      while (j < line.size()) {
        std::size_t name_end = j;
        while (name_end < line.size() && ident_char(line[name_end])) {
          ++name_end;
        }
        if (name_end == j) break;
        unordered_names.push_back(line.substr(j, name_end - j));
        j = name_end;
        while (j < line.size() && line[j] == ' ') ++j;
        if (j >= line.size() || line[j] != ',') break;
        ++j;
        while (j < line.size() && line[j] == ' ') ++j;
      }
      from = p + 1;
    }
  }
  // Pass 2: range-for statements whose range expression names one of them.
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    const std::size_t for_at = find_word(line, "for");
    if (for_at == npos) continue;
    const std::size_t open = line.find('(', for_at);
    if (open == npos) continue;
    // The range-for colon: depth-1 ':' that is not part of '::'.
    int depth = 0;
    std::size_t colon = npos;
    for (std::size_t j = open; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) break;
      if (c == ':' && depth == 1) {
        const bool double_colon =
            (j + 1 < line.size() && line[j + 1] == ':') ||
            (j > 0 && line[j - 1] == ':');
        if (!double_colon) {
          colon = j;
          break;
        }
      }
    }
    if (colon == npos) continue;
    const std::string range = line.substr(colon + 1);
    for (const std::string& name : unordered_names) {
      if (find_word(range, name) != npos) {
        lint.report(static_cast<int>(i) + 1, "unordered-iter",
                    "iterating '" + name +
                        "' (unordered container) has unspecified order; "
                        "sort first, or allow() with a justification that "
                        "the consumer is order-independent");
        break;
      }
    }
  }
}

void rule_bare_assert(Linter& lint) {
  if (!lint.in_src) return;
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    if (word_followed_by(lint.scrubbed.code[i], "assert", '(')) {
      lint.report(static_cast<int>(i) + 1, "bare-assert",
                  "assert() vanishes under NDEBUG (the default build); use "
                  "MEMFP_CHECK or MEMFP_DCHECK from common/check.h");
    }
  }
}

void rule_naked_new(Linter& lint) {
  if (!lint.in_src) return;
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    const int n = static_cast<int>(i) + 1;
    const std::size_t at_new = find_word(line, "new");
    if (at_new != npos) {
      lint.report(n, "naked-new",
                  "naked new; use std::make_unique/std::make_shared or a "
                  "container");
    }
    std::size_t from = 0;
    while (true) {
      const std::size_t at = find_word(line, "delete", from);
      if (at == npos) break;
      const char prev = prev_nonspace(line, at);
      const bool deleted_fn = prev == '=';  // = delete;
      // operator delete declarations: previous word is "operator".
      std::size_t back = at;
      while (back > 0 && line[back - 1] == ' ') --back;
      const bool op_decl =
          back >= 8 && line.compare(back - 8, 8, "operator") == 0;
      if (!deleted_fn && !op_decl) {
        lint.report(n, "naked-new",
                    "naked delete; owning pointers belong in "
                    "std::unique_ptr");
        break;
      }
      from = at + 1;
    }
  }
}

void rule_thread_spawn(Linter& lint) {
  if (!lint.in_src) return;
  if (lint.path == "src/common/thread_pool.h" ||
      lint.path == "src/common/thread_pool.cc") {
    return;  // the pool is the one sanctioned thread owner
  }
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    std::size_t from = 0;
    while (true) {
      const std::size_t p = line.find("std::thread", from);
      if (p == npos) break;
      const std::size_t end = p + 11;
      // std::thread::id / std::thread::hardware_concurrency and identifiers
      // like std::thread_pool are not spawns.
      if (end >= line.size() ||
          (line[end] != ':' && !ident_char(line[end]))) {
        lint.report(static_cast<int>(i) + 1, "thread-spawn",
                    "std::thread outside common/thread_pool.*; all "
                    "parallelism goes through ThreadPool so determinism "
                    "and shutdown stay centralized");
        break;
      }
      from = p + 1;
    }
  }
}

void rule_pragma_once(Linter& lint) {
  if (!lint.header || !(lint.in_src || lint.in_tests || lint.in_bench)) {
    return;
  }
  int first_code_line = 1;
  bool seen_code = false;
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    std::size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 7, "#pragma") == 0 &&
        line.find("once", j) != npos) {
      return;
    }
    if (!seen_code && j < line.size()) {
      seen_code = true;
      first_code_line = static_cast<int>(i) + 1;
    }
  }
  // Anchor at the first code line so a suppression comment above it works.
  lint.report(first_code_line, "pragma-once",
              "header is missing #pragma once");
}

struct BannedInclude {
  const char* name;
  bool headers_only;
  const char* why;
};

void rule_banned_include(Linter& lint) {
  if (!lint.in_src) return;
  static const BannedInclude kBanned[] = {
      {"random", false,
       "<random> distributions are implementation-defined; use "
       "memfp::Rng (common/rng.h)"},
      {"cassert", false,
       "<cassert> is stripped in release builds; use common/check.h"},
      {"assert.h", false,
       "<assert.h> is stripped in release builds; use common/check.h"},
      {"ctime", false,
       "<ctime> is wall-clock; the library runs on SimTime "
       "(common/time.h)"},
      {"iostream", true,
       "<iostream> in a header drags iostream static initializers into "
       "every TU; log via common/logging.h"},
  };
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    std::size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 8, "#include") != 0) continue;
    const std::size_t open = line.find('<', j);
    const std::size_t close = line.find('>', open == npos ? j : open);
    if (open == npos || close == npos) continue;
    const std::string included = line.substr(open + 1, close - open - 1);
    for (const BannedInclude& banned : kBanned) {
      if (included == banned.name && (!banned.headers_only || lint.header)) {
        lint.report(static_cast<int>(i) + 1, "banned-include",
                    "#include <" + included + "> is banned: " + banned.why);
      }
    }
  }
}

void rule_arch_intrinsics(Linter& lint) {
  if (!(lint.in_src || lint.in_tests || lint.in_bench)) return;
  if (lint.path.starts_with("src/common/simd")) {
    return;  // the dispatch seam: the per-lane kernel TUs and their headers
  }
  static const char* kBannedIncludes[] = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "wmmintrin.h",
      "ammintrin.h", "arm_neon.h",  "arm_sve.h",
  };
  // Intrinsic name/type prefixes: a token starting with one of these is an
  // architecture-specific vector op even though the suffix varies.
  static const char* kBannedPrefixes[] = {
      "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512",
      "vld1",  "vst1",
  };
  static const char* kBannedTokens[] = {"float32x4_t", "float64x2_t"};
  for (std::size_t i = 0; i < lint.scrubbed.code.size(); ++i) {
    const std::string& line = lint.scrubbed.code[i];
    const int n = static_cast<int>(i) + 1;
    std::size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 8, "#include") == 0) {
      const std::size_t open = line.find_first_of("<\"", j);
      const std::size_t close =
          open == npos ? npos
                       : line.find_first_of(">\"", open + 1);
      if (open != npos && close != npos) {
        const std::string included = line.substr(open + 1, close - open - 1);
        for (const char* banned : kBannedIncludes) {
          if (included == banned) {
            lint.report(n, "arch-intrinsics",
                        "#include <" + included +
                            "> outside src/common/simd*: arch-specific "
                            "loops go behind the simd::KernelTable dispatch "
                            "seam (common/simd.h)");
          }
        }
      }
      continue;
    }
    const char* found = nullptr;
    for (const char* prefix : kBannedPrefixes) {
      std::size_t from = 0;
      while (from < line.size()) {
        const std::size_t p = line.find(prefix, from);
        if (p == npos) break;
        if (p == 0 || !ident_char(line[p - 1])) {
          found = prefix;
          break;
        }
        from = p + 1;
      }
      if (found != nullptr) break;
    }
    if (found == nullptr) {
      for (const char* token : kBannedTokens) {
        if (find_word(line, token) != npos) {
          found = token;
          break;
        }
      }
    }
    if (found != nullptr) {
      lint.report(n, "arch-intrinsics",
                  std::string("raw ") + found +
                      "… intrinsic outside src/common/simd*: port the loop "
                      "to a KernelTable entry so every architecture lane "
                      "stays behind one dispatch seam (common/simd.h)");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "unseeded-random", "wall-clock",   "unordered-iter",
      "bare-assert",     "naked-new",    "thread-spawn",
      "pragma-once",     "banned-include", "arch-intrinsics",
  };
  return kNames;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content) {
  Linter lint;
  lint.path = std::filesystem::path(std::string(path)).generic_string();
  if (lint.path.starts_with("./")) lint.path.erase(0, 2);
  lint.header = lint.path.ends_with(".h");
  lint.in_src = lint.path.starts_with("src/");
  lint.in_tests = lint.path.starts_with("tests/");
  lint.in_bench = lint.path.starts_with("bench/");
  lint.scrubbed = scrub(content);

  collect_allows(lint);
  rule_unseeded_random(lint);
  rule_wall_clock(lint);
  rule_unordered_iter(lint);
  rule_bare_assert(lint);
  rule_naked_new(lint);
  rule_thread_spawn(lint);
  rule_pragma_once(lint);
  rule_banned_include(lint);
  rule_arch_intrinsics(lint);

  for (const Allow& allow : lint.allows) {
    if (!allow.used) {
      lint.violations.push_back(
          {lint.path, allow.line, "unused-allow",
           "allow(" + allow.rule +
               ") suppresses nothing on this or the next line; delete the "
               "stale waiver"});
    }
  }
  std::sort(lint.violations.begin(), lint.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return lint.violations;
}

std::vector<Violation> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Violation> all;
  std::vector<fs::path> files;
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::proximate(file, root).generic_string();
    std::vector<Violation> one = lint_source(rel, buffer.str());
    all.insert(all.end(), std::make_move_iterator(one.begin()),
               std::make_move_iterator(one.end()));
  }
  return all;
}

std::string format(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
        << "\n";
  }
  return out.str();
}

}  // namespace memfp::lint
