#include "lint_core.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace memfp::lint {
namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is(const Token& t, std::string_view s) { return t.text == s; }

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Index of the token matching the opener at `open` ('(' / '[' / '{'),
/// or tokens.size() when unbalanced.
std::size_t match_balanced(const std::vector<Token>& toks, std::size_t open,
                           std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

const std::set<std::string, std::less<>>& assign_ops() {
  static const std::set<std::string, std::less<>> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return kOps;
}

/// Keywords that can open a statement but never a declaration's type.
const std::set<std::string, std::less<>>& stmt_keywords() {
  static const std::set<std::string, std::less<>> kWords = {
      "return", "delete", "throw",    "goto",  "case",  "break",
      "continue", "else",  "do",      "new",   "using", "typedef",
      "if",       "while", "switch",  "public", "private", "protected"};
  return kWords;
}

/// Type-prefix keywords a declaration may start with.
const std::set<std::string, std::less<>>& type_keywords() {
  static const std::set<std::string, std::less<>> kWords = {
      "const", "constexpr", "static", "auto",     "unsigned", "signed",
      "long",  "short",     "struct", "volatile", "typename", "register"};
  return kWords;
}

/// Skips a balanced template argument list; `i` points at '<'. Returns the
/// index one past the matching close ('>>' closes two levels).
std::size_t skip_template(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0 && t != "<") return i + 1;
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// Lambda parsing (parallel-capture, rng-discipline)
// ---------------------------------------------------------------------------

struct Capture {
  std::string name;     ///< empty for the defaults [&] / [=]
  bool by_ref = false;
  bool has_init = false;
  bool init_has_fork = false;  ///< init-capture expression calls fork()
};

struct Lambda {
  bool default_ref = false;
  bool default_copy = false;
  bool captures_this = false;
  std::vector<Capture> captures;
  std::vector<std::string> params;
  std::size_t intro = 0;       ///< index of '['
  std::size_t body_begin = 0;  ///< index of '{'
  std::size_t body_end = 0;    ///< index of matching '}'
};

/// Tries to parse a lambda whose introducer '[' is at `i`. Returns false
/// when the bracket is a subscript or the shape doesn't match.
bool parse_lambda(const std::vector<Token>& toks, std::size_t i,
                  Lambda& out) {
  if (i >= toks.size() || !is(toks[i], "[")) return false;
  // A lambda introducer can only appear where an expression starts; a
  // subscript always follows a value. This filter is heuristic but tight
  // enough: '[' after ident / ')' / ']' is a subscript.
  if (i > 0) {
    const Token& prev = toks[i - 1];
    if (is_ident(prev) || prev.kind == TokKind::kNumber ||
        is(prev, ")") || is(prev, "]")) {
      return false;
    }
  }
  const std::size_t close = match_balanced(toks, i, "[", "]");
  if (close >= toks.size()) return false;
  out = Lambda{};
  out.intro = i;
  // Split the capture list on top-level commas.
  std::size_t entry = i + 1;
  for (std::size_t j = i + 1; j <= close; ++j) {
    const bool at_end = j == close;
    if (!at_end && !is(toks[j], ",")) continue;
    if (entry < j) {
      Capture cap;
      std::size_t k = entry;
      if (is(toks[k], "&")) {
        cap.by_ref = true;
        ++k;
      } else if (is(toks[k], "=")) {
        out.default_copy = true;
        k = j;
      } else if (is(toks[k], "*")) {
        ++k;  // *this
      }
      if (k < j && is(toks[k], "this")) {
        out.captures_this = true;
        k = j;
      } else if (k < j && is_ident(toks[k])) {
        cap.name = toks[k].text;
        ++k;
        if (k < j && is(toks[k], "=")) {
          cap.has_init = true;
          for (std::size_t m = k + 1; m < j; ++m) {
            if (is(toks[m], "fork")) cap.init_has_fork = true;
          }
          k = j;
        }
      }
      if (k <= j && (cap.by_ref || !cap.name.empty())) {
        if (cap.by_ref && cap.name.empty()) {
          out.default_ref = true;
        } else {
          out.captures.push_back(std::move(cap));
        }
      }
    }
    entry = j + 1;
  }
  // Parameter list (optional for captureless-arg lambdas).
  std::size_t at = close + 1;
  if (at < toks.size() && is(toks[at], "(")) {
    const std::size_t params_close = match_balanced(toks, at, "(", ")");
    if (params_close >= toks.size()) return false;
    // Parameter name = last identifier of each top-level comma segment.
    std::string last;
    int depth = 0;
    for (std::size_t j = at + 1; j <= params_close; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "<" || t == "[") ++depth;
      if (t == ")" || t == ">" || t == "]") --depth;
      if (t == ">>") depth -= 2;
      if ((j == params_close && depth < 0) || (t == "," && depth == 0)) {
        if (!last.empty()) out.params.push_back(last);
        last.clear();
        continue;
      }
      if (is_ident(toks[j]) && depth == 0) last = toks[j].text;
    }
    at = params_close + 1;
  }
  // Skip specifiers / trailing return type up to the body.
  while (at < toks.size() && !is(toks[at], "{")) {
    if (is(toks[at], ";") || is(toks[at], ")") || is(toks[at], ",")) {
      return false;  // not a lambda after all (e.g. attribute, array decl)
    }
    ++at;
  }
  if (at >= toks.size()) return false;
  out.body_begin = at;
  out.body_end = match_balanced(toks, at, "{", "}");
  return out.body_end < toks.size();
}

/// Names declared inside [begin, end) — locals, for-init/range-for
/// variables, structured bindings, nested-lambda parameters. Heuristic:
/// at each statement boundary, a non-empty type prefix followed by
/// `name` and a declarator-ish token declares `name`.
std::set<std::string> collect_locals(const std::vector<Token>& toks,
                                     std::size_t begin, std::size_t end) {
  std::set<std::string> locals;
  const auto try_decl_at = [&](std::size_t j) {
    int prefix = 0;
    while (j < end) {
      const Token& t = toks[j];
      if (stmt_keywords().count(t.text) != 0) return;
      if (type_keywords().count(t.text) != 0) {
        ++prefix;
        ++j;
        continue;
      }
      if (is(t, "::")) {
        ++j;
        continue;
      }
      if (is(t, "&") || is(t, "*") || is(t, "&&")) {
        if (prefix == 0) return;
        ++j;
        continue;
      }
      if (is(t, "[") && prefix > 0) {
        // Structured binding: auto& [k, v] = / :
        const std::size_t close = match_balanced(toks, j, "[", "]");
        for (std::size_t m = j + 1; m < close && m < end; ++m) {
          if (is_ident(toks[m])) locals.insert(toks[m].text);
        }
        return;
      }
      if (!is_ident(t)) return;
      if (j + 1 >= end) return;
      const std::string& next = toks[j + 1].text;
      if (next == "<") {
        const std::size_t after = skip_template(toks, j + 1);
        if (after >= end) return;
        ++prefix;
        j = after;
        continue;
      }
      if (is_ident(toks[j + 1]) || next == "::" || next == "&" ||
          next == "*" || next == "&&") {
        ++prefix;
        ++j;
        continue;
      }
      if (prefix > 0 && (next == "=" || next == ";" || next == "{" ||
                         next == "(" || next == "[" || next == ":" ||
                         next == ",")) {
        locals.insert(t.text);
      }
      return;
    }
  };
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is(t, "{") || is(t, "}") || is(t, ";")) {
      try_decl_at(i + 1);
    } else if (is(t, "for") && i + 1 < end && is(toks[i + 1], "(")) {
      try_decl_at(i + 2);
    } else if (is(t, "[")) {
      Lambda nested;
      if (parse_lambda(toks, i, nested)) {
        for (const std::string& p : nested.params) locals.insert(p);
      }
    }
  }
  try_decl_at(begin);  // token right after the body '{' is also a boundary
  if (begin < end && is(toks[begin], "{")) try_decl_at(begin + 1);
  return locals;
}

/// Lambdas passed as arguments to the deterministic pool's entry points.
std::vector<Lambda> parallel_lambdas(const std::vector<Token>& toks) {
  std::vector<Lambda> out;
  std::set<std::size_t> seen;  // by introducer index
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& name = toks[i].text;
    if (name != "parallel_for" && name != "parallel_for_chunks" &&
        name != "parallel_reduce") {
      continue;
    }
    if (!is(toks[i + 1], "(")) continue;
    const std::size_t close = match_balanced(toks, i + 1, "(", ")");
    for (std::size_t j = i + 2; j < close; ++j) {
      if (!is(toks[j], "[") || seen.count(j) != 0) continue;
      Lambda lambda;
      if (parse_lambda(toks, j, lambda)) {
        seen.insert(j);
        out.push_back(std::move(lambda));
        j = out.back().body_end;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file lint state
// ---------------------------------------------------------------------------

struct Allow {
  int line = 0;
  std::string rule;
  bool used = false;
};

struct Linter {
  const ProjectGraph* graph = nullptr;
  const FileNode* file = nullptr;
  std::vector<Allow> allows;
  std::vector<Violation> violations;

  const std::vector<Token>& toks() const { return file->lexed.tokens; }

  void report(int line, int col, const std::string& rule,
              std::string message) {
    for (Allow& allow : allows) {
      if (allow.rule == rule &&
          (allow.line == line || allow.line == line - 1)) {
        allow.used = true;
        return;
      }
    }
    violations.push_back({file->path, line, col, rule, std::move(message)});
  }

  void report(const Token& t, const std::string& rule, std::string message) {
    report(t.line, t.col, rule, std::move(message));
  }
};

bool known_rule(const std::string& rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

/// Parses `memfp-lint: allow(<rule>): <justification>` suppressions out of
/// the comment stream. Malformed suppressions are violations themselves.
void collect_allows(Linter& lint) {
  for (const auto& [line, text] : lint.file->lexed.comments) {
    const std::size_t tag = text.find("memfp-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t open = text.find("allow(", tag);
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : text.find(')', open + 6);
    if (open == std::string::npos || close == std::string::npos) {
      lint.violations.push_back(
          {lint.file->path, line, 1, "lint-syntax",
           "malformed memfp-lint comment; expected "
           "'memfp-lint: allow(<rule>): <justification>'"});
      continue;
    }
    const std::string rule = text.substr(open + 6, close - open - 6);
    if (!known_rule(rule)) {
      lint.violations.push_back({lint.file->path, line, 1, "unknown-rule",
                                 "allow() names unknown rule '" + rule +
                                     "'"});
      continue;
    }
    std::size_t j = close + 1;
    while (j < text.size() && (text[j] == ' ' || text[j] == ':')) ++j;
    const bool has_colon = text.find(':', close) != std::string::npos;
    if (!has_colon || j >= text.size()) {
      lint.violations.push_back(
          {lint.file->path, line, 1, "missing-justification",
           "allow(" + rule + ") requires a justification: "
           "'memfp-lint: allow(" + rule + "): <why this is safe>'"});
      continue;
    }
    lint.allows.push_back({line, rule, false});
  }
}

// ---------------------------------------------------------------------------
// Per-file rules (token stream)
// ---------------------------------------------------------------------------

void rule_unseeded_random(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!(f.in_src || f.in_tests || f.in_bench)) return;
  if (f.path == "src/common/rng.h" || f.path == "src/common/rng.cc") {
    return;  // the one sanctioned randomness source
  }
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& t = toks[i].text;
    const char* found = nullptr;
    if (t == "random_device") {
      found = "std::random_device";
    } else if (t == "mt19937" || t == "mt19937_64") {
      found = "std::mt19937";
    } else if (t == "default_random_engine") {
      found = "std::default_random_engine";
    } else if (t == "srand") {
      found = "srand()";
    } else if (t == "rand" && i + 1 < toks.size() && is(toks[i + 1], "(")) {
      found = "rand()";
    }
    if (found != nullptr) {
      lint.report(toks[i], "unseeded-random",
                  std::string(found) +
                      " breaks seed-reproducibility; draw from memfp::Rng "
                      "(common/rng.h) instead");
    }
  }
}

void rule_wall_clock(Linter& lint) {
  if (!lint.file->in_src) return;
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& t = toks[i].text;
    const char* found = nullptr;
    for (const char* clock : {"system_clock", "steady_clock",
                              "high_resolution_clock", "gettimeofday",
                              "clock_gettime"}) {
      if (t == clock) {
        found = clock;
        break;
      }
    }
    if (found == nullptr && (t == "time" || t == "clock") &&
        i + 1 < toks.size() && is(toks[i + 1], "(") &&
        (i == 0 || (!is(toks[i - 1], ".") && !is(toks[i - 1], "->")))) {
      found = t == "time" ? "time()" : "clock()";
    }
    if (found != nullptr) {
      lint.report(toks[i], "wall-clock",
                  std::string(found) +
                      " reads the wall clock; model-affecting code runs on "
                      "SimTime (common/time.h) so runs replay exactly");
    }
  }
}

void rule_bare_assert(Linter& lint) {
  if (!lint.file->in_src) return;
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i]) && is(toks[i], "assert") && is(toks[i + 1], "(")) {
      lint.report(toks[i], "bare-assert",
                  "assert() vanishes under NDEBUG (the default build); use "
                  "MEMFP_CHECK or MEMFP_DCHECK from common/check.h");
    }
  }
}

void rule_naked_new(Linter& lint) {
  if (!lint.file->in_src) return;
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    if (is(toks[i], "new")) {
      lint.report(toks[i], "naked-new",
                  "naked new; use std::make_unique/std::make_shared or a "
                  "container");
    } else if (is(toks[i], "delete")) {
      const bool deleted_fn = i > 0 && is(toks[i - 1], "=");
      const bool op_decl = i > 0 && is(toks[i - 1], "operator");
      if (!deleted_fn && !op_decl) {
        lint.report(toks[i], "naked-new",
                    "naked delete; owning pointers belong in "
                    "std::unique_ptr");
      }
    }
  }
}

void rule_thread_spawn(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  if (f.path == "src/common/thread_pool.h" ||
      f.path == "src/common/thread_pool.cc") {
    return;  // the pool is the one sanctioned thread owner
  }
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (is(toks[i], "std") && is(toks[i + 1], "::") &&
        is(toks[i + 2], "thread")) {
      // std::thread::id / ::hardware_concurrency are not spawns.
      if (i + 3 < toks.size() && is(toks[i + 3], "::")) continue;
      lint.report(toks[i], "thread-spawn",
                  "std::thread outside common/thread_pool.*; all "
                  "parallelism goes through ThreadPool so determinism "
                  "and shutdown stay centralized");
    }
  }
}

void rule_pragma_once(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.header || !(f.in_src || f.in_tests || f.in_bench)) return;
  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (is(toks[i], "#") && is(toks[i + 1], "pragma") &&
        is(toks[i + 2], "once")) {
      return;
    }
  }
  // Anchor at the first token so a suppression comment above it works.
  const int line = toks.empty() ? 1 : toks.front().line;
  lint.report(line, 1, "pragma-once", "header is missing #pragma once");
}

struct BannedInclude {
  const char* name;
  bool headers_only;
  const char* why;
};

void rule_banned_include(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  static const BannedInclude kBanned[] = {
      {"random", false,
       "<random> distributions are implementation-defined; use "
       "memfp::Rng (common/rng.h)"},
      {"cassert", false,
       "<cassert> is stripped in release builds; use common/check.h"},
      {"assert.h", false,
       "<assert.h> is stripped in release builds; use common/check.h"},
      {"ctime", false,
       "<ctime> is wall-clock; the library runs on SimTime "
       "(common/time.h)"},
      {"iostream", true,
       "<iostream> in a header drags iostream static initializers into "
       "every TU; log via common/logging.h"},
  };
  for (const IncludeDirective& inc : f.lexed.includes) {
    if (!inc.angled) continue;
    for (const BannedInclude& banned : kBanned) {
      if (inc.path == banned.name && (!banned.headers_only || f.header)) {
        lint.report(inc.line, inc.col, "banned-include",
                    "#include <" + inc.path + "> is banned: " + banned.why);
      }
    }
  }
}

void rule_arch_intrinsics(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!(f.in_src || f.in_tests || f.in_bench)) return;
  if (f.path.starts_with("src/common/simd")) {
    return;  // the dispatch seam: the per-lane kernel TUs and their headers
  }
  static const char* kBannedIncludes[] = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "wmmintrin.h",
      "ammintrin.h", "arm_neon.h",  "arm_sve.h",
  };
  static const char* kBannedPrefixes[] = {
      "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512",
      "vld1",  "vst1",
  };
  static const char* kBannedTokens[] = {"float32x4_t", "float64x2_t"};
  for (const IncludeDirective& inc : f.lexed.includes) {
    for (const char* banned : kBannedIncludes) {
      if (inc.path == banned) {
        lint.report(inc.line, inc.col, "arch-intrinsics",
                    "#include <" + inc.path +
                        "> outside src/common/simd*: arch-specific "
                        "loops go behind the simd::KernelTable dispatch "
                        "seam (common/simd.h)");
      }
    }
  }
  int last_line = 0;  // one report per line: `__m256d v = _mm256_...()` is
                      // one finding, and one allow() waives the line
  for (const Token& t : lint.toks()) {
    if (!is_ident(t) || t.line == last_line) continue;
    const char* found = nullptr;
    for (const char* prefix : kBannedPrefixes) {
      if (t.text.starts_with(prefix)) {
        found = prefix;
        break;
      }
    }
    if (found == nullptr) {
      for (const char* token : kBannedTokens) {
        if (t.text == token) {
          found = token;
          break;
        }
      }
    }
    if (found != nullptr) {
      last_line = t.line;
      lint.report(t, "arch-intrinsics",
                  std::string("raw ") + found +
                      "… intrinsic outside src/common/simd*: port the loop "
                      "to a KernelTable entry so every architecture lane "
                      "stays behind one dispatch seam (common/simd.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// layering — the module DAG is machine-checked
// ---------------------------------------------------------------------------

/// The sanctioned DAG: common <- dram <- {sim, features} <- ml <-
/// {core, mlops, baseline}. A module may include itself and any strictly
/// lower layer; within a layer only the listed lateral edges are legal.
const std::map<std::string, int, std::less<>>& module_layers() {
  static const std::map<std::string, int, std::less<>> kLayers = {
      {"common", 0}, {"dram", 1},  {"sim", 2},      {"features", 2},
      {"ml", 3},     {"core", 4},  {"mlops", 4},    {"baseline", 4},
  };
  return kLayers;
}

const std::set<std::pair<std::string, std::string>>& lateral_edges() {
  // features->sim: DimmTrace is the shared telemetry shape both layers
  // speak. core->baseline: the pipeline evaluates the heuristic baseline.
  // mlops->core: CI/CD drives the experiment pipeline. core->mlops: the
  // campaign engine consumes mlops policy accounting header-inline (the
  // link graph stays acyclic: memfp_mlops links memfp_core, never the
  // reverse). The mlops<->core pair is cyclic at module granularity by
  // design; find_include_cycles still rejects any file-level cycle.
  static const std::set<std::pair<std::string, std::string>> kEdges = {
      {"features", "sim"},
      {"core", "baseline"},
      {"mlops", "core"},
      {"core", "mlops"}};
  return kEdges;
}

std::string dag_spelling() {
  return "common <- dram <- {sim, features} <- ml <- {core, mlops, "
         "baseline}";
}

void rule_layering(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  const auto& layers = module_layers();
  const auto self = layers.find(f.module);
  if (self == layers.end()) {
    const int line = f.lexed.tokens.empty() ? 1 : f.lexed.tokens[0].line;
    lint.report(line, 1, "layering",
                "module '" + f.module + "' is not in the layering DAG (" +
                    dag_spelling() +
                    "); add it to module_layers() in tools/lint with a "
                    "deliberate layer");
    return;
  }
  for (const IncludeDirective& inc : f.lexed.includes) {
    if (inc.angled) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // not a module-path include
    const std::string target = inc.path.substr(0, slash);
    if (target == f.module) continue;
    const auto other = layers.find(target);
    if (other == layers.end()) {
      lint.report(inc.line, inc.col, "layering",
                  "#include \"" + inc.path + "\": '" + target +
                      "' is not a module in the layering DAG (" +
                      dag_spelling() + ")");
      continue;
    }
    if (other->second > self->second) {
      lint.report(inc.line, inc.col, "layering",
                  "#include \"" + inc.path + "\" climbs the module DAG: " +
                      f.module + " (layer " +
                      std::to_string(self->second) + ") must not include " +
                      target + " (layer " + std::to_string(other->second) +
                      "); the DAG is " + dag_spelling());
      continue;
    }
    if (other->second == self->second &&
        lateral_edges().count({f.module, target}) == 0) {
      lint.report(inc.line, inc.col, "layering",
                  "#include \"" + inc.path + "\": sibling modules " +
                      f.module + " -> " + target +
                      " have no sanctioned edge in the module DAG (" +
                      dag_spelling() +
                      "); sanctioned lateral edges: features->sim, "
                      "core->baseline, mlops->core, core->mlops");
    }
  }
}

/// File-level include cycles (same-module header cycles included): DFS in
/// sorted file order, reporting the full offending include chain at the
/// back edge. Runs once per graph; violations are attached to the file
/// whose include closes the cycle so a local allow() can waive it.
void find_include_cycles(
    const ProjectGraph& graph,
    std::map<std::string, std::vector<Violation>>& by_file) {
  const std::vector<FileNode>& files = graph.files();
  enum class Mark { kWhite, kGrey, kBlack };
  std::vector<Mark> marks(files.size(), Mark::kWhite);
  std::vector<int> stack;

  const auto dfs = [&](auto&& dfs_ref, int at) -> void {
    marks[static_cast<std::size_t>(at)] = Mark::kGrey;
    stack.push_back(at);
    const FileNode& node = files[static_cast<std::size_t>(at)];
    for (std::size_t k = 0; k < node.resolved.size(); ++k) {
      const int next = node.resolved[k];
      if (next < 0) continue;
      const Mark mark = marks[static_cast<std::size_t>(next)];
      if (mark == Mark::kBlack) continue;
      if (mark == Mark::kGrey) {
        // Back edge: the chain from `next` around to `at` plus this edge.
        std::ostringstream chain;
        const auto from =
            std::find(stack.begin(), stack.end(), next);
        for (auto it = from; it != stack.end(); ++it) {
          chain << files[static_cast<std::size_t>(*it)].path << " -> ";
        }
        chain << files[static_cast<std::size_t>(next)].path;
        const IncludeDirective& inc = node.lexed.includes[k];
        by_file[node.path].push_back(
            {node.path, inc.line, inc.col, "layering",
             "include cycle: " + chain.str() +
                 "; the include DAG must stay acyclic"});
        continue;
      }
      dfs_ref(dfs_ref, next);
    }
    stack.pop_back();
    marks[static_cast<std::size_t>(at)] = Mark::kBlack;
  };
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].in_src && marks[i] == Mark::kWhite) {
      dfs(dfs, static_cast<int>(i));
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-iter — now cross-TU via the include DAG's symbol table
// ---------------------------------------------------------------------------

struct UnorderedName {
  std::string file;  ///< declaring file
  int line = 0;
};

void rule_unordered_iter(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  // Names visible here: declared in this file, or in any transitively
  // included header. Own-file declarations win the diagnostic location.
  std::map<std::string, UnorderedName, std::less<>> names;
  const int self = lint.graph->find(f.path);
  for (const int r : lint.graph->reachable(self)) {
    const FileNode& inc = lint.graph->files()[static_cast<std::size_t>(r)];
    for (const UnorderedDecl& d : inc.unordered) {
      names.emplace(d.name, UnorderedName{inc.path, d.line});
    }
  }
  for (const UnorderedDecl& d : f.unordered) {
    names.insert_or_assign(d.name, UnorderedName{f.path, d.line});
  }
  if (names.empty()) return;

  const std::vector<Token>& toks = lint.toks();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is(toks[i], "for") || !is(toks[i + 1], "(")) continue;
    const std::size_t close = match_balanced(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Find the range-for ':' — the first depth-1 ';' means a classic for.
    std::size_t colon = npos;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")") --depth;
      if (depth != 1) continue;
      if (t == ";") break;
      if (t == ":") {
        colon = j;
        break;
      }
    }
    if (colon == npos) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (!is_ident(toks[j])) continue;
      const auto hit = names.find(toks[j].text);
      if (hit == names.end()) continue;
      const bool member_access =
          j > colon + 1 && (is(toks[j - 1], ".") || is(toks[j - 1], "->"));
      // Bare names only bind to declarations from this file or a
      // module-sibling (its own header); a bare local in another module
      // shadowing a far-away member is not a finding.
      const bool near_decl =
          hit->second.file == f.path ||
          module_of(hit->second.file) == f.module;
      if (!member_access && !near_decl) continue;
      std::string where =
          hit->second.file == f.path
              ? "declared at line " + std::to_string(hit->second.line)
              : "declared at " + hit->second.file + ":" +
                    std::to_string(hit->second.line);
      lint.report(toks[i], "unordered-iter",
                  "iterating '" + toks[j].text +
                      "' (unordered container, " + where +
                      ") has unspecified order; sort first, or allow() "
                      "with a justification that the consumer is "
                      "order-independent");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// parallel-capture — shared-state writes inside pool lambdas
// ---------------------------------------------------------------------------

void rule_parallel_capture(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  if (f.path == "src/common/thread_pool.h" ||
      f.path == "src/common/thread_pool.cc") {
    return;  // the pool's own plumbing (index-slotted partials) is the seam
  }
  const std::vector<Token>& toks = lint.toks();
  for (const Lambda& lambda : parallel_lambdas(toks)) {
    const std::set<std::string> locals =
        collect_locals(toks, lambda.body_begin, lambda.body_end);
    std::set<std::string> ref_caps;
    std::set<std::string> copy_caps;
    for (const Capture& c : lambda.captures) {
      (c.by_ref ? ref_caps : copy_caps).insert(c.name);
    }
    const std::set<std::string> params(lambda.params.begin(),
                                       lambda.params.end());
    const auto indexish = [&](const std::string& name) {
      return params.count(name) != 0 || locals.count(name) != 0;
    };
    for (std::size_t i = lambda.body_begin + 1; i < lambda.body_end; ++i) {
      if (!is_ident(toks[i])) continue;
      if (i > 0 && (is(toks[i - 1], ".") || is(toks[i - 1], "->") ||
                    is(toks[i - 1], "::"))) {
        continue;  // not the head of a postfix chain
      }
      if (stmt_keywords().count(toks[i].text) != 0 ||
          type_keywords().count(toks[i].text) != 0) {
        continue;
      }
      // Walk the postfix chain: members and subscripts.
      std::size_t j = i + 1;
      bool indexed = false;
      std::string last_member;
      while (j < lambda.body_end) {
        if ((is(toks[j], ".") || is(toks[j], "->")) && j + 1 < toks.size() &&
            is_ident(toks[j + 1])) {
          last_member = toks[j + 1].text;
          j += 2;
          continue;
        }
        if (is(toks[j], "[")) {
          const std::size_t close = match_balanced(toks, j, "[", "]");
          for (std::size_t m = j + 1; m < close; ++m) {
            if (is_ident(toks[m]) && indexish(toks[m].text)) indexed = true;
          }
          j = close + 1;
          continue;
        }
        break;
      }
      if (j >= lambda.body_end) continue;
      bool write = false;
      const char* how = nullptr;
      if (assign_ops().count(toks[j].text) != 0) {
        write = true;
        how = "assigned";
      } else if ((last_member == "push_back" ||
                  last_member == "emplace_back") &&
                 is(toks[j], "(")) {
        write = true;
        how = "appended to";
      } else if (is(toks[j], "++") || is(toks[j], "--") ||
                 (i > 0 && (is(toks[i - 1], "++") || is(toks[i - 1], "--")))) {
        write = true;
        how = "incremented";
      }
      if (!write || indexed) continue;
      const std::string& name = toks[i].text;
      if (locals.count(name) != 0 || params.count(name) != 0 ||
          copy_caps.count(name) != 0) {
        continue;
      }
      const bool explicit_ref = ref_caps.count(name) != 0;
      const bool implicit_shared =
          lambda.default_ref || lambda.captures_this;
      if (!explicit_ref && !implicit_shared) continue;
      lint.report(toks[i], "parallel-capture",
                  "'" + name + "' is " + how +
                      " inside a ThreadPool parallel body but is shared "
                      "across tasks (captured by reference) and not "
                      "indexed by the induction variable — an "
                      "order-dependent race the byte-identical contract "
                      "forbids; write into an index-slotted output or use "
                      "parallel_reduce");
    }
  }
}

// ---------------------------------------------------------------------------
// rng-discipline — every stream flows through Rng::fork
// ---------------------------------------------------------------------------

void rule_rng_discipline(Linter& lint) {
  const FileNode& f = *lint.file;
  if (!f.in_src) return;
  if (f.path == "src/common/rng.h" || f.path == "src/common/rng.cc") return;
  const std::vector<Token>& toks = lint.toks();

  // Paren depth per token (computed once; parameter-list detection).
  std::vector<int> depth(toks.size(), 0);
  int d = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is(toks[i], "(")) ++d;
    depth[i] = d;
    if (is(toks[i], ")")) --d;
  }
  const std::vector<Lambda> parallel = parallel_lambdas(toks);
  const auto in_parallel_body = [&](std::size_t i) {
    for (const Lambda& l : parallel) {
      if (i > l.body_begin && i < l.body_end) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !is(toks[i], "Rng")) continue;
    if (i > 0 && (is(toks[i - 1], ".") || is(toks[i - 1], "->"))) continue;
    if (i + 1 >= toks.size() || !is_ident(toks[i + 1])) continue;
    const Token& name = toks[i + 1];
    const std::string after = i + 2 < toks.size() ? toks[i + 2].text : "";

    // `Rng name` directly inside a parameter list, with no & or *.
    if ((after == "," || after == ")") && depth[i] > 0) {
      lint.report(toks[i], "rng-discipline",
                  "parameter '" + name.text +
                      "' takes Rng by value: the callee advances a copy "
                      "and the caller's stream silently diverges; pass "
                      "Rng& or hand the callee its own rng.fork(i) child");
      continue;
    }
    // `Rng name = <expr>;` — the initializer must derive a fresh stream.
    if (after == "=") {
      bool derives = false;
      for (std::size_t j = i + 3; j < toks.size() && !is(toks[j], ";");
           ++j) {
        if (is(toks[j], "fork") || is(toks[j], "Rng")) {
          derives = true;
          break;
        }
      }
      if (!derives) {
        lint.report(toks[i], "rng-discipline",
                    "'" + name.text +
                        "' copies an existing Rng stream: both copies now "
                        "replay the same draws; derive an independent "
                        "child with rng.fork(index) instead");
        continue;
      }
    }
    // Direct construction inside a parallel body: the seed cannot depend
    // on anything deterministic-per-task unless it comes from fork.
    if ((after == "(" || after == "{") && in_parallel_body(i)) {
      lint.report(toks[i], "rng-discipline",
                  "'" + name.text +
                      "' constructs an Rng inside a ThreadPool parallel "
                      "body; per-task streams must be forked from the "
                      "parent via Rng::fork(index) so results are "
                      "byte-identical at any thread count");
    }
  }

  // Discarded fork: a statement that is just `chain.fork(...);`.
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (!is(toks[i], "fork") || !is(toks[i - 1], ".") ||
        !is(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_balanced(toks, i + 1, "(", ")");
    if (close + 1 >= toks.size() || !is(toks[close + 1], ";")) continue;
    // Walk back over the postfix chain to its head.
    std::size_t head = i - 1;
    while (head >= 2 && is_ident(toks[head - 1]) &&
           (is(toks[head - 2], ".") || is(toks[head - 2], "->"))) {
      head -= 2;
    }
    if (head < 1 || !is_ident(toks[head - 1])) continue;
    const std::size_t before = head >= 2 ? head - 2 : npos;
    const bool stmt_start =
        before == npos || is(toks[before], ";") || is(toks[before], "{") ||
        is(toks[before], "}");
    if (stmt_start) {
      lint.report(toks[i], "rng-discipline",
                  ".fork() result discarded: fork derives a child stream "
                  "AND advances the parent, so a dropped child is a "
                  "silent reseed; use the returned Rng or delete the "
                  "call");
    }
  }

  // Rng value-captured into any lambda (a copy that replays the parent).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is(toks[i], "[")) continue;
    Lambda lambda;
    if (!parse_lambda(toks, i, lambda)) continue;
    for (const Capture& cap : lambda.captures) {
      if (cap.by_ref || cap.name.empty()) continue;
      if (cap.has_init && cap.init_has_fork) continue;
      if (!cap.has_init &&
          std::binary_search(f.rng_names.begin(), f.rng_names.end(),
                             cap.name)) {
        lint.report(toks[i], "rng-discipline",
                    "lambda captures Rng '" + cap.name +
                        "' by value: the copy replays the parent's "
                        "stream; capture by reference or init-capture a "
                        "fork (rng = parent.fork(i))");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule registry / driver
// ---------------------------------------------------------------------------

void run_file_rules(Linter& lint) {
  rule_unseeded_random(lint);
  rule_wall_clock(lint);
  rule_unordered_iter(lint);
  rule_bare_assert(lint);
  rule_naked_new(lint);
  rule_thread_spawn(lint);
  rule_pragma_once(lint);
  rule_banned_include(lint);
  rule_arch_intrinsics(lint);
  rule_layering(lint);
  rule_parallel_capture(lint);
  rule_rng_discipline(lint);
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "unseeded-random", "wall-clock",     "unordered-iter",
      "bare-assert",     "naked-new",      "thread-spawn",
      "pragma-once",     "banned-include", "arch-intrinsics",
      "layering",        "parallel-capture", "rng-discipline",
  };
  return kNames;
}

std::vector<Violation> lint_graph(const ProjectGraph& graph) {
  std::map<std::string, std::vector<Violation>> cycle_reports;
  find_include_cycles(graph, cycle_reports);

  std::vector<Violation> all;
  for (const FileNode& file : graph.files()) {
    Linter lint;
    lint.graph = &graph;
    lint.file = &file;
    collect_allows(lint);
    run_file_rules(lint);
    const auto cycles = cycle_reports.find(file.path);
    if (cycles != cycle_reports.end()) {
      for (const Violation& v : cycles->second) {
        lint.report(v.line, v.col, v.rule, v.message);
      }
    }
    for (const Allow& allow : lint.allows) {
      if (!allow.used) {
        lint.violations.push_back(
            {file.path, allow.line, 1, "unused-allow",
             "allow(" + allow.rule +
                 ") suppresses nothing on this or the next line; delete "
                 "the stale waiver"});
      }
    }
    std::sort(lint.violations.begin(), lint.violations.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.line, a.col, a.rule) <
                       std::tie(b.line, b.col, b.rule);
              });
    all.insert(all.end(),
               std::make_move_iterator(lint.violations.begin()),
               std::make_move_iterator(lint.violations.end()));
  }
  return all;
}

std::vector<Violation> lint_files(
    std::vector<std::pair<std::string, std::string>> sources) {
  return lint_graph(ProjectGraph::build(std::move(sources)));
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content) {
  return lint_files({{std::string(path), std::string(content)}});
}

std::vector<std::pair<std::string, std::string>> read_tree(
    const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(paths.size());
  for (const fs::path& file : paths) {
    std::ifstream in(file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(fs::proximate(file, root).generic_string(),
                         buffer.str());
  }
  return sources;
}

std::vector<Violation> lint_tree(const std::string& root) {
  return lint_files(read_tree(root));
}

std::string format(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ":" << v.col << ": [" << v.rule
        << "] " << v.message << "\n";
  }
  return out.str();
}

}  // namespace memfp::lint
