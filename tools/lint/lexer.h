// memfp-lint v2 tokenizer: a real lexical pass over one translation unit.
//
// v1 blanked comments and literals and then regex-matched per line, which
// meant every rule was blind to constructs that span lines (a template
// argument list wrapped by clang-format, a lambda capture list broken at a
// comma) and could not report a column. The lexer produces the three
// streams the analyzer consumes instead:
//
//   * tokens    — identifiers, numbers, punctuation, string/char literals,
//                 each stamped with its 1-based line and column. Multi-char
//                 operators (::, ->, +=, >>, ...) arrive as single tokens,
//                 so "a >> b" and nested-template ">>" are distinguishable
//                 by context, and "==" can never be mistaken for "=".
//   * comments  — verbatim comment texts with their starting line, feeding
//                 the `memfp-lint: allow(...)` suppression parser.
//   * includes  — #include directives with the header-name captured as one
//                 unit (the lexer never tokenizes "<ml/model.h>" into
//                 operator soup), feeding the project include graph and the
//                 include-based rules.
//
// The lexer handles raw strings (R"delim(...)delim"), encoding prefixes
// (u8R"", L'x'), digit separators (1'000'000), backslash-newline splices
// inside macro definitions (line numbers stay aligned with the physical
// file), and preprocessor directives. It does not expand macros or track
// conditional compilation — rules see every branch of an #if, which is the
// conservative direction for a hygiene checker.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace memfp::lint {

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< pp-number (integer, float, with separators/suffixes)
  kPunct,   ///< operator / punctuator, longest-match
  kString,  ///< string literal (any prefix, raw or not); text is ""
  kChar,    ///< character literal; text is ""
  kHeader,  ///< header-name of an #include; text is the path inside <> or ""
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;  ///< 1-based physical line of the first character
  int col = 1;   ///< 1-based byte column of the first character
};

struct Comment {
  int line = 1;  ///< line the comment starts on
  std::string text;
};

struct IncludeDirective {
  std::string path;     ///< header-name, e.g. "ml/model.h" or "vector"
  bool angled = false;  ///< <...> (true) vs "..." (false)
  int line = 1;
  int col = 1;  ///< column of the '#'
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes one file. Never fails: unterminated literals end at the next
/// newline (line numbers stay aligned), unknown bytes become 1-char puncts.
Lexed lex(std::string_view text);

}  // namespace memfp::lint
