#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace memfp::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest first within each length class.
constexpr const char* kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr const char* kPunct2[] = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "##", ".*",
};

/// Cursor over the raw text that splices backslash-newline (the physical
/// line count still advances) and tracks line/column.
struct Cursor {
  std::string_view text;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  bool done() const { return i >= text.size(); }

  /// Current character after splice processing; '\0' at EOF.
  char peek(std::size_t ahead = 0) {
    splice();
    std::size_t j = i;
    int skip = static_cast<int>(ahead);
    while (skip > 0 && j < text.size()) {
      ++j;
      while (j + 1 < text.size() && text[j] == '\\' &&
             (text[j + 1] == '\n' ||
              (text[j + 1] == '\r' && j + 2 < text.size() &&
               text[j + 2] == '\n'))) {
        j += text[j + 1] == '\r' ? 3 : 2;
      }
      --skip;
    }
    return j < text.size() ? text[j] : '\0';
  }

  /// Consumes one character (after splice processing).
  char advance() {
    splice();
    if (done()) return '\0';
    const char c = text[i++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }

 private:
  /// Skips any backslash-newline splices at the cursor.
  void splice() {
    while (i + 1 < text.size() && text[i] == '\\') {
      if (text[i + 1] == '\n') {
        i += 2;
      } else if (text[i + 1] == '\r' && i + 2 < text.size() &&
                 text[i + 2] == '\n') {
        i += 3;
      } else {
        return;
      }
      ++line;
      col = 1;
    }
  }
};

struct Lexer {
  Cursor cur;
  Lexed out;
  bool at_line_start = true;  ///< no token yet on this logical line

  void push(TokKind kind, std::string text, int line, int col) {
    out.tokens.push_back({kind, std::move(text), line, col});
    at_line_start = false;
  }

  void run() {
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '\n') {
        cur.advance();
        at_line_start = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        cur.advance();
        continue;
      }
      if (c == '/' && cur.peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && cur.peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start) {
        directive();
        continue;
      }
      if (ident_start(c)) {
        identifier_or_literal();
        continue;
      }
      if (digit(c) || (c == '.' && digit(cur.peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(false);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
  }

  void line_comment() {
    const int line = cur.line;
    cur.advance();
    cur.advance();  // //
    std::string text;
    while (!cur.done() && cur.peek() != '\n') text.push_back(cur.advance());
    out.comments.push_back({line, std::move(text)});
  }

  void block_comment() {
    int line = cur.line;
    cur.advance();
    cur.advance();  // /*
    std::string text;
    while (!cur.done()) {
      if (cur.peek() == '*' && cur.peek(1) == '/') {
        cur.advance();
        cur.advance();
        break;
      }
      const char c = cur.advance();
      if (c == '\n') {
        // Each physical line of a block comment is its own entry, so
        // per-line allow() anchoring works the same as for // comments.
        out.comments.push_back({line, std::move(text)});
        text.clear();
        line = cur.line;
      } else {
        text.push_back(c);
      }
    }
    out.comments.push_back({line, std::move(text)});
  }

  /// Preprocessor directive. #include captures a header-name token; every
  /// other directive lexes its tokens normally (so `#pragma once` is the
  /// token sequence `#` `pragma` `once`).
  void directive() {
    const int line = cur.line;
    const int col = cur.col;
    cur.advance();  // #
    push(TokKind::kPunct, "#", line, col);
    // Peek the directive name without consuming non-include directives.
    while (cur.peek() == ' ' || cur.peek() == '\t') cur.advance();
    if (!ident_start(cur.peek())) return;
    const int name_line = cur.line;
    const int name_col = cur.col;
    std::string name;
    while (ident_char(cur.peek())) name.push_back(cur.advance());
    push(TokKind::kIdent, name, name_line, name_col);
    if (name != "include") return;
    while (cur.peek() == ' ' || cur.peek() == '\t') cur.advance();
    const char open = cur.peek();
    if (open != '<' && open != '"') return;
    const char close = open == '<' ? '>' : '"';
    const int h_line = cur.line;
    const int h_col = cur.col;
    cur.advance();
    std::string path;
    while (!cur.done() && cur.peek() != close && cur.peek() != '\n') {
      path.push_back(cur.advance());
    }
    if (cur.peek() == close) cur.advance();
    out.includes.push_back({path, open == '<', line, col});
    push(TokKind::kHeader, std::move(path), h_line, h_col);
  }

  /// Identifier, or a string/char literal with an encoding prefix
  /// (u8"", L'x', R"()", u8R"()", ...).
  void identifier_or_literal() {
    const int line = cur.line;
    const int col = cur.col;
    std::string text;
    while (ident_char(cur.peek())) text.push_back(cur.advance());
    const char next = cur.peek();
    const bool prefix =
        text == "R" || text == "L" || text == "u" || text == "U" ||
        text == "u8" || text == "LR" || text == "uR" || text == "UR" ||
        text == "u8R";
    if (prefix && next == '"') {
      string_literal(text.ends_with('R'), line, col);
      return;
    }
    if (prefix && next == '\'' && text.find('R') == std::string::npos) {
      char_literal(line, col);
      return;
    }
    push(TokKind::kIdent, std::move(text), line, col);
  }

  void number() {
    const int line = cur.line;
    const int col = cur.col;
    std::string text;
    text.push_back(cur.advance());
    while (!cur.done()) {
      const char c = cur.peek();
      if (ident_char(c) || c == '.' ||
          (c == '\'' && ident_char(cur.peek(1)))) {
        text.push_back(cur.advance());
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char e = text.back();
        if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
          text.push_back(cur.advance());
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, std::move(text), line, col);
  }

  void string_literal(bool raw, int line = 0, int col = 0) {
    if (line == 0) {
      line = cur.line;
      col = cur.col;
    }
    cur.advance();  // opening "
    if (raw) {
      // R"delim( body )delim" — no escapes, newlines are literal. Work on
      // the raw text directly: splices inside a raw string are content.
      std::string delim;
      while (!cur.done() && cur.peek() != '(' && cur.peek() != '\n') {
        delim.push_back(cur.advance());
      }
      if (cur.peek() == '(') cur.advance();
      const std::string terminator = ")" + delim + "\"";
      std::string window;
      while (!cur.done()) {
        window.push_back(cur.advance());
        if (window.size() > terminator.size()) {
          window.erase(window.begin());
        }
        if (window == terminator) break;
      }
    } else {
      while (!cur.done()) {
        const char c = cur.peek();
        if (c == '\\') {
          cur.advance();
          cur.advance();
          continue;
        }
        if (c == '\n') break;  // unterminated; resync at newline
        cur.advance();
        if (c == '"') break;
      }
    }
    push(TokKind::kString, "", line, col);
  }

  void char_literal(int line = 0, int col = 0) {
    if (line == 0) {
      line = cur.line;
      col = cur.col;
    }
    cur.advance();  // opening '
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '\\') {
        cur.advance();
        cur.advance();
        continue;
      }
      if (c == '\n') break;
      cur.advance();
      if (c == '\'') break;
    }
    push(TokKind::kChar, "", line, col);
  }

  void punct() {
    const int line = cur.line;
    const int col = cur.col;
    const char a = cur.peek();
    const char b = cur.peek(1);
    const char c = cur.peek(2);
    const std::string three = {a, b, c};
    for (const char* p : kPunct3) {
      if (three == p) {
        cur.advance();
        cur.advance();
        cur.advance();
        push(TokKind::kPunct, p, line, col);
        return;
      }
    }
    const std::string two = {a, b};
    for (const char* p : kPunct2) {
      if (two == p) {
        cur.advance();
        cur.advance();
        push(TokKind::kPunct, p, line, col);
        return;
      }
    }
    cur.advance();
    push(TokKind::kPunct, std::string(1, a), line, col);
  }
};

}  // namespace

Lexed lex(std::string_view text) {
  Lexer lexer;
  lexer.cur.text = text;
  lexer.run();
  return lexer.out;
}

}  // namespace memfp::lint
