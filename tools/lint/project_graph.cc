#include "project_graph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <utility>

namespace memfp::lint {
namespace {

bool tok_is(const Token& t, std::string_view s) { return t.text == s; }

/// Skips a balanced template argument list. `i` points at the opening '<';
/// returns the index one past the matching close (handles '>>' closing two
/// levels at once). Returns npos-equivalent (tokens.size()) on runaway.
std::size_t skip_template_args(const std::vector<Token>& tokens,
                               std::size_t i) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0 && t != "<") return i + 1;
  }
  return tokens.size();
}

/// Record declarator names following a container/Rng type spelling.
/// `i` points just past the type (and its template args). Accepts
/// `& * const` decorations, then `name` terminated by a declarator-ish
/// token, then single-token comma chains (`neg, pos;`). Parameter lists
/// stop naturally: in `& m, int x)` the chain after the comma is two
/// identifiers, which is not a single-token declarator.
void collect_declarators(const std::vector<Token>& tokens, std::size_t i,
                         std::vector<UnorderedDecl>& out) {
  static const std::set<std::string, std::less<>> kAfterName = {
      ";", "=", "{", ",", ")", ":", "[", "("};
  while (i < tokens.size() &&
         (tok_is(tokens[i], "&") || tok_is(tokens[i], "*") ||
          tok_is(tokens[i], "const"))) {
    ++i;
  }
  if (i + 1 >= tokens.size() || tokens[i].kind != TokKind::kIdent ||
      kAfterName.find(tokens[i + 1].text) == kAfterName.end()) {
    return;
  }
  out.push_back({tokens[i].text, tokens[i].line});
  // `a, b;` comma chains: only single-token declarators continue the list.
  i += 1;
  while (i + 2 < tokens.size() && tok_is(tokens[i], ",") &&
         tokens[i + 1].kind == TokKind::kIdent &&
         (tok_is(tokens[i + 2], ";") || tok_is(tokens[i + 2], "=") ||
          tok_is(tokens[i + 2], "{") || tok_is(tokens[i + 2], ","))) {
    out.push_back({tokens[i + 1].text, tokens[i + 1].line});
    i += 2;
  }
}

void collect_symbols(FileNode& node) {
  const std::vector<Token>& tokens = node.lexed.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "unordered_map" || t.text == "unordered_set") {
      if (i + 1 < tokens.size() && tok_is(tokens[i + 1], "<")) {
        const std::size_t after = skip_template_args(tokens, i + 1);
        collect_declarators(tokens, after, node.unordered);
      }
      continue;
    }
    if (t.text == "Rng") {
      // `Rng name ...` (skip member access spellings `x.Rng` — none exist —
      // and the qualified `memfp::Rng`, whose Rng token behaves the same).
      if (i > 0 && (tok_is(tokens[i - 1], ".") || tok_is(tokens[i - 1], "->"))) {
        continue;
      }
      if (i + 2 < tokens.size() && tokens[i + 1].kind == TokKind::kIdent) {
        const std::string& after = tokens[i + 2].text;
        if (after == ";" || after == "=" || after == "{" || after == "(" ||
            after == "," || after == ")") {
          node.rng_names.push_back(tokens[i + 1].text);
        }
      }
    }
  }
  std::sort(node.unordered.begin(), node.unordered.end(),
            [](const UnorderedDecl& a, const UnorderedDecl& b) {
              return std::tie(a.name, a.line) < std::tie(b.name, b.line);
            });
  std::sort(node.rng_names.begin(), node.rng_names.end());
  node.rng_names.erase(
      std::unique(node.rng_names.begin(), node.rng_names.end()),
      node.rng_names.end());
}

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  if (path.starts_with("./")) path.erase(0, 2);
  return path;
}

std::string dot_id(const std::string& path) {
  std::string id;
  for (const char c : path) {
    id.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return id;
}

}  // namespace

std::string module_of(std::string_view path) {
  if (!path.starts_with("src/")) return "";
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

ProjectGraph ProjectGraph::build(
    std::vector<std::pair<std::string, std::string>> sources) {
  ProjectGraph graph;
  for (auto& [path, content] : sources) {
    FileNode node;
    node.path = normalize(std::move(path));
    node.module = module_of(node.path);
    node.header = node.path.ends_with(".h");
    node.in_src = node.path.starts_with("src/");
    node.in_tests = node.path.starts_with("tests/");
    node.in_bench = node.path.starts_with("bench/");
    node.lexed = lex(content);
    collect_symbols(node);
    graph.files_.push_back(std::move(node));
  }
  std::sort(graph.files_.begin(), graph.files_.end(),
            [](const FileNode& a, const FileNode& b) {
              return a.path < b.path;
            });
  for (std::size_t i = 0; i < graph.files_.size(); ++i) {
    graph.index_.emplace(graph.files_[i].path, static_cast<int>(i));
  }
  // Quoted project includes resolve against src/ (the one include root the
  // build exposes: `#include "ml/model.h"` anywhere means src/ml/model.h).
  for (FileNode& node : graph.files_) {
    node.resolved.assign(node.lexed.includes.size(), -1);
    for (std::size_t k = 0; k < node.lexed.includes.size(); ++k) {
      const IncludeDirective& inc = node.lexed.includes[k];
      if (inc.angled) continue;
      node.resolved[k] = graph.find("src/" + inc.path);
    }
  }
  return graph;
}

int ProjectGraph::find(std::string_view path) const {
  const auto it = index_.find(path);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> ProjectGraph::reachable(int file) const {
  std::vector<bool> seen(files_.size(), false);
  std::deque<int> queue;
  queue.push_back(file);
  seen[static_cast<std::size_t>(file)] = true;
  std::vector<int> out;
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop_front();
    for (const int next : files_[static_cast<std::size_t>(at)].resolved) {
      if (next < 0 || seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      out.push_back(next);
      queue.push_back(next);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ProjectGraph::to_dot() const {
  std::ostringstream out;
  out << "// memfp-lint include DAG over src/ (quoted includes resolved\n"
         "// against the src/ include root). Render with e.g.:\n"
         "//   dot -Tsvg build/lint_graph.dot -o lint_graph.svg\n"
         "digraph memfp_includes {\n"
         "  rankdir=LR;\n"
         "  node [shape=box, fontsize=10];\n";
  // One cluster per module, modules in sorted order; files_ is sorted, so
  // a linear scan per module emits nodes deterministically.
  std::set<std::string> modules;
  for (const FileNode& node : files_) {
    if (node.in_src && !node.module.empty()) modules.insert(node.module);
  }
  for (const std::string& module : modules) {
    out << "  subgraph cluster_" << module << " {\n"
        << "    label=\"" << module << "\";\n";
    for (const FileNode& node : files_) {
      if (!node.in_src || node.module != module) continue;
      out << "    " << dot_id(node.path) << " [label=\""
          << node.path.substr(4) << "\"];\n";
    }
    out << "  }\n";
  }
  std::set<std::pair<std::string, std::string>> edges;
  for (const FileNode& node : files_) {
    if (!node.in_src) continue;
    for (const int to : node.resolved) {
      if (to < 0) continue;
      const FileNode& target = files_[static_cast<std::size_t>(to)];
      if (!target.in_src) continue;
      edges.emplace(dot_id(node.path), dot_id(target.path));
    }
  }
  for (const auto& [from, to] : edges) {
    out << "  " << from << " -> " << to << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace memfp::lint
