// memfp-lint: in-tree static analysis for the project's determinism and
// hygiene invariants.
//
// The reproducibility contract (DESIGN.md "Threading model": byte-identical
// results at any thread count, same seed => same Table II numbers) only
// holds if nobody reintroduces a nondeterminism source — an unseeded
// std::mt19937, a wall-clock read, an unordered-container iteration feeding
// model output. Those rules used to live in prose; this analyzer makes them
// machine-checked and runs as the `lint` ctest target.
//
// Deliberately a lightweight lexer, not a compiler frontend: it blanks
// comments, string/char literals and raw strings, then pattern-matches
// tokens per line. That is enough for every rule below, costs nothing to
// build (no libclang), and works on the test fixtures embedded as raw
// strings in tests/test_lint.cc.
//
// Rule catalog (see DESIGN.md "Static analysis & contracts"):
//   unseeded-random  rand()/srand()/std::random_device/std::mt19937 outside
//                    src/common/rng.* (scope: src/, tests/, bench/)
//   wall-clock       chrono clock ::now(), time(), gettimeofday(), clock()
//                    in model-affecting code (scope: src/)
//   unordered-iter   range-for over a std::unordered_{map,set} declared in
//                    the same file; iteration order is unspecified, so it
//                    must not reach features, metrics or serialized output
//                    without an ordering step (scope: src/)
//   bare-assert      assert() in library code — vanishes under NDEBUG; use
//                    MEMFP_CHECK / MEMFP_DCHECK (scope: src/)
//   naked-new        new / delete expressions; use std::make_unique and
//                    containers (scope: src/)
//   thread-spawn     std::thread construction outside the pool; all
//                    parallelism goes through common/thread_pool.h
//                    (scope: src/ except src/common/thread_pool.*)
//   pragma-once      every header starts its include guard with
//                    #pragma once (scope: src/, tests/, bench/)
//   banned-include   curated banned includes: <random>, <cassert>,
//                    <assert.h>, <ctime> in src/; <iostream> in src/
//                    headers (the logger owns the only stderr sink)
//   arch-intrinsics  <immintrin.h>/<arm_neon.h>-style includes and raw
//                    _mm*/__m*/vld1/vst1 intrinsics anywhere but the
//                    src/common/simd* dispatch seam — every
//                    architecture-aware loop goes through one KernelTable
//                    (scope: src/, tests/, bench/)
//
// Suppressions: a violation is waived by a comment on the same line or the
// line directly above:
//   // memfp-lint: allow(<rule>): <justification>
// The justification is mandatory (missing-justification otherwise), the
// rule name must exist (unknown-rule otherwise), and a suppression that
// matches no violation is itself reported (unused-allow), so stale waivers
// cannot accumulate.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace memfp::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// All rule names the suppression parser accepts.
const std::vector<std::string>& rule_names();

/// Lints one translation unit. `path` must be the repo-relative path
/// (e.g. "src/ml/gbdt.cc") — rule scoping keys off it; `content` is the
/// file body. Returns violations in line order.
std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content);

/// Walks src/, tests/ and bench/ under `root` (deterministic path order)
/// and lints every .h/.cc file.
std::vector<Violation> lint_tree(const std::string& root);

/// "file:line: [rule] message" per violation, newline-terminated.
std::string format(const std::vector<Violation>& violations);

}  // namespace memfp::lint
