// memfp-lint v2: in-tree static analysis for the project's determinism and
// hygiene invariants — now a whole-program checker, not a line filter.
//
// The reproducibility contract (DESIGN.md "Threading model": byte-identical
// results at any thread/shard/SIMD-lane count, same seed => same Table II
// numbers) only holds if nobody reintroduces a nondeterminism source. v1
// blanked comments/literals and regex-matched each line, which made the
// most dangerous regressions invisible: a module-layering inversion, a
// shared accumulator mutated inside a `parallel_for` lambda, an Rng copied
// into a worker. v2 lexes every file into a token stream (lexer.h), builds
// a cross-TU project graph — include DAG over src/ plus a small symbol
// table (project_graph.h) — and checks rules against both.
//
// Rule catalog (see DESIGN.md "Static analysis v2"):
//
//   Per-file (token stream):
//   unseeded-random  rand()/srand()/std::random_device/std::mt19937 outside
//                    src/common/rng.* (scope: src/, tests/, bench/)
//   wall-clock       chrono clock ::now(), time(), gettimeofday(), clock()
//                    in model-affecting code (scope: src/)
//   bare-assert      assert() in library code — vanishes under NDEBUG; use
//                    MEMFP_CHECK / MEMFP_DCHECK (scope: src/)
//   naked-new        new / delete expressions; use std::make_unique and
//                    containers (scope: src/)
//   thread-spawn     std::thread construction outside the pool; all
//                    parallelism goes through common/thread_pool.h
//                    (scope: src/ except src/common/thread_pool.*)
//   pragma-once      every header starts with #pragma once
//                    (scope: src/, tests/, bench/)
//   banned-include   curated banned includes: <random>, <cassert>,
//                    <assert.h>, <ctime> in src/; <iostream> in src/
//                    headers (the logger owns the only stderr sink)
//   arch-intrinsics  intrinsic headers and raw _mm*/__m*/vld1/vst1 outside
//                    the src/common/simd* dispatch seam
//                    (scope: src/, tests/, bench/)
//
//   Cross-TU (project graph):
//   layering         the module DAG is law:
//                        common <- dram <- {sim, features} <- ml
//                               <- {core, mlops, baseline}
//                    a file may include its own module and strictly lower
//                    layers (plus the four sanctioned lateral edges:
//                    features->sim, core->baseline, mlops->core and
//                    core->mlops, the last header-only — memfp_mlops links
//                    memfp_core, never the reverse). Upward
//                    or unsanctioned sibling includes, unknown modules and
//                    include cycles are violations; cycle reports carry
//                    the offending include chain (scope: src/)
//   unordered-iter   range-for over a std::unordered_{map,set} declared in
//                    this file OR in any transitively included header (the
//                    symbol table crosses file boundaries); iteration
//                    order is unspecified, so it must not reach features,
//                    metrics or serialized output without an ordering step
//                    (scope: src/)
//   parallel-capture inside ThreadPool::parallel_for / parallel_for_chunks
//                    / parallel_reduce lambda bodies: writes (=, +=, ++,
//                    push_back, emplace_back, ...) to by-reference captures
//                    that are not indexed by the loop induction variable —
//                    the shape of every order-dependent race TSan can only
//                    catch dynamically (scope: src/ except thread_pool.*)
//   rng-discipline   Rng passed or copied by value (parameters, plain
//                    copies, lambda value captures), Rng constructed
//                    inside a parallel body instead of Rng::fork, and
//                    .fork() results discarded (scope: src/ except
//                    src/common/rng.*)
//
// Suppressions: a violation is waived by a comment on the same line or the
// line directly above:
//   // memfp-lint: allow(<rule>): <justification>
// The justification is mandatory (missing-justification otherwise), the
// rule name must exist (unknown-rule otherwise), and a suppression that
// matches no violation is itself reported (unused-allow), so stale waivers
// cannot accumulate.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "project_graph.h"

namespace memfp::lint {

struct Violation {
  std::string file;
  int line = 0;
  int col = 1;
  std::string rule;
  std::string message;
};

/// All rule names the suppression parser accepts.
const std::vector<std::string>& rule_names();

/// Lints a set of repo-relative (path, content) pairs as one program:
/// builds the project graph and runs every rule. Violations are sorted by
/// (file, line, col, rule).
std::vector<Violation> lint_files(
    std::vector<std::pair<std::string, std::string>> sources);

/// Runs every rule against an already-built graph (shared with the CLI so
/// `--graph` reuses the same parse).
std::vector<Violation> lint_graph(const ProjectGraph& graph);

/// Lints one translation unit in isolation (a single-file project graph).
/// `path` must be the repo-relative path (e.g. "src/ml/gbdt.cc") — rule
/// scoping keys off it; `content` is the file body.
std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content);

/// Reads every .h/.cc under src/, tests/ and bench/ below `root`
/// (deterministic path order) as (repo-relative path, content) pairs.
std::vector<std::pair<std::string, std::string>> read_tree(
    const std::string& root);

/// read_tree + lint_files.
std::vector<Violation> lint_tree(const std::string& root);

/// "file:line:col: [rule] message" per violation, newline-terminated.
std::string format(const std::vector<Violation>& violations);

}  // namespace memfp::lint
