// CLI for the in-tree analyzer: `memfp_lint <repo-root>` lints src/,
// tests/ and bench/ and exits non-zero on any violation. Registered as the
// `lint` ctest target, so `ctest` fails on a rule breach.
#include <cstdio>

#include "lint_core.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const std::vector<memfp::lint::Violation> violations =
      memfp::lint::lint_tree(root);
  if (violations.empty()) {
    std::printf("memfp-lint: clean\n");
    return 0;
  }
  std::fputs(memfp::lint::format(violations).c_str(), stderr);
  std::fprintf(stderr, "memfp-lint: %zu violation(s)\n", violations.size());
  return 1;
}
