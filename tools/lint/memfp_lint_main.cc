// CLI for the in-tree analyzer. Registered as the `lint` ctest target, so
// plain `ctest` fails on a rule breach.
//
//   memfp_lint [options] [<repo-root>] [<file>...]
//
//   <repo-root>        directory to walk (default "."); src/, tests/ and
//                      bench/ below it are linted as one program
//   <file>...          lint only these repo-relative files (the project
//                      graph is still built from the whole tree, so
//                      cross-TU rules see every header)
//   --rule=<name>      report only this rule (repeatable)
//   --graph            also write the include DAG to build/lint_graph.dot
//                      under the build dir (or CWD when run by hand)
//   --list-rules       print the rule catalog and exit
//
// Diagnostics are compiler-style `file:line:col: [rule] message`, and the
// exit status is non-zero only when violations remain after filtering.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint_core.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: memfp_lint [--rule=<name>]... [--graph] "
               "[--list-rules] [<repo-root>] [<file>...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> only_files;
  std::set<std::string> only_rules;
  bool want_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = arg.substr(7);
      const auto& names = memfp::lint::rule_names();
      if (std::find(names.begin(), names.end(), rule) == names.end()) {
        std::fprintf(stderr, "memfp_lint: unknown rule '%s'\n",
                     rule.c_str());
        return 2;
      }
      only_rules.insert(rule);
    } else if (arg == "--graph") {
      want_graph = true;
    } else if (arg == "--list-rules") {
      for (const std::string& name : memfp::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      usage();
      return 2;
    } else if (root.empty()) {
      root = arg;
    } else {
      only_files.push_back(arg);
    }
  }
  if (root.empty()) root.push_back('.');  // (not `= "."`: GCC 12 -Wrestrict FP)

  const auto graph =
      memfp::lint::ProjectGraph::build(memfp::lint::read_tree(root));
  if (want_graph) {
    namespace fs = std::filesystem;
    const fs::path build_dir = fs::path(root) / "build";
    const fs::path dot_path =
        (fs::exists(build_dir) ? build_dir : fs::path(".")) /
        "lint_graph.dot";
    std::ofstream out(dot_path);
    out << graph.to_dot();
    std::printf("memfp-lint: wrote %s\n", dot_path.string().c_str());
  }

  std::vector<memfp::lint::Violation> violations =
      memfp::lint::lint_graph(graph);
  if (!only_files.empty() || !only_rules.empty()) {
    const std::set<std::string> files(only_files.begin(), only_files.end());
    std::erase_if(violations, [&](const memfp::lint::Violation& v) {
      if (!files.empty() && files.count(v.file) == 0) return true;
      return !only_rules.empty() && only_rules.count(v.rule) == 0;
    });
  }
  if (violations.empty()) {
    std::printf("memfp-lint: clean\n");
    return 0;
  }
  std::fputs(memfp::lint::format(violations).c_str(), stderr);
  std::fprintf(stderr, "memfp-lint: %zu violation(s)\n", violations.size());
  return 1;
}
