// memfp-lint v2 project graph: the cross-TU view the v1 line scanner could
// never have.
//
// The graph is built from a set of (repo-relative path, content) pairs —
// the real tree when linting a checkout, or in-memory fixtures in
// tests/test_lint.cc — and holds, per file:
//
//   * the full token stream (lexer.h) with line/column positions,
//   * the #include directives, with quoted "module/file.h" includes
//     resolved to their FileNode when the header is in the set (the edge
//     list IS the include DAG over src/),
//   * a small symbol table: names declared with a std::unordered_{map,set}
//     type (class members, locals, reference parameters — anything a
//     range-for could iterate) and names declared with the project's Rng
//     type. Both feed cross-file rules: range-for over an unordered member
//     declared three headers away, an Rng value-captured into a lambda.
//
// Module identity comes from the path: "src/<module>/..." ⇒ module. The
// layering rule (lint_core.cc) interprets the module edge set against the
// sanctioned DAG; this file only discovers the edges.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace memfp::lint {

/// A name that a range-for must not iterate without an ordering step.
struct UnorderedDecl {
  std::string name;
  int line = 0;  ///< declaration line (for cross-file diagnostics)
};

struct FileNode {
  std::string path;    ///< repo-relative, '/'-separated
  std::string module;  ///< "sim" for src/sim/...; "" outside src/
  bool header = false;
  bool in_src = false;
  bool in_tests = false;
  bool in_bench = false;
  Lexed lexed;
  /// Parallel to lexed.includes: index of the included FileNode in
  /// ProjectGraph::files, or -1 when the header is not in the set.
  std::vector<int> resolved;
  std::vector<UnorderedDecl> unordered;  ///< unordered-container decls
  std::vector<std::string> rng_names;    ///< names declared with type Rng
};

class ProjectGraph {
 public:
  /// Builds the graph from repo-relative (path, content) pairs. Files are
  /// sorted by path, so node indices and every derived order are
  /// deterministic regardless of input order.
  static ProjectGraph build(
      std::vector<std::pair<std::string, std::string>> sources);

  const std::vector<FileNode>& files() const { return files_; }

  /// Index of `path` in files(), or -1.
  int find(std::string_view path) const;

  /// Indices of every file transitively reachable from `file` through
  /// resolved includes (excluding `file` itself), in ascending index order.
  std::vector<int> reachable(int file) const;

  /// The include DAG over src/ in Graphviz DOT form: one cluster per
  /// module, nodes and edges in sorted order (byte-identical across runs).
  std::string to_dot() const;

 private:
  std::vector<FileNode> files_;
  std::map<std::string, int, std::less<>> index_;
};

/// Extracts the module from a repo-relative path ("src/ml/gbdt.cc" ⇒ "ml",
/// anything not under src/ ⇒ "").
std::string module_of(std::string_view path);

}  // namespace memfp::lint
