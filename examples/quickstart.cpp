// Quickstart: simulate a datacenter fleet's memory telemetry, train a
// failure predictor, and use it.
//
//   $ ./build/examples/quickstart
//
// This walks the minimal public API path:
//   1. sim::simulate_fleet     - synthetic production telemetry
//   2. core::MemoryFailurePredictor - train on the fleet
//   3. predictor.score / predict    - probability and alarm for any DIMM
#include <cstdio>

#include "common/logging.h"
#include "core/predictor.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;
  set_log_level(LogLevel::kInfo);

  // 1. A (scaled-down) Intel Purley fleet observed for ~9 months. In a real
  //    deployment this is your BMC/MCE telemetry in the same schema.
  const sim::ScenarioParams scenario = sim::purley_scenario().scaled(0.25);
  const sim::FleetTrace fleet = sim::simulate_fleet(scenario);
  std::printf("fleet: %zu observed DIMMs, %zu reached a UE\n",
              fleet.dimms.size(), fleet.dimms_with_ue());

  // 2. Train a LightGBM-style predictor with the paper's window geometry
  //    (5-day observation, 3-hour lead, 30-day prediction window).
  core::MemoryFailurePredictor predictor(dram::Platform::kIntelPurley);
  predictor.train(fleet);
  std::printf("trained; alarm threshold = %.3f\n", predictor.threshold());

  // 3. Score DIMMs mid-life. Failing DIMMs should out-score healthy ones.
  const SimTime now = days(150);
  double failing_best = 0.0, healthy_best = 0.0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    if (dimm.ue && dimm.ue->time > now) {
      failing_best = std::max(failing_best, predictor.score(dimm, now));
    } else if (!dimm.ue) {
      healthy_best = std::max(healthy_best, predictor.score(dimm, now));
    }
  }
  std::printf("day %lld: best score among DIMMs that later fail = %.3f\n",
              static_cast<long long>(now / kDay), failing_best);
  std::printf("         best score among DIMMs that never fail  = %.3f\n",
              healthy_best);

  // Alarm decision for one concrete DIMM.
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const bool active_now =
        !dimm.ces.empty() && dimm.ces.front().time <= now &&
        dimm.ces.back().time > now - days(5);
    if (dimm.predictable_ue() && dimm.ue->time > now + days(1) && active_now) {
      std::printf(
          "DIMM %u (UE on day %lld): score at day %lld = %.3f -> %s\n",
          dimm.id, static_cast<long long>(dimm.ue->time / kDay),
          static_cast<long long>(now / kDay), predictor.score(dimm, now),
          predictor.predict(dimm, now) ? "ALARM raised" : "no alarm yet");
      break;
    }
  }
  return 0;
}
