// Online prediction timeline: follow one degrading DIMM through its life and
// watch the predictor's score escalate ahead of the UE — the operator's view
// of the system.
//
//   $ ./build/examples/online_prediction
#include <algorithm>
#include <cstdio>

#include "core/predictor.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;

  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::k920_scenario().scaled(0.3));
  core::MemoryFailurePredictor predictor(dram::Platform::kK920);
  predictor.train(fleet);

  // Pick a predictable-UE DIMM with a decent CE history.
  const sim::DimmTrace* victim = nullptr;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    // Decent history, UE not too early, and below the BMC buffer cap (a
    // saturated buffer stops logging, which would blank the feature window).
    if (dimm.predictable_ue() && dimm.ces.size() > 50 &&
        dimm.ces.size() < 3000 && dimm.ue->time > days(60) &&
        dimm.ue->time - dimm.ces.back().time < days(2)) {
      if (victim == nullptr || dimm.ces.size() > victim->ces.size()) {
        victim = &dimm;
      }
    }
  }
  if (victim == nullptr) {
    std::puts("no suitable DIMM in this fleet (unexpected)");
    return 1;
  }

  const SimTime ue_day = victim->ue->time / kDay;
  std::printf("DIMM %u on %s: %zu CEs logged, UE on day %lld\n\n", victim->id,
              dram::platform_name(victim->platform), victim->ces.size(),
              static_cast<long long>(ue_day));
  std::puts(" day  | score  | CEs so far | status");
  std::puts("------+--------+------------+---------------------------");

  bool alarmed = false;
  SimTime alarm_day = -1;
  const SimTime start = std::max<SimTime>(days(2), victim->ue->time - days(40));
  for (SimTime t = start; t < victim->ue->time; t += days(2)) {
    const double score = predictor.score(*victim, t);
    std::size_t ces = 0;
    for (const dram::CeEvent& ce : victim->ces) ces += ce.time <= t;
    const bool alarm_now = predictor.predict(*victim, t);
    if (alarm_now && !alarmed) {
      alarmed = true;
      alarm_day = t / kDay;
    }
    std::printf(" %4lld | %.4f | %10zu | %s\n",
                static_cast<long long>(t / kDay), score, ces,
                alarm_now ? (alarm_day == t / kDay ? "ALARM (first)" : "alarm")
                          : "");
  }
  std::printf("------+--------+------------+---------------------------\n");
  if (alarmed) {
    std::printf(
        "UE on day %lld; first alarm on day %lld -> %lld days of lead time\n"
        "for VM live-migration (paper requires >= 3 hours).\n",
        static_cast<long long>(ue_day), static_cast<long long>(alarm_day),
        static_cast<long long>(ue_day - alarm_day));
  } else {
    std::printf("UE on day %lld was missed by the predictor (a false "
                "negative at this threshold).\n",
                static_cast<long long>(ue_day));
  }
  return 0;
}
