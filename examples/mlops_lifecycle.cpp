// MLOps walkthrough (paper Fig 6): every stage of the production lifecycle
// exercised once — data pipeline, feature store, CI/CD training with the
// benchmark gate, online serving, alarms, and monitoring with feedback.
//
//   $ ./build/examples/mlops_lifecycle
#include <cstdio>

#include "common/logging.h"
#include "mlops/cicd.h"
#include "mlops/online_service.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;
  set_log_level(LogLevel::kInfo);

  // --- Data Pipeline: BMC telemetry lands in the lake ---
  const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.25));
  mlops::DataLake lake;
  lake.ingest("bmc/purley/2023H1", fleet);
  std::printf("[data] %zu raw records in partition bmc/purley/2023H1\n",
              lake.record_count());

  // --- Feature Store: catalog + training/serving consistency ---
  mlops::FeatureStore store;
  std::printf("[features] catalog v%lld with %zu features\n",
              static_cast<long long>(store.catalog().at("version").as_int()),
              store.schema().size());
  const sim::DimmTrace& probe = fleet.dimms.front();
  std::printf("[features] training/serving consistency on DIMM %u: %s\n",
              probe.id,
              store.check_consistency(probe, days(100), fleet.horizon)
                  ? "OK"
                  : "DIVERGED");

  // --- CI/CD: train, benchmark, register, promote through the gate ---
  mlops::ModelRegistry registry;
  mlops::TrainingPipelineConfig config;
  config.algorithm = core::Algorithm::kLightGbm;
  const mlops::TrainingRunReport run =
      run_training_pipeline(lake, "bmc/purley/2023H1", registry, config);
  std::printf(
      "[cicd] v%d %s: benchmark F1 %.2f, VIRR %.2f -> %s\n", run.version,
      run.evaluation.algorithm.c_str(), run.evaluation.f1,
      run.evaluation.virr, run.promoted ? "promoted to production" : "held");

  // --- Online Prediction + Cloud Service: stream, alarm, mitigate ---
  mlops::AlarmSystem alarms;
  mlops::Monitoring monitoring;
  monitoring.record_ingest(lake.record_count());
  mlops::OnlinePredictionService service(
      registry, dram::Platform::kIntelPurley, store, alarms, monitoring);
  service.run_over(fleet, days(30), days(260), days(3));
  std::printf("[online] %zu predictions served, %zu alarms raised\n",
              monitoring.predictions(), monitoring.alarms());

  const mlops::MitigationReport mitigation =
      mlops::account_mitigations(fleet, alarms, store.windows());
  std::printf(
      "[cloud] VM interruptions: %.0f without prediction -> %.0f with "
      "(realized VIRR %.2f)\n",
      mitigation.interruptions_without_prediction,
      mitigation.interruptions_with_prediction, mitigation.realized_virr);

  // --- Monitoring: feedback loop and dashboard ---
  service.apply_feedback(fleet);
  std::fputs(monitoring.dashboard().c_str(), stdout);
  return 0;
}
