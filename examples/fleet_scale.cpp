// Fleet scale: run a fleet far bigger than memory would allow resident,
// through the sharded driver and the spilled data lake.
//
//   $ ./build/examples/fleet_scale
//
// The walkthrough:
//   1. prove the determinism contract at small scale — the sharded driver's
//      traces/features/scores hash byte-identical to the in-memory path;
//   2. drive a larger fleet through simulate → encode/spill → stream →
//      extract → score with a bounded working set, keeping the shard files;
//   3. adopt the shard set as a spilled DataLake partition and run the
//      streaming batch-scoring backfill over it.
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "core/fleet_driver.h"
#include "core/pipeline.h"
#include "mlops/cicd.h"
#include "mlops/model_registry.h"

int main() {
  using namespace memfp;
  set_log_level(LogLevel::kInfo);

  const std::string store_root =
      (std::filesystem::temp_directory_path() / "memfp_fleet_scale").string();

  // A small production-shaped model to deploy against the big fleet.
  const sim::FleetTrace train_fleet =
      sim::simulate_fleet(sim::purley_scenario(/*seed=*/7).scaled(0.12));
  core::Experiment experiment(train_fleet, core::PipelineConfig{});
  auto [eval, model] = experiment.run_with_model(core::Algorithm::kLightGbm);
  std::printf("trained %s (F1 %.3f) for the scoring stage\n",
              model->name().c_str(), eval.f1);

  // 1. Determinism contract at verifiable scale: any shard split of the
  //    same scenario reproduces the in-memory path hash for hash.
  const sim::ScenarioParams small = sim::purley_scenario(/*seed=*/42).scaled(0.3);
  const core::FleetDriverResult reference = core::reference_fleet_result(
      small, features::PredictionWindows{}, model.get());
  for (const std::size_t shards : {1u, 4u, 16u}) {
    core::FleetDriverConfig config;
    config.store_dir = store_root + "/small";
    config.shards = shards;
    const core::FleetDriverResult run =
        core::run_fleet_driver(small, config, model.get());
    const bool identical = run.trace_hash == reference.trace_hash &&
                           run.feature_hash == reference.feature_hash &&
                           run.score_hash == reference.score_hash;
    std::printf("%2zu shards: %zu DIMMs, %zu samples -> %s\n", shards,
                run.observed_dimms, run.samples,
                identical ? "byte-identical to in-memory path" : "MISMATCH");
    if (!identical) return 1;
  }

  // 2. A 20x bigger fleet, spilled shard by shard. Working set stays at one
  //    shard; the shard files are kept for step 3.
  sim::ScenarioParams big = sim::purley_scenario(/*seed=*/43).scaled(6.0);
  big.horizon = days(56);
  core::FleetDriverConfig config;
  config.store_dir = store_root + "/big";
  config.keep_store = true;
  config.shards = 8;
  config.windows.cadence = days(2);
  const core::FleetDriverResult big_run =
      core::run_fleet_driver(big, config, model.get());
  std::printf(
      "big fleet: %zu planned, %zu observed, %llu events -> %llu encoded "
      "bytes in %zu shards (%.1f bytes/event)\n",
      big_run.planned_dimms, big_run.observed_dimms,
      static_cast<unsigned long long>(big_run.events()),
      static_cast<unsigned long long>(big_run.encoded_bytes),
      big_run.shard_files.size(),
      static_cast<double>(big_run.encoded_bytes) /
          static_cast<double>(big_run.events()));

  // 3. The lake adopts the shard set without re-encoding; the inference
  //    backfill streams it one DIMM at a time.
  mlops::DataLake lake;
  lake.ingest_shards("bmc/purley/spilled", config.store_dir);
  std::printf("lake: partition spilled=%d, %zu records cached\n",
              lake.spilled("bmc/purley/spilled") ? 1 : 0,
              lake.record_count());
  const mlops::BatchScoringReport scored = mlops::run_batch_scoring(
      lake, "bmc/purley/spilled", *model, eval.threshold, config.windows);
  std::printf("backfill: %zu DIMMs, %zu samples, %zu alarms\n", scored.dimms,
              scored.samples, scored.alarms);

  std::filesystem::remove_all(store_root);
  return 0;
}
