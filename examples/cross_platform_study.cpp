// Cross-architecture fault study (paper Section V): reproduce the analysis
// pipeline behind Findings 1-3 on all three platforms, narrated.
//
//   $ ./build/examples/cross_platform_study
#include <cstdio>

#include "common/string_utils.h"
#include "common/table.h"
#include "core/fault_analysis.h"
#include "dram/ecc.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;

  std::puts("== ECC correction boundaries per platform ==");
  {
    const dram::Geometry g = dram::Geometry::ddr4_x4();
    // The single-chip pattern of Li et al. [7]: 2 DQs, 2 beats, span 4.
    dram::ErrorPattern weak_region({{0, 0}, {1, 4}});
    // A narrow cross-device error.
    dram::ErrorPattern cross_narrow({{0, 0}, {4, 0}});
    TextTable table;
    table.set_header({"pattern", "Purley", "Whitley", "K920"});
    const auto classify = [&](const dram::ErrorPattern& p,
                              dram::Platform platform) {
      return std::string(
          dram::verdict_name(dram::make_platform_ecc(platform)->classify(p, g)));
    };
    table.add_row({"single-chip 2DQ/2beat/span4",
                   classify(weak_region, dram::Platform::kIntelPurley),
                   classify(weak_region, dram::Platform::kIntelWhitley),
                   classify(weak_region, dram::Platform::kK920)});
    table.add_row({"narrow cross-device",
                   classify(cross_narrow, dram::Platform::kIntelPurley),
                   classify(cross_narrow, dram::Platform::kIntelWhitley),
                   classify(cross_narrow, dram::Platform::kK920)});
    std::fputs(table.render().c_str(), stdout);
    std::puts(
        "-> the same error pattern is fatal on one platform and harmless on\n"
        "   another; this is why failure prediction must be per-platform.\n");
  }

  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    const sim::FleetTrace fleet = sim::simulate_fleet(scenario.scaled(0.4));
    std::printf("== %s ==\n", dram::platform_name(fleet.platform));
    std::printf(
        "Finding 1  %zu DIMMs with CEs, %zu with UEs (%s predictable)\n",
        fleet.dimms_with_ce(), fleet.dimms_with_ue(),
        format_percent(static_cast<double>(fleet.predictable_ue_dimms()) /
                           std::max<std::size_t>(1, fleet.dimms_with_ue()),
                       0)
            .c_str());

    const core::UeComposition comp = core::ue_device_composition(fleet);
    std::printf("Finding 2  UE population: %s single-device / %s multi-device\n",
                format_percent(comp.single_device_share, 0).c_str(),
                format_percent(comp.multi_device_share, 0).c_str());

    const auto series = core::bit_pattern_ue_rates(fleet);
    std::printf(
        "Finding 3  UE-risk peaks: %d error DQs, %d error beats, "
        "beat interval %d\n\n",
        series[0].peak_value(10), series[1].peak_value(10),
        series[3].peak_value(10));
  }

  std::puts(
      "Paper shapes: Purley single-device dominant with the 2/2/4 bit\n"
      "signature; Whitley & K920 multi-device dominant, Whitley peaking at\n"
      "wide (4 DQ / 5 beat) patterns.");
  return 0;
}
