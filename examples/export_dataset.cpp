// Dataset export: materialize the synthetic fleet telemetry and the labeled
// feature samples as CSV files, for analysis outside this library (pandas,
// spreadsheets, other ML stacks).
//
//   $ ./build/examples/export_dataset [output_dir]
//
// Writes:
//   <dir>/<platform>_ce_log.csv   one row per logged CE (time, DIMM,
//                                 coordinates, DQ/beat stats)
//   <dir>/<platform>_dimms.csv    one row per DIMM (config, outcome)
//   <dir>/<platform>_samples.csv  one row per labeled feature sample
#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/string_utils.h"
#include "features/extractor.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

std::string platform_slug(dram::Platform platform) {
  switch (platform) {
    case dram::Platform::kIntelPurley:
      return "purley";
    case dram::Platform::kIntelWhitley:
      return "whitley";
    case dram::Platform::kK920:
      return "k920";
  }
  return "unknown";
}

void export_fleet(const sim::FleetTrace& fleet, const std::string& dir) {
  const std::string slug = platform_slug(fleet.platform);

  CsvWriter dimms({"dimm_id", "server_id", "manufacturer", "process",
                   "frequency_mhz", "capacity_gib", "logged_ces",
                   "storm_events", "outcome", "ue_day"});
  CsvWriter ces({"dimm_id", "time_s", "rank", "device", "bank", "row",
                 "column", "bits", "dq_count", "beat_count", "beat_span"});
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const std::string outcome = dimm.predictable_ue() ? "predictable_ue"
                                : dimm.sudden_ue()    ? "sudden_ue"
                                                      : "healthy";
    dimms.add_row({std::to_string(dimm.id), std::to_string(dimm.server_id),
                   dram::manufacturer_name(dimm.config.manufacturer),
                   dram::process_name(dimm.config.process),
                   std::to_string(dimm.config.frequency_mhz),
                   std::to_string(dimm.config.capacity_gib),
                   std::to_string(dimm.ces.size()),
                   std::to_string(dimm.events.size()), outcome,
                   dimm.ue ? std::to_string(dimm.ue->time / kDay) : ""});
    for (const dram::CeEvent& ce : dimm.ces) {
      ces.add_row({std::to_string(dimm.id), std::to_string(ce.time),
                   std::to_string(ce.coord.rank),
                   std::to_string(ce.coord.device),
                   std::to_string(ce.coord.bank),
                   std::to_string(ce.coord.row),
                   std::to_string(ce.coord.column),
                   std::to_string(ce.pattern.bit_count()),
                   std::to_string(ce.pattern.dq_count()),
                   std::to_string(ce.pattern.beat_count()),
                   std::to_string(ce.pattern.beat_span())});
    }
  }
  dimms.save(dir + "/" + slug + "_dimms.csv");
  ces.save(dir + "/" + slug + "_ce_log.csv");

  // Labeled samples with the full feature schema as the header.
  const features::FeatureExtractor extractor;
  std::vector<std::string> header{"dimm_id", "time_s", "label"};
  for (const features::FeatureDef& def : extractor.schema().defs()) {
    header.push_back(def.name);
  }
  CsvWriter samples(std::move(header));
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    for (const features::Sample& sample :
         extractor.extract(dimm, fleet.horizon)) {
      std::vector<std::string> row{std::to_string(sample.dimm),
                                   std::to_string(sample.time),
                                   std::to_string(sample.label)};
      for (float value : sample.features) {
        row.push_back(format_double(value, 6));
      }
      samples.add_row(std::move(row));
    }
  }
  samples.save(dir + "/" + slug + "_samples.csv");
  std::printf("%s: %zu DIMMs, %zu CE rows, %zu samples -> %s/%s_*.csv\n",
              dram::platform_name(fleet.platform), fleet.dimms.size(),
              ces.rows(), samples.rows(), dir.c_str(), slug.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  // Small fleets: the export is meant for inspection, not bulk training.
  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    export_fleet(sim::simulate_fleet(scenario.scaled(0.05)), dir);
  }
  return 0;
}
