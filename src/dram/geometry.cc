#include "dram/geometry.h"

namespace memfp::dram {

const char* platform_name(Platform platform) {
  switch (platform) {
    case Platform::kIntelPurley:
      return "Intel Purley";
    case Platform::kIntelWhitley:
      return "Intel Whitley";
    case Platform::kK920:
      return "K920";
  }
  return "?";
}

const char* manufacturer_name(Manufacturer manufacturer) {
  switch (manufacturer) {
    case Manufacturer::kA:
      return "A";
    case Manufacturer::kB:
      return "B";
    case Manufacturer::kC:
      return "C";
    case Manufacturer::kD:
      return "D";
  }
  return "?";
}

const char* process_name(DramProcess process) {
  switch (process) {
    case DramProcess::kUnknown:
      return "unknown";
    case DramProcess::k1x:
      return "1x";
    case DramProcess::k1y:
      return "1y";
    case DramProcess::k1z:
      return "1z";
    case DramProcess::k1a:
      return "1a";
  }
  return "?";
}

Geometry Geometry::ddr4_x4() {
  Geometry g;
  g.data_devices = 16;
  g.ecc_devices = 2;
  g.width = DeviceWidth::kX4;
  return g;
}

Geometry Geometry::ddr4_x8() {
  Geometry g;
  g.data_devices = 8;
  g.ecc_devices = 1;
  g.width = DeviceWidth::kX8;
  return g;
}

}  // namespace memfp::dram
