#include "dram/ecc.h"

#include <array>

#include "common/check.h"

namespace memfp::dram {

const char* verdict_name(EccVerdict verdict) {
  switch (verdict) {
    case EccVerdict::kNoError:
      return "no-error";
    case EccVerdict::kCorrected:
      return "corrected";
    case EccVerdict::kUncorrected:
      return "uncorrected";
  }
  return "?";
}

EccVerdict SecDedEcc::classify(const ErrorPattern& pattern,
                               const Geometry& geometry) const {
  if (pattern.empty()) return EccVerdict::kNoError;
  std::array<int, 16> per_beat{};
  // The per-beat tally assumes the burst fits the fixed 16-slot word; DDR4/5
  // geometries in the study use 8 or 16 beats.
  MEMFP_CHECK_LE(geometry.beats, static_cast<int>(per_beat.size()))
      << "SEC-DED word model supports at most 16 beats per burst";
  for (const ErrorBit& bit : pattern.bits()) {
    if (bit.beat < per_beat.size() && ++per_beat[bit.beat] > 1) {
      return EccVerdict::kUncorrected;
    }
  }
  (void)geometry;
  return EccVerdict::kCorrected;
}

EccVerdict ChipkillSddcEcc::classify(const ErrorPattern& pattern,
                                     const Geometry& geometry) const {
  if (pattern.empty()) return EccVerdict::kNoError;
  return pattern.single_device(geometry) ? EccVerdict::kCorrected
                                         : EccVerdict::kUncorrected;
}

EccVerdict PurleyEcc::classify(const ErrorPattern& pattern,
                               const Geometry& geometry) const {
  if (pattern.empty()) return EccVerdict::kNoError;
  if (!pattern.single_device(geometry)) return EccVerdict::kUncorrected;
  const bool weak_region = pattern.dq_count() >= kMinDq &&
                           pattern.beat_count() >= kMinBeats &&
                           pattern.beat_span() >= kMinBeatSpan;
  return weak_region ? EccVerdict::kUncorrected : EccVerdict::kCorrected;
}

EccVerdict WhitleyEcc::classify(const ErrorPattern& pattern,
                                const Geometry& geometry) const {
  if (pattern.empty()) return EccVerdict::kNoError;
  if (pattern.single_device(geometry)) return EccVerdict::kCorrected;
  const bool wide = pattern.dq_count() >= kMinDq &&
                    pattern.beat_count() >= kMinBeats;
  return wide ? EccVerdict::kUncorrected : EccVerdict::kCorrected;
}

std::unique_ptr<EccScheme> make_platform_ecc(Platform platform) {
  switch (platform) {
    case Platform::kIntelPurley:
      return std::make_unique<PurleyEcc>();
    case Platform::kIntelWhitley:
      return std::make_unique<WhitleyEcc>();
    case Platform::kK920:
      return std::make_unique<ChipkillSddcEcc>();
  }
  return nullptr;
}

const char* ecc_choice_name(EccChoice choice) {
  switch (choice) {
    case EccChoice::kPlatform:
      return "platform";
    case EccChoice::kSecDed:
      return "sec-ded";
    case EccChoice::kChipkillSddc:
      return "chipkill-sddc";
    case EccChoice::kPurley:
      return "purley-sddc";
    case EccChoice::kWhitley:
      return "whitley-sddc";
  }
  return "?";
}

std::unique_ptr<EccScheme> make_ecc(EccChoice choice, Platform platform) {
  switch (choice) {
    case EccChoice::kPlatform:
      return make_platform_ecc(platform);
    case EccChoice::kSecDed:
      return std::make_unique<SecDedEcc>();
    case EccChoice::kChipkillSddc:
      return std::make_unique<ChipkillSddcEcc>();
    case EccChoice::kPurley:
      return std::make_unique<PurleyEcc>();
    case EccChoice::kWhitley:
      return std::make_unique<WhitleyEcc>();
  }
  return nullptr;
}

}  // namespace memfp::dram
