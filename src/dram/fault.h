// DRAM fault taxonomy and fault -> error-pattern generation.
//
// Faults are the hidden ground truth of the simulator (paper Section II-A:
// a *fault* is the physical root cause; an *error* is an observed wrong
// transfer). Fault modes follow the DRAM hierarchy of Fig 1 and the field
// studies [12, 29, 30]: cell, column, row and bank faults, each confined to
// a single device or spanning multiple devices.
//
// A fault emits correctable/uncorrectable error transfers over time. Its
// *severity* grows (for degrading faults) and controls how widely the error
// bits spread across DQ lanes, beats and devices — which is what ultimately
// pushes a pattern across the platform ECC's correction boundary.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "dram/error_pattern.h"
#include "dram/geometry.h"

namespace memfp::dram {

enum class FaultMode { kCell, kColumn, kRow, kBank };

const char* fault_mode_name(FaultMode mode);

enum class DeviceScope { kSingleDevice, kMultiDevice };

const char* device_scope_name(DeviceScope scope);

/// One injected fault. `escalating` faults grow until their patterns cross
/// the ECC boundary (a *predictable UE* in the paper's terms); benign faults
/// plateau below it.
struct Fault {
  FaultMode mode = FaultMode::kCell;
  DeviceScope scope = DeviceScope::kSingleDevice;
  CellCoord anchor;
  /// Devices involved; contains anchor.device, plus partners for multi-scope.
  std::vector<int> devices{0};

  SimTime arrival = 0;
  double ce_rate_per_hour = 1.0;      ///< error-transfer rate at arrival
  double rate_growth_per_day = 0.0;   ///< exponential rate growth
  double severity0 = 0.1;             ///< spread severity at arrival, [0, 1.2]
  double severity_growth_per_day = 0.0;
  double severity_cap = 0.8;          ///< benign faults plateau here
  bool escalating = false;

  /// Severity at absolute time t (0 before arrival; capped for benign).
  double severity_at(SimTime t) const;
  /// Error-transfer rate (per hour) at absolute time t.
  double rate_at(SimTime t) const;
};

/// Generates the error pattern of one faulty transfer.
///
/// The spread of the generated bits is mode-dependent (cell: one fixed bit;
/// column: one DQ; row: several beats in one device; bank: widest) and grows
/// with `severity`. Escalating faults at severity >= 1 enter the platform's
/// uncorrectable region:
///   Purley  - single-device, >=2 DQs over beats spanning >=4
///   Whitley - multi-device, >=4 DQs over >=5 beats
///   K920    - two devices erring in the same transfer
class FaultPatternModel {
 public:
  FaultPatternModel(Platform platform, Geometry geometry);

  /// Samples the error bits of one transfer emitted by `fault` at the given
  /// severity. Never returns an empty pattern.
  ErrorPattern sample(const Fault& fault, double severity, Rng& rng) const;

  /// The cell coordinate reported with a sampled transfer (the anchor with
  /// mode-appropriate jitter in row/column).
  CellCoord sample_coord(const Fault& fault, Rng& rng) const;

  const Geometry& geometry() const { return geometry_; }
  Platform platform() const { return platform_; }

 private:
  ErrorPattern sample_single_device(const Fault& fault, double severity,
                                    Rng& rng) const;
  ErrorPattern sample_multi_device(const Fault& fault, double severity,
                                   Rng& rng) const;
  /// Bits within one device: `dq_lanes` distinct lanes, beats drawn from a
  /// window of width `beat_window` anchored at the fault's home beat.
  void add_device_bits(ErrorPattern& pattern, int device, int dq_lanes,
                       int beat_window, int beat_anchor, bool force_wide_span,
                       Rng& rng) const;

  Platform platform_;
  Geometry geometry_;
};

}  // namespace memfp::dram
