// Bit-level error pattern of one memory transfer: which (DQ lane, beat)
// positions carried wrong data. This is the object the paper's Fig 5
// statistics (error DQ/beat counts and intervals) and the ECC schemes
// operate on.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/geometry.h"

namespace memfp::dram {

/// One flipped bit position within a transfer.
struct ErrorBit {
  std::uint8_t dq = 0;    // DQ lane index, [0, total_dq)
  std::uint8_t beat = 0;  // beat index, [0, beats)

  bool operator==(const ErrorBit&) const = default;
  auto operator<=>(const ErrorBit&) const = default;
};

/// Set of flipped bits in one transfer. Deduplicated and kept sorted so
/// pattern statistics are deterministic.
class ErrorPattern {
 public:
  ErrorPattern() = default;
  explicit ErrorPattern(std::vector<ErrorBit> bits);

  void add(ErrorBit bit);
  bool empty() const { return bits_.empty(); }
  std::size_t bit_count() const { return bits_.size(); }
  const std::vector<ErrorBit>& bits() const { return bits_; }

  /// Number of distinct DQ lanes carrying errors.
  int dq_count() const;
  /// Number of distinct beats carrying errors.
  int beat_count() const;
  /// Largest distance between consecutive distinct error DQs; 0 when fewer
  /// than two lanes err. (Paper Fig 5 "DQ interval".)
  int max_dq_interval() const;
  /// Largest distance between consecutive distinct error beats; 0 when fewer
  /// than two beats err. (Paper Fig 5 "beat interval".)
  int max_beat_interval() const;
  /// Total span between the outermost error beats (0 when <2 beats).
  int beat_span() const;
  /// Total span between the outermost error DQs (0 when <2 lanes).
  int dq_span() const;

  /// Distinct devices touched, under the given geometry.
  std::vector<int> devices(const Geometry& geometry) const;
  int device_count(const Geometry& geometry) const;
  bool single_device(const Geometry& geometry) const;

  /// Merges another pattern's bits into this one (used to accumulate a
  /// DIMM-lifetime error-bit map, as [30] does).
  void merge(const ErrorPattern& other);

  bool operator==(const ErrorPattern&) const = default;

 private:
  std::vector<ErrorBit> bits_;  // sorted, unique
};

}  // namespace memfp::dram
