#include "dram/hsiao.h"

#include <bit>

namespace memfp::dram {

HsiaoCode::HsiaoCode() {
  // Check-bit positions get the weight-1 columns (the identity block), so a
  // flipped check bit yields a one-hot syndrome.
  for (int i = 0; i < 8; ++i) {
    columns_[64 + i] = static_cast<std::uint8_t>(1u << i);
  }
  // Data positions take distinct odd-weight (>=3) columns. Hsiao's insight:
  // with only odd-weight columns, any double error has an even-weight
  // (hence non-column) syndrome, so double errors are always detected and
  // never miscorrected. Enumerate weight-3 columns first (56 of them), then
  // weight-5 until all 64 data positions are covered — the classic
  // minimum-weight construction that also balances per-row parity fan-in.
  int next = 0;
  for (int weight : {3, 5}) {
    for (int value = 0; value < 256 && next < 64; ++value) {
      if (std::popcount(static_cast<unsigned>(value)) == weight) {
        columns_[next++] = static_cast<std::uint8_t>(value);
      }
    }
  }

  for (int& entry : position_of_syndrome_) entry = -1;
  for (int position = 0; position < 72; ++position) {
    position_of_syndrome_[columns_[position]] = position;
  }
}

Codeword72 HsiaoCode::encode(std::uint64_t data) const {
  Codeword72 word;
  word.data = data;
  std::uint8_t check = 0;
  std::uint64_t bits = data;
  while (bits != 0) {
    const int position = std::countr_zero(bits);
    check ^= columns_[position];
    bits &= bits - 1;
  }
  word.check = check;
  return word;
}

std::uint8_t HsiaoCode::syndrome(const Codeword72& word) const {
  // Syndrome = H * received: the recomputed check XOR the stored check.
  return static_cast<std::uint8_t>(encode(word.data).check ^ word.check);
}

DecodeResult HsiaoCode::decode(const Codeword72& word) const {
  DecodeResult result;
  result.data = word.data;
  const std::uint8_t s = syndrome(word);
  if (s == 0) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  const int position = position_of_syndrome_[s];
  if (position < 0) {
    // Even-weight or unused syndrome: at least two bits flipped.
    result.status = DecodeStatus::kDetectedUncorrectable;
    return result;
  }
  result.corrected_bit = position;
  if (position < 64) {
    result.data ^= 1ULL << position;
    result.status = DecodeStatus::kCorrectedData;
  } else {
    result.status = DecodeStatus::kCorrectedCheck;
  }
  return result;
}

}  // namespace memfp::dram
