// ECC scheme models.
//
// The real platform codes are confidential (paper Section II-B), so we model
// each platform's *correction boundary* — the property all four paper
// findings depend on:
//
//  - SEC-DED: classic per-beat single-error-correct / double-error-detect,
//    used as a reference scheme in tests.
//  - K920-SDDC (Chipkill-class): corrects any error confined to a single
//    device; any transfer with errors from two or more devices is
//    uncorrectable.
//  - Intel Purley: corrects most single-device errors, but is vulnerable to
//    certain single-chip patterns (Li et al. SC'22): two or more error DQs
//    over two or more beats with a wide beat span escape correction.
//    Multi-device errors are uncorrectable.
//  - Intel Whitley: hardened against single-device patterns (adaptive
//    correction absorbs narrow multi-device errors too), but wide
//    multi-device patterns (>=4 DQs over >=5 beats) are uncorrectable.
#pragma once

#include <memory>
#include <string>

#include "dram/error_pattern.h"
#include "dram/geometry.h"

namespace memfp::dram {

enum class EccVerdict { kNoError, kCorrected, kUncorrected };

const char* verdict_name(EccVerdict verdict);

/// A deterministic classifier from transfer error pattern to ECC outcome.
class EccScheme {
 public:
  virtual ~EccScheme() = default;
  virtual EccVerdict classify(const ErrorPattern& pattern,
                              const Geometry& geometry) const = 0;
  virtual std::string name() const = 0;
};

/// Per-beat SEC-DED (Hsiao code behaviour): one flipped bit per 72-bit beat
/// word is corrected; two or more in the same beat are uncorrectable.
class SecDedEcc final : public EccScheme {
 public:
  EccVerdict classify(const ErrorPattern& pattern,
                      const Geometry& geometry) const override;
  std::string name() const override { return "SEC-DED"; }
};

/// Chipkill-class single-device data correction (the K920's code).
class ChipkillSddcEcc final : public EccScheme {
 public:
  EccVerdict classify(const ErrorPattern& pattern,
                      const Geometry& geometry) const override;
  std::string name() const override { return "K920-SDDC"; }
};

/// Intel Purley-generation code with the single-chip weakness of [7].
class PurleyEcc final : public EccScheme {
 public:
  /// Single-device patterns with >= kMinDq DQs, >= kMinBeats beats and beat
  /// span >= kMinBeatSpan escape correction.
  static constexpr int kMinDq = 2;
  static constexpr int kMinBeats = 2;
  static constexpr int kMinBeatSpan = 4;

  EccVerdict classify(const ErrorPattern& pattern,
                      const Geometry& geometry) const override;
  std::string name() const override { return "Purley-SDDC"; }
};

/// Intel Whitley-generation code: stronger per-device correction, adaptive
/// absorption of narrow cross-device errors, uncorrectable only for wide
/// multi-device patterns.
class WhitleyEcc final : public EccScheme {
 public:
  static constexpr int kMinDq = 4;
  static constexpr int kMinBeats = 5;

  EccVerdict classify(const ErrorPattern& pattern,
                      const Geometry& geometry) const override;
  std::string name() const override { return "Whitley-SDDC"; }
};

/// The ECC deployed on each studied platform.
std::unique_ptr<EccScheme> make_platform_ecc(Platform platform);

/// A sweepable ECC selection: either the platform's own deployed code
/// (kPlatform) or one of the four modelled schemes forced onto the fleet.
/// This is the ECC axis of the campaign engine (core/campaign.h) — the same
/// fault population classified under a different correction boundary yields
/// a different observable CE/UE mix, which is exactly the fault × ECC study
/// an injection campaign sweeps.
enum class EccChoice {
  kPlatform,
  kSecDed,
  kChipkillSddc,
  kPurley,
  kWhitley,
};

const char* ecc_choice_name(EccChoice choice);

/// Builds the chosen scheme; kPlatform defers to make_platform_ecc.
std::unique_ptr<EccScheme> make_ecc(EccChoice choice, Platform platform);

}  // namespace memfp::dram
