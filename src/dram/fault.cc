#include "dram/fault.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memfp::dram {

const char* fault_mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCell:
      return "cell";
    case FaultMode::kColumn:
      return "column";
    case FaultMode::kRow:
      return "row";
    case FaultMode::kBank:
      return "bank";
  }
  return "?";
}

const char* device_scope_name(DeviceScope scope) {
  return scope == DeviceScope::kSingleDevice ? "single-device" : "multi-device";
}

double Fault::severity_at(SimTime t) const {
  if (t < arrival) return 0.0;
  const double age_days =
      static_cast<double>(t - arrival) / static_cast<double>(kDay);
  double severity = severity0 + severity_growth_per_day * age_days;
  const double cap = escalating ? 1.3 : severity_cap;
  return std::min(severity, cap);
}

double Fault::rate_at(SimTime t) const {
  if (t < arrival) return 0.0;
  const double age_days =
      static_cast<double>(t - arrival) / static_cast<double>(kDay);
  // Error rate intensifies while the fault is still physically degrading and
  // flattens once the severity trajectory plateaus. This is the temporal
  // signature that separates true escalators (which accelerate all the way
  // into the UE) from stalled lookalikes — and it is invisible to bit-map
  // rule baselines.
  const double cap = escalating ? 1.3 : severity_cap;
  const double degrading_days =
      severity_growth_per_day > 1e-9
          ? std::min(age_days, (cap - severity0) / severity_growth_per_day)
          : age_days;
  // Exponential intensification, clamped so CE storms stay bounded.
  return std::min(
      ce_rate_per_hour * std::exp(rate_growth_per_day * degrading_days),
      4000.0);
}

FaultPatternModel::FaultPatternModel(Platform platform, Geometry geometry)
    : platform_(platform), geometry_(std::move(geometry)) {}

namespace {

/// Deterministic per-fault layout derived from the anchor coordinate: which
/// DQ lanes inside the device the fault touches and where its home/far beats
/// sit. Keeping this a pure function of the anchor makes a fault's footprint
/// stable across transfers, which is what lets accumulated CE-bit maps
/// develop the platform-specific shapes of Fig 5.
struct FaultLayout {
  int lane0 = 0;       // primary DQ lane (absolute)
  int lane1 = 0;       // secondary lane, same device
  int lane2 = 0;       // tertiary lane, same device
  int lane3 = 0;       // quaternary lane, same device
  int home_beat = 0;   // in [0, 3] so a +4 far beat always exists
  int near_beat = 0;   // home + 1..3 (narrow span)
  int far_beat = 0;    // home + >=4 (wide span, Purley weak region)
};

FaultLayout layout_for(const Fault& fault, int device, const Geometry& g) {
  FaultLayout layout;
  const int lanes = g.dq_per_device();
  const int base = g.device_dq_base(device);
  const int offset0 = fault.anchor.row % lanes;
  layout.lane0 = base + offset0;
  layout.lane1 = base + (offset0 + 1) % lanes;
  layout.lane2 = base + (offset0 + 2) % lanes;
  layout.lane3 = base + (offset0 + 3) % lanes;
  layout.home_beat = fault.anchor.column % 4;
  const int narrow = 1 + fault.anchor.bank % 3;  // 1..3
  layout.near_beat = std::min(layout.home_beat + narrow, g.beats - 1);
  // Exactly +4: the weak-region interval is a property of the code's symbol
  // layout, not of the fault — all wide-span escalations share it (and the
  // accumulated maps cluster at interval 4, the paper's red bar).
  layout.far_beat = layout.home_beat + 4;
  return layout;
}

ErrorBit bit(int dq, int beat) {
  return ErrorBit{static_cast<std::uint8_t>(dq),
                  static_cast<std::uint8_t>(beat)};
}

/// Probability that an escalating fault past the boundary emits the
/// uncorrectable pattern on a given transfer; ramps with overshoot.
double ue_emission_probability(double severity) {
  if (severity < 1.0) return 0.0;
  return std::clamp(0.10 + 1.2 * (severity - 1.0), 0.05, 0.85);
}

}  // namespace

ErrorPattern FaultPatternModel::sample(const Fault& fault, double severity,
                                       Rng& rng) const {
  ErrorPattern pattern = fault.scope == DeviceScope::kSingleDevice
                             ? sample_single_device(fault, severity, rng)
                             : sample_multi_device(fault, severity, rng);
  MEMFP_CHECK(!pattern.empty());
  return pattern;
}

ErrorPattern FaultPatternModel::sample_single_device(const Fault& fault,
                                                     double severity,
                                                     Rng& rng) const {
  const FaultLayout layout = layout_for(fault, fault.anchor.device, geometry_);
  ErrorPattern pattern;

  switch (fault.mode) {
    case FaultMode::kCell:
      // A stuck cell errs at one fixed (lane, beat) position.
      pattern.add(bit(layout.lane0, layout.home_beat));
      return pattern;

    case FaultMode::kColumn:
      // A column fault repeats on one DQ lane; under stress the adjacent
      // burst position starts erring too (still a single lane -> always CE).
      pattern.add(bit(layout.lane0, layout.home_beat));
      if (severity > 0.6 && rng.bernoulli(0.4)) {
        pattern.add(bit(layout.lane0,
                        std::min(layout.home_beat + 1, geometry_.beats - 1)));
      }
      return pattern;

    case FaultMode::kRow:
    case FaultMode::kBank:
      break;  // handled below
  }

  // Row/bank faults: the error footprint widens with severity. On Purley this
  // is the fault class that walks into the single-chip weak region of [7].
  if (fault.escalating && severity >= 1.0 &&
      rng.bernoulli(ue_emission_probability(severity))) {
    // Wide two-lane pattern spanning >= 4 beats: uncorrectable on Purley.
    pattern.add(bit(layout.lane0, layout.home_beat));
    pattern.add(bit(layout.lane1, layout.far_beat));
    if (fault.mode == FaultMode::kBank && rng.bernoulli(0.5)) {
      pattern.add(bit(layout.lane1, layout.near_beat));
    }
    return pattern;
  }

  // Pre-boundary emissions: grow the set of active positions with severity.
  struct Position {
    int dq;
    int beat;
  };
  // Pre-boundary emissions stay beat-concentrated at the home beat: the
  // accumulated pre-UE map is then exactly the paper's Purley shape —
  // 2 DQs over 2 beats with a wide (>=4) interval once the far position
  // wakes below.
  std::vector<Position> active{{layout.lane0, layout.home_beat}};
  if (severity > 0.70) active.push_back({layout.lane1, layout.home_beat});
  if (severity > 0.80) {
    // The far position wakes up as the fault widens: CE logs begin to show
    // isolated wide-span single-bit errors. Degrading faults and benign
    // high-severity lookalikes produce the *same* accumulated signature —
    // only actually crossing the boundary (severity >= 1) separates them,
    // which is what keeps the prediction task honest.
    active.push_back({layout.lane1, layout.far_beat});
    // Emission frequency keeps rising with severity; lookalikes whose cap
    // sits below 0.92 never reach this regime.
    if (severity > 0.92) active.push_back({layout.lane1, layout.far_beat});
  }

  const std::size_t first = rng.uniform_u64(active.size());
  pattern.add(bit(active[first].dq, active[first].beat));
  if (active.size() > 1 && rng.bernoulli(0.35)) {
    std::size_t second = rng.uniform_u64(active.size());
    // Never pair home and far lanes in one transfer pre-boundary: that exact
    // combination is the uncorrectable pattern.
    const bool first_far = active[first].beat == layout.far_beat;
    const bool second_far = active[second].beat == layout.far_beat;
    if (!(first_far || second_far) || first == second) {
      pattern.add(bit(active[second].dq, active[second].beat));
    }
  }
  return pattern;
}

ErrorPattern FaultPatternModel::sample_multi_device(const Fault& fault,
                                                    double severity,
                                                    Rng& rng) const {
  MEMFP_CHECK_GE(fault.devices.size(), std::size_t{2});
  const int device_a = fault.devices[0];
  const int device_b = fault.devices[1];
  const FaultLayout la = layout_for(fault, device_a, geometry_);
  const FaultLayout lb = layout_for(fault, device_b, geometry_);
  ErrorPattern pattern;

  const bool emit_ue = fault.escalating && severity >= 1.0 &&
                       rng.bernoulli(ue_emission_probability(severity));

  switch (platform_) {
    case Platform::kIntelWhitley: {
      if (emit_ue) {
        // Wide cross-device pattern: >=4 DQs over >=5 beats -> uncorrectable.
        const int start = static_cast<int>(rng.uniform_u64(
            static_cast<std::uint64_t>(geometry_.beats - 4)));
        pattern.add(bit(la.lane0, start));
        pattern.add(bit(la.lane1, start + 1));
        pattern.add(bit(lb.lane0, start + 2));
        pattern.add(bit(lb.lane1, start + 3));
        pattern.add(bit(lb.lane0, start + 4));
        return pattern;
      }
      // Pre-boundary: errors drift across a moving beat window and alternate
      // devices; escalating faults use two lanes per device (so the
      // accumulated map reaches 4 DQs / 5+ beats), benign faults stay narrow.
      // The beat window drifts as severity grows; benign lookalikes that
      // plateau near the boundary drift the same way and only stop short.
      const int drift =
          severity > 0.55
              ? static_cast<int>((severity - 0.55) * 1.4 *
                                 static_cast<double>(geometry_.beats))
              : 0;
      const auto beat_at = [&](int offset) {
        return (la.home_beat + drift + offset) % geometry_.beats;
      };
      const bool use_b = rng.bernoulli(0.5);
      const FaultLayout& lane_src = use_b ? lb : la;
      pattern.add(bit(lane_src.lane0, beat_at(0)));
      const double second_lane_p = severity > 0.75 ? 0.45 : 0.0;
      if (second_lane_p > 0.0 && rng.bernoulli(second_lane_p)) {
        pattern.add(bit(lane_src.lane1, beat_at(1)));
      }
      if (rng.bernoulli(severity > 0.75 ? 0.30 : 0.15)) {
        // Narrow cross-device error: absorbed by the adaptive correction.
        const FaultLayout& other = use_b ? la : lb;
        pattern.add(bit(other.lane0, beat_at(0)));
      }
      return pattern;
    }

    case Platform::kK920: {
      if (emit_ue) {
        // Two devices erring in the same transfer defeats Chipkill-class
        // single-device correction.
        pattern.add(bit(la.lane0, la.home_beat));
        pattern.add(bit(lb.lane0, la.home_beat));
        if (rng.bernoulli(0.3)) pattern.add(bit(lb.lane1, la.near_beat));
        return pattern;
      }
      // Pre-boundary: one device per transfer, alternating over time. The
      // K920-SDDC corrects arbitrarily wide single-device patterns, so the
      // per-device footprint is free to widen with severity — that widening
      // is the platform's observable early-warning signal.
      const FaultLayout& lane_src = rng.bernoulli(0.5) ? la : lb;
      pattern.add(bit(lane_src.lane0, lane_src.home_beat));
      if (severity > 0.55 && rng.bernoulli(0.5)) {
        pattern.add(bit(lane_src.lane1, lane_src.near_beat));
      }
      if (severity > 0.85 && rng.bernoulli(std::min(0.8, severity - 0.35))) {
        pattern.add(bit(lane_src.lane2, lane_src.home_beat));
        if (rng.bernoulli(0.5)) {
          pattern.add(bit(lane_src.lane0, lane_src.far_beat));
        }
      }
      if (severity > 0.95 && rng.bernoulli(0.6)) {
        // Whole-device involvement: the terminal pre-UE stage, out of reach
        // of plateaued lookalikes.
        pattern.add(bit(lane_src.lane3, lane_src.near_beat));
        pattern.add(bit(lane_src.lane1, lane_src.far_beat));
      }
      return pattern;
    }

    case Platform::kIntelPurley: {
      if (emit_ue) {
        // Any cross-device transfer is uncorrectable on Purley.
        pattern.add(bit(la.lane0, la.home_beat));
        pattern.add(bit(lb.lane0, la.home_beat));
        return pattern;
      }
      // Pre-boundary emissions must stay narrow: Purley also fails on wide
      // single-device patterns, so a degrading multi-device fault shows
      // only alternating near-anchor bits until it crosses.
      const FaultLayout& lane_src = rng.bernoulli(0.5) ? la : lb;
      pattern.add(bit(lane_src.lane0, lane_src.home_beat));
      if (severity > 0.6 && rng.bernoulli(0.3)) {
        pattern.add(bit(lane_src.lane0, lane_src.near_beat));
      }
      return pattern;
    }
  }
  // Unreachable, but keeps -Wreturn-type happy for non-enum values.
  pattern.add(bit(la.lane0, la.home_beat));
  return pattern;
}

CellCoord FaultPatternModel::sample_coord(const Fault& fault, Rng& rng) const {
  CellCoord coord = fault.anchor;
  switch (fault.mode) {
    case FaultMode::kCell:
      break;  // fixed cell
    case FaultMode::kColumn:
      // Same column, varying rows.
      coord.row = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(geometry_.rows)));
      break;
    case FaultMode::kRow:
      // Same row, varying columns.
      coord.column = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(geometry_.columns)));
      break;
    case FaultMode::kBank:
      // Several rows and columns within the bank.
      coord.row = fault.anchor.row +
                  static_cast<int>(rng.uniform_u64(32)) - 16;
      coord.row = std::clamp(coord.row, 0, geometry_.rows - 1);
      coord.column = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(geometry_.columns)));
      break;
  }
  return coord;
}

}  // namespace memfp::dram
