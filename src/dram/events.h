// Observable memory-error telemetry — the record schema of the BMC / MCE
// logs that the paper's dataset (Section III) consists of. Everything the
// analysis and ML layers consume is made of these records; the hidden fault
// ground truth never leaks past the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "dram/error_pattern.h"
#include "dram/geometry.h"

namespace memfp::dram {

/// Stable DIMM identity within a fleet.
using DimmId = std::uint32_t;

/// One corrected-error log record.
struct CeEvent {
  SimTime time = 0;
  CellCoord coord;
  ErrorPattern pattern;
};

/// One uncorrectable-error record. `had_prior_ce` distinguishes the paper's
/// *predictable* UEs (CE history exists) from *sudden* UEs.
struct UeEvent {
  SimTime time = 0;
  CellCoord coord;
  ErrorPattern pattern;
  bool had_prior_ce = false;
};

/// BMC-side memory events beyond raw errors.
enum class MemEventType { kCeStorm, kCeStormSuppressed, kPageOffline };

const char* mem_event_name(MemEventType type);

struct MemEvent {
  SimTime time = 0;
  MemEventType type = MemEventType::kCeStorm;
};

}  // namespace memfp::dram
