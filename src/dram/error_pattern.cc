#include "dram/error_pattern.h"

#include <algorithm>

namespace memfp::dram {
namespace {

/// Distinct sorted values of a bit-field extractor.
template <typename Extract>
std::vector<int> distinct(const std::vector<ErrorBit>& bits, Extract extract) {
  std::vector<int> values;
  values.reserve(bits.size());
  for (const ErrorBit& bit : bits) values.push_back(extract(bit));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

int max_gap(const std::vector<int>& sorted_values) {
  if (sorted_values.size() < 2) return 0;
  int gap = 0;
  for (std::size_t i = 1; i < sorted_values.size(); ++i) {
    gap = std::max(gap, sorted_values[i] - sorted_values[i - 1]);
  }
  return gap;
}

int span(const std::vector<int>& sorted_values) {
  if (sorted_values.size() < 2) return 0;
  return sorted_values.back() - sorted_values.front();
}

}  // namespace

ErrorPattern::ErrorPattern(std::vector<ErrorBit> bits) : bits_(std::move(bits)) {
  std::sort(bits_.begin(), bits_.end());
  bits_.erase(std::unique(bits_.begin(), bits_.end()), bits_.end());
}

void ErrorPattern::add(ErrorBit bit) {
  const auto it = std::lower_bound(bits_.begin(), bits_.end(), bit);
  if (it != bits_.end() && *it == bit) return;
  bits_.insert(it, bit);
}

int ErrorPattern::dq_count() const {
  return static_cast<int>(
      distinct(bits_, [](const ErrorBit& b) { return static_cast<int>(b.dq); })
          .size());
}

int ErrorPattern::beat_count() const {
  return static_cast<int>(
      distinct(bits_, [](const ErrorBit& b) { return static_cast<int>(b.beat); })
          .size());
}

int ErrorPattern::max_dq_interval() const {
  return max_gap(
      distinct(bits_, [](const ErrorBit& b) { return static_cast<int>(b.dq); }));
}

int ErrorPattern::max_beat_interval() const {
  return max_gap(distinct(
      bits_, [](const ErrorBit& b) { return static_cast<int>(b.beat); }));
}

int ErrorPattern::beat_span() const {
  return span(distinct(
      bits_, [](const ErrorBit& b) { return static_cast<int>(b.beat); }));
}

int ErrorPattern::dq_span() const {
  return span(
      distinct(bits_, [](const ErrorBit& b) { return static_cast<int>(b.dq); }));
}

std::vector<int> ErrorPattern::devices(const Geometry& geometry) const {
  return distinct(bits_, [&](const ErrorBit& b) {
    return geometry.device_of_dq(static_cast<int>(b.dq));
  });
}

int ErrorPattern::device_count(const Geometry& geometry) const {
  return static_cast<int>(devices(geometry).size());
}

bool ErrorPattern::single_device(const Geometry& geometry) const {
  return device_count(geometry) == 1;
}

void ErrorPattern::merge(const ErrorPattern& other) {
  for (const ErrorBit& bit : other.bits_) add(bit);
}

}  // namespace memfp::dram
