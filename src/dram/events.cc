#include "dram/events.h"

namespace memfp::dram {

const char* mem_event_name(MemEventType type) {
  switch (type) {
    case MemEventType::kCeStorm:
      return "ce-storm";
    case MemEventType::kCeStormSuppressed:
      return "ce-storm-suppressed";
    case MemEventType::kPageOffline:
      return "page-offline";
  }
  return "?";
}

}  // namespace memfp::dram
