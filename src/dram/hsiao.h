// A real (72,64) Hsiao SEC-DED code (Hsiao 1970, paper reference [4]): the
// codec that ECC DIMM transfers actually run per beat — 64 data bits plus 8
// check bits whose parity-check matrix uses only odd-weight columns, giving
// single-error correction and guaranteed double-error detection.
//
// The pattern-level SecDedEcc classifier in ecc.h models the *outcome*; this
// codec implements the *mechanism* (encode, syndrome decode, correction),
// and the test suite proves the two agree on every pattern they both cover.
#pragma once

#include <cstdint>
#include <optional>

namespace memfp::dram {

/// One 72-bit beat word: 64 data bits + 8 check bits.
struct Codeword72 {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

enum class DecodeStatus {
  kClean,               ///< syndrome zero, no error
  kCorrectedData,       ///< one data bit flipped and repaired
  kCorrectedCheck,      ///< one check bit flipped and repaired
  kDetectedUncorrectable  ///< multi-bit error detected, cannot repair
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::uint64_t data = 0;                 ///< corrected payload
  std::optional<int> corrected_bit;       ///< flipped position (0-71), if any
};

class HsiaoCode {
 public:
  HsiaoCode();

  /// Computes the 8 check bits for a 64-bit payload.
  Codeword72 encode(std::uint64_t data) const;

  /// Syndrome-decodes a (possibly corrupted) codeword.
  DecodeResult decode(const Codeword72& word) const;

  /// Parity-check column for a bit position (0-63 data, 64-71 check).
  std::uint8_t column(int position) const { return columns_[position]; }

 private:
  std::uint8_t syndrome(const Codeword72& word) const;

  std::uint8_t columns_[72];
  // syndrome value -> bit position (or -1); dense 256-entry lookup.
  int position_of_syndrome_[256];
};

}  // namespace memfp::dram
