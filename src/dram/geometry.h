// DRAM organization (paper Fig 1): DIMM -> rank -> device (chip) -> bank ->
// row x column, and the transfer geometry seen by the memory controller:
// a cache-line read moves 8 beats of 72 bits (64 data + 8 ECC) over DQ lanes,
// with each x4 device contributing 4 adjacent DQs per beat.
#pragma once

#include <cstdint>
#include <string>

namespace memfp::dram {

/// CPU platforms studied by the paper. K920 is the anonymized Huawei ARM part.
enum class Platform { kIntelPurley, kIntelWhitley, kK920 };

const char* platform_name(Platform platform);

/// DRAM manufacturers (anonymized letters, as field studies usually do).
enum class Manufacturer { kA, kB, kC, kD };

const char* manufacturer_name(Manufacturer manufacturer);

/// Device data width. The paper's bit-level analysis targets x4 DDR4.
enum class DeviceWidth : std::uint8_t { kX4 = 4, kX8 = 8 };

/// DRAM process node, one of the paper's static features.
enum class DramProcess { kUnknown, k1x, k1y, k1z, k1a };

const char* process_name(DramProcess process);

/// Geometry of one DIMM rank as exposed to the ECC/transfer layer.
struct Geometry {
  int ranks = 2;
  int data_devices = 16;   // devices carrying data bits
  int ecc_devices = 2;     // devices carrying the 8 ECC bits (x4: 2 chips)
  DeviceWidth width = DeviceWidth::kX4;
  int banks = 16;
  int rows = 1 << 17;      // 128Ki rows
  int columns = 1 << 10;   // 1Ki columns
  int beats = 8;           // DDR4 burst length

  int devices_per_rank() const { return data_devices + ecc_devices; }
  int dq_per_device() const { return static_cast<int>(width); }
  /// Total DQ lanes in a transfer (72 for x4: 18 devices x 4 DQ).
  int total_dq() const { return devices_per_rank() * dq_per_device(); }
  /// First DQ lane of a device.
  int device_dq_base(int device) const { return device * dq_per_device(); }
  /// Device owning a DQ lane.
  int device_of_dq(int dq) const { return dq / dq_per_device(); }

  /// Standard x4 DDR4 geometry (72-bit bus) used throughout the study.
  static Geometry ddr4_x4();
  /// x8 variant (9 devices x 8 DQ) used in robustness tests.
  static Geometry ddr4_x8();
};

/// Static DIMM configuration — the paper's "memory specification" features.
struct DimmConfig {
  Manufacturer manufacturer = Manufacturer::kA;
  DramProcess process = DramProcess::k1y;
  DeviceWidth width = DeviceWidth::kX4;
  int frequency_mhz = 2933;
  int capacity_gib = 32;
  std::string part_number;  // synthetic part id, drives baseline rule tables

  Geometry geometry() const {
    return width == DeviceWidth::kX4 ? Geometry::ddr4_x4()
                                     : Geometry::ddr4_x8();
  }
};

/// Location of a DRAM cell within a rank.
struct CellCoord {
  int rank = 0;
  int device = 0;
  int bank = 0;
  int row = 0;
  int column = 0;

  bool operator==(const CellCoord&) const = default;
};

}  // namespace memfp::dram
