// Sharded, bounded-memory fleet driver (ROADMAP item 1): simulates N DIMMs
// in K shards, spilling each shard to the compact binary trace store and
// streaming it back for feature extraction and flat-ensemble scoring, so the
// resident working set is one shard — never the fleet.
//
// Per shard the driver runs the full per-DIMM pipeline:
//
//   plan (FleetPlanner id range) → simulate (parallel) → encode + spill
//   (ShardWriter, id order) → stream back (TraceReader) → extract
//   (incremental sliding-window engine, parallel) → score (FlatEnsemble
//   batch via BinaryClassifier::predict_batch)
//
// Determinism contract: traces, features, and scores are byte-identical to
// the in-memory simulate_fleet + FeatureExtractor path for ANY shard count
// and ANY thread count. The hinge is FleetPlanner's serial-fork cursor —
// a shard's per-DIMM RNG streams depend only on (seed, id range) — plus the
// deterministic ThreadPool (index-slotted outputs) and predict_batch's
// bit-identical-to-serial override contract. The contract is enforced as
// folded FNV-1a hashes over the observed DIMMs in id order (trace payload
// bytes, sample rows, score bits); reference_fleet_result() computes the
// same hashes from the resident path for equality checks at small scale.
//
// Lives in core (not sim) because it stitches sim + features + ml into one
// driver; the layering rule (tools/lint) forbids sim from reaching up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/extractor.h"
#include "ml/model.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "sim/trace_store.h"

namespace memfp::core {

struct FleetDriverConfig {
  /// Shard count K. Planned DIMMs are split into K near-equal contiguous id
  /// ranges; results are invariant in K.
  std::size_t shards = 16;
  /// Directory for the spilled shard files (created if missing).
  std::string store_dir;
  /// Keep the sealed shard files after the run (a DataLake spill does);
  /// false deletes each shard once scored, bounding disk to one shard too.
  bool keep_store = false;
  /// Thread cap for the run (0 = pool default). Any value produces
  /// byte-identical results.
  int num_threads = 0;
  /// Feature windows for the extraction stage.
  features::PredictionWindows windows;
};

struct FleetDriverResult {
  std::size_t planned_dimms = 0;
  std::size_t observed_dimms = 0;
  /// Raw telemetry volume across observed DIMMs (CE + mem events + UEs).
  std::uint64_t ce_records = 0;
  std::uint64_t mem_events = 0;
  std::uint64_t ue_records = 0;
  std::uint64_t suppressed_ces = 0;
  /// Total encoded shard bytes (header + records + index + footer).
  std::uint64_t encoded_bytes = 0;
  /// Feature samples extracted (and scored, when a model is given).
  std::size_t samples = 0;

  /// Folded FNV-1a determinism hashes, in observed-DIMM id order.
  std::uint64_t trace_hash = sim::kFnvOffset;
  std::uint64_t feature_hash = sim::kFnvOffset;
  std::uint64_t score_hash = sim::kFnvOffset;
  /// Sum of model scores in sample order (a human-readable tripwire next to
  /// the exact score_hash).
  double score_sum = 0.0;

  /// Sealed shard files (only when keep_store).
  std::vector<std::string> shard_files;

  std::uint64_t events() const {
    return ce_records + mem_events + ue_records;
  }
};

/// Runs the sharded pipeline. `model` may be null to stop after extraction
/// (simulate + encode + extract only). Deterministic in params.seed for any
/// config.shards / config.num_threads.
FleetDriverResult run_fleet_driver(const sim::ScenarioParams& params,
                                   const FleetDriverConfig& config,
                                   const ml::BinaryClassifier* model,
                                   const sim::DimmSimParams& sim_params = {});

/// The same counters and hashes computed from the resident path
/// (simulate_fleet + in-memory extraction/scoring, no spill). Small-scale
/// equality oracle for the determinism contract.
FleetDriverResult reference_fleet_result(
    const sim::ScenarioParams& params,
    const features::PredictionWindows& windows,
    const ml::BinaryClassifier* model,
    const sim::DimmSimParams& sim_params = {});

/// Folds one extracted sample (dimm, time, label, feature bits) into `h`.
std::uint64_t fold_sample_hash(std::uint64_t h,
                               const features::Sample& sample);

}  // namespace memfp::core
