#include "core/campaign.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <system_error>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/fleet_driver.h"
#include "dram/geometry.h"
#include "features/extractor.h"
#include "ml/dataset.h"
#include "sim/fleet.h"

namespace memfp::core {
namespace {

/// Simulate-shard size in planned DIMMs: big enough to amortize shard
/// framing, small enough that one shard's resident traces stay bounded.
constexpr std::size_t kShardDimms = 4096;

/// Format-version salts, one per stage. Bump a salt when its stage's
/// artifact layout or semantics change — old keys then simply miss.
constexpr std::uint64_t kSimulateSalt = 0x51f01;
constexpr std::uint64_t kExtractSalt = 0x51f02;
constexpr std::uint64_t kTrainSalt = 0x51f03;

void mix_windows(StageKey& key, const features::PredictionWindows& windows) {
  key.mix_signed(windows.observation)
      .mix_signed(windows.lead)
      .mix_signed(windows.prediction)
      .mix_signed(windows.cadence);
}

void mix_fault_mix(StageKey& key, const std::vector<sim::FaultMixEntry>& mix) {
  key.mix(mix.size());
  for (const sim::FaultMixEntry& entry : mix) {
    key.mix(static_cast<std::uint64_t>(entry.mode))
        .mix(static_cast<std::uint64_t>(entry.scope))
        .mix_double(entry.weight);
  }
}

double resolve_threshold(const PolicySpec& policy, double tuned) {
  return policy.mode == PolicySpec::Threshold::kFixed
             ? policy.fixed_threshold
             : tuned * policy.tuned_scale;
}

StageCounters counter_delta(const StageCounters& before,
                            const StageCounters& after) {
  return {after.hits - before.hits, after.misses - before.misses};
}

}  // namespace

// ---------------------------------------------------------------------------
// ScoreStreamSet
// ---------------------------------------------------------------------------

std::vector<std::optional<SimTime>> ScoreStreamSet::first_alarms(
    std::span<const double> thresholds) const {
  const std::size_t n = streams();
  const std::size_t t = thresholds.size();
  std::vector<std::optional<SimTime>> out(n * t);
  if (t == 0 || n == 0) return out;

  // Thresholds in descending order: the set a score event latches —
  // every still-unlatched threshold <= score — is then a contiguous range
  // ending at the previous latch boundary, so one pass per stream latches
  // all T thresholds with one binary search per event.
  std::vector<std::size_t> order(t);
  for (std::size_t i = 0; i < t; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return thresholds[a] > thresholds[b];
                   });
  std::vector<double> sorted(t);
  for (std::size_t i = 0; i < t; ++i) sorted[i] = thresholds[order[i]];

  for (std::size_t s = 0; s < n; ++s) {
    std::size_t boundary = t;  // order[boundary..t) already latched
    for (std::size_t r = offsets[s]; r < offsets[s + 1] && boundary > 0;
         ++r) {
      const double score = scores[r];
      // First index whose threshold <= score. The <= (not <) comparison is
      // the tie rule: a score exactly at the threshold alarms, matching
      // ScoredStream::first_alarm and the serving-layer latch.
      const auto first = std::partition_point(
          sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(boundary),
          [&](double threshold) { return threshold > score; });
      const auto j = static_cast<std::size_t>(first - sorted.begin());
      for (std::size_t k = j; k < boundary; ++k) {
        out[order[k] * n + s] = times[r];
      }
      boundary = j;
    }
  }
  return out;
}

ScoredStream ScoreStreamSet::stream(std::size_t s) const {
  MEMFP_CHECK_LT(s, streams());
  ScoredStream stream;
  stream.times.assign(times.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
                      times.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
  stream.scores.assign(
      scores.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
      scores.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
  return stream;
}

// ---------------------------------------------------------------------------
// Result hashing
// ---------------------------------------------------------------------------

std::uint64_t CampaignPointResult::result_hash() const {
  StageKey key;
  key.mix(scenario).mix(ecc).mix(predictor).mix(policy);
  key.mix_string(name);
  key.mix_double(threshold);
  key.mix(confusion.tp).mix(confusion.fp).mix(confusion.fn).mix(confusion.tn);
  key.mix_double(precision).mix_double(recall).mix_double(f1);
  key.mix(mitigation.true_positives)
      .mix(mitigation.false_positives)
      .mix(mitigation.false_negatives);
  key.mix_double(mitigation.interruptions_without_prediction)
      .mix_double(mitigation.interruptions_with_prediction)
      .mix_double(mitigation.realized_virr);
  key.mix(offline.dimms)
      .mix(offline.rows_offlined)
      .mix(offline.ces_avoided)
      .mix(offline.ues_total)
      .mix(offline.ues_avoided);
  key.mix_double(offline.prevention_rate);
  key.mix(attribution.size());
  for (const FaultClassAttribution& row : attribution) {
    key.mix(static_cast<std::uint64_t>(row.fault_class))
        .mix(row.dimms)
        .mix(row.true_positives)
        .mix(row.false_negatives)
        .mix(row.false_positives)
        .mix(row.true_negatives);
    key.mix_double(row.fn_rate).mix_double(row.fp_rate);
  }
  return key.value();
}

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

struct CampaignEngine::FleetArtifact {
  std::string dir;
  std::vector<std::string> shard_files;
  /// First observed-DIMM index of each shard (ascending); the decode-back
  /// lookup for the page-offline replay.
  std::vector<std::size_t> shard_begin;

  struct DimmMeta {
    dram::DimmId id = 0;
    bool has_ce = false;      ///< logged CE history (ML eligibility)
    bool has_ue = false;
    bool predictable = false;  ///< UE with prior CE (model-level positive)
    SimTime ue_time = 0;       ///< valid when has_ue
    FaultClass fault_class = FaultClass::kNone;
  };
  std::vector<DimmMeta> dimms;  ///< observed DIMMs in id order

  dram::Platform platform = dram::Platform::kIntelPurley;
  SimTime horizon = 0;
  sim::ShardStats totals;
  std::uint64_t trace_hash = sim::kFnvOffset;
};

struct CampaignEngine::FeatureArtifact {
  std::shared_ptr<const FleetArtifact> fleet;

  /// Downsampled + class-rebalanced training rows.
  ml::Dataset train;

  /// One eval partition (validation or test) in SoA stream layout: stream i
  /// belongs to fleet->dimms[dimm[i]]; `streams` carries offsets + times
  /// (scores stay empty until the score stage), `x` the feature rows.
  struct EvalSet {
    std::vector<std::size_t> dimm;
    ScoreStreamSet streams;
    ml::Matrix x;
  };
  EvalSet val;
  EvalSet test;

  std::uint64_t feature_hash = sim::kFnvOffset;
};

struct CampaignEngine::ModelArtifact {
  std::shared_ptr<const FeatureArtifact> features;
  std::shared_ptr<const ml::BinaryClassifier> model;
  /// Fitted-model JSON (the registry-shaped artifact); model_hash is the
  /// FNV-1a of these bytes.
  std::string json;
  std::uint64_t model_hash = sim::kFnvOffset;
};

struct CampaignEngine::ScoreArtifact {
  std::shared_ptr<const ModelArtifact> model;
  ScoreStreamSet val;
  ScoreStreamSet test;
  std::vector<std::size_t> val_dimm;
  std::vector<std::size_t> test_dimm;
  double tuned_threshold = 0.5;
  std::uint64_t score_hash = sim::kFnvOffset;
};

// ---------------------------------------------------------------------------
// Stage keys
// ---------------------------------------------------------------------------

std::uint64_t CampaignEngine::simulate_key(const ScenarioSpec& scenario,
                                           const EccSpec& ecc) const {
  StageKey key;
  key.mix(kSimulateSalt);
  const sim::ScenarioParams& p = scenario.params;
  key.mix(static_cast<std::uint64_t>(p.platform));
  key.mix_signed(p.horizon).mix(p.seed);
  key.mix_signed(p.ce_dimms)
      .mix_signed(p.predictable_ue_dimms)
      .mix_signed(p.sudden_ue_dimms)
      .mix_signed(p.servers);
  key.mix_double(p.censored_escalator_fraction)
      .mix_double(p.short_prelude_fraction)
      .mix_double(p.lookalike_fraction)
      .mix_double(p.two_fault_probability);
  mix_fault_mix(key, p.benign_mix);
  mix_fault_mix(key, p.escalator_mix);
  key.mix(static_cast<std::uint64_t>(ecc.ecc));
  key.mix_signed(ecc.bmc.storm_threshold)
      .mix_signed(ecc.bmc.storm_window)
      .mix_signed(ecc.bmc.suppression_period)
      .mix(ecc.bmc.max_logged_ces);
  return key.value();
}

std::uint64_t CampaignEngine::extract_key(
    const ScenarioSpec& scenario, const EccSpec& ecc,
    const PredictorSpec& predictor, const CampaignSampling& sampling) const {
  StageKey key;
  key.mix(kExtractSalt);
  key.mix(simulate_key(scenario, ecc));
  mix_windows(key, predictor.windows);
  key.mix_signed(predictor.eval_cadence);
  key.mix_double(sampling.test_fraction)
      .mix_double(sampling.validation_fraction);
  key.mix(sampling.max_negatives_per_dimm)
      .mix(sampling.max_positives_per_dimm);
  key.mix_double(sampling.positive_weight_share);
  key.mix(sampling.seed);
  return key.value();
}

std::uint64_t CampaignEngine::train_key(const ScenarioSpec& scenario,
                                        const EccSpec& ecc,
                                        const PredictorSpec& predictor,
                                        const CampaignSampling& sampling)
    const {
  StageKey key;
  key.mix(kTrainSalt);
  key.mix(extract_key(scenario, ecc, predictor, sampling));
  key.mix(static_cast<std::uint64_t>(predictor.algorithm));
  key.mix(predictor.train_seed);
  return key.value();
}

// ---------------------------------------------------------------------------
// Stage executors
// ---------------------------------------------------------------------------

std::shared_ptr<const CampaignEngine::FleetArtifact>
CampaignEngine::run_simulate(const ScenarioSpec& scenario, const EccSpec& ecc,
                             StageCache& cache) {
  const std::uint64_t key = simulate_key(scenario, ecc);
  return cache.get_or_compute<FleetArtifact>(Stage::kSimulate, key, [&] {
    auto artifact = std::make_shared<FleetArtifact>();
    const sim::ScenarioParams& params = scenario.params;
    artifact->platform = params.platform;
    artifact->horizon = params.horizon;

    char dirname[32];
    std::snprintf(dirname, sizeof(dirname), "sim-%016llx",
                  static_cast<unsigned long long>(key));
    const std::string dir =
        (std::filesystem::path(config_.store_dir) / dirname).string();
    std::filesystem::create_directories(dir);
    if (std::find(owned_dirs_.begin(), owned_dirs_.end(), dir) ==
        owned_dirs_.end()) {
      owned_dirs_.push_back(dir);
    }
    artifact->dir = dir;

    sim::DimmSimParams sim_params;
    sim_params.horizon = params.horizon;
    sim_params.ecc = ecc.ecc;
    sim_params.bmc = ecc.bmc;
    const sim::DimmSimulator simulator(params.platform, sim_params);
    const dram::Geometry geometry = dram::Geometry::ddr4_x4();

    sim::FleetPlanner planner(params);
    const std::size_t total = planner.plan().total();
    const std::size_t shards =
        std::max<std::size_t>(1, (total + kShardDimms - 1) / kShardDimms);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * total / shards;
      const std::size_t end = (s + 1) * total / shards;
      const std::vector<sim::PlannedDimm> jobs = planner.take(end - begin);
      if (jobs.empty()) continue;

      std::vector<sim::DimmTrace> traces(jobs.size());
      std::vector<FaultClass> classes(jobs.size(), FaultClass::kNone);
      ThreadPool::global().parallel_for(
          jobs.size(),
          [&](std::size_t i) {
            traces[i] = sim::simulate_planned_dimm(jobs[i], params, simulator,
                                                   geometry);
            classes[i] = dominant_fault_class(traces[i]);
          },
          /*grain=*/1);

      const std::string path =
          sim::shard_path(dir, artifact->shard_files.size());
      sim::ShardWriter writer(path, params.platform, params.horizon);
      artifact->shard_begin.push_back(artifact->dimms.size());
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (!sim::enters_observed_dataset(jobs[i].kind, traces[i])) continue;
        artifact->trace_hash =
            sim::fnv1a_u64(artifact->trace_hash, writer.append(traces[i]));
        FleetArtifact::DimmMeta meta;
        meta.id = traces[i].id;
        meta.has_ce = !traces[i].ces.empty();
        meta.has_ue = traces[i].has_ue();
        meta.predictable = traces[i].predictable_ue();
        meta.ue_time = traces[i].ue ? traces[i].ue->time : 0;
        meta.fault_class = classes[i];
        artifact->dimms.push_back(meta);
      }
      artifact->totals.add(writer.finish());
      artifact->shard_files.push_back(path);
    }
    MEMFP_CHECK_EQ(planner.produced(), total);
    MEMFP_INFO << "campaign simulate[" << scenario.name << "/" << ecc.name
               << "]: " << artifact->dimms.size() << " observed of " << total
               << " planned, " << artifact->totals.raw_records()
               << " records";
    return artifact;
  });
}

std::shared_ptr<const CampaignEngine::FeatureArtifact>
CampaignEngine::run_extract(const ScenarioSpec& scenario, const EccSpec& ecc,
                            const PredictorSpec& predictor,
                            const CampaignSampling& sampling,
                            StageCache& cache) {
  const std::uint64_t key = extract_key(scenario, ecc, predictor, sampling);
  return cache.get_or_compute<FeatureArtifact>(Stage::kExtract, key, [&] {
    const std::shared_ptr<const FleetArtifact> fleet =
        run_simulate(scenario, ecc, cache);
    auto artifact = std::make_shared<FeatureArtifact>();
    artifact->fleet = fleet;

    // Train/val/test roles. The split depends on the fleet and the sampling
    // seed only — never on windows — so predictors that differ in window
    // config are still evaluated on the same held-out DIMMs. No-CE DIMMs
    // (sudden UEs) carry no trainable telemetry and always land in test:
    // the policy-level protocol charges their UEs to the result (class
    // kSudden in the attribution table).
    enum class Role : std::uint8_t { kTrain, kVal, kTest };
    std::vector<Role> roles(fleet->dimms.size(), Role::kTest);
    {
      Rng split_rng(sim::fnv1a_u64(simulate_key(scenario, ecc),
                                   sampling.seed));
      std::vector<dram::DimmId> positive_ids, negative_ids;
      for (const FleetArtifact::DimmMeta& meta : fleet->dimms) {
        if (!meta.has_ce) continue;
        (meta.predictable ? positive_ids : negative_ids).push_back(meta.id);
      }
      const ml::DimmSplit split = ml::split_dimms(
          positive_ids, negative_ids, sampling.test_fraction, split_rng);
      std::vector<dram::DimmId> test_sorted = split.test;
      std::sort(test_sorted.begin(), test_sorted.end());

      std::vector<dram::DimmId> train_pos, train_neg;
      for (std::size_t i = 0; i < fleet->dimms.size(); ++i) {
        const FleetArtifact::DimmMeta& meta = fleet->dimms[i];
        if (!meta.has_ce) continue;  // stays kTest
        if (std::binary_search(test_sorted.begin(), test_sorted.end(),
                               meta.id)) {
          continue;  // stays kTest
        }
        roles[i] = Role::kTrain;
        (meta.predictable ? train_pos : train_neg).push_back(meta.id);
      }
      const ml::DimmSplit val_split = ml::split_dimms(
          train_pos, train_neg, sampling.validation_fraction, split_rng);
      std::vector<dram::DimmId> val_sorted = val_split.test;
      std::sort(val_sorted.begin(), val_sorted.end());
      for (std::size_t i = 0; i < fleet->dimms.size(); ++i) {
        if (roles[i] == Role::kTrain &&
            std::binary_search(val_sorted.begin(), val_sorted.end(),
                               fleet->dimms[i].id)) {
          roles[i] = Role::kVal;
        }
      }
    }

    const features::FeatureExtractor train_extractor(predictor.windows);
    features::PredictionWindows eval_windows = predictor.windows;
    eval_windows.cadence = predictor.eval_cadence;
    const features::FeatureExtractor eval_extractor(eval_windows);

    features::SampleSet train_set;
    train_set.schema = train_extractor.schema();
    Rng sample_rng(sim::fnv1a_u64(key, 0x5a3fULL));

    const auto append_eval = [](FeatureArtifact::EvalSet& set, std::size_t g,
                                const std::vector<features::Sample>& samples) {
      set.dimm.push_back(g);
      for (const features::Sample& sample : samples) {
        set.streams.times.push_back(sample.time);
        set.x.push_row(sample.features);
      }
      set.streams.offsets.push_back(set.streams.times.size());
    };

    // Stream each shard back: extract per DIMM in parallel slots, fold in
    // id order. Extraction draws no RNG, so the fan-out cannot disturb
    // sample_rng's draw sequence (the pipeline's determinism argument).
    std::size_t base = 0;
    for (const std::string& path : fleet->shard_files) {
      const sim::TraceReader reader(path);
      const std::size_t count = reader.dimm_count();
      std::vector<std::vector<features::Sample>> slots(count);
      ThreadPool::global().parallel_for(
          count,
          [&](std::size_t i) {
            const features::FeatureExtractor& extractor =
                roles[base + i] == Role::kTrain ? train_extractor
                                                : eval_extractor;
            slots[i] = extractor.extract(reader.read_dimm(i), fleet->horizon);
          },
          /*grain=*/1);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t g = base + i;
        std::vector<features::Sample> samples = std::move(slots[i]);
        slots[i].clear();
        for (const features::Sample& sample : samples) {
          artifact->feature_hash =
              fold_sample_hash(artifact->feature_hash, sample);
        }
        switch (roles[g]) {
          case Role::kTrain: {
            // Per-DIMM downsampling before pooling (the pipeline's memory
            // discipline): negatives uniformly, positives keep the latest.
            std::vector<features::Sample> positives, negatives;
            for (features::Sample& sample : samples) {
              if (sample.label == 1) positives.push_back(std::move(sample));
              else if (sample.label == 0) negatives.push_back(std::move(sample));
            }
            if (negatives.size() > sampling.max_negatives_per_dimm) {
              sample_rng.shuffle(negatives);
              negatives.resize(sampling.max_negatives_per_dimm);
            }
            if (positives.size() > sampling.max_positives_per_dimm) {
              positives.erase(
                  positives.begin(),
                  positives.end() -
                      static_cast<std::ptrdiff_t>(
                          sampling.max_positives_per_dimm));
            }
            for (features::Sample& sample : negatives) {
              train_set.samples.push_back(std::move(sample));
            }
            for (features::Sample& sample : positives) {
              train_set.samples.push_back(std::move(sample));
            }
            break;
          }
          case Role::kVal:
            append_eval(artifact->val, g, samples);
            break;
          case Role::kTest:
            append_eval(artifact->test, g, samples);
            break;
        }
      }
      base += count;
    }
    MEMFP_CHECK_EQ(base, fleet->dimms.size());

    artifact->train = ml::make_dataset(train_set);
    ml::rebalance_weights(artifact->train, sampling.positive_weight_share);
    MEMFP_INFO << "campaign extract[" << scenario.name << "/" << ecc.name
               << "/" << predictor.name << "]: " << artifact->train.size()
               << " train rows, " << artifact->val.dimm.size() << " val / "
               << artifact->test.dimm.size() << " test DIMMs";
    return artifact;
  });
}

std::shared_ptr<const CampaignEngine::ModelArtifact> CampaignEngine::run_train(
    const ScenarioSpec& scenario, const EccSpec& ecc,
    const PredictorSpec& predictor, const CampaignSampling& sampling,
    StageCache& cache) {
  const std::uint64_t key = train_key(scenario, ecc, predictor, sampling);
  return cache.get_or_compute<ModelArtifact>(Stage::kTrain, key, [&] {
    MEMFP_CHECK(predictor.algorithm != Algorithm::kRiskyCePattern)
        << "campaign: the predictor axis needs a feature model; the "
           "trace-based rule baseline has no train/score stages to share";
    const std::shared_ptr<const FeatureArtifact> features =
        run_extract(scenario, ecc, predictor, sampling, cache);
    auto artifact = std::make_shared<ModelArtifact>();
    artifact->features = features;
    std::unique_ptr<ml::BinaryClassifier> model =
        make_model(predictor.algorithm);
    // The train key already folds every upstream axis, so it doubles as the
    // training-stream seed: identical configs reproduce the identical model
    // on any path.
    Rng rng(sim::fnv1a_u64(key, predictor.train_seed));
    model->fit(features->train, rng);
    artifact->json = model->to_json().dump();
    artifact->model_hash = sim::fnv1a_bytes(
        sim::kFnvOffset, artifact->json.data(), artifact->json.size());
    artifact->model = std::move(model);
    return artifact;
  });
}

std::shared_ptr<const CampaignEngine::ScoreArtifact> CampaignEngine::run_score(
    const ScenarioSpec& scenario, const EccSpec& ecc,
    const PredictorSpec& predictor, const CampaignSampling& sampling,
    StageCache& cache) {
  const std::uint64_t key = train_key(scenario, ecc, predictor, sampling);
  return cache.get_or_compute<ScoreArtifact>(Stage::kScore, key, [&] {
    const std::shared_ptr<const ModelArtifact> model =
        run_train(scenario, ecc, predictor, sampling, cache);
    const FeatureArtifact& parts = *model->features;
    auto artifact = std::make_shared<ScoreArtifact>();
    artifact->model = model;

    const auto score_partition = [&](const FeatureArtifact::EvalSet& in,
                                     ScoreStreamSet& out) {
      out.offsets = in.streams.offsets;
      out.times = in.streams.times;
      // predict_batch is contractually bit-identical to the serial walk at
      // any thread count, so the cached score artifact is too.
      out.scores = model->model->predict_batch(in.x);
      MEMFP_CHECK_EQ(out.scores.size(), out.times.size());
      for (const double score : out.scores) {
        artifact->score_hash = sim::fnv1a_u64(
            artifact->score_hash, std::bit_cast<std::uint64_t>(score));
      }
    };
    score_partition(parts.val, artifact->val);
    score_partition(parts.test, artifact->test);
    artifact->val_dimm = parts.val.dimm;
    artifact->test_dimm = parts.test.dimm;

    // Tune the F1 threshold on the validation fold (model-level positives:
    // predictable UEs), once per score artifact — every policy deriving
    // its threshold from the tuned point reuses this value.
    const std::size_t val_streams = artifact->val.streams();
    std::vector<ScoredStream> streams(val_streams);
    std::vector<AlarmOutcome> outcomes(val_streams);
    for (std::size_t i = 0; i < val_streams; ++i) {
      streams[i] = artifact->val.stream(i);
      const FleetArtifact::DimmMeta& meta =
          parts.fleet->dimms[artifact->val_dimm[i]];
      outcomes[i].positive = meta.predictable;
      outcomes[i].ue_time = meta.ue_time;
    }
    artifact->tuned_threshold =
        tune_threshold(streams, outcomes, predictor.windows);
    return artifact;
  });
}

// ---------------------------------------------------------------------------
// Policy evaluation
// ---------------------------------------------------------------------------

std::vector<std::pair<std::size_t, sim::DimmTrace>>
CampaignEngine::load_ue_test_traces(const ScoreArtifact& scored) const {
  const FleetArtifact& fleet = *scored.model->features->fleet;
  std::vector<std::pair<std::size_t, sim::DimmTrace>> traces;
  std::unique_ptr<sim::TraceReader> reader;
  std::size_t open_shard = fleet.shard_files.size();
  // test_dimm is ascending (streams were appended in id order), so each
  // shard is opened at most once.
  for (std::size_t i = 0; i < scored.test_dimm.size(); ++i) {
    const std::size_t g = scored.test_dimm[i];
    if (!fleet.dimms[g].has_ue) continue;
    const auto it = std::upper_bound(fleet.shard_begin.begin(),
                                     fleet.shard_begin.end(), g);
    const auto shard =
        static_cast<std::size_t>(it - fleet.shard_begin.begin()) - 1;
    if (shard != open_shard) {
      reader = std::make_unique<sim::TraceReader>(fleet.shard_files[shard]);
      open_shard = shard;
    }
    traces.emplace_back(i, reader->read_dimm(g - fleet.shard_begin[shard]));
  }
  return traces;
}

CampaignPointResult CampaignEngine::evaluate_policy(
    const CampaignSpec& spec, std::size_t s, std::size_t e, std::size_t p,
    std::size_t q, const ScoreArtifact& scored, double threshold,
    std::span<const std::optional<SimTime>> alarms,
    const std::vector<std::pair<std::size_t, sim::DimmTrace>>& ue_traces)
    const {
  const PolicySpec& policy = spec.policies[q];
  const PredictorSpec& predictor = spec.predictors[p];
  const FleetArtifact& fleet = *scored.model->features->fleet;

  CampaignPointResult point;
  point.scenario = s;
  point.ecc = e;
  point.predictor = p;
  point.policy = q;
  point.name = spec.scenarios[s].name + "/" + spec.eccs[e].name + "/" +
               predictor.name + "/" + policy.name;
  point.threshold = threshold;

  const std::size_t n = scored.test.streams();
  MEMFP_CHECK_EQ(alarms.size(), n);
  std::vector<AlarmOutcome> outcomes(n);
  std::vector<FaultClass> classes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FleetArtifact::DimmMeta& meta = fleet.dimms[scored.test_dimm[i]];
    // Policy-level ground truth: any UE counts, including sudden ones the
    // predictor cannot see (their empty streams never alarm → FN, charged
    // to class kSudden in the attribution table).
    outcomes[i].positive = meta.has_ue;
    outcomes[i].ue_time = meta.ue_time;
    outcomes[i].alarm = alarms[i];
    classes[i] = meta.fault_class;
  }

  point.confusion = dimm_confusion(outcomes, predictor.windows);
  point.precision = point.confusion.precision();
  point.recall = point.confusion.recall();
  point.f1 = point.confusion.f1();
  point.attribution =
      attribute_outcomes(classes, outcomes, predictor.windows);
  point.mitigation =
      mlops::account_confusion(point.confusion.tp, point.confusion.fp,
                               point.confusion.fn, policy.mitigation);

  // Page-offline replay over the UE-bearing test DIMMs: would the UE's row
  // have been retired in time under this policy?
  sim::FleetOfflineReport offline;
  offline.dimms = ue_traces.size();
  for (const auto& [stream, trace] : ue_traces) {
    const std::optional<SimTime> alarm =
        policy.prediction_guided_offlining ? alarms[stream] : std::nullopt;
    const sim::OfflineOutcome outcome =
        sim::apply_page_offlining(trace, policy.offline, alarm);
    offline.rows_offlined += static_cast<std::size_t>(outcome.rows_offlined);
    offline.ces_avoided += outcome.ces_avoided;
    ++offline.ues_total;
    offline.ues_avoided += outcome.ue_row_offlined ? 1 : 0;
  }
  offline.prevention_rate =
      offline.ues_total == 0
          ? 0.0
          : static_cast<double>(offline.ues_avoided) /
                static_cast<double>(offline.ues_total);
  point.offline = offline;
  return point;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {
  MEMFP_CHECK(!config_.store_dir.empty())
      << "campaign: config.store_dir must name a spill directory";
}

CampaignEngine::~CampaignEngine() {
  if (config_.keep_store) return;
  for (const std::string& dir : owned_dirs_) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // best-effort cleanup
  }
}

CampaignResult CampaignEngine::run(const CampaignSpec& spec) {
  MEMFP_CHECK_GT(spec.points(), 0u) << "campaign: empty sweep";
  ThreadPool::ScopedLimit limit(config_.num_threads);

  CampaignResult result;
  result.stats.points = spec.points();

  if (config_.share_stages) {
    const StageCounters before[kStageCount] = {
        cache_.counters(Stage::kSimulate), cache_.counters(Stage::kExtract),
        cache_.counters(Stage::kTrain), cache_.counters(Stage::kScore)};
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
      for (std::size_t e = 0; e < spec.eccs.size(); ++e) {
        for (std::size_t p = 0; p < spec.predictors.size(); ++p) {
          const std::shared_ptr<const ScoreArtifact> scored = run_score(
              spec.scenarios[s], spec.eccs[e], spec.predictors[p],
              spec.sampling, cache_);
          // The whole policy axis collapses to one vectorized sweep over
          // the cached score streams.
          std::vector<double> thresholds;
          thresholds.reserve(spec.policies.size());
          for (const PolicySpec& policy : spec.policies) {
            thresholds.push_back(
                resolve_threshold(policy, scored->tuned_threshold));
          }
          const std::vector<std::optional<SimTime>> alarms =
              scored->test.first_alarms(thresholds);
          ++result.stats.policy_sweeps;
          const auto ue_traces = load_ue_test_traces(*scored);
          const std::size_t n = scored->test.streams();
          for (std::size_t q = 0; q < spec.policies.size(); ++q) {
            result.points.push_back(evaluate_policy(
                spec, s, e, p, q, *scored, thresholds[q],
                std::span(alarms).subspan(q * n, n), ue_traces));
          }
        }
      }
    }
    result.stats.simulate =
        counter_delta(before[0], cache_.counters(Stage::kSimulate));
    result.stats.extract =
        counter_delta(before[1], cache_.counters(Stage::kExtract));
    result.stats.train =
        counter_delta(before[2], cache_.counters(Stage::kTrain));
    result.stats.score =
        counter_delta(before[3], cache_.counters(Stage::kScore));
  } else {
    // Naive per-config pipeline: a fresh cache per point re-runs every
    // stage, and the policy is evaluated by a scalar per-threshold replay.
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
      for (std::size_t e = 0; e < spec.eccs.size(); ++e) {
        for (std::size_t p = 0; p < spec.predictors.size(); ++p) {
          for (std::size_t q = 0; q < spec.policies.size(); ++q) {
            StageCache local;
            const std::shared_ptr<const ScoreArtifact> scored = run_score(
                spec.scenarios[s], spec.eccs[e], spec.predictors[p],
                spec.sampling, local);
            const double threshold = resolve_threshold(
                spec.policies[q], scored->tuned_threshold);
            const std::size_t n = scored->test.streams();
            std::vector<std::optional<SimTime>> alarms(n);
            for (std::size_t i = 0; i < n; ++i) {
              alarms[i] = scored->test.stream(i).first_alarm(threshold);
            }
            ++result.stats.policy_sweeps;
            const auto ue_traces = load_ue_test_traces(*scored);
            result.points.push_back(evaluate_policy(
                spec, s, e, p, q, *scored, threshold, alarms, ue_traces));
            for (std::size_t st = 0; st < kStageCount; ++st) {
              const StageCounters& c =
                  local.counters(static_cast<Stage>(st));
              StageCounters& out =
                  st == 0 ? result.stats.simulate
                          : st == 1 ? result.stats.extract
                                    : st == 2 ? result.stats.train
                                              : result.stats.score;
              out.hits += c.hits;
              out.misses += c.misses;
            }
          }
        }
      }
    }
  }

  for (const CampaignPointResult& point : result.points) {
    result.campaign_hash =
        sim::fnv1a_u64(result.campaign_hash, point.result_hash());
  }
  MEMFP_INFO << "campaign " << spec.name << ": " << result.points.size()
             << " points, simulate " << result.stats.simulate.misses
             << " miss/" << result.stats.simulate.hits << " hit, extract "
             << result.stats.extract.misses << "/"
             << result.stats.extract.hits << ", train "
             << result.stats.train.misses << "/" << result.stats.train.hits
             << ", score " << result.stats.score.misses << "/"
             << result.stats.score.hits << ", " << result.stats.policy_sweeps
             << " policy sweeps";
  return result;
}

}  // namespace memfp::core
