#include "core/evaluation.h"

#include <algorithm>

#include "common/check.h"

namespace memfp::core {

ml::Confusion dimm_confusion(const std::vector<AlarmOutcome>& outcomes,
                             const features::PredictionWindows& windows) {
  ml::Confusion c;
  for (const AlarmOutcome& outcome : outcomes) {
    if (outcome.positive) {
      const bool timely =
          outcome.alarm &&
          outcome.ue_time - *outcome.alarm >= windows.lead &&
          outcome.ue_time - *outcome.alarm <= windows.lead + windows.prediction;
      if (timely) {
        ++c.tp;
      } else {
        ++c.fn;
        // An alarm outside the valid window also cost a (useless) migration.
        if (outcome.alarm) ++c.fp;
      }
    } else if (outcome.alarm) {
      ++c.fp;
    } else {
      ++c.tn;
    }
  }
  return c;
}

std::optional<SimTime> ScoredStream::first_alarm(double threshold) const {
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) return times[i];
  }
  return std::nullopt;
}

double ScoredStream::max_score() const {
  double best = 0.0;
  for (double s : scores) best = std::max(best, s);
  return best;
}

double tune_threshold(const std::vector<ScoredStream>& streams,
                      const std::vector<AlarmOutcome>& outcomes_template,
                      const features::PredictionWindows& windows) {
  MEMFP_CHECK_EQ(streams.size(), outcomes_template.size());
  // Candidate thresholds: the distinct per-DIMM maxima (every alarm-set
  // change happens at one of them), probed just below each value.
  std::vector<double> candidates;
  for (const ScoredStream& stream : streams) {
    const double m = stream.max_score();
    if (m > 0.0) candidates.push_back(m);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.empty()) return 0.5;

  std::vector<AlarmOutcome> outcomes = outcomes_template;
  std::vector<std::pair<double, double>> curve;  // (threshold, smoothed F1)
  double best_f1 = -1.0;
  for (double candidate : candidates) {
    const double threshold = candidate - 1e-9;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      outcomes[i].alarm = streams[i].first_alarm(threshold);
    }
    const ml::Confusion c = dimm_confusion(outcomes, windows);
    // Laplace-smoothed F1: validation folds hold only a handful of positive
    // DIMMs, and raw F1 rewards degenerate 2-alarm thresholds; the smoothing
    // term damps those spikes.
    constexpr double kAlpha = 3.0;
    const double f1 = 2.0 * static_cast<double>(c.tp) /
                      (2.0 * static_cast<double>(c.tp) +
                       static_cast<double>(c.fp) + static_cast<double>(c.fn) +
                       kAlpha);
    curve.emplace_back(threshold, f1);
    best_f1 = std::max(best_f1, f1);
  }
  // The validation F1 curve is typically flat near its peak and the argmax
  // is noise; among near-optimal thresholds take the lowest. More alarms at
  // indistinguishable F1 means higher recall — the direction VIRR rewards.
  double best_threshold = 0.5;
  for (const auto& [threshold, f1] : curve) {
    if (f1 >= best_f1 * 0.93) {
      best_threshold = threshold;
      break;  // candidates are ascending; the first qualifying is lowest
    }
  }
  return best_threshold;
}

}  // namespace memfp::core
