// Content-addressed stage cache for the campaign engine (ROADMAP item 5).
//
// A campaign point is one (scenario, ECC, predictor, policy) configuration;
// its pipeline is a DAG of stages (simulate → extract → train → score →
// policy eval). Most sweep axes leave upstream stages untouched, so every
// stage artifact is keyed by an FNV-1a hash of *exactly* the config fields
// that stage depends on: two points that agree on those fields share the
// artifact, and perturbing one axis invalidates only the stages downstream
// of it. The campaign tests assert both properties through the per-stage
// hit/miss counters.
//
// The cache is deliberately not thread-safe: the campaign executor resolves
// stage instances serially at the top level (the artifact *bodies* fan out
// on the deterministic ThreadPool), which keeps counter values and artifact
// identity bit-reproducible at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <utility>

#include "sim/trace_store.h"

namespace memfp::core {

/// The shareable stages of a campaign point's pipeline, in DAG order.
enum class Stage { kSimulate = 0, kExtract, kTrain, kScore };
inline constexpr std::size_t kStageCount = 4;

const char* stage_name(Stage stage);

/// FNV-1a fold builder for stage keys. Callers mix in exactly the config
/// axes the stage depends on (plus a format-version salt), in a fixed field
/// order; strings are length-prefixed so adjacent fields cannot collide by
/// concatenation.
class StageKey {
 public:
  StageKey& mix(std::uint64_t value) {
    hash_ = sim::fnv1a_u64(hash_, value);
    return *this;
  }
  StageKey& mix_signed(std::int64_t value) {
    return mix(static_cast<std::uint64_t>(value));
  }
  StageKey& mix_double(double value);
  StageKey& mix_string(std::string_view value);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = sim::kFnvOffset;
};

struct StageCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Keyed artifact store with per-stage hit/miss accounting. Artifacts are
/// immutable once inserted (shared_ptr<const T>), so sharing one across
/// campaign points is safe by construction.
class StageCache {
 public:
  /// Returns the cached artifact for (stage, key), computing and inserting
  /// it via `compute` on a miss. The stored pointer is type-erased; all
  /// callers of one Stage must use one artifact type.
  template <typename T, typename Compute>
  std::shared_ptr<const T> get_or_compute(Stage stage, std::uint64_t key,
                                          Compute&& compute) {
    const MapKey map_key{static_cast<int>(stage), key};
    const auto it = entries_.find(map_key);
    if (it != entries_.end()) {
      ++counters_[static_cast<std::size_t>(stage)].hits;
      return std::static_pointer_cast<const T>(it->second);
    }
    ++counters_[static_cast<std::size_t>(stage)].misses;
    std::shared_ptr<const T> artifact = compute();
    entries_.emplace(map_key, artifact);
    return artifact;
  }

  const StageCounters& counters(Stage stage) const {
    return counters_[static_cast<std::size_t>(stage)];
  }
  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  std::size_t size() const { return entries_.size(); }

  void reset_counters();
  void clear();

 private:
  using MapKey = std::pair<int, std::uint64_t>;
  // std::map, not unordered: deterministic iteration keeps every consumer
  // of the cache (including diagnostics) order-stable across runs.
  std::map<MapKey, std::shared_ptr<const void>> entries_;
  StageCounters counters_[kStageCount];
};

}  // namespace memfp::core
