// End-to-end prediction pipeline (paper Section VI): fleet telemetry ->
// samples -> per-DIMM split -> model training -> threshold tuning on a
// validation fold -> DIMM-level alarm evaluation on held-out DIMMs.
//
// The pipeline never materializes the full fleet sample set: training rows
// are downsampled per DIMM as they are extracted, and evaluation streams one
// DIMM at a time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "features/extractor.h"
#include "ml/model.h"
#include "sim/trace.h"

namespace memfp::core {

enum class Algorithm { kRiskyCePattern, kRandomForest, kLightGbm, kFtTransformer };

const char* algorithm_name(Algorithm algorithm);

/// Fresh model instance for an algorithm (kRiskyCePattern is trace-based and
/// handled by the pipeline itself; requesting it here throws).
std::unique_ptr<ml::BinaryClassifier> make_model(Algorithm algorithm);

struct PipelineConfig {
  features::PredictionWindows windows;      ///< training cadence = 1 day
  SimDuration eval_cadence = days(2);       ///< scoring cadence on val/test
  double test_fraction = 0.30;
  double validation_fraction = 0.25;        ///< of train DIMMs, for threshold
  std::size_t max_negatives_per_dimm = 6;
  std::size_t max_positives_per_dimm = 12;
  double positive_weight_share = 0.25;
  std::uint64_t seed = 13;
  /// Optional feature-column restriction (ablations); empty = all features.
  std::vector<std::size_t> active_features;
  /// Parallelism cap for this experiment's simulation/training/scoring hot
  /// paths: 0 = the pool default (MEMFP_THREADS env var, else
  /// hardware_concurrency()); 1 = the serial fallback. Results are
  /// byte-identical for every value (see DESIGN.md "Threading model").
  int num_threads = 0;
};

/// A fleet prepared for experiments: split decided, training set built.
class Experiment {
 public:
  Experiment(const sim::FleetTrace& fleet, PipelineConfig config);

  /// Trains and evaluates one ML algorithm.
  struct Result {
    std::string algorithm;
    ml::Confusion confusion;
    double threshold = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    double virr = 0.0;
    double sample_pr_auc = 0.0;  ///< pooled test-sample diagnostic
    bool applicable = true;      ///< false renders as "X" (paper Table II)
  };
  Result run(Algorithm algorithm);

  /// Like run(), but also hands back the fitted model (nullptr for the
  /// trace-based rule baseline).
  std::pair<Result, std::unique_ptr<ml::BinaryClassifier>> run_with_model(
      Algorithm algorithm);

  const sim::FleetTrace& fleet() const { return *fleet_; }
  const PipelineConfig& config() const { return config_; }
  const ml::Dataset& train_set() const { return train_set_; }
  std::size_t train_dimm_count() const { return train_dimms_.size(); }
  std::size_t test_dimm_count() const { return test_dimms_.size(); }
  const std::vector<const sim::DimmTrace*>& test_dimms() const {
    return test_dimms_;
  }

  /// Scores every eval-cadence sample of `dimms`; fills streams + outcomes.
  /// One pool task per DIMM; streams, outcomes and the pooled score/label
  /// vectors are merged in DIMM order, so confusion counts and tuned
  /// thresholds are bit-identical to the serial path at any thread count.
  void score_dimms(const ml::BinaryClassifier& model,
                   const std::vector<const sim::DimmTrace*>& dimms,
                   std::vector<ScoredStream>& streams,
                   std::vector<AlarmOutcome>& outcomes,
                   std::vector<double>* pooled_scores,
                   std::vector<int>* pooled_labels) const;

 private:
  Result run_risky_baseline();

  /// Ablation projection of one feature row into a caller-owned scratch
  /// buffer (no per-row allocation); no-op copy avoided entirely by
  /// score_dimms when no column restriction is active.
  void project_into(std::span<const float> features,
                    std::vector<float>& out) const;

  const sim::FleetTrace* fleet_;
  PipelineConfig config_;
  features::FeatureExtractor train_extractor_;
  features::FeatureExtractor eval_extractor_;
  std::vector<const sim::DimmTrace*> train_dimms_;
  std::vector<const sim::DimmTrace*> val_dimms_;
  std::vector<const sim::DimmTrace*> test_dimms_;
  ml::Dataset train_set_;
};

}  // namespace memfp::core
