#include "core/fleet_driver.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "dram/geometry.h"
#include "ml/dataset.h"

namespace memfp::core {

std::uint64_t fold_sample_hash(std::uint64_t h,
                               const features::Sample& sample) {
  h = sim::fnv1a_u64(h, sample.dimm);
  h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(sample.time));
  h = sim::fnv1a_u64(h,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(sample.label)));
  for (const float value : sample.features) {
    h = sim::fnv1a_u64(h, std::bit_cast<std::uint32_t>(value));
  }
  return h;
}

namespace {

void fold_scores(const ml::BinaryClassifier* model, const ml::Matrix& x,
                 FleetDriverResult& result) {
  if (model == nullptr || x.rows() == 0) return;
  // predict_batch is contractually bit-identical to the serial per-row walk
  // at any thread count, so batching per shard (here) vs per fleet (the
  // reference) cannot change a single score bit.
  const std::vector<double> scores = model->predict_batch(x);
  for (const double score : scores) {
    result.score_hash =
        sim::fnv1a_u64(result.score_hash, std::bit_cast<std::uint64_t>(score));
    result.score_sum += score;
  }
}

}  // namespace

FleetDriverResult run_fleet_driver(const sim::ScenarioParams& params,
                                   const FleetDriverConfig& config,
                                   const ml::BinaryClassifier* model,
                                   const sim::DimmSimParams& sim_params) {
  MEMFP_CHECK(!config.store_dir.empty())
      << "run_fleet_driver: config.store_dir must name a spill directory";
  std::filesystem::create_directories(config.store_dir);

  sim::DimmSimParams effective = sim_params;
  effective.horizon = params.horizon;
  const sim::DimmSimulator simulator(params.platform, effective);
  const dram::Geometry geometry = dram::Geometry::ddr4_x4();
  const features::FeatureExtractor extractor(config.windows);

  ThreadPool::ScopedLimit limit(config.num_threads);

  FleetDriverResult result;
  sim::FleetPlanner planner(params);
  const std::size_t total = planner.plan().total();
  result.planned_dimms = total;
  const std::size_t shards = std::max<std::size_t>(1, config.shards);

  for (std::size_t s = 0; s < shards; ++s) {
    // Contiguous near-equal id ranges; the planner cursor guarantees shard
    // s's jobs depend only on (seed, id range), never on the split.
    const std::size_t begin = s * total / shards;
    const std::size_t end = (s + 1) * total / shards;
    MEMFP_CHECK_EQ(planner.produced(), begin);
    const std::vector<sim::PlannedDimm> jobs = planner.take(end - begin);
    if (jobs.empty()) continue;

    // Simulate the shard into index slots (one task per DIMM, as the
    // in-memory builder does).
    std::vector<sim::DimmTrace> traces(jobs.size());
    ThreadPool::global().parallel_for(
        jobs.size(),
        [&](std::size_t i) {
          traces[i] =
              sim::simulate_planned_dimm(jobs[i], params, simulator, geometry);
        },
        /*grain=*/1);

    // Encode + spill the observed DIMMs in id order, folding the canonical
    // trace hash as the bytes go out.
    const std::string path = sim::shard_path(config.store_dir, s);
    sim::ShardWriter writer(path, params.platform, params.horizon);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (!sim::enters_observed_dataset(jobs[i].kind, traces[i])) continue;
      result.trace_hash =
          sim::fnv1a_u64(result.trace_hash, writer.append(traces[i]));
    }
    const sim::ShardStats stats = writer.finish();
    result.observed_dimms += stats.dimms;
    result.ce_records += stats.ce_records;
    result.mem_events += stats.mem_events;
    result.ue_records += stats.ue_records;
    result.suppressed_ces += stats.suppressed_ces;
    result.encoded_bytes += stats.file_bytes;

    // Drop the simulated residents: from here on the shard is read back
    // from its encoded form, exactly as a later training run would.
    traces.clear();
    traces.shrink_to_fit();

    const sim::TraceReader reader(path);
    std::vector<std::vector<features::Sample>> samples(reader.dimm_count());
    ThreadPool::global().parallel_for(
        reader.dimm_count(),
        [&](std::size_t i) {
          samples[i] = extractor.extract(reader.read_dimm(i), params.horizon);
        },
        /*grain=*/1);

    // Fold features and score the shard in one flat batch, in id order.
    ml::Matrix x;
    for (const std::vector<features::Sample>& dimm_samples : samples) {
      for (const features::Sample& sample : dimm_samples) {
        result.feature_hash = fold_sample_hash(result.feature_hash, sample);
        x.push_row(sample.features);
      }
    }
    result.samples += x.rows();
    fold_scores(model, x, result);

    if (config.keep_store) {
      result.shard_files.push_back(path);
    } else {
      std::remove(path.c_str());
    }
  }
  MEMFP_CHECK_EQ(planner.produced(), total);

  MEMFP_INFO << "fleet driver: " << result.planned_dimms << " planned, "
             << result.observed_dimms << " observed across " << shards
             << " shards, " << result.events() << " events, "
             << result.encoded_bytes << " encoded bytes, " << result.samples
             << " samples";
  return result;
}

FleetDriverResult reference_fleet_result(const sim::ScenarioParams& params,
                                         const features::PredictionWindows&
                                             windows,
                                         const ml::BinaryClassifier* model,
                                         const sim::DimmSimParams& sim_params) {
  const sim::FleetTrace fleet = sim::simulate_fleet(params, sim_params);
  const features::FeatureExtractor extractor(windows);

  FleetDriverResult result;
  result.planned_dimms = sim::plan_fleet(params).total();
  result.observed_dimms = fleet.dimms.size();

  std::vector<std::vector<features::Sample>> samples(fleet.dimms.size());
  ThreadPool::global().parallel_for(
      fleet.dimms.size(),
      [&](std::size_t i) {
        samples[i] = extractor.extract(fleet.dimms[i], params.horizon);
      },
      /*grain=*/1);

  std::vector<std::uint8_t> scratch;
  ml::Matrix x;
  for (std::size_t i = 0; i < fleet.dimms.size(); ++i) {
    const sim::DimmTrace& dimm = fleet.dimms[i];
    result.ce_records += dimm.ces.size();
    result.mem_events += dimm.events.size();
    result.ue_records += dimm.ue.has_value() ? 1 : 0;
    result.suppressed_ces += dimm.suppressed_ce_count;
    // Payload bytes only — the sharded path additionally counts each
    // shard's header/index/footer framing, so encoded_bytes is a stat, not
    // part of the byte-identity contract (the hashes are).
    scratch.clear();
    sim::encode_dimm_record(dimm, scratch);
    result.encoded_bytes += scratch.size();
    result.trace_hash = sim::fnv1a_u64(result.trace_hash, sim::trace_content_hash(dimm));
    for (const features::Sample& sample : samples[i]) {
      result.feature_hash = fold_sample_hash(result.feature_hash, sample);
      x.push_row(sample.features);
    }
  }
  result.samples += x.rows();
  fold_scores(model, x, result);
  return result;
}

}  // namespace memfp::core
