#include "core/predictor.h"

#include <stdexcept>

#include "common/logging.h"

namespace memfp::core {

MemoryFailurePredictor::MemoryFailurePredictor(dram::Platform platform)
    : MemoryFailurePredictor(platform, Options{}) {}

MemoryFailurePredictor::MemoryFailurePredictor(dram::Platform platform,
                                               Options options)
    : platform_(platform), options_(options), extractor_(options.windows) {}

void MemoryFailurePredictor::train(const sim::FleetTrace& fleet) {
  if (fleet.platform != platform_) {
    throw std::invalid_argument(
        "MemoryFailurePredictor: fleet platform mismatch");
  }
  // Reuse the experiment pipeline with a zero test fraction: everything goes
  // into training + the threshold-tuning validation fold.
  PipelineConfig config;
  config.windows = options_.windows;
  config.eval_cadence = options_.eval_cadence;
  config.test_fraction = 0.0;
  config.validation_fraction = options_.validation_fraction;
  config.max_negatives_per_dimm = options_.max_negatives_per_dimm;
  config.max_positives_per_dimm = options_.max_positives_per_dimm;
  config.positive_weight_share = options_.positive_weight_share;
  config.seed = options_.seed;

  Experiment experiment(fleet, config);
  auto [result, model] = experiment.run_with_model(options_.algorithm);
  threshold_ = result.threshold;
  model_ = std::move(model);
  MEMFP_INFO << "predictor trained on " << dram::platform_name(platform_)
             << ", threshold " << threshold_;
}

double MemoryFailurePredictor::score(const sim::DimmTrace& dimm,
                                     SimTime t) const {
  if (!model_) throw std::logic_error("MemoryFailurePredictor: not trained");
  const std::vector<float> features = extractor_.features_at(dimm, t);
  if (features.empty()) return 0.0;
  // Tree-ensemble models serve this through the compiled FlatEnsemble
  // single-row walk (same score bits as the pointer walker, ~no pointer
  // chasing); see DESIGN.md "Flattened ensemble inference".
  return model_->predict(features);
}

bool MemoryFailurePredictor::predict(const sim::DimmTrace& dimm,
                                     SimTime t) const {
  return score(dimm, t) >= threshold_;
}

Json MemoryFailurePredictor::to_json() const {
  Json out = Json::object();
  out.set("platform", dram::platform_name(platform_));
  out.set("algorithm", algorithm_name(options_.algorithm));
  out.set("threshold", threshold_);
  if (model_) out.set("model", model_->to_json());
  return out;
}

}  // namespace memfp::core
