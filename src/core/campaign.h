// Campaign engine (ROADMAP item 5): sweeps the cross-product of
// scenario/fault-mix × ECC scheme × predictor × alarm/offlining policy and
// produces the repo's first policy-level results — per-point confusion,
// realized VIRR, mitigation accounting, page-offline prevention, and a
// root-cause attribution table per fault class.
//
// The engine plans each config point's stage DAG
//
//   simulate (fleet → trace-store shards)      key: scenario × ECC
//   extract  (shards → feature partitions)     key: + windows × sampling
//   train    (train partition → fitted model)  key: + algorithm × seed
//   score    (model × eval partitions → per-DIMM score streams + threshold)
//   policy   (score streams × policy → results; never cached, always cheap)
//
// and executes it through the content-addressed StageCache: an N-point sweep
// simulates each distinct (scenario, ECC) once, extracts each distinct
// (trace, window-config) once, and the alarm-threshold/policy axis collapses
// to one vectorized multi-threshold sweep over the cached score streams
// (SoA arrays, one pass per score artifact) instead of per-threshold
// replays. Cached and uncached paths are byte-identical — the campaign hash
// folds every point's result and must not depend on sharing, thread count,
// or visit order (tests/test_campaign.cc).
//
// Lives in core because it stitches sim + features + ml + mlops policy
// accounting into one driver; mlops is used header-only (MitigationPolicy,
// account_confusion), so no core → mlops link edge exists.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluation.h"
#include "core/fault_analysis.h"
#include "core/pipeline.h"
#include "core/stage_cache.h"
#include "features/windows.h"
#include "ml/metrics.h"
#include "mlops/alarm.h"
#include "sim/dimm_sim.h"
#include "sim/page_offline.h"
#include "sim/scenario.h"

namespace memfp::core {

// ---------------------------------------------------------------------------
// Campaign spec: the four sweep axes
// ---------------------------------------------------------------------------

struct ScenarioSpec {
  std::string name;
  sim::ScenarioParams params;
};

/// ECC axis entry. The BMC logging policy rides this axis too: both describe
/// the platform's error-reporting stack, and both invalidate the simulated
/// fleet when perturbed.
struct EccSpec {
  std::string name = "platform";
  dram::EccChoice ecc = dram::EccChoice::kPlatform;
  sim::BmcPolicy bmc;
};

/// Predictor axis entry: model family + window/cadence config + train seed.
struct PredictorSpec {
  std::string name = "gbdt";
  Algorithm algorithm = Algorithm::kLightGbm;
  features::PredictionWindows windows;
  SimDuration eval_cadence = days(2);
  std::uint64_t train_seed = 17;
};

/// Alarm/offlining policy axis entry. Policies are evaluated from cached
/// score streams — adding policy points costs one threshold column in the
/// vectorized sweep, never a re-simulation or re-train.
struct PolicySpec {
  std::string name = "tuned";
  enum class Threshold { kTunedF1, kFixed };
  Threshold mode = Threshold::kTunedF1;
  /// Threshold value when mode == kFixed.
  double fixed_threshold = 0.5;
  /// Multiplier on the tuned threshold when mode == kTunedF1 (sensitivity
  /// sweeps around the validation optimum).
  double tuned_scale = 1.0;
  /// Retire the hottest rows of a DIMM at alarm time (prediction-guided
  /// page offlining) in addition to the reactive policy.
  bool prediction_guided_offlining = true;
  sim::PageOfflinePolicy offline;
  mlops::MitigationPolicy mitigation;
};

/// Split/downsampling parameters shared by every point (not a sweep axis).
struct CampaignSampling {
  double test_fraction = 0.30;
  double validation_fraction = 0.25;
  std::size_t max_negatives_per_dimm = 6;
  std::size_t max_positives_per_dimm = 12;
  double positive_weight_share = 0.25;
  std::uint64_t seed = 13;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<ScenarioSpec> scenarios;
  std::vector<EccSpec> eccs;
  std::vector<PredictorSpec> predictors;
  std::vector<PolicySpec> policies;
  CampaignSampling sampling;

  std::size_t points() const {
    return scenarios.size() * eccs.size() * predictors.size() *
           policies.size();
  }
};

// ---------------------------------------------------------------------------
// Score streams (SoA) and the vectorized threshold sweep
// ---------------------------------------------------------------------------

/// Per-DIMM score streams in flat SoA layout (flat_ensemble-style): stream s
/// owns [offsets[s], offsets[s+1]) of `times`/`scores`. This is the cached
/// score artifact the whole policy axis evaluates against.
struct ScoreStreamSet {
  std::vector<std::size_t> offsets{0};
  std::vector<SimTime> times;
  std::vector<double> scores;

  std::size_t streams() const { return offsets.size() - 1; }

  /// First alarm of every (threshold, stream) pair in ONE pass per stream:
  /// thresholds are visited in descending order, so the set a score event
  /// latches is always a contiguous suffix and each event costs one binary
  /// search. Output is indexed out[t * streams() + s]. Tie rule: a score
  /// exactly at the threshold alarms (score >= threshold), identical to
  /// ScoredStream::first_alarm and the serving-layer latch.
  std::vector<std::optional<SimTime>> first_alarms(
      std::span<const double> thresholds) const;

  /// AoS view of one stream (the scalar/naive path and tune_threshold).
  ScoredStream stream(std::size_t s) const;
};

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One evaluated config point. `positive` ground truth at the policy level
/// is *any* UE among evaluated test DIMMs — sudden UEs are included (class
/// kSudden, unreachable by a CE-history predictor), unlike the model-level
/// Experiment protocol which excludes no-CE DIMMs entirely. The attribution
/// table is what makes that legible per fault class.
struct CampaignPointResult {
  std::size_t scenario = 0;
  std::size_t ecc = 0;
  std::size_t predictor = 0;
  std::size_t policy = 0;
  std::string name;  ///< "<scenario>/<ecc>/<predictor>/<policy>"

  double threshold = 0.0;
  ml::Confusion confusion;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  mlops::MitigationReport mitigation;
  sim::FleetOfflineReport offline;
  std::vector<FaultClassAttribution> attribution;

  /// Canonical FNV-1a over every field above — the byte-identity contract
  /// between the shared, naive, cached and re-run paths.
  std::uint64_t result_hash() const;
};

struct CampaignRunStats {
  StageCounters simulate;
  StageCounters extract;
  StageCounters train;
  StageCounters score;
  /// Vectorized multi-threshold passes executed (one per distinct score
  /// artifact in the shared path; one per point in the naive path).
  std::size_t policy_sweeps = 0;
  std::size_t points = 0;
};

struct CampaignResult {
  /// Cross-product order: scenario-major, then ecc, predictor, policy.
  std::vector<CampaignPointResult> points;
  CampaignRunStats stats;
  /// Folded point hashes in cross-product order.
  std::uint64_t campaign_hash = sim::kFnvOffset;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct CampaignConfig {
  /// Spill root for simulate-stage trace shards (one subdirectory per
  /// simulate artifact). Required.
  std::string store_dir;
  /// Thread cap (0 = pool default). Results are byte-identical for every
  /// value.
  int num_threads = 0;
  /// false = the naive per-config pipeline: every point re-runs simulate →
  /// extract → train → score from scratch and evaluates its policy with a
  /// scalar per-threshold replay. Same results, no sharing — the baseline
  /// bench_campaign measures against.
  bool share_stages = true;
  /// Keep the spilled shard directories after the engine is destroyed.
  bool keep_store = false;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignConfig config);
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Runs the sweep. Deterministic in the spec for any num_threads /
  /// share_stages; a second run on the same engine hits the cache end to
  /// end and returns byte-identical results.
  CampaignResult run(const CampaignSpec& spec);

  const StageCache& cache() const { return cache_; }

  /// Stage keys exposed for the perturbation tests: which artifacts two
  /// specs share is exactly which keys collide.
  std::uint64_t simulate_key(const ScenarioSpec& scenario,
                             const EccSpec& ecc) const;
  std::uint64_t extract_key(const ScenarioSpec& scenario, const EccSpec& ecc,
                            const PredictorSpec& predictor,
                            const CampaignSampling& sampling) const;
  std::uint64_t train_key(const ScenarioSpec& scenario, const EccSpec& ecc,
                          const PredictorSpec& predictor,
                          const CampaignSampling& sampling) const;

 private:
  struct FleetArtifact;
  struct FeatureArtifact;
  struct ModelArtifact;
  struct ScoreArtifact;

  std::shared_ptr<const FleetArtifact> run_simulate(
      const ScenarioSpec& scenario, const EccSpec& ecc, StageCache& cache);
  std::shared_ptr<const FeatureArtifact> run_extract(
      const ScenarioSpec& scenario, const EccSpec& ecc,
      const PredictorSpec& predictor, const CampaignSampling& sampling,
      StageCache& cache);
  std::shared_ptr<const ModelArtifact> run_train(
      const ScenarioSpec& scenario, const EccSpec& ecc,
      const PredictorSpec& predictor, const CampaignSampling& sampling,
      StageCache& cache);
  std::shared_ptr<const ScoreArtifact> run_score(
      const ScenarioSpec& scenario, const EccSpec& ecc,
      const PredictorSpec& predictor, const CampaignSampling& sampling,
      StageCache& cache);

  /// UE-bearing test DIMMs decoded back from the simulate shards, as
  /// (test stream index, trace) pairs — the page-offline replay input,
  /// loaded once per score artifact and shared across its policies.
  std::vector<std::pair<std::size_t, sim::DimmTrace>> load_ue_test_traces(
      const ScoreArtifact& scored) const;

  CampaignPointResult evaluate_policy(
      const CampaignSpec& spec, std::size_t s, std::size_t e, std::size_t p,
      std::size_t q, const ScoreArtifact& scored, double threshold,
      std::span<const std::optional<SimTime>> alarms,
      const std::vector<std::pair<std::size_t, sim::DimmTrace>>& ue_traces)
      const;

  CampaignConfig config_;
  StageCache cache_;
  std::vector<std::string> owned_dirs_;
};

}  // namespace memfp::core
