#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "baseline/risky_ce_pattern.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/ft_transformer.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace memfp::core {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRiskyCePattern:
      return "Risky CE Pattern";
    case Algorithm::kRandomForest:
      return "Random forest";
    case Algorithm::kLightGbm:
      return "LightGBM";
    case Algorithm::kFtTransformer:
      return "FT-Transformer";
  }
  return "?";
}

std::unique_ptr<ml::BinaryClassifier> make_model(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRandomForest:
      return std::make_unique<ml::RandomForest>();
    case Algorithm::kLightGbm:
      return std::make_unique<ml::Gbdt>();
    case Algorithm::kFtTransformer:
      return std::make_unique<ml::FtTransformer>();
    case Algorithm::kRiskyCePattern:
      break;
  }
  throw std::invalid_argument(
      "make_model: Risky CE Pattern is trace-based, not a feature model");
}

namespace {

features::PredictionWindows with_cadence(features::PredictionWindows windows,
                                         SimDuration cadence) {
  windows.cadence = cadence;
  return windows;
}

}  // namespace

Experiment::Experiment(const sim::FleetTrace& fleet, PipelineConfig config)
    : fleet_(&fleet),
      config_(config),
      train_extractor_(config.windows),
      eval_extractor_(with_cadence(config.windows, config.eval_cadence)) {
  Rng rng(config_.seed);

  // Eligible DIMMs: those with CE telemetry. Sudden-UE DIMMs have no
  // predictive data and are excluded (paper Section III).
  std::vector<dram::DimmId> positive_ids, negative_ids;
  std::vector<const sim::DimmTrace*> by_position;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    (dimm.predictable_ue() ? positive_ids : negative_ids).push_back(dimm.id);
    by_position.push_back(&dimm);
  }
  const ml::DimmSplit split = ml::split_dimms(
      positive_ids, negative_ids, config_.test_fraction, rng);

  std::vector<bool> is_test_lookup;
  {
    std::vector<dram::DimmId> test_sorted = split.test;
    std::sort(test_sorted.begin(), test_sorted.end());
    for (const sim::DimmTrace* dimm : by_position) {
      is_test_lookup.push_back(std::binary_search(
          test_sorted.begin(), test_sorted.end(), dimm->id));
    }
  }

  // Carve the validation fold (for threshold tuning) out of the train side,
  // stratified by class like the test split.
  std::vector<const sim::DimmTrace*> train_all;
  for (std::size_t i = 0; i < by_position.size(); ++i) {
    if (is_test_lookup[i]) {
      test_dimms_.push_back(by_position[i]);
    } else {
      train_all.push_back(by_position[i]);
    }
  }
  std::vector<dram::DimmId> train_pos, train_neg;
  for (const sim::DimmTrace* dimm : train_all) {
    (dimm->predictable_ue() ? train_pos : train_neg).push_back(dimm->id);
  }
  const ml::DimmSplit val_split = ml::split_dimms(
      train_pos, train_neg, config_.validation_fraction, rng);
  std::vector<dram::DimmId> val_sorted = val_split.test;
  std::sort(val_sorted.begin(), val_sorted.end());
  for (const sim::DimmTrace* dimm : train_all) {
    (std::binary_search(val_sorted.begin(), val_sorted.end(), dimm->id)
         ? val_dimms_
         : train_dimms_)
        .push_back(dimm);
  }

  // Build the training set: extract per DIMM in parallel blocks, then
  // downsample serially in DIMM order. Extraction draws no RNG, so the
  // parallel fan-out cannot disturb sample_rng's draw sequence and the
  // training set stays byte-identical at any thread count; block-at-a-time
  // keeps peak memory at one block of undownsampled DIMMs.
  features::SampleSet set;
  set.schema = train_extractor_.schema();
  Rng sample_rng = rng.fork();
  {
    ThreadPool::ScopedLimit limit(config_.num_threads);
    constexpr std::size_t kExtractBlock = 32;
    std::vector<std::vector<features::Sample>> block(kExtractBlock);
    for (std::size_t begin = 0; begin < train_dimms_.size();
         begin += kExtractBlock) {
      const std::size_t count =
          std::min(kExtractBlock, train_dimms_.size() - begin);
      ThreadPool::global().parallel_for(
          count,
          [&](std::size_t i) {
            block[i] =
                train_extractor_.extract(*train_dimms_[begin + i],
                                         fleet.horizon);
          },
          /*grain=*/1);
      for (std::size_t i = 0; i < count; ++i) {
        std::vector<features::Sample> samples = std::move(block[i]);
        block[i].clear();
        // Per-DIMM downsampling before pooling keeps memory flat.
        std::vector<features::Sample> positives, negatives;
        for (features::Sample& sample : samples) {
          if (sample.label == 1) positives.push_back(std::move(sample));
          else if (sample.label == 0) negatives.push_back(std::move(sample));
        }
        if (negatives.size() > config_.max_negatives_per_dimm) {
          sample_rng.shuffle(negatives);
          negatives.resize(config_.max_negatives_per_dimm);
        }
        if (positives.size() > config_.max_positives_per_dimm) {
          positives.erase(positives.begin(),
                          positives.end() - static_cast<std::ptrdiff_t>(
                                                config_.max_positives_per_dimm));
        }
        for (auto& sample : negatives) set.samples.push_back(std::move(sample));
        for (auto& sample : positives) set.samples.push_back(std::move(sample));
      }
    }
  }
  train_set_ = ml::make_dataset(set);
  if (!config_.active_features.empty()) {
    // Ablation: project the training matrix onto the active columns.
    ml::Dataset projected;
    projected.y = train_set_.y;
    projected.weight = train_set_.weight;
    projected.dimm = train_set_.dimm;
    projected.time = train_set_.time;
    for (std::size_t i = 0; i < config_.active_features.size(); ++i) {
      const std::size_t col = config_.active_features[i];
      if (std::find(train_set_.categorical.begin(),
                    train_set_.categorical.end(),
                    col) != train_set_.categorical.end()) {
        projected.categorical.push_back(i);
      }
    }
    for (std::size_t r = 0; r < train_set_.size(); ++r) {
      std::vector<float> row;
      row.reserve(config_.active_features.size());
      for (std::size_t col : config_.active_features) {
        row.push_back(train_set_.x.at(r, col));
      }
      projected.x.push_row(row);
    }
    train_set_ = std::move(projected);
  }
  ml::rebalance_weights(train_set_, config_.positive_weight_share);

  MEMFP_INFO << "experiment " << dram::platform_name(fleet.platform) << ": "
             << train_dimms_.size() << " train / " << val_dimms_.size()
             << " val / " << test_dimms_.size() << " test DIMMs, "
             << train_set_.size() << " training rows ("
             << train_set_.positives() << " positive)";
}

void Experiment::project_into(std::span<const float> features,
                              std::vector<float>& out) const {
  out.clear();
  out.reserve(config_.active_features.size());
  for (std::size_t col : config_.active_features) out.push_back(features[col]);
}

void Experiment::score_dimms(const ml::BinaryClassifier& model,
                             const std::vector<const sim::DimmTrace*>& dimms,
                             std::vector<ScoredStream>& streams,
                             std::vector<AlarmOutcome>& outcomes,
                             std::vector<double>* pooled_scores,
                             std::vector<int>* pooled_labels) const {
  streams.assign(dimms.size(), {});
  outcomes.assign(dimms.size(), {});
  std::vector<std::vector<double>> dimm_scores(
      pooled_scores ? dimms.size() : 0);
  std::vector<std::vector<int>> dimm_labels(pooled_labels ? dimms.size() : 0);

  ThreadPool::ScopedLimit limit(config_.num_threads);
  ThreadPool::global().parallel_for(
      dimms.size(),
      [&](std::size_t d) {
        const sim::DimmTrace* dimm = dimms[d];
        const std::vector<features::Sample> samples =
            eval_extractor_.extract(*dimm, fleet_->horizon);
        ScoredStream stream;
        ml::Matrix x;
        std::vector<float> projected;  // reused scratch; only for ablations
        const bool project = !config_.active_features.empty();
        for (const features::Sample& sample : samples) {
          stream.times.push_back(sample.time);
          if (project) {
            project_into(sample.features, projected);
            x.push_row(projected);
          } else {
            x.push_row(sample.features);
          }
        }
        // predict_batch dispatches to the flat batched engine for the tree
        // ensembles (FlatEnsemble) — same scores, one pass over x.
        stream.scores = x.rows() > 0 ? model.predict_batch(x)
                                     : std::vector<double>{};
        if (pooled_scores) {
          for (std::size_t i = 0; i < samples.size(); ++i) {
            if (samples[i].label < 0) continue;
            dimm_scores[d].push_back(stream.scores[i]);
            dimm_labels[d].push_back(samples[i].label);
          }
        }
        AlarmOutcome outcome;
        outcome.positive = dimm->predictable_ue();
        outcome.ue_time = dimm->ue ? dimm->ue->time : 0;
        streams[d] = std::move(stream);
        outcomes[d] = outcome;
      },
      /*grain=*/1);

  // Ordered merge: pooled vectors are concatenated in DIMM order, exactly as
  // the serial loop appended them.
  if (pooled_scores) {
    for (std::size_t d = 0; d < dimms.size(); ++d) {
      pooled_scores->insert(pooled_scores->end(), dimm_scores[d].begin(),
                            dimm_scores[d].end());
      pooled_labels->insert(pooled_labels->end(), dimm_labels[d].begin(),
                            dimm_labels[d].end());
    }
  }
}

Experiment::Result Experiment::run(Algorithm algorithm) {
  return run_with_model(algorithm).first;
}

std::pair<Experiment::Result, std::unique_ptr<ml::BinaryClassifier>>
Experiment::run_with_model(Algorithm algorithm) {
  if (algorithm == Algorithm::kRiskyCePattern) {
    return {run_risky_baseline(), nullptr};
  }

  Result result;
  result.algorithm = algorithm_name(algorithm);
  // Caps pool width for training and scoring alike; results do not depend
  // on the cap (determinism contract), only wall-clock does.
  ThreadPool::ScopedLimit limit(config_.num_threads);
  Rng rng(config_.seed ^ (static_cast<std::uint64_t>(algorithm) + 0x51ed));
  std::unique_ptr<ml::BinaryClassifier> model = make_model(algorithm);
  model->fit(train_set_, rng);

  // Threshold tuning on the validation DIMMs.
  std::vector<ScoredStream> val_streams;
  std::vector<AlarmOutcome> val_outcomes;
  score_dimms(*model, val_dimms_, val_streams, val_outcomes, nullptr, nullptr);
  result.threshold =
      tune_threshold(val_streams, val_outcomes, config_.windows);

  // Held-out evaluation.
  std::vector<ScoredStream> test_streams;
  std::vector<AlarmOutcome> test_outcomes;
  std::vector<double> pooled_scores;
  std::vector<int> pooled_labels;
  score_dimms(*model, test_dimms_, test_streams, test_outcomes,
              &pooled_scores, &pooled_labels);
  for (std::size_t i = 0; i < test_streams.size(); ++i) {
    test_outcomes[i].alarm = test_streams[i].first_alarm(result.threshold);
  }
  result.confusion = dimm_confusion(test_outcomes, config_.windows);
  result.precision = result.confusion.precision();
  result.recall = result.confusion.recall();
  result.f1 = result.confusion.f1();
  result.virr = result.confusion.virr();
  result.sample_pr_auc = ml::pr_auc(pooled_scores, pooled_labels);
  return {std::move(result), std::move(model)};
}

Experiment::Result Experiment::run_risky_baseline() {
  Result result;
  result.algorithm = algorithm_name(Algorithm::kRiskyCePattern);
  if (fleet_->platform != dram::Platform::kIntelPurley) {
    // The published rules target the Purley ECC generation only.
    result.applicable = false;
    return result;
  }
  baseline::RiskyCePattern baseline(config_.windows);
  std::vector<const sim::DimmTrace*> fit_dimms = train_dimms_;
  fit_dimms.insert(fit_dimms.end(), val_dimms_.begin(), val_dimms_.end());
  baseline.fit(fit_dimms, fleet_->horizon);

  std::vector<AlarmOutcome> outcomes;
  for (const sim::DimmTrace* dimm : test_dimms_) {
    AlarmOutcome outcome;
    outcome.positive = dimm->predictable_ue();
    outcome.ue_time = dimm->ue ? dimm->ue->time : 0;
    outcome.alarm = baseline.first_alarm(*dimm);
    outcomes.push_back(outcome);
  }
  result.confusion = dimm_confusion(outcomes, config_.windows);
  result.precision = result.confusion.precision();
  result.recall = result.confusion.recall();
  result.f1 = result.confusion.f1();
  result.virr = result.confusion.virr();
  result.threshold = 1.0;
  return result;
}

}  // namespace memfp::core
