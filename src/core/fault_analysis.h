// The paper's Section V analyses, computed from observable telemetry:
//  - Fig 4: relative UE rate per inferred fault mode, per platform.
//  - Fig 5: UE rate versus accumulated error-DQ/beat counts and intervals
//    (the bit-level failure-pattern study, Intel platforms).
#pragma once

#include <string>
#include <vector>

#include "features/fault_inference.h"
#include "sim/trace.h"

namespace memfp::core {

struct FaultModeEntry {
  std::string category;
  std::size_t dimms = 0;     ///< DIMMs whose CE history shows this fault mode
  std::size_t ue_dimms = 0;  ///< ... of which reached a UE
  double ue_rate = 0.0;
  double relative = 0.0;  ///< ue_rate / max ue_rate across categories
};

/// Fig 4 for one platform fleet. Categories: cell / column / row / bank
/// faults, single-device, multi-device.
std::vector<FaultModeEntry> fault_mode_ue_rates(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds = {});

/// Composition of the UE population: among DIMMs that reached a UE (with CE
/// history), the share whose fault evidence is single- vs multi-device.
/// This is the statistic behind Finding 2's "primary source of UEs".
struct UeComposition {
  std::size_t ue_dimms = 0;
  double single_device_share = 0.0;
  double multi_device_share = 0.0;
};
UeComposition ue_device_composition(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds = {});

struct BitStatSeries {
  std::string stat;  ///< "error DQs" / "error beats" / "DQ interval" / "beat interval"
  std::vector<int> value;      ///< x axis (clamped at max_value)
  std::vector<std::size_t> dimms;
  std::vector<double> ue_rate;

  /// x value with the highest UE rate among populated buckets.
  int peak_value(std::size_t min_dimms = 5) const;
};

/// Fig 5 for one platform fleet: UE rate grouped by each accumulated
/// error-bit statistic of the DIMM's CE history.
std::vector<BitStatSeries> bit_pattern_ue_rates(const sim::FleetTrace& fleet,
                                                int max_value = 8);

}  // namespace memfp::core
