// The paper's Section V analyses, computed from observable telemetry:
//  - Fig 4: relative UE rate per inferred fault mode, per platform.
//  - Fig 5: UE rate versus accumulated error-DQ/beat counts and intervals
//    (the bit-level failure-pattern study, Intel platforms).
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.h"
#include "features/fault_inference.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::core {

struct FaultModeEntry {
  std::string category;
  std::size_t dimms = 0;     ///< DIMMs whose CE history shows this fault mode
  std::size_t ue_dimms = 0;  ///< ... of which reached a UE
  double ue_rate = 0.0;
  double relative = 0.0;  ///< ue_rate / max ue_rate across categories
};

/// Fig 4 for one platform fleet. Categories: cell / column / row / bank
/// faults, single-device, multi-device.
std::vector<FaultModeEntry> fault_mode_ue_rates(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds = {});

/// Composition of the UE population: among DIMMs that reached a UE (with CE
/// history), the share whose fault evidence is single- vs multi-device.
/// This is the statistic behind Finding 2's "primary source of UEs".
struct UeComposition {
  std::size_t ue_dimms = 0;
  double single_device_share = 0.0;
  double multi_device_share = 0.0;
};
UeComposition ue_device_composition(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds = {});

struct BitStatSeries {
  std::string stat;  ///< "error DQs" / "error beats" / "DQ interval" / "beat interval"
  std::vector<int> value;      ///< x axis (clamped at max_value)
  std::vector<std::size_t> dimms;
  std::vector<double> ue_rate;

  /// x value with the highest UE rate among populated buckets.
  int peak_value(std::size_t min_dimms = 5) const;
};

/// Fig 5 for one platform fleet: UE rate grouped by each accumulated
/// error-bit statistic of the DIMM's CE history.
std::vector<BitStatSeries> bit_pattern_ue_rates(const sim::FleetTrace& fleet,
                                                int max_value = 8);

// ---------------------------------------------------------------------------
// Campaign root-cause attribution (ROADMAP item 5): false negatives and
// false positives broken down by the fault class that generated the DIMM's
// CE history, so a sweep result says *which* fault modes a predictor+policy
// misses, not just how many DIMMs.
// ---------------------------------------------------------------------------

/// Exclusive per-DIMM fault class. Unlike the (overlapping) Fig 4 buckets,
/// each DIMM gets exactly one label, by precedence: a sudden UE carries no
/// CE evidence at all; multi-device involvement dominates any geometric
/// mode; then the widest inferred geometry wins (bank > row/column > cell);
/// CE history with no inferred structure is kNone.
enum class FaultClass {
  kNone = 0,
  kCell,
  kRow,
  kColumn,
  kBank,
  kMultiDevice,
  kSudden,
};
inline constexpr std::size_t kFaultClassCount = 7;

const char* fault_class_name(FaultClass fault_class);

/// Classifies one DIMM trace (see FaultClass precedence).
FaultClass dominant_fault_class(
    const sim::DimmTrace& trace,
    const features::FaultThresholds& thresholds = {});

/// One row of a campaign's root-cause table: how a predictor+policy treated
/// the evaluated DIMMs of one fault class.
struct FaultClassAttribution {
  FaultClass fault_class = FaultClass::kNone;
  std::size_t dimms = 0;
  std::size_t true_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  double fn_rate = 0.0;  ///< FN / positive DIMMs of the class
  double fp_rate = 0.0;  ///< FP / negative DIMMs of the class
};

/// Joins per-DIMM alarm outcomes with their fault classes under the same
/// lead/validity window rules as dimm_confusion (a late alarm on a positive
/// counts both FN and FP). `classes` and `outcomes` are parallel arrays.
/// Returns kFaultClassCount rows in enum order; absent classes keep
/// dimms == 0.
std::vector<FaultClassAttribution> attribute_outcomes(
    const std::vector<FaultClass>& classes,
    const std::vector<AlarmOutcome>& outcomes,
    const features::PredictionWindows& windows);

}  // namespace memfp::core
