#include "core/fault_analysis.h"

#include <algorithm>

namespace memfp::core {

std::vector<FaultModeEntry> fault_mode_ue_rates(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds) {
  struct Bucket {
    std::size_t dimms = 0;
    std::size_t ue = 0;
  };
  Bucket cell, column, row, bank, single_device, multi_device;

  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;  // sudden UEs carry no fault evidence
    const features::InferredFaults faults =
        features::infer_faults(dimm.ces, thresholds);
    const bool ue = dimm.has_ue();
    const auto tally = [ue](Bucket& bucket, bool present) {
      if (!present) return;
      ++bucket.dimms;
      bucket.ue += ue;
    };
    tally(cell, faults.cell_faults > 0);
    tally(column, faults.column_faults > 0);
    tally(row, faults.row_faults > 0);
    tally(bank, faults.bank_faults > 0);
    tally(single_device, faults.single_device);
    tally(multi_device, faults.multi_device);
  }

  const auto make = [](const char* name, const Bucket& bucket) {
    FaultModeEntry entry;
    entry.category = name;
    entry.dimms = bucket.dimms;
    entry.ue_dimms = bucket.ue;
    entry.ue_rate = bucket.dimms == 0
                        ? 0.0
                        : static_cast<double>(bucket.ue) /
                              static_cast<double>(bucket.dimms);
    return entry;
  };
  std::vector<FaultModeEntry> entries{
      make("cell", cell),       make("column", column),
      make("row", row),         make("bank", bank),
      make("single-device", single_device),
      make("multi-device", multi_device),
  };
  double max_rate = 0.0;
  for (const FaultModeEntry& entry : entries) {
    max_rate = std::max(max_rate, entry.ue_rate);
  }
  for (FaultModeEntry& entry : entries) {
    entry.relative = max_rate == 0.0 ? 0.0 : entry.ue_rate / max_rate;
  }
  return entries;
}

UeComposition ue_device_composition(
    const sim::FleetTrace& fleet,
    const features::FaultThresholds& thresholds) {
  UeComposition comp;
  std::size_t single = 0, multi = 0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (!dimm.has_ue() || dimm.ces.empty()) continue;
    ++comp.ue_dimms;
    const features::InferredFaults faults =
        features::infer_faults(dimm.ces, thresholds);
    if (faults.multi_device) ++multi;
    else ++single;
  }
  if (comp.ue_dimms > 0) {
    comp.single_device_share =
        static_cast<double>(single) / static_cast<double>(comp.ue_dimms);
    comp.multi_device_share =
        static_cast<double>(multi) / static_cast<double>(comp.ue_dimms);
  }
  return comp;
}

int BitStatSeries::peak_value(std::size_t min_dimms) const {
  int best = 0;
  double best_rate = -1.0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (dimms[i] >= min_dimms && ue_rate[i] > best_rate) {
      best_rate = ue_rate[i];
      best = value[i];
    }
  }
  return best;
}

std::vector<BitStatSeries> bit_pattern_ue_rates(const sim::FleetTrace& fleet,
                                                int max_value) {
  const char* names[] = {"error DQs", "error beats", "DQ interval",
                         "beat interval"};
  std::vector<BitStatSeries> series(4);
  for (int s = 0; s < 4; ++s) {
    series[static_cast<std::size_t>(s)].stat = names[s];
    for (int v = 0; v <= max_value; ++v) {
      series[static_cast<std::size_t>(s)].value.push_back(v);
      series[static_cast<std::size_t>(s)].dimms.push_back(0);
      series[static_cast<std::size_t>(s)].ue_rate.push_back(0.0);
    }
  }
  // First pass: accumulate UE hits per bucket (ue_rate holds counts).
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    dram::ErrorPattern accumulated;
    for (const dram::CeEvent& ce : dimm.ces) accumulated.merge(ce.pattern);
    const int stats[4] = {accumulated.dq_count(), accumulated.beat_count(),
                          accumulated.max_dq_interval(),
                          accumulated.max_beat_interval()};
    const bool ue = dimm.has_ue();
    for (int s = 0; s < 4; ++s) {
      const auto v =
          static_cast<std::size_t>(std::clamp(stats[s], 0, max_value));
      ++series[static_cast<std::size_t>(s)].dimms[v];
      series[static_cast<std::size_t>(s)].ue_rate[v] += ue ? 1.0 : 0.0;
    }
  }
  for (BitStatSeries& sr : series) {
    for (std::size_t i = 0; i < sr.value.size(); ++i) {
      sr.ue_rate[i] = sr.dimms[i] == 0
                          ? 0.0
                          : sr.ue_rate[i] / static_cast<double>(sr.dimms[i]);
    }
  }
  return series;
}

const char* fault_class_name(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kCell:
      return "cell";
    case FaultClass::kRow:
      return "row";
    case FaultClass::kColumn:
      return "column";
    case FaultClass::kBank:
      return "bank";
    case FaultClass::kMultiDevice:
      return "multi-device";
    case FaultClass::kSudden:
      return "sudden";
  }
  return "?";
}

FaultClass dominant_fault_class(const sim::DimmTrace& trace,
                                const features::FaultThresholds& thresholds) {
  if (trace.ces.empty()) {
    return trace.has_ue() ? FaultClass::kSudden : FaultClass::kNone;
  }
  const features::InferredFaults faults =
      features::infer_faults(trace.ces, thresholds);
  if (faults.multi_device) return FaultClass::kMultiDevice;
  if (faults.bank_faults > 0) return FaultClass::kBank;
  // Row vs column ties break toward the mode with more inferred instances;
  // equality keeps row (the mode field studies report as more UE-prone).
  if (faults.row_faults > 0 || faults.column_faults > 0) {
    return faults.row_faults >= faults.column_faults ? FaultClass::kRow
                                                     : FaultClass::kColumn;
  }
  if (faults.cell_faults > 0) return FaultClass::kCell;
  return FaultClass::kNone;
}

std::vector<FaultClassAttribution> attribute_outcomes(
    const std::vector<FaultClass>& classes,
    const std::vector<AlarmOutcome>& outcomes,
    const features::PredictionWindows& windows) {
  std::vector<FaultClassAttribution> table(kFaultClassCount);
  for (std::size_t c = 0; c < kFaultClassCount; ++c) {
    table[c].fault_class = static_cast<FaultClass>(c);
  }
  const std::size_t n = std::min(classes.size(), outcomes.size());
  for (std::size_t i = 0; i < n; ++i) {
    FaultClassAttribution& row = table[static_cast<std::size_t>(classes[i])];
    const AlarmOutcome& outcome = outcomes[i];
    ++row.dimms;
    if (outcome.positive) {
      const bool timely =
          outcome.alarm &&
          outcome.ue_time - *outcome.alarm >= windows.lead &&
          outcome.ue_time - *outcome.alarm <= windows.lead + windows.prediction;
      if (timely) {
        ++row.true_positives;
      } else {
        ++row.false_negatives;
        if (outcome.alarm) ++row.false_positives;
      }
    } else if (outcome.alarm) {
      ++row.false_positives;
    } else {
      ++row.true_negatives;
    }
  }
  for (FaultClassAttribution& row : table) {
    const std::size_t positives = row.true_positives + row.false_negatives;
    if (positives > 0) {
      row.fn_rate = static_cast<double>(row.false_negatives) /
                    static_cast<double>(positives);
    }
    // fp_rate denominator: negative DIMMs of the class. A late alarm on a
    // positive counts FP too (the migration was spent), but only alarms on
    // actual negatives enter the rate — those are the negatives that are
    // neither TN nor positive.
    const std::size_t negative_dimms = row.dimms - positives;
    if (negative_dimms > 0) {
      const std::size_t fp_on_negatives = negative_dimms - row.true_negatives;
      row.fp_rate = static_cast<double>(fp_on_negatives) /
                    static_cast<double>(negative_dimms);
    }
  }
  return table;
}

}  // namespace memfp::core
