// DIMM-level evaluation with alarm semantics (paper Section IV).
//
// A predictor watches each DIMM's telemetry stream and raises an alarm the
// first time its score crosses the threshold. The alarm is a true positive
// only if the DIMM's UE then arrives no sooner than the lead time dt_l and
// no later than dt_l + dt_p — early enough to act, close enough to matter.
#pragma once

#include <optional>
#include <vector>

#include "common/time.h"
#include "features/windows.h"
#include "ml/metrics.h"

namespace memfp::core {

/// The outcome material for one evaluated DIMM.
struct AlarmOutcome {
  bool positive = false;  ///< DIMM had a predictable UE
  SimTime ue_time = 0;    ///< valid when positive
  std::optional<SimTime> alarm;
};

/// Classifies alarm outcomes into a confusion matrix under the window rules.
ml::Confusion dimm_confusion(const std::vector<AlarmOutcome>& outcomes,
                             const features::PredictionWindows& windows);

/// A scored telemetry stream of one DIMM (times ascending).
struct ScoredStream {
  std::vector<SimTime> times;
  std::vector<double> scores;

  /// First crossing of `threshold`; nullopt when never crossed.
  std::optional<SimTime> first_alarm(double threshold) const;
  double max_score() const;
};

/// Picks the threshold maximizing DIMM-level F1 over validation streams.
/// Candidates are the distinct per-DIMM maximum scores.
double tune_threshold(const std::vector<ScoredStream>& streams,
                      const std::vector<AlarmOutcome>& outcomes_template,
                      const features::PredictionWindows& windows);

}  // namespace memfp::core
