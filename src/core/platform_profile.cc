#include "core/platform_profile.h"

namespace memfp::core {

PlatformProfile profile_for(dram::Platform platform) {
  PlatformProfile profile;
  profile.platform = platform;
  switch (platform) {
    case dram::Platform::kIntelPurley:
      profile.ecc_name = "Purley-SDDC (single-chip weak region)";
      profile.risky_ce_baseline_applicable = true;
      profile.paper_risky_ce = PaperReference{0.53, 0.46, 0.49, 0.37};
      profile.paper_random_forest = {0.61, 0.62, 0.61, 0.52};
      profile.paper_lightgbm = {0.54, 0.80, 0.64, 0.65};
      profile.paper_ft_transformer = {0.49, 0.74, 0.59, 0.58};
      break;
    case dram::Platform::kIntelWhitley:
      profile.ecc_name = "Whitley-SDDC (adaptive, multi-device weak region)";
      profile.risky_ce_baseline_applicable = false;
      profile.paper_random_forest = {0.34, 0.46, 0.39, 0.32};
      profile.paper_lightgbm = {0.46, 0.54, 0.49, 0.45};
      profile.paper_ft_transformer = {0.53, 0.49, 0.50, 0.40};
      break;
    case dram::Platform::kK920:
      profile.ecc_name = "K920-SDDC (Chipkill-class)";
      profile.risky_ce_baseline_applicable = false;
      profile.paper_random_forest = {0.44, 0.51, 0.47, 0.39};
      profile.paper_lightgbm = {0.51, 0.57, 0.54, 0.46};
      profile.paper_ft_transformer = {0.40, 0.54, 0.46, 0.41};
      break;
  }
  return profile;
}

}  // namespace memfp::core
