// Per-platform profiles: which ECC protects the platform, whether the rule
// baseline applies, and the paper's published Table II reference numbers
// (used by EXPERIMENTS.md reporting, never by the algorithms).
#pragma once

#include <optional>
#include <string>

#include "dram/geometry.h"

namespace memfp::core {

struct PaperReference {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double virr = 0.0;
};

struct PlatformProfile {
  dram::Platform platform = dram::Platform::kIntelPurley;
  std::string ecc_name;
  bool risky_ce_baseline_applicable = false;

  /// Paper Table II rows for this platform (nullopt where the paper has X).
  std::optional<PaperReference> paper_risky_ce;
  PaperReference paper_random_forest;
  PaperReference paper_lightgbm;
  PaperReference paper_ft_transformer;
};

PlatformProfile profile_for(dram::Platform platform);

}  // namespace memfp::core
