// Public facade: a per-platform memory failure predictor.
//
// This is the API a downstream operator consumes: train it on a fleet's
// telemetry, then score any DIMM at any point in time (the online service in
// memfp::mlops drives exactly this object). Internally it owns the feature
// extractor, the chosen model, and a threshold tuned on a validation fold
// with the paper's DIMM-level alarm semantics.
#pragma once

#include <memory>
#include <optional>

#include "common/json.h"
#include "core/pipeline.h"

namespace memfp::core {

class MemoryFailurePredictor {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kLightGbm;
    features::PredictionWindows windows;
    SimDuration eval_cadence = days(2);
    double validation_fraction = 0.2;
    std::size_t max_negatives_per_dimm = 6;
    std::size_t max_positives_per_dimm = 12;
    double positive_weight_share = 0.25;
    std::uint64_t seed = 17;
  };

  explicit MemoryFailurePredictor(dram::Platform platform);
  MemoryFailurePredictor(dram::Platform platform, Options options);

  /// Trains the model on the fleet and tunes the alarm threshold.
  void train(const sim::FleetTrace& fleet);

  /// P(UE within the prediction window) for a DIMM at time t. Returns 0
  /// when the DIMM has no CE in the observation window (nothing to act on).
  double score(const sim::DimmTrace& dimm, SimTime t) const;

  /// Alarm decision at time t.
  bool predict(const sim::DimmTrace& dimm, SimTime t) const;

  bool trained() const { return model_ != nullptr; }
  double threshold() const { return threshold_; }
  dram::Platform platform() const { return platform_; }
  const ml::BinaryClassifier& model() const { return *model_; }

  /// Registry export: model weights + threshold + platform.
  Json to_json() const;

 private:
  dram::Platform platform_;
  Options options_;
  features::FeatureExtractor extractor_;
  std::unique_ptr<ml::BinaryClassifier> model_;
  double threshold_ = 0.5;
};

}  // namespace memfp::core
