#include "core/stage_cache.h"

#include <bit>

namespace memfp::core {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kSimulate:
      return "simulate";
    case Stage::kExtract:
      return "extract";
    case Stage::kTrain:
      return "train";
    case Stage::kScore:
      return "score";
  }
  return "?";
}

StageKey& StageKey::mix_double(double value) {
  // +0.0 and -0.0 compare equal but differ in bits; canonicalize so configs
  // that compare equal key equal.
  if (value == 0.0) value = 0.0;
  return mix(std::bit_cast<std::uint64_t>(value));
}

StageKey& StageKey::mix_string(std::string_view value) {
  mix(value.size());
  hash_ = sim::fnv1a_bytes(hash_, value.data(), value.size());
  return *this;
}

std::uint64_t StageCache::total_hits() const {
  std::uint64_t total = 0;
  for (const StageCounters& c : counters_) total += c.hits;
  return total;
}

std::uint64_t StageCache::total_misses() const {
  std::uint64_t total = 0;
  for (const StageCounters& c : counters_) total += c.misses;
  return total;
}

void StageCache::reset_counters() {
  for (StageCounters& c : counters_) c = StageCounters{};
}

void StageCache::clear() {
  entries_.clear();
  reset_counters();
}

}  // namespace memfp::core
