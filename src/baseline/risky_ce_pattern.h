// Reproduction of the rule-based "Risky CE Pattern" predictor of Li et al.
// (SC'22, [7] in the paper): per-manufacturer risky error-bit patterns,
// mined from a training fleet, that flag a DIMM as failure-prone the moment
// its accumulated per-device DQ/beat error map matches the rule.
//
// The original is defined against the ECC of Intel Skylake/Cascade Lake
// (Purley). Exactly as in the paper's Table II, it has no counterpart for
// Whitley or K920 — the pipeline reports "X" there.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/time.h"
#include "dram/geometry.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::baseline {

/// One candidate rule over a device's accumulated error-bit map.
struct PatternRule {
  int min_dq = 2;
  int min_beats = 2;
  int min_beat_span = 4;
  int min_ces = 1;  ///< lifetime CE count gate

  bool matches(const dram::ErrorPattern& device_pattern,
               std::uint64_t lifetime_ces) const;
};

class RiskyCePattern {
 public:
  explicit RiskyCePattern(features::PredictionWindows windows = {});

  /// Mines the best rule per manufacturer on training traces (selected by
  /// DIMM-level F1 with the alarm-lead semantics of Section IV).
  void fit(const std::vector<const sim::DimmTrace*>& train, SimTime horizon);

  /// First time the DIMM's CE history matches its manufacturer's rule
  /// (checked after every CE); nullopt when it never fires.
  std::optional<SimTime> first_alarm(const sim::DimmTrace& trace) const;

  const std::map<dram::Manufacturer, PatternRule>& rules() const {
    return rules_;
  }

 private:
  features::PredictionWindows windows_;
  std::map<dram::Manufacturer, PatternRule> rules_;
};

}  // namespace memfp::baseline
