#include "baseline/risky_ce_pattern.h"

#include <unordered_map>

namespace memfp::baseline {
namespace {

/// Accumulated per-device error-bit map of a CE prefix.
class DeviceMaps {
 public:
  explicit DeviceMaps(const dram::Geometry& geometry) : geometry_(geometry) {}

  void add(const dram::CeEvent& ce) {
    for (const dram::ErrorBit& bit : ce.pattern.bits()) {
      per_device_[geometry_.device_of_dq(bit.dq)].add(bit);
    }
    ++ces_;
  }

  bool any_matches(const PatternRule& rule) const {
    // memfp-lint: allow(unordered-iter): any-of over devices; the bool
    for (const auto& [device, pattern] : per_device_) {
      if (rule.matches(pattern, ces_)) return true;
    }
    return false;
  }

 private:
  dram::Geometry geometry_;
  std::unordered_map<int, dram::ErrorPattern> per_device_;
  std::uint64_t ces_ = 0;
};

std::optional<SimTime> first_alarm_with_rule(const sim::DimmTrace& trace,
                                             const PatternRule& rule) {
  DeviceMaps maps(trace.config.geometry());
  for (const dram::CeEvent& ce : trace.ces) {
    maps.add(ce);
    if (maps.any_matches(rule)) return ce.time;
  }
  return std::nullopt;
}

/// Candidate rule grid: the plausible neighbourhood of the published
/// Skylake/Cascade Lake risky patterns.
std::vector<PatternRule> candidate_rules() {
  std::vector<PatternRule> rules;
  for (int dq : {1, 2, 3}) {
    for (int beats : {1, 2, 3}) {
      for (int span : {0, 2, 4}) {
        for (int ces : {1, 8, 32}) {
          rules.push_back({dq, beats, span, ces});
        }
      }
    }
  }
  return rules;
}

}  // namespace

bool PatternRule::matches(const dram::ErrorPattern& device_pattern,
                          std::uint64_t lifetime_ces) const {
  return static_cast<int>(lifetime_ces) >= min_ces &&
         device_pattern.dq_count() >= min_dq &&
         device_pattern.beat_count() >= min_beats &&
         device_pattern.beat_span() >= min_beat_span;
}

RiskyCePattern::RiskyCePattern(features::PredictionWindows windows)
    : windows_(windows) {}

void RiskyCePattern::fit(const std::vector<const sim::DimmTrace*>& train,
                         SimTime horizon) {
  rules_.clear();
  (void)horizon;
  // Partition training DIMMs by manufacturer.
  std::map<dram::Manufacturer, std::vector<const sim::DimmTrace*>> groups;
  for (const sim::DimmTrace* trace : train) {
    groups[trace->config.manufacturer].push_back(trace);
  }
  for (const auto& [manufacturer, traces] : groups) {
    double best_f1 = -1.0;
    PatternRule best;
    for (const PatternRule& rule : candidate_rules()) {
      std::size_t tp = 0, fp = 0, fn = 0;
      for (const sim::DimmTrace* trace : traces) {
        const std::optional<SimTime> alarm = first_alarm_with_rule(*trace, rule);
        const bool is_positive = trace->predictable_ue();
        if (is_positive) {
          const SimTime ue = trace->ue->time;
          const bool timely = alarm && ue - *alarm >= windows_.lead &&
                              ue - *alarm <= windows_.lead + windows_.prediction;
          if (timely) ++tp;
          else ++fn;
          if (alarm && !timely) ++fp;  // fired outside the valid window
        } else if (alarm) {
          ++fp;
        }
      }
      const double precision =
          tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
      const double recall =
          tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
      const double f1 = precision + recall == 0.0
                            ? 0.0
                            : 2.0 * precision * recall / (precision + recall);
      if (f1 > best_f1) {
        best_f1 = f1;
        best = rule;
      }
    }
    rules_[manufacturer] = best;
  }
}

std::optional<SimTime> RiskyCePattern::first_alarm(
    const sim::DimmTrace& trace) const {
  const auto it = rules_.find(trace.config.manufacturer);
  if (it == rules_.end()) return std::nullopt;
  return first_alarm_with_rule(trace, it->second);
}

}  // namespace memfp::baseline
