#include "features/fault_inference.h"

#include <unordered_map>
#include <unordered_set>

namespace memfp::features {
namespace {

/// Packs (rank, device, bank, row[, column]) into hashable keys.
std::uint64_t cell_key(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         (static_cast<std::uint64_t>(c.row & 0xffffff) << 16) |
         static_cast<std::uint64_t>(c.column & 0xffff);
}

std::uint64_t row_key(const dram::CellCoord& c) {
  return cell_key(c) >> 16;
}

std::uint64_t column_key(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         static_cast<std::uint64_t>(c.column & 0xffff);
}

std::uint64_t bank_key(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40);
}

}  // namespace

InferredFaults infer_faults(std::span<const dram::CeEvent> ces,
                            const FaultThresholds& thresholds) {
  std::unordered_map<std::uint64_t, int> cell_counts;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> row_columns;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> column_rows;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> bank_rows;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> bank_columns;
  std::unordered_map<int, int> device_counts;

  for (const dram::CeEvent& ce : ces) {
    const dram::CellCoord& c = ce.coord;
    ++cell_counts[cell_key(c)];
    row_columns[row_key(c)].insert(c.column);
    column_rows[column_key(c)].insert(c.row);
    bank_rows[bank_key(c)].insert(c.row);
    bank_columns[bank_key(c)].insert(c.column);
    ++device_counts[(c.rank << 8) | c.device];
  }

  InferredFaults result;
  // Every loop below only counts buckets that clear a threshold — a pure
  // order-independent reduction, so hash iteration order cannot leak into
  // the inferred fault counts.
  // memfp-lint: allow(unordered-iter): order-independent count reduction
  for (const auto& [key, count] : cell_counts) {
    if (count >= thresholds.cell_repeat) ++result.cell_faults;
  }
  // memfp-lint: allow(unordered-iter): order-independent count reduction
  for (const auto& [key, columns] : row_columns) {
    if (static_cast<int>(columns.size()) >= thresholds.row_columns) {
      ++result.row_faults;
    }
  }
  // memfp-lint: allow(unordered-iter): order-independent count reduction
  for (const auto& [key, rows] : column_rows) {
    if (static_cast<int>(rows.size()) >= thresholds.column_rows) {
      ++result.column_faults;
    }
  }
  // memfp-lint: allow(unordered-iter): order-independent count reduction
  for (const auto& [key, rows] : bank_rows) {
    const auto cols = bank_columns.find(key);
    if (static_cast<int>(rows.size()) >= thresholds.bank_rows &&
        cols != bank_columns.end() &&
        static_cast<int>(cols->second.size()) >= thresholds.bank_columns) {
      ++result.bank_faults;
    }
  }
  // memfp-lint: allow(unordered-iter): order-independent count reduction
  for (const auto& [device, count] : device_counts) {
    if (count >= thresholds.device_min_ces) ++result.faulty_devices;
  }
  result.single_device = result.faulty_devices == 1;
  result.multi_device = result.faulty_devices >= 2;
  return result;
}

}  // namespace memfp::features
