#include "features/extractor.h"

#include <algorithm>
#include <utility>

namespace memfp::features {

FeatureExtractor::FeatureExtractor(PredictionWindows windows,
                                   FaultThresholds thresholds)
    : schema_(FeatureSchema::standard()),
      windows_(windows),
      thresholds_(thresholds) {}

std::vector<Sample> FeatureExtractor::extract(const sim::DimmTrace& trace,
                                              SimTime horizon) const {
  std::vector<Sample> samples;
  if (trace.ces.empty()) return samples;

  // Samples stop strictly before the UE: the DIMM is retired at that point.
  const SimTime end =
      trace.ue ? std::min(horizon, trace.ue->time - 1) : horizon;

  OnlineExtractorState state(windows_, thresholds_, trace.config,
                             trace.workload, schema_.size());
  std::size_t next_ce = 0;
  std::size_t next_event = 0;
  std::vector<float> features;
  for (SimTime t = windows_.cadence; t <= end; t += windows_.cadence) {
    while (next_ce < trace.ces.size() && trace.ces[next_ce].time <= t) {
      state.observe_ce(trace.ces[next_ce]);
      ++next_ce;
    }
    while (next_event < trace.events.size() &&
           trace.events[next_event].time <= t) {
      state.observe_event(trace.events[next_event]);
      ++next_event;
    }
    state.features_at(t, features);
    if (features.empty()) continue;  // no CE in the observation window

    Sample sample;
    sample.dimm = trace.id;
    sample.time = t;
    sample.label = trace.ue ? windows_.label_for(t, trace.ue->time) : 0;
    sample.features = features;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<float> FeatureExtractor::features_at(const sim::DimmTrace& trace,
                                                 SimTime t) const {
  if (t <= 0) return {};
  // One-shot query: replay the trace prefix into a fresh streaming state.
  // No trace copy, no throwaway extractor — but repeated queries against the
  // same DIMM should hold an open_stream() state instead.
  OnlineExtractorState state = open_stream(trace.config, trace.workload);
  for (const dram::CeEvent& ce : trace.ces) {
    if (ce.time > t) break;
    state.observe_ce(ce);
  }
  for (const dram::MemEvent& event : trace.events) {
    if (event.time > t) break;
    state.observe_event(event);
  }
  return state.features_at(t);
}

OnlineExtractorState FeatureExtractor::open_stream(
    const dram::DimmConfig& config, const sim::WorkloadStats& workload) const {
  return OnlineExtractorState(windows_, thresholds_, config, workload,
                              schema_.size());
}

}  // namespace memfp::features
