#include "features/extractor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

#include "dram/ecc.h"

namespace memfp::features {
namespace {

float log1pf_clamped(double value) {
  return static_cast<float>(std::log1p(std::max(0.0, value)));
}

std::uint64_t pack_cell(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         (static_cast<std::uint64_t>(c.row & 0xffffff) << 16) |
         static_cast<std::uint64_t>(c.column & 0xffff);
}

/// Lifetime fault structure, updated one CE at a time. Mirrors
/// infer_faults() but amortized across the trace walk.
class LifetimeState {
 public:
  explicit LifetimeState(const FaultThresholds& thresholds)
      : thresholds_(thresholds) {}

  void add(const dram::CeEvent& ce, const dram::Geometry& geometry) {
    const dram::CellCoord& c = ce.coord;
    const std::uint64_t cell = pack_cell(c);
    if (++cell_counts_[cell] == thresholds_.cell_repeat) ++cell_faults_;

    const std::uint64_t row = cell >> 16;
    auto& row_cols = row_columns_[row];
    if (row_cols.insert(c.column).second &&
        static_cast<int>(row_cols.size()) == thresholds_.row_columns) {
      ++row_faults_;
    }

    const std::uint64_t col =
        (cell & 0xffffff000000ffffULL) | 0xff0000ULL;  // row wildcarded
    auto& col_rows = column_rows_[col];
    if (col_rows.insert(c.row).second &&
        static_cast<int>(col_rows.size()) == thresholds_.column_rows) {
      ++column_faults_;
    }

    const std::uint64_t bank = cell >> 40;
    auto& bank_state = banks_[bank];
    bank_state.rows.insert(c.row);
    bank_state.columns.insert(c.column);
    if (!bank_state.counted &&
        static_cast<int>(bank_state.rows.size()) >= thresholds_.bank_rows &&
        static_cast<int>(bank_state.columns.size()) >=
            thresholds_.bank_columns) {
      bank_state.counted = true;
      ++bank_faults_;
    }

    const int device = (c.rank << 8) | c.device;
    if (++device_counts_[device] == thresholds_.device_min_ces) {
      ++faulty_devices_;
    }
    devices_seen_.insert(device);

    acc_pattern_.merge(ce.pattern);
    if (first_ce_ < 0) first_ce_ = ce.time;
    last_ce_ = ce.time;
    ++total_ces_;
    (void)geometry;
  }

  int cell_faults() const { return cell_faults_; }
  int row_faults() const { return row_faults_; }
  int column_faults() const { return column_faults_; }
  int bank_faults() const { return bank_faults_; }
  int faulty_devices() const { return faulty_devices_; }
  int devices_seen() const { return static_cast<int>(devices_seen_.size()); }
  const dram::ErrorPattern& pattern() const { return acc_pattern_; }
  SimTime first_ce() const { return first_ce_; }
  SimTime last_ce() const { return last_ce_; }
  std::uint64_t total_ces() const { return total_ces_; }

 private:
  struct BankState {
    std::unordered_set<int> rows;
    std::unordered_set<int> columns;
    bool counted = false;
  };

  FaultThresholds thresholds_;
  int cell_faults_ = 0;
  int row_faults_ = 0;
  int column_faults_ = 0;
  int bank_faults_ = 0;
  int faulty_devices_ = 0;
  std::unordered_map<std::uint64_t, int> cell_counts_;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> row_columns_;
  std::unordered_map<std::uint64_t, std::unordered_set<int>> column_rows_;
  std::unordered_map<std::uint64_t, BankState> banks_;
  std::unordered_map<int, int> device_counts_;
  std::unordered_set<int> devices_seen_;
  dram::ErrorPattern acc_pattern_;
  SimTime first_ce_ = -1;
  SimTime last_ce_ = -1;
  std::uint64_t total_ces_ = 0;
};

}  // namespace

FeatureExtractor::FeatureExtractor(PredictionWindows windows,
                                   FaultThresholds thresholds)
    : schema_(FeatureSchema::standard()),
      windows_(windows),
      thresholds_(thresholds) {}

std::vector<Sample> FeatureExtractor::extract(const sim::DimmTrace& trace,
                                              SimTime horizon) const {
  std::vector<Sample> samples;
  if (trace.ces.empty()) return samples;

  const dram::Geometry geometry = trace.config.geometry();
  // Samples stop strictly before the UE: the DIMM is retired at that point.
  const SimTime end =
      trace.ue ? std::min(horizon, trace.ue->time - 1) : horizon;

  LifetimeState lifetime(thresholds_);
  std::size_t window_begin = 0;  // first CE with time > t - observation
  std::size_t consumed = 0;      // CEs with time <= t folded into lifetime
  std::size_t storm_begin = 0;   // first storm event with time > t - obs
  std::size_t storm_end = 0;     // first storm event with time > t

  for (SimTime t = windows_.cadence; t <= end; t += windows_.cadence) {
    // Fold newly visible CEs into the lifetime state.
    while (consumed < trace.ces.size() && trace.ces[consumed].time <= t) {
      lifetime.add(trace.ces[consumed], geometry);
      ++consumed;
    }
    const SimTime window_start = t - windows_.observation;
    while (window_begin < consumed &&
           trace.ces[window_begin].time <= window_start) {
      ++window_begin;
    }
    while (storm_end < trace.events.size() &&
           trace.events[storm_end].time <= t) {
      ++storm_end;
    }
    while (storm_begin < storm_end &&
           trace.events[storm_begin].time <= window_start) {
      ++storm_begin;
    }

    const std::size_t window_size = consumed - window_begin;
    if (window_size == 0) continue;  // no CE in the observation window

    Sample sample;
    sample.dimm = trace.id;
    sample.time = t;
    sample.label = trace.ue ? windows_.label_for(t, trace.ue->time) : 0;
    sample.features.assign(schema_.size(), 0.0f);
    auto& f = sample.features;
    std::size_t k = 0;

    // ---- Temporal ----
    std::uint64_t count_1h = 0, count_6h = 0, count_1d = 0, count_3d = 0;
    SimTime prev = -1;
    double inter_sum = 0.0, inter_sq = 0.0, inter_min = 1e18;
    std::size_t inter_n = 0;
    std::unordered_set<int> active_days;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const SimTime ce_time = trace.ces[i].time;
      const SimTime age = t - ce_time;
      count_1h += age <= kHour;
      count_6h += age <= hours(6);
      count_1d += age <= kDay;
      count_3d += age <= days(3);
      active_days.insert(static_cast<int>(ce_time / kDay));
      if (prev >= 0) {
        const double gap_h = static_cast<double>(ce_time - prev) /
                             static_cast<double>(kHour);
        inter_sum += gap_h;
        inter_sq += gap_h * gap_h;
        inter_min = std::min(inter_min, gap_h);
        ++inter_n;
      }
      prev = ce_time;
    }
    const std::uint64_t count_5d = window_size;
    f[k++] = log1pf_clamped(static_cast<double>(count_1h));
    f[k++] = log1pf_clamped(static_cast<double>(count_6h));
    f[k++] = log1pf_clamped(static_cast<double>(count_1d));
    f[k++] = log1pf_clamped(static_cast<double>(count_3d));
    f[k++] = log1pf_clamped(static_cast<double>(count_5d));

    int storms = 0, suppressions = 0;
    for (std::size_t i = storm_begin; i < storm_end; ++i) {
      storms += trace.events[i].type == dram::MemEventType::kCeStorm;
      suppressions +=
          trace.events[i].type == dram::MemEventType::kCeStormSuppressed;
    }
    f[k++] = static_cast<float>(storms);
    f[k++] = static_cast<float>(suppressions);

    const double inter_mean = inter_n > 0 ? inter_sum / inter_n : 120.0;
    const double inter_var =
        inter_n > 1 ? std::max(0.0, inter_sq / inter_n - inter_mean * inter_mean)
                    : 0.0;
    f[k++] = log1pf_clamped(inter_mean);
    f[k++] = log1pf_clamped(inter_n > 0 ? inter_min : 120.0);
    f[k++] = static_cast<float>(
        inter_mean > 0.0 ? std::sqrt(inter_var) / inter_mean : 0.0);
    f[k++] = static_cast<float>(
        std::log1p(static_cast<double>(count_1d)) -
        std::log1p(static_cast<double>(count_5d) / 5.0));
    f[k++] = static_cast<float>(
        static_cast<double>(t - lifetime.first_ce()) /
        static_cast<double>(kDay));
    f[k++] = static_cast<float>(
        static_cast<double>(t - lifetime.last_ce()) /
        static_cast<double>(kHour));
    f[k++] = log1pf_clamped(static_cast<double>(lifetime.total_ces()));
    f[k++] = static_cast<float>(active_days.size());

    // ---- Spatial (window structure + lifetime fault inference) ----
    std::unordered_set<std::uint64_t> cells, rows, cols, banks;
    std::unordered_map<int, int> window_devices;
    std::unordered_map<std::uint64_t, int> row_ces;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const std::uint64_t cell = pack_cell(trace.ces[i].coord);
      cells.insert(cell);
      const std::uint64_t row = cell >> 16;
      rows.insert(row);
      cols.insert((cell & 0xffffff000000ffffULL));
      banks.insert(cell >> 40);
      ++window_devices[(trace.ces[i].coord.rank << 8) |
                       trace.ces[i].coord.device];
      ++row_ces[row];
    }
    int dominant = 0;
    // memfp-lint: allow(unordered-iter): max() is order-independent
    for (const auto& [device, count] : window_devices) {
      dominant = std::max(dominant, count);
    }
    int max_row = 0;
    // memfp-lint: allow(unordered-iter): max() is order-independent
    for (const auto& [row, count] : row_ces) max_row = std::max(max_row, count);

    f[k++] = log1pf_clamped(static_cast<double>(cells.size()));
    f[k++] = log1pf_clamped(static_cast<double>(rows.size()));
    f[k++] = log1pf_clamped(static_cast<double>(cols.size()));
    f[k++] = log1pf_clamped(static_cast<double>(banks.size()));
    f[k++] = static_cast<float>(window_devices.size());
    f[k++] = static_cast<float>(lifetime.devices_seen());
    f[k++] = static_cast<float>(window_size > 0 ? static_cast<double>(dominant) /
                                                      static_cast<double>(window_size)
                                                : 0.0);
    f[k++] = log1pf_clamped(lifetime.cell_faults());
    f[k++] = log1pf_clamped(lifetime.row_faults());
    f[k++] = log1pf_clamped(lifetime.column_faults());
    f[k++] = log1pf_clamped(lifetime.bank_faults());
    f[k++] = lifetime.faulty_devices() >= 2 ? 1.0f : 0.0f;
    f[k++] = lifetime.faulty_devices() == 1 ? 1.0f : 0.0f;
    f[k++] = log1pf_clamped(max_row);

    // ---- Bit-level ----
    dram::ErrorPattern window_pattern;
    int max_dq = 0, max_beats = 0, multibit = 0, cross_device = 0;
    for (std::size_t i = window_begin; i < consumed; ++i) {
      const dram::ErrorPattern& p = trace.ces[i].pattern;
      window_pattern.merge(p);
      max_dq = std::max(max_dq, p.dq_count());
      max_beats = std::max(max_beats, p.beat_count());
      multibit += p.bit_count() > 1;
      cross_device += p.device_count(geometry) > 1;
    }
    const dram::ErrorPattern& life_pattern = lifetime.pattern();
    f[k++] = static_cast<float>(window_pattern.dq_count());
    f[k++] = static_cast<float>(window_pattern.beat_count());
    f[k++] = static_cast<float>(window_pattern.max_dq_interval());
    f[k++] = static_cast<float>(window_pattern.max_beat_interval());
    f[k++] = static_cast<float>(window_pattern.beat_span());
    f[k++] = static_cast<float>(life_pattern.dq_count());
    f[k++] = static_cast<float>(life_pattern.beat_count());
    f[k++] = static_cast<float>(life_pattern.max_beat_interval());
    f[k++] = static_cast<float>(life_pattern.beat_span());
    f[k++] = log1pf_clamped(static_cast<double>(life_pattern.bit_count()));
    f[k++] = static_cast<float>(max_dq);
    f[k++] = static_cast<float>(max_beats);
    f[k++] = static_cast<float>(static_cast<double>(multibit) /
                                static_cast<double>(window_size));
    f[k++] = log1pf_clamped(cross_device);
    // Risky accumulated shapes (per-device for the Purley rule).
    bool purley_risky = false;
    {
      // Evaluate the single-chip weak shape within each device.
      std::unordered_map<int, dram::ErrorPattern> per_device;
      for (const dram::ErrorBit& bit : life_pattern.bits()) {
        per_device[geometry.device_of_dq(bit.dq)].add(bit);
      }
      // memfp-lint: allow(unordered-iter): any-of match; the bool result
      for (const auto& [device, pattern] : per_device) {
        if (pattern.dq_count() >= 2 && pattern.beat_count() >= 2 &&
            pattern.beat_span() >= 4) {
          purley_risky = true;
          break;
        }
      }
    }
    f[k++] = purley_risky ? 1.0f : 0.0f;
    f[k++] = life_pattern.dq_count() >= 4 && life_pattern.beat_count() >= 5
                 ? 1.0f
                 : 0.0f;

    // ---- Static ----
    f[k++] = static_cast<float>(trace.config.manufacturer);
    f[k++] = static_cast<float>(trace.config.process);
    f[k++] = static_cast<float>(trace.config.frequency_mhz) / 1000.0f;
    f[k++] = static_cast<float>(trace.config.capacity_gib);
    f[k++] = static_cast<float>(trace.config.width);

    // ---- Workload ----
    f[k++] = trace.workload.cpu_utilization;
    f[k++] = trace.workload.memory_utilization;
    f[k++] = trace.workload.read_write_ratio;

    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<float> FeatureExtractor::features_at(const sim::DimmTrace& trace,
                                                 SimTime t) const {
  // Build a truncated view of the trace and reuse the batch path. This keeps
  // the online serving path byte-identical to training extraction (the
  // feature-store "consistency" property the paper's MLOps section demands).
  sim::DimmTrace truncated;
  truncated.id = trace.id;
  truncated.server_id = trace.server_id;
  truncated.platform = trace.platform;
  truncated.config = trace.config;
  truncated.workload = trace.workload;
  truncated.ces.reserve(trace.ces.size());
  std::copy_if(trace.ces.begin(), trace.ces.end(),
               std::back_inserter(truncated.ces),
               [&](const dram::CeEvent& ce) { return ce.time <= t; });
  truncated.events.reserve(trace.events.size());
  std::copy_if(trace.events.begin(), trace.events.end(),
               std::back_inserter(truncated.events),
               [&](const dram::MemEvent& event) { return event.time <= t; });

  PredictionWindows point = windows_;
  point.cadence = std::max<SimDuration>(t, 1);
  FeatureExtractor one_shot(point, thresholds_);
  std::vector<Sample> samples = one_shot.extract(truncated, t);
  if (samples.empty()) return {};
  return std::move(samples.front().features);
}

}  // namespace memfp::features
