// Labeled feature samples: the tabular dataset the ML layer trains on and
// the online service scores.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "dram/events.h"
#include "features/schema.h"

namespace memfp::features {

struct Sample {
  dram::DimmId dimm = 0;
  SimTime time = 0;
  /// 1 = UE inside the prediction window, 0 = no UE, -1 = "too late" zone
  /// (UE closer than the lead time; excluded from training, kept for the
  /// online evaluation stream).
  int label = 0;
  std::vector<float> features;

  bool trainable() const { return label >= 0; }
};

/// A dataset with its schema. Samples are grouped by DIMM in time order.
struct SampleSet {
  FeatureSchema schema;
  std::vector<Sample> samples;

  std::size_t positives() const {
    std::size_t count = 0;
    for (const Sample& sample : samples) count += sample.label == 1;
    return count;
  }
  std::size_t negatives() const {
    std::size_t count = 0;
    for (const Sample& sample : samples) count += sample.label == 0;
    return count;
  }
};

}  // namespace memfp::features
