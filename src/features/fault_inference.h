// Observable fault-mode inference from CE logs (paper Section V).
//
// The operator cannot see physical faults, only error coordinates; fault
// modes are inferred by thresholding the spatial structure of the CE history
// the way the field studies [12, 29, 30] do: repeated errors in one cell, a
// row with errors across several columns, a column with errors across
// several rows, a bank with errors spread over many rows and columns, and
// single- vs multi-device involvement.
#pragma once

#include <cstdint>
#include <span>

#include "dram/events.h"

namespace memfp::features {

struct FaultThresholds {
  int cell_repeat = 2;       ///< CEs at one cell -> cell fault
  int row_columns = 2;       ///< distinct columns in one row -> row fault
  int column_rows = 2;       ///< distinct rows in one column -> column fault
  int bank_rows = 5;         ///< distinct rows in a bank (with bank_columns)
  int bank_columns = 5;      ///<   ... -> bank fault
  int device_min_ces = 2;    ///< CEs on a device before it counts as faulty
};

/// Inferred fault summary of one DIMM's CE history.
struct InferredFaults {
  int cell_faults = 0;
  int row_faults = 0;
  int column_faults = 0;
  int bank_faults = 0;
  int faulty_devices = 0;   ///< devices with >= device_min_ces CEs
  bool single_device = false;
  bool multi_device = false;

  bool any() const {
    return cell_faults + row_faults + column_faults + bank_faults > 0 ||
           faulty_devices > 0;
  }
};

/// Classifies the spatial structure of a CE sequence.
InferredFaults infer_faults(std::span<const dram::CeEvent> ces,
                            const FaultThresholds& thresholds = {});

}  // namespace memfp::features
