// Feature extraction over a DIMM's telemetry trace.
//
// Extraction is built on the incremental sliding-window engine in
// window_state.h: one persistent OnlineExtractorState per DIMM folds each CE
// exactly once and evicts it exactly once, so a full-trace extraction costs
// O(events + samples) amortized instead of rescanning the observation window
// at every cadence tick. The batch path (extract) and the streaming serving
// path (open_stream / features_at) run the same engine, which keeps the
// train/serve consistency property byte-exact.
//
// Leakage discipline: a sample at time t sees only events with time <= t.
// The trace-level `suppressed_ce_count` is NOT a feature (it is filled in by
// the simulator without a timestamp); storm events, which are timestamped,
// carry that information instead.
#pragma once

#include "features/fault_inference.h"
#include "features/sample.h"
#include "features/schema.h"
#include "features/window_state.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::features {

class FeatureExtractor {
 public:
  explicit FeatureExtractor(PredictionWindows windows = {},
                            FaultThresholds thresholds = {});

  const FeatureSchema& schema() const { return schema_; }
  const PredictionWindows& windows() const { return windows_; }

  /// All samples of one DIMM over [cadence, min(horizon, UE time)].
  std::vector<Sample> extract(const sim::DimmTrace& trace,
                              SimTime horizon) const;

  /// Feature vector at one point in time (one-shot serving path). Returns an
  /// empty vector when the observation window holds no CE. Callers scoring
  /// many timestamps of the same DIMM should hold an open_stream() state
  /// instead — this entry point replays the trace prefix per call.
  std::vector<float> features_at(const sim::DimmTrace& trace, SimTime t) const;

  /// Opens a persistent streaming extraction state for one DIMM (the online
  /// serving path): feed telemetry with observe_ce / observe_event, query
  /// with features_at(t) for non-decreasing t — no trace copies, no
  /// extractor reconstruction, byte-identical to extract().
  OnlineExtractorState open_stream(const dram::DimmConfig& config,
                                   const sim::WorkloadStats& workload) const;

 private:
  FeatureSchema schema_;
  PredictionWindows windows_;
  FaultThresholds thresholds_;
};

}  // namespace memfp::features
