// Feature extraction over a DIMM's telemetry trace.
//
// Walks the trace once per DIMM, emitting one sample per cadence tick while
// the trailing observation window contains at least one CE. All state that
// spans the lifetime (fault-structure maps, accumulated bit maps) is updated
// incrementally, so extraction is O(events + samples * window) per DIMM.
//
// Leakage discipline: a sample at time t sees only events with time <= t.
// The trace-level `suppressed_ce_count` is NOT a feature (it is filled in by
// the simulator without a timestamp); storm events, which are timestamped,
// carry that information instead.
#pragma once

#include "features/fault_inference.h"
#include "features/sample.h"
#include "features/schema.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::features {

class FeatureExtractor {
 public:
  explicit FeatureExtractor(PredictionWindows windows = {},
                            FaultThresholds thresholds = {});

  const FeatureSchema& schema() const { return schema_; }
  const PredictionWindows& windows() const { return windows_; }

  /// All samples of one DIMM over [cadence, min(horizon, UE time)].
  std::vector<Sample> extract(const sim::DimmTrace& trace,
                              SimTime horizon) const;

  /// Feature vector at one point in time (online serving path). Returns an
  /// empty vector when the observation window holds no CE.
  std::vector<float> features_at(const sim::DimmTrace& trace, SimTime t) const;

 private:
  FeatureSchema schema_;
  PredictionWindows windows_;
  FaultThresholds thresholds_;
};

}  // namespace memfp::features
