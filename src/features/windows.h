// The paper's prediction-problem geometry (Fig 3): at time t the model looks
// back over an observation window dt_d and predicts whether a UE occurs in
// [t + dt_l, t + dt_l + dt_p], where dt_l is the operational lead time.
#pragma once

#include "common/time.h"

namespace memfp::features {

/// Trailing sub-windows of the temporal feature group (CE counts over the
/// last 1h / 6h / 1d / 3d inside the observation window). Shared between the
/// incremental WindowState and the equivalence tests.
inline constexpr SimDuration kSubWindows[4] = {kHour, hours(6), kDay, days(3)};

struct PredictionWindows {
  SimDuration observation = days(5);   ///< dt_d
  SimDuration lead = hours(3);         ///< dt_l (paper: up to 3h)
  SimDuration prediction = days(30);   ///< dt_p
  /// Cadence at which samples/predictions are generated. The paper predicts
  /// every 5 minutes online; offline datasets are built at a daily cadence
  /// (feature vectors only change when new CEs arrive).
  SimDuration cadence = days(1);

  /// Label for a sample at `t` on a DIMM whose (first) UE is at `ue_time`;
  /// -1 = ambiguous "too late" zone (0 < ue - t < lead), excluded from
  /// training because no proactive action could succeed there.
  int label_for(SimTime t, SimTime ue_time) const {
    const SimTime delta = ue_time - t;
    if (delta <= 0) return 0;  // UE already happened (samples stop anyway)
    if (delta < lead) return -1;
    if (delta <= lead + prediction) return 1;
    return 0;
  }
};

}  // namespace memfp::features
