// Feature schema: the fixed, named layout of the model input vector, with
// group tags (temporal / spatial / bit-level / static) for the ablation
// study and categorical metadata for the FT-Transformer's tokenizer.
//
// The schema mirrors the paper's feature families (Section VI): CE rates and
// dynamics over multiple intervals, inferred DRAM-hierarchy fault structure,
// error-bit DQ/beat statistics, and static DIMM configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace memfp::features {

enum class FeatureGroup { kTemporal, kSpatial, kBitLevel, kStatic, kWorkload };

const char* feature_group_name(FeatureGroup group);

struct FeatureDef {
  std::string name;
  FeatureGroup group = FeatureGroup::kTemporal;
  bool categorical = false;
  int cardinality = 0;  ///< number of categories when categorical
};

class FeatureSchema {
 public:
  /// The full schema used throughout the paper reproduction.
  static FeatureSchema standard();

  std::size_t size() const { return defs_.size(); }
  const FeatureDef& def(std::size_t index) const { return defs_[index]; }
  const std::vector<FeatureDef>& defs() const { return defs_; }

  /// Index by name; throws std::out_of_range when missing.
  std::size_t index_of(const std::string& name) const;

  /// Indices belonging to a group (for ablations).
  std::vector<std::size_t> group_indices(FeatureGroup group) const;

  /// Restricted copy keeping only the given (sorted) indices.
  FeatureSchema subset(const std::vector<std::size_t>& indices) const;

 private:
  std::vector<FeatureDef> defs_;
};

}  // namespace memfp::features
