#include "features/window_state.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace memfp::features {
namespace {

float log1pf_clamped(double value) {
  return static_cast<float>(std::log1p(std::max(0.0, value)));
}

}  // namespace

// ---- SlidingCountMap --------------------------------------------------------

void SlidingCountMap::increment(std::uint64_t key) {
  int* entry = cached_entry_;
  if (entry == nullptr || key != cached_key_ ||
      cached_generation_ != counts_.generation()) {
    entry = &counts_[key];
    cached_key_ = key;
    cached_entry_ = entry;
    cached_generation_ = counts_.generation();
  }
  int& count = *entry;
  if (count > 0) --freq_[static_cast<std::size_t>(count)];
  ++count;
  if (static_cast<std::size_t>(count) >= freq_.size()) {
    freq_.resize(static_cast<std::size_t>(count) + 1, 0);
  }
  ++freq_[static_cast<std::size_t>(count)];
  max_ = std::max(max_, count);
}

void SlidingCountMap::decrement(std::uint64_t key) {
  int* entry = counts_.find(key);
  MEMFP_CHECK(entry != nullptr) << "decrement of absent key";
  const int count = *entry;
  --freq_[static_cast<std::size_t>(count)];
  if (count == 1) {
    counts_.erase(key);
  } else {
    *entry = count - 1;
    ++freq_[static_cast<std::size_t>(count - 1)];
  }
  // A single decrement lowers the maximum multiplicity by at most one.
  if (count == max_ && freq_[static_cast<std::size_t>(count)] == 0) {
    max_ = count - 1;
  }
}

// ---- Axis statistics --------------------------------------------------------

AxisStats axis_stats(const std::vector<int>& occupancy) {
  AxisStats stats;
  int first = -1;
  int prev = -1;
  for (int value = 0; value < static_cast<int>(occupancy.size()); ++value) {
    if (occupancy[static_cast<std::size_t>(value)] == 0) continue;
    ++stats.count;
    if (first < 0) first = value;
    if (prev >= 0) stats.max_interval = std::max(stats.max_interval, value - prev);
    prev = value;
  }
  if (stats.count >= 2) stats.span = prev - first;
  return stats;
}

// ---- WindowPatternState -----------------------------------------------------

WindowPatternState::WindowPatternState(const dram::Geometry& geometry)
    : beats_(geometry.beats),
      bit_counts_(static_cast<std::size_t>(geometry.total_dq()) *
                      static_cast<std::size_t>(geometry.beats),
                  0),
      dq_occupancy_(static_cast<std::size_t>(geometry.total_dq()), 0),
      beat_occupancy_(static_cast<std::size_t>(geometry.beats), 0) {}

void WindowPatternState::add(std::span<const dram::ErrorBit> bits) {
  for (const dram::ErrorBit& bit : bits) {
    const std::size_t dq = bit.dq;
    const std::size_t beat = bit.beat;
    MEMFP_CHECK(dq < dq_occupancy_.size() && beat < beat_occupancy_.size())
        << "error bit outside transfer geometry";
    if (++bit_counts_[dq * static_cast<std::size_t>(beats_) + beat] == 1) {
      ++dq_occupancy_[dq];
      ++beat_occupancy_[beat];
    }
  }
}

void WindowPatternState::remove(std::span<const dram::ErrorBit> bits) {
  for (const dram::ErrorBit& bit : bits) {
    const std::size_t dq = bit.dq;
    const std::size_t beat = bit.beat;
    if (--bit_counts_[dq * static_cast<std::size_t>(beats_) + beat] == 0) {
      --dq_occupancy_[dq];
      --beat_occupancy_[beat];
    }
  }
}

// ---- LifetimePatternState ---------------------------------------------------

LifetimePatternState::LifetimePatternState(const dram::Geometry& geometry)
    : geometry_(geometry),
      beats_(geometry.beats),
      bit_seen_(static_cast<std::size_t>(geometry.total_dq()) *
                    static_cast<std::size_t>(geometry.beats),
                0),
      dq_occupancy_(static_cast<std::size_t>(geometry.total_dq()), 0),
      beat_occupancy_(static_cast<std::size_t>(geometry.beats), 0),
      device_dq_mask_(static_cast<std::size_t>(geometry.devices_per_rank()), 0),
      device_beat_mask_(static_cast<std::size_t>(geometry.devices_per_rank()),
                        0) {}

void LifetimePatternState::add(const dram::ErrorPattern& pattern) {
  for (const dram::ErrorBit& bit : pattern.bits()) {
    const std::size_t dq = bit.dq;
    const std::size_t beat = bit.beat;
    MEMFP_CHECK(dq < dq_occupancy_.size() && beat < beat_occupancy_.size())
        << "error bit outside transfer geometry";
    std::uint8_t& seen = bit_seen_[dq * static_cast<std::size_t>(beats_) + beat];
    if (seen) continue;
    seen = 1;
    ++bit_count_;
    ++dq_occupancy_[dq];
    ++beat_occupancy_[beat];
    stats_dirty_ = true;

    // Per-device weak-shape latch (the Purley rule). Bits only accumulate,
    // so once a device matches the shape the flag stays up.
    const int device = geometry_.device_of_dq(static_cast<int>(dq));
    const int lane = static_cast<int>(dq) - geometry_.device_dq_base(device);
    std::uint32_t& dq_mask = device_dq_mask_[static_cast<std::size_t>(device)];
    std::uint32_t& beat_mask =
        device_beat_mask_[static_cast<std::size_t>(device)];
    dq_mask |= 1u << lane;
    beat_mask |= 1u << beat;
    if (!purley_risky_ && std::popcount(dq_mask) >= 2 &&
        std::popcount(beat_mask) >= 2) {
      const int beat_span =
          std::bit_width(beat_mask) - 1 - std::countr_zero(beat_mask);
      if (beat_span >= 4) purley_risky_ = true;
    }
  }
}

AxisStats LifetimePatternState::dq_stats() const {
  if (stats_dirty_) {
    dq_stats_ = axis_stats(dq_occupancy_);
    beat_stats_ = axis_stats(beat_occupancy_);
    stats_dirty_ = false;
  }
  return dq_stats_;
}

AxisStats LifetimePatternState::beat_stats() const {
  dq_stats();  // refresh both caches
  return beat_stats_;
}

// ---- LifetimeState ----------------------------------------------------------

LifetimeState::LifetimeState(const FaultThresholds& thresholds,
                             const dram::Geometry& geometry)
    : thresholds_(thresholds), pattern_(geometry) {
  MEMFP_CHECK(thresholds.row_columns <= BoundedDistinct::kMaxCap &&
              thresholds.column_rows <= BoundedDistinct::kMaxCap &&
              thresholds.bank_rows <= BoundedDistinct::kMaxCap &&
              thresholds.bank_columns <= BoundedDistinct::kMaxCap)
      << "fault threshold above BoundedDistinct::kMaxCap";
}

void LifetimeState::add(const dram::CeEvent& ce) {
  const dram::CellCoord& c = ce.coord;
  const std::uint64_t cell = pack_cell(c);
  const bool cached =
      cell == cached_cell_ && cached_gens_[0] == cell_counts_.generation() &&
      cached_gens_[1] == row_columns_.generation() &&
      cached_gens_[2] == column_rows_.generation() &&
      cached_gens_[3] == banks_.generation() &&
      cached_gens_[4] == device_counts_.generation();
  if (!cached) {
    cached_cell_count_ = &cell_counts_[cell];
    cached_row_cols_ = &row_columns_[cell >> 16];
    cached_col_rows_ =
        &column_rows_[(cell & 0xffffff000000ffffULL) | 0xff0000ULL];
    cached_bank_ = &banks_[cell >> 40];
    cached_device_count_ = &device_counts_[static_cast<std::uint64_t>(
        (c.rank << 8) | c.device)];
    cached_cell_ = cell;
    cached_gens_[0] = cell_counts_.generation();
    cached_gens_[1] = row_columns_.generation();
    cached_gens_[2] = column_rows_.generation();
    cached_gens_[3] = banks_.generation();
    cached_gens_[4] = device_counts_.generation();
  }

  if (++*cached_cell_count_ == thresholds_.cell_repeat) ++cell_faults_;

  BoundedDistinct& row_cols = *cached_row_cols_;
  if (row_cols.insert(c.column, thresholds_.row_columns) &&
      row_cols.size() == thresholds_.row_columns) {
    ++row_faults_;
  }

  BoundedDistinct& col_rows = *cached_col_rows_;
  if (col_rows.insert(c.row, thresholds_.column_rows) &&
      col_rows.size() == thresholds_.column_rows) {
    ++column_faults_;
  }

  BankState& bank_state = *cached_bank_;
  bank_state.rows.insert(c.row, thresholds_.bank_rows);
  bank_state.columns.insert(c.column, thresholds_.bank_columns);
  if (!bank_state.counted &&
      bank_state.rows.size() >= thresholds_.bank_rows &&
      bank_state.columns.size() >= thresholds_.bank_columns) {
    bank_state.counted = true;
    ++bank_faults_;
  }

  if (++*cached_device_count_ == thresholds_.device_min_ces) {
    ++faulty_devices_;
  }

  pattern_.add(ce.pattern);
  if (first_ce_ < 0) first_ce_ = ce.time;
  last_ce_ = ce.time;
  ++total_ces_;
}

// ---- WindowState ------------------------------------------------------------

WindowState::WindowState(const PredictionWindows& windows,
                         const dram::Geometry& geometry)
    : windows_(windows),
      geometry_(geometry),
      pattern_(geometry),
      dq_count_freq_(static_cast<std::size_t>(geometry.total_dq()) + 1, 0),
      beat_count_freq_(static_cast<std::size_t>(geometry.beats) + 1, 0) {}

void WindowState::push_record(CeRecord&& rec) {
  if (count_ == records_.size()) {
    const std::size_t cap = records_.empty() ? 8 : records_.size() * 2;
    std::vector<CeRecord> grown(cap);
    for (std::size_t i = 0; i < count_; ++i) grown[i] = std::move(rec_at(i));
    records_ = std::move(grown);
    head_ = 0;
    rmask_ = cap - 1;
  }
  records_[(head_ + count_) & rmask_] = std::move(rec);
  ++count_;
}

void WindowState::pop_front_record() {
  head_ = (head_ + 1) & rmask_;
  --count_;
}

void WindowState::add(const dram::CeEvent& ce) {
  CeRecord rec;
  rec.time = ce.time;
  rec.cell = pack_cell(ce.coord);
  rec.device = (ce.coord.rank << 8) | ce.coord.device;
  rec.day = static_cast<int>(ce.time / kDay);
  rec.dq_count = ce.pattern.dq_count();
  rec.beat_count = ce.pattern.beat_count();
  rec.multibit = ce.pattern.bit_count() > 1;
  rec.cross_device = ce.pattern.device_count(geometry_) > 1;
  rec.bits.assign(ce.pattern.bits());

  // Appending extends the interarrival fold with exactly the operation the
  // rescanning extractor performs next, so a clean fold stays bit-exact.
  if (count_ > 0) {
    const SimTime prev_time = rec_at(count_ - 1).time;
    MEMFP_CHECK_GE(rec.time, prev_time) << "CEs must be time-ordered";
    const double gap_h = static_cast<double>(rec.time - prev_time) /
                         static_cast<double>(kHour);
    inter_sum_ += gap_h;
    inter_sq_ += gap_h * gap_h;
    inter_min_ = std::min(inter_min_, gap_h);
  }

  cells_.increment(rec.cell);
  rows_.increment(rec.cell >> 16);
  columns_.increment(rec.cell & 0xffffff000000ffffULL);
  banks_.increment(rec.cell >> 40);
  devices_.increment(static_cast<std::uint64_t>(rec.device));
  days_.increment(static_cast<std::uint64_t>(rec.day));
  pattern_.add(rec.bits.view());
  ++dq_count_freq_[static_cast<std::size_t>(rec.dq_count)];
  ++beat_count_freq_[static_cast<std::size_t>(rec.beat_count)];
  max_dq_ub_ = std::max(max_dq_ub_, rec.dq_count);
  max_beats_ub_ = std::max(max_beats_ub_, rec.beat_count);
  multibit_ += rec.multibit;
  cross_device_ += rec.cross_device;

  push_record(std::move(rec));
  ++next_seq_;
}

void WindowState::add_event(const dram::MemEvent& event) {
  if (event.type == dram::MemEventType::kCeStorm) {
    storm_events_.emplace_back(event.time, false);
    ++storms_;
  } else if (event.type == dram::MemEventType::kCeStormSuppressed) {
    storm_events_.emplace_back(event.time, true);
    ++suppressions_;
  }
}

void WindowState::advance(SimTime t) {
  const SimTime window_start = t - windows_.observation;
  while (count_ > 0 && rec_at(0).time <= window_start) {
    const CeRecord& rec = rec_at(0);
    cells_.decrement(rec.cell);
    rows_.decrement(rec.cell >> 16);
    columns_.decrement(rec.cell & 0xffffff000000ffffULL);
    banks_.decrement(rec.cell >> 40);
    devices_.decrement(static_cast<std::uint64_t>(rec.device));
    days_.decrement(static_cast<std::uint64_t>(rec.day));
    pattern_.remove(rec.bits.view());
    --dq_count_freq_[static_cast<std::size_t>(rec.dq_count)];
    --beat_count_freq_[static_cast<std::size_t>(rec.beat_count)];
    multibit_ -= rec.multibit;
    cross_device_ -= rec.cross_device;
    pop_front_record();
    ++front_seq_;
    inter_dirty_ = true;  // the leading gap left the window
  }
  while (!storm_events_.empty() && storm_events_.front().first <= window_start) {
    if (storm_events_.front().second) {
      --suppressions_;
    } else {
      --storms_;
    }
    storm_events_.pop_front();
  }

  for (int sub = 0; sub < 4; ++sub) {
    std::uint64_t seq = std::max(sub_seq_[sub], front_seq_);
    const SimTime cutoff = t - kSubWindows[sub];
    while (seq < next_seq_ &&
           rec_at(static_cast<std::size_t>(seq - front_seq_)).time < cutoff) {
      ++seq;
    }
    sub_seq_[sub] = seq;
  }
}

void WindowState::finalize_interarrival() {
  if (inter_dirty_) refold_interarrival();
}

void WindowState::refold_interarrival() {
  inter_sum_ = 0.0;
  inter_sq_ = 0.0;
  inter_min_ = 1e18;
  SimTime prev = -1;
  std::size_t idx = head_;
  for (std::size_t i = 0; i < count_; ++i) {
    const SimTime time = records_[idx].time;
    idx = (idx + 1) & rmask_;
    if (prev >= 0) {
      const double gap_h =
          static_cast<double>(time - prev) / static_cast<double>(kHour);
      inter_sum_ += gap_h;
      inter_sq_ += gap_h * gap_h;
      inter_min_ = std::min(inter_min_, gap_h);
    }
    prev = time;
  }
  inter_dirty_ = false;
}

int WindowState::max_ce_dq_count() {
  while (max_dq_ub_ > 0 &&
         dq_count_freq_[static_cast<std::size_t>(max_dq_ub_)] == 0) {
    --max_dq_ub_;
  }
  return max_dq_ub_;
}

int WindowState::max_ce_beat_count() {
  while (max_beats_ub_ > 0 &&
         beat_count_freq_[static_cast<std::size_t>(max_beats_ub_)] == 0) {
    --max_beats_ub_;
  }
  return max_beats_ub_;
}

// ---- OnlineExtractorState ---------------------------------------------------

OnlineExtractorState::OnlineExtractorState(const PredictionWindows& windows,
                                           const FaultThresholds& thresholds,
                                           const dram::DimmConfig& config,
                                           const sim::WorkloadStats& workload,
                                           std::size_t feature_count)
    : windows_(windows),
      config_(config),
      workload_(workload),
      feature_count_(feature_count),
      lifetime_(thresholds, config.geometry()),
      window_(windows, config.geometry()) {}

void OnlineExtractorState::observe_ce(const dram::CeEvent& ce) {
  pending_ces_.push_back(ce);
}

void OnlineExtractorState::observe_event(const dram::MemEvent& event) {
  pending_events_.push_back(event);
}

void OnlineExtractorState::ingest_ce_at(SimTime t, const dram::CeEvent& ce) {
  MEMFP_DCHECK(pending_ces_.empty()) << "ingest_ce_at with queued observes";
  MEMFP_DCHECK(ce.time <= t) << "ingest_ce_at of a future CE";
  // Identical fold to the t-time drain in features_at: CEs already outside
  // the observation window update only the lifetime state.
  lifetime_.add(ce);
  if (ce.time > t - windows_.observation) window_.add(ce);
}

void OnlineExtractorState::ingest_event_at(SimTime t,
                                           const dram::MemEvent& event) {
  MEMFP_DCHECK(pending_events_.empty()) << "ingest_event_at with queued observes";
  MEMFP_DCHECK(event.time <= t) << "ingest_event_at of a future event";
  if (event.time > t - windows_.observation) window_.add_event(event);
}

void OnlineExtractorState::features_at(SimTime t, std::vector<float>& out) {
  out.clear();
  if (t <= 0) return;  // no cadence tick has happened yet
  MEMFP_CHECK_GE(t, last_query_) << "features_at times must be non-decreasing";
  last_query_ = t;

  // CEs already outside the observation window at fold time can never
  // contribute to window features again (queries are non-decreasing), so
  // they update only the lifetime state. Skipping is exact: a skipped CE
  // implies every earlier record crosses the same eviction threshold below,
  // which dirties and refolds the interarrival aggregates.
  const SimTime window_start = t - windows_.observation;
  while (!pending_ces_.empty() && pending_ces_.front().time <= t) {
    const dram::CeEvent& ce = pending_ces_.front();
    lifetime_.add(ce);
    if (ce.time > window_start) window_.add(ce);
    pending_ces_.pop_front();
  }
  while (!pending_events_.empty() && pending_events_.front().time <= t) {
    if (pending_events_.front().time > window_start) {
      window_.add_event(pending_events_.front());
    }
    pending_events_.pop_front();
  }
  window_.advance(t);
  if (window_.size() == 0) return;  // no CE in the observation window
  emit(t, out);
}

std::vector<float> OnlineExtractorState::features_at(SimTime t) {
  std::vector<float> out;
  features_at(t, out);
  return out;
}

void OnlineExtractorState::emit(SimTime t, std::vector<float>& f) {
  const std::size_t window_size = window_.size();
  f.assign(feature_count_, 0.0f);
  std::size_t k = 0;

  // ---- Temporal ----
  const std::uint64_t count_1d = window_.count_1d();
  const std::uint64_t count_5d = window_size;
  f[k++] = log1pf_clamped(static_cast<double>(window_.count_1h()));
  f[k++] = log1pf_clamped(static_cast<double>(window_.count_6h()));
  f[k++] = log1pf_clamped(static_cast<double>(count_1d));
  f[k++] = log1pf_clamped(static_cast<double>(window_.count_3d()));
  f[k++] = log1pf_clamped(static_cast<double>(count_5d));

  f[k++] = static_cast<float>(window_.storms());
  f[k++] = static_cast<float>(window_.suppressions());

  window_.finalize_interarrival();
  const std::size_t inter_n = window_size - 1;
  const double inter_mean =
      inter_n > 0 ? window_.inter_sum() / inter_n : 120.0;
  const double inter_var =
      inter_n > 1 ? std::max(0.0, window_.inter_sq() / inter_n -
                                      inter_mean * inter_mean)
                  : 0.0;
  f[k++] = log1pf_clamped(inter_mean);
  f[k++] = log1pf_clamped(inter_n > 0 ? window_.inter_min() : 120.0);
  f[k++] = static_cast<float>(
      inter_mean > 0.0 ? std::sqrt(inter_var) / inter_mean : 0.0);
  f[k++] = static_cast<float>(
      std::log1p(static_cast<double>(count_1d)) -
      std::log1p(static_cast<double>(count_5d) / 5.0));
  f[k++] = static_cast<float>(
      static_cast<double>(t - lifetime_.first_ce()) /
      static_cast<double>(kDay));
  f[k++] = static_cast<float>(
      static_cast<double>(t - lifetime_.last_ce()) /
      static_cast<double>(kHour));
  f[k++] = log1pf_clamped(static_cast<double>(lifetime_.total_ces()));
  f[k++] = static_cast<float>(window_.active_days());

  // ---- Spatial (window structure + lifetime fault inference) ----
  const int dominant = window_.dominant_device_ces();
  const int max_row = window_.max_row_ces();
  f[k++] = log1pf_clamped(static_cast<double>(window_.distinct_cells()));
  f[k++] = log1pf_clamped(static_cast<double>(window_.distinct_rows()));
  f[k++] = log1pf_clamped(static_cast<double>(window_.distinct_columns()));
  f[k++] = log1pf_clamped(static_cast<double>(window_.distinct_banks()));
  f[k++] = static_cast<float>(window_.distinct_devices());
  f[k++] = static_cast<float>(lifetime_.devices_seen());
  f[k++] = static_cast<float>(window_size > 0
                                  ? static_cast<double>(dominant) /
                                        static_cast<double>(window_size)
                                  : 0.0);
  f[k++] = log1pf_clamped(lifetime_.cell_faults());
  f[k++] = log1pf_clamped(lifetime_.row_faults());
  f[k++] = log1pf_clamped(lifetime_.column_faults());
  f[k++] = log1pf_clamped(lifetime_.bank_faults());
  f[k++] = lifetime_.faulty_devices() >= 2 ? 1.0f : 0.0f;
  f[k++] = lifetime_.faulty_devices() == 1 ? 1.0f : 0.0f;
  f[k++] = log1pf_clamped(max_row);

  // ---- Bit-level ----
  const AxisStats window_dq = window_.pattern().dq_stats();
  const AxisStats window_beat = window_.pattern().beat_stats();
  const AxisStats life_dq = lifetime_.pattern().dq_stats();
  const AxisStats life_beat = lifetime_.pattern().beat_stats();
  f[k++] = static_cast<float>(window_dq.count);
  f[k++] = static_cast<float>(window_beat.count);
  f[k++] = static_cast<float>(window_dq.max_interval);
  f[k++] = static_cast<float>(window_beat.max_interval);
  f[k++] = static_cast<float>(window_beat.span);
  f[k++] = static_cast<float>(life_dq.count);
  f[k++] = static_cast<float>(life_beat.count);
  f[k++] = static_cast<float>(life_beat.max_interval);
  f[k++] = static_cast<float>(life_beat.span);
  f[k++] = log1pf_clamped(static_cast<double>(lifetime_.pattern().bit_count()));
  f[k++] = static_cast<float>(window_.max_ce_dq_count());
  f[k++] = static_cast<float>(window_.max_ce_beat_count());
  f[k++] = static_cast<float>(static_cast<double>(window_.multibit_ces()) /
                              static_cast<double>(window_size));
  f[k++] = log1pf_clamped(window_.cross_device_ces());
  f[k++] = lifetime_.pattern().purley_risky() ? 1.0f : 0.0f;
  f[k++] = life_dq.count >= 4 && life_beat.count >= 5 ? 1.0f : 0.0f;

  // ---- Static ----
  f[k++] = static_cast<float>(config_.manufacturer);
  f[k++] = static_cast<float>(config_.process);
  f[k++] = static_cast<float>(config_.frequency_mhz) / 1000.0f;
  f[k++] = static_cast<float>(config_.capacity_gib);
  f[k++] = static_cast<float>(config_.width);

  // ---- Workload ----
  f[k++] = workload_.cpu_utilization;
  f[k++] = workload_.memory_utilization;
  f[k++] = workload_.read_write_ratio;
}

}  // namespace memfp::features
