#include "features/schema.h"

#include <stdexcept>

namespace memfp::features {

const char* feature_group_name(FeatureGroup group) {
  switch (group) {
    case FeatureGroup::kTemporal:
      return "temporal";
    case FeatureGroup::kSpatial:
      return "spatial";
    case FeatureGroup::kBitLevel:
      return "bit-level";
    case FeatureGroup::kStatic:
      return "static";
    case FeatureGroup::kWorkload:
      return "workload";
  }
  return "?";
}

FeatureSchema FeatureSchema::standard() {
  FeatureSchema schema;
  auto add = [&schema](const char* name, FeatureGroup group) {
    schema.defs_.push_back({name, group, false, 0});
  };
  auto add_cat = [&schema](const char* name, FeatureGroup group,
                           int cardinality) {
    schema.defs_.push_back({name, group, true, cardinality});
  };

  // Temporal: CE dynamics over the paper's interval ladder.
  add("ce_count_1h", FeatureGroup::kTemporal);
  add("ce_count_6h", FeatureGroup::kTemporal);
  add("ce_count_1d", FeatureGroup::kTemporal);
  add("ce_count_3d", FeatureGroup::kTemporal);
  add("ce_count_5d", FeatureGroup::kTemporal);
  add("storm_count_5d", FeatureGroup::kTemporal);
  add("storm_suppressed_5d", FeatureGroup::kTemporal);
  add("interarrival_mean_h_5d", FeatureGroup::kTemporal);
  add("interarrival_min_h_5d", FeatureGroup::kTemporal);
  add("interarrival_cv_5d", FeatureGroup::kTemporal);
  add("ce_acceleration", FeatureGroup::kTemporal);
  add("days_since_first_ce", FeatureGroup::kTemporal);
  add("hours_since_last_ce", FeatureGroup::kTemporal);
  add("lifetime_ce_count", FeatureGroup::kTemporal);
  add("active_days_5d", FeatureGroup::kTemporal);

  // Spatial: DRAM-hierarchy structure of the error coordinates.
  add("distinct_cells_5d", FeatureGroup::kSpatial);
  add("distinct_rows_5d", FeatureGroup::kSpatial);
  add("distinct_columns_5d", FeatureGroup::kSpatial);
  add("distinct_banks_5d", FeatureGroup::kSpatial);
  add("distinct_devices_5d", FeatureGroup::kSpatial);
  add("distinct_devices_life", FeatureGroup::kSpatial);
  add("dominant_device_share_5d", FeatureGroup::kSpatial);
  add("cell_faults_life", FeatureGroup::kSpatial);
  add("row_faults_life", FeatureGroup::kSpatial);
  add("column_faults_life", FeatureGroup::kSpatial);
  add("bank_faults_life", FeatureGroup::kSpatial);
  add("multi_device_fault", FeatureGroup::kSpatial);
  add("single_device_fault", FeatureGroup::kSpatial);
  add("max_row_ces_5d", FeatureGroup::kSpatial);

  // Bit-level: accumulated DQ/beat maps and per-transfer extremes.
  add("acc_dq_count_5d", FeatureGroup::kBitLevel);
  add("acc_beat_count_5d", FeatureGroup::kBitLevel);
  add("acc_dq_interval_5d", FeatureGroup::kBitLevel);
  add("acc_beat_interval_5d", FeatureGroup::kBitLevel);
  add("acc_beat_span_5d", FeatureGroup::kBitLevel);
  add("acc_dq_count_life", FeatureGroup::kBitLevel);
  add("acc_beat_count_life", FeatureGroup::kBitLevel);
  add("acc_beat_interval_life", FeatureGroup::kBitLevel);
  add("acc_beat_span_life", FeatureGroup::kBitLevel);
  add("acc_bits_life", FeatureGroup::kBitLevel);
  add("max_transfer_dq_5d", FeatureGroup::kBitLevel);
  add("max_transfer_beats_5d", FeatureGroup::kBitLevel);
  add("multibit_ce_share_5d", FeatureGroup::kBitLevel);
  add("cross_device_ce_5d", FeatureGroup::kBitLevel);
  add("risky_pattern_purley", FeatureGroup::kBitLevel);
  add("risky_pattern_whitley", FeatureGroup::kBitLevel);

  // Static configuration.
  add_cat("manufacturer", FeatureGroup::kStatic, 4);
  add_cat("dram_process", FeatureGroup::kStatic, 5);
  add("frequency_ghz", FeatureGroup::kStatic);
  add("capacity_gib", FeatureGroup::kStatic);
  add("device_width", FeatureGroup::kStatic);

  // Server workload context (minor-role features, [25]-[27]).
  add("cpu_utilization", FeatureGroup::kWorkload);
  add("memory_utilization", FeatureGroup::kWorkload);
  add("read_write_ratio", FeatureGroup::kWorkload);

  return schema;
}

std::size_t FeatureSchema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return i;
  }
  throw std::out_of_range("FeatureSchema: no feature named " + name);
}

std::vector<std::size_t> FeatureSchema::group_indices(
    FeatureGroup group) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].group == group) indices.push_back(i);
  }
  return indices;
}

FeatureSchema FeatureSchema::subset(
    const std::vector<std::size_t>& indices) const {
  FeatureSchema schema;
  schema.defs_.reserve(indices.size());
  for (std::size_t index : indices) schema.defs_.push_back(defs_.at(index));
  return schema;
}

}  // namespace memfp::features
