// Incremental sliding-window feature state.
//
// The pre-incremental extractor rescanned every CE in the observation window
// at every cadence tick — O(ticks × window) with fresh hash containers per
// tick. The classes here replace that with add/evict updates so one trace
// costs O(events) amortized, while producing feature values byte-identical
// to the rescanning implementation (enforced by the golden-equivalence suite
// in tests/test_extractor_incremental.cc):
//
//  - Integer aggregates (counts, distinct cardinalities, max-of-counts) are
//    exactly decremental: count-decrement maps with erase-on-zero, plus a
//    count-frequency histogram for max-of-counts (a single ±1 update moves
//    the max by at most one, so it is maintained in O(1)).
//  - Bit-level aggregates use dense (DQ × beat) occupancy arrays; interval /
//    span statistics are recomputed from the ≤ total_dq + beats occupancy
//    axes at emit time, which is exact and O(80).
//  - Floating-point interarrival folds (sum, sum of squares, min of gap
//    hours) are the one place decremental math is NOT bit-exact, because
//    double addition is non-associative. They use a rescan-on-evict hybrid:
//    appending a CE extends the fold with the same left-to-right operation
//    sequence the rescanning code performs, so the fold stays bit-exact
//    until an eviction invalidates it; the next emit then refolds the gaps
//    of the surviving window once.
//
// The containers behind those aggregates are sized for the serving hot path
// (one probe per CE across millions of streams): open-addressing FlatMap64
// instead of node-based unordered containers, a power-of-two ring instead of
// a deque for the window records, inline small-buffer storage for per-CE
// error bits, and capped distinct-sets for the lifetime fault thresholds
// (exact because a threshold comparison goes dead once its set saturates).
//
// OnlineExtractorState composes these with the lifetime fault state into the
// streaming serving engine: a per-DIMM object that consumes appended CE /
// memory events and answers features_at(t) for non-decreasing t with no
// trace copy and no extractor reconstruction.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/flat_map.h"
#include "common/time.h"
#include "dram/events.h"
#include "dram/geometry.h"
#include "features/fault_inference.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::features {

/// Packed cell address used as the spatial hierarchy key: rank | device |
/// bank | row | column, with shifts chosen so prefixes identify the row
/// (>> 16), bank (>> 40) and device (>> 48) levels.
inline std::uint64_t pack_cell(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         (static_cast<std::uint64_t>(c.row & 0xffffff) << 16) |
         static_cast<std::uint64_t>(c.column & 0xffff);
}

/// Sliding multiset of keys: O(1) increment/decrement, distinct-key count,
/// and exact maximum multiplicity (via a count-frequency histogram — one ±1
/// step moves the max by at most one).
class SlidingCountMap {
 public:
  void increment(std::uint64_t key);
  void decrement(std::uint64_t key);
  std::size_t distinct() const { return counts_.size(); }
  int max_count() const { return max_; }

 private:
  FlatMap64<int> counts_;
  std::vector<std::int64_t> freq_;  // freq_[c] = #keys with multiplicity c
  int max_ = 0;
  // Last-key increment cache: storm bursts hammer one cell, so consecutive
  // increments usually hit the same entry. The raw pointer is revalidated
  // against the map generation (growth / erase moves slots).
  std::uint64_t cached_key_ = 0;
  int* cached_entry_ = nullptr;
  std::uint64_t cached_generation_ = 0;
};

/// Exact distinct-value counter up to a per-threshold cap, saturating after.
/// The lifetime fault rules only compare a set's cardinality against a fixed
/// threshold, and every such comparison is dead once the cardinality reaches
/// it — so values beyond the cap need not be remembered for the counts to
/// stay exact. kMaxCap bounds the supported thresholds (checked at
/// LifetimeState construction).
class BoundedDistinct {
 public:
  static constexpr int kMaxCap = 8;

  /// Records `value` if unseen and below `cap`; returns whether it was newly
  /// recorded. Once saturated at `cap` every insert reports false — exactly
  /// when the threshold conditions reading it can no longer change.
  bool insert(int value, int cap) {
    if (n_ >= cap) return false;
    for (int i = 0; i < n_; ++i) {
      if (seen_[static_cast<std::size_t>(i)] == value) return false;
    }
    seen_[static_cast<std::size_t>(n_++)] = value;
    return true;
  }
  int size() const { return n_; }

 private:
  std::int32_t n_ = 0;
  std::array<std::int32_t, kMaxCap> seen_{};
};

/// Distinct count / interval statistics of one pattern axis (DQ lanes or
/// beats), computed from a dense occupancy array. Matches the sorted-distinct
/// logic of dram::ErrorPattern exactly.
struct AxisStats {
  int count = 0;
  int max_interval = 0;
  int span = 0;
};

AxisStats axis_stats(const std::vector<int>& occupancy);

/// Per-CE error-bit payload with inline storage for the common small
/// patterns; only pathological multi-bit patterns touch the heap.
class SmallBits {
 public:
  void assign(std::span<const dram::ErrorBit> bits) {
    count_ = static_cast<std::uint32_t>(bits.size());
    if (bits.size() <= kInline) {
      for (std::size_t i = 0; i < bits.size(); ++i) inline_[i] = bits[i];
      overflow_.clear();
    } else {
      overflow_.assign(bits.begin(), bits.end());
    }
  }
  std::span<const dram::ErrorBit> view() const {
    if (count_ <= kInline) return {inline_.data(), count_};
    return {overflow_.data(), overflow_.size()};
  }

 private:
  static constexpr std::size_t kInline = 12;
  std::uint32_t count_ = 0;
  std::array<dram::ErrorBit, kInline> inline_{};
  std::vector<dram::ErrorBit> overflow_;
};

/// Union of the error-bit patterns currently inside the window, maintained
/// as per-(DQ, beat) multiplicities so evictions are exact.
class WindowPatternState {
 public:
  explicit WindowPatternState(const dram::Geometry& geometry);

  void add(std::span<const dram::ErrorBit> bits);
  void remove(std::span<const dram::ErrorBit> bits);

  AxisStats dq_stats() const { return axis_stats(dq_occupancy_); }
  AxisStats beat_stats() const { return axis_stats(beat_occupancy_); }

 private:
  int beats_;
  std::vector<int> bit_counts_;      // (dq * beats_ + beat) -> multiplicity
  std::vector<int> dq_occupancy_;    // #active (dq, beat) cells per DQ
  std::vector<int> beat_occupancy_;  // #active (dq, beat) cells per beat
};

/// Lifetime (monotone) error-bit accumulation: the DIMM's merged bit map
/// plus the per-device weak-shape latch. Bits only ever arrive, so the
/// risky-shape flags latch and the axis statistics are cached until a new
/// bit lands.
class LifetimePatternState {
 public:
  explicit LifetimePatternState(const dram::Geometry& geometry);

  void add(const dram::ErrorPattern& pattern);

  int bit_count() const { return bit_count_; }
  AxisStats dq_stats() const;
  AxisStats beat_stats() const;
  /// Any single device accumulated >= 2 DQs, >= 2 beats, beat span >= 4 —
  /// the Purley single-chip risky shape.
  bool purley_risky() const { return purley_risky_; }

 private:
  dram::Geometry geometry_;
  int beats_;
  std::vector<std::uint8_t> bit_seen_;  // (dq * beats_ + beat) -> 0/1
  std::vector<int> dq_occupancy_;
  std::vector<int> beat_occupancy_;
  std::vector<std::uint32_t> device_dq_mask_;    // lanes within the device
  std::vector<std::uint32_t> device_beat_mask_;  // beats within the device
  int bit_count_ = 0;
  bool purley_risky_ = false;
  mutable bool stats_dirty_ = true;
  mutable AxisStats dq_stats_;
  mutable AxisStats beat_stats_;
};

/// Lifetime fault structure, updated one CE at a time. Mirrors
/// infer_faults() but amortized across the trace walk.
class LifetimeState {
 public:
  LifetimeState(const FaultThresholds& thresholds,
                const dram::Geometry& geometry);

  void add(const dram::CeEvent& ce);

  int cell_faults() const { return cell_faults_; }
  int row_faults() const { return row_faults_; }
  int column_faults() const { return column_faults_; }
  int bank_faults() const { return bank_faults_; }
  int faulty_devices() const { return faulty_devices_; }
  /// Every seen device has a count entry (counts are incremented on first
  /// sight), so the count map doubles as the seen-device set.
  int devices_seen() const { return static_cast<int>(device_counts_.size()); }
  const LifetimePatternState& pattern() const { return pattern_; }
  SimTime first_ce() const { return first_ce_; }
  SimTime last_ce() const { return last_ce_; }
  std::uint64_t total_ces() const { return total_ces_; }

 private:
  struct BankState {
    BoundedDistinct rows;
    BoundedDistinct columns;
    bool counted = false;
  };

  FaultThresholds thresholds_;
  int cell_faults_ = 0;
  int row_faults_ = 0;
  int column_faults_ = 0;
  int bank_faults_ = 0;
  int faulty_devices_ = 0;
  FlatMap64<int> cell_counts_;
  FlatMap64<BoundedDistinct> row_columns_;
  FlatMap64<BoundedDistinct> column_rows_;
  FlatMap64<BankState> banks_;
  FlatMap64<int> device_counts_;
  // Last-cell probe cache: a repeated cell reuses the entries of all five
  // maps (row/column/bank/device keys are prefixes of the cell key), which
  // turns storm bursts into pointer chases. Revalidated against the map
  // generations (these maps only grow, so a generation moves on rehash).
  std::uint64_t cached_cell_ = ~0ULL;
  int* cached_cell_count_ = nullptr;
  BoundedDistinct* cached_row_cols_ = nullptr;
  BoundedDistinct* cached_col_rows_ = nullptr;
  BankState* cached_bank_ = nullptr;
  int* cached_device_count_ = nullptr;
  std::uint64_t cached_gens_[5] = {0, 0, 0, 0, 0};
  LifetimePatternState pattern_;
  SimTime first_ce_ = -1;
  SimTime last_ce_ = -1;
  std::uint64_t total_ces_ = 0;
};

/// The trailing observation window over one DIMM's CE stream. CEs are added
/// in time order; advance(t) evicts CEs that left the window and slides the
/// sub-window (1h/6h/1d/3d) boundaries. All aggregates the extractor reads
/// at a tick are O(1) (or O(total_dq + beats)) at emit time.
class WindowState {
 public:
  WindowState(const PredictionWindows& windows, const dram::Geometry& geometry);

  /// Folds one CE (time-ordered) into the window aggregates.
  void add(const dram::CeEvent& ce);
  /// Folds one memory event (time-ordered); only storm / suppression events
  /// participate in features.
  void add_event(const dram::MemEvent& event);
  /// Slides the window end to t: evicts CEs/events at or before
  /// t - observation and advances the sub-window count boundaries.
  void advance(SimTime t);

  std::size_t size() const { return count_; }
  std::uint64_t count_1h() const { return counts_since(0); }
  std::uint64_t count_6h() const { return counts_since(1); }
  std::uint64_t count_1d() const { return counts_since(2); }
  std::uint64_t count_3d() const { return counts_since(3); }
  int storms() const { return storms_; }
  int suppressions() const { return suppressions_; }
  std::size_t active_days() const { return days_.distinct(); }

  /// Refolds the interarrival aggregates if an eviction invalidated them,
  /// then reads them. Call only at emit time.
  void finalize_interarrival();
  double inter_sum() const { return inter_sum_; }
  double inter_sq() const { return inter_sq_; }
  double inter_min() const { return inter_min_; }

  std::size_t distinct_cells() const { return cells_.distinct(); }
  std::size_t distinct_rows() const { return rows_.distinct(); }
  std::size_t distinct_columns() const { return columns_.distinct(); }
  std::size_t distinct_banks() const { return banks_.distinct(); }
  std::size_t distinct_devices() const { return devices_.distinct(); }
  int dominant_device_ces() const { return devices_.max_count(); }
  /// rows_ is keyed by the same cell >> 16 prefix the per-row CE multiset
  /// would use, so its max multiplicity is the max-CEs-in-one-row aggregate.
  int max_row_ces() const { return rows_.max_count(); }

  const WindowPatternState& pattern() const { return pattern_; }
  int max_ce_dq_count();
  int max_ce_beat_count();
  int multibit_ces() const { return multibit_; }
  int cross_device_ces() const { return cross_device_; }

 private:
  /// Per-CE payload retained while the CE is inside the window, with the
  /// derived values precomputed once at add time.
  struct CeRecord {
    SimTime time = 0;
    std::uint64_t cell = 0;
    int device = 0;
    int day = 0;
    int dq_count = 0;
    int beat_count = 0;
    bool multibit = false;
    bool cross_device = false;
    SmallBits bits;
  };

  std::uint64_t counts_since(int sub) const {
    return next_seq_ - sub_seq_[sub];
  }
  void refold_interarrival();

  // records_ is a power-of-two ring: element i of the window (0 = oldest)
  // lives at records_[(head_ + i) & rmask_].
  CeRecord& rec_at(std::size_t i) { return records_[(head_ + i) & rmask_]; }
  void push_record(CeRecord&& rec);
  void pop_front_record();

  PredictionWindows windows_;
  dram::Geometry geometry_;
  std::vector<CeRecord> records_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t rmask_ = 0;
  std::uint64_t front_seq_ = 0;  // sequence number of the oldest record
  std::uint64_t next_seq_ = 0;   // sequence number of the next add
  // First CE inside each trailing sub-window (1h / 6h / 1d / 3d).
  std::uint64_t sub_seq_[4] = {0, 0, 0, 0};

  std::deque<std::pair<SimTime, bool>> storm_events_;  // (time, suppressed)
  int storms_ = 0;
  int suppressions_ = 0;

  double inter_sum_ = 0.0;
  double inter_sq_ = 0.0;
  double inter_min_ = 1e18;
  bool inter_dirty_ = false;

  SlidingCountMap cells_;
  SlidingCountMap rows_;  // doubles as the per-row CE multiset (max_row_ces)
  SlidingCountMap columns_;
  SlidingCountMap banks_;
  SlidingCountMap devices_;
  SlidingCountMap days_;

  WindowPatternState pattern_;
  std::vector<std::int64_t> dq_count_freq_;    // per-CE dq_count histogram
  std::vector<std::int64_t> beat_count_freq_;  // per-CE beat_count histogram
  int max_dq_ub_ = 0;    // upper bound, tightened lazily at emit
  int max_beats_ub_ = 0;
  int multibit_ = 0;
  int cross_device_ = 0;
};

/// Streaming per-DIMM feature engine: the persistent online serving state.
/// Feed telemetry with observe_ce / observe_event (time-ordered); query with
/// features_at(t) for non-decreasing t. Events appended with a timestamp
/// beyond the queried t stay pending — a feature vector at time t remains a
/// pure function of events at time <= t (the leakage discipline).
class OnlineExtractorState {
 public:
  OnlineExtractorState(const PredictionWindows& windows,
                       const FaultThresholds& thresholds,
                       const dram::DimmConfig& config,
                       const sim::WorkloadStats& workload,
                       std::size_t feature_count);

  void observe_ce(const dram::CeEvent& ce);
  void observe_event(const dram::MemEvent& event);

  /// Fast-path ingestion for tick-driven callers (the serving engine) that
  /// already know the next query time t: folds the event immediately, with
  /// the same fold the t-time drain of the pending queue would apply. The
  /// caller must guarantee event.time <= t, t not below any earlier query,
  /// and empty pending queues (don't mix with observe_* mid-stream).
  void ingest_ce_at(SimTime t, const dram::CeEvent& ce);
  void ingest_event_at(SimTime t, const dram::MemEvent& event);

  /// Cheap liveness probe: a stream with an empty window and no pending
  /// telemetry is guaranteed to score empty at any later tick, so tick
  /// drivers can skip it without touching the cold state.
  std::size_t window_ces() const { return window_.size(); }
  bool has_pending() const {
    return !pending_ces_.empty() || !pending_events_.empty();
  }

  /// Features at time t, or an empty vector when the observation window
  /// holds no CE (or t <= 0 — no cadence tick has happened). t must be
  /// non-decreasing across calls.
  void features_at(SimTime t, std::vector<float>& out);
  std::vector<float> features_at(SimTime t);

 private:
  void emit(SimTime t, std::vector<float>& out);

  PredictionWindows windows_;
  dram::DimmConfig config_;
  sim::WorkloadStats workload_;
  std::size_t feature_count_;
  LifetimeState lifetime_;
  WindowState window_;
  std::deque<dram::CeEvent> pending_ces_;
  std::deque<dram::MemEvent> pending_events_;
  SimTime last_query_ = 0;
};

}  // namespace memfp::features
