// Common interface for the binary failure-prediction models (Random Forest,
// GBDT/"LightGBM", FT-Transformer, and the rule baseline via an adapter).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace memfp::ml {

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on the dataset (weights respected). Deterministic given `rng`.
  virtual void fit(const Dataset& train, Rng& rng) = 0;

  /// P(label = 1) for one feature row.
  virtual double predict(std::span<const float> features) const = 0;

  /// Batch prediction over a row-major matrix.
  ///
  /// The default walks x.row(r) spans straight through predict() — no row
  /// copies, no per-call staging buffers. Override contract: an override
  /// exists only to be faster (batched layouts, parallel row blocks); it
  /// must return scores bit-identical to this serial loop at any thread
  /// count (the determinism contract — callers hash these scores), and it
  /// must not retain the Matrix reference past the call. The tree
  /// ensembles override with the compiled FlatEnsemble engine
  /// (DESIGN.md "Flattened ensemble inference").
  virtual std::vector<double> predict_batch(const Matrix& x) const;

  virtual std::string name() const = 0;

  /// Serializes the fitted model (for the MLOps model registry).
  virtual Json to_json() const = 0;
};

}  // namespace memfp::ml
