#include "ml/ft_transformer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ml/metrics.h"

namespace memfp::ml {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

FtTransformer::FtTransformer(FtTransformerParams params) : params_(params) {}

void FtTransformer::build_parameters(Rng& rng) {
  const auto d = static_cast<std::size_t>(params_.d_model);
  const std::size_t fn = numeric_index_.size();
  const float tok_bound = 1.0f / std::sqrt(static_cast<float>(d));
  numeric_w_ = Param(Tensor::random_uniform(fn, d, tok_bound, rng));
  numeric_b_ = Param(Tensor::random_uniform(fn, d, tok_bound, rng));
  int table_rows = 0;
  table_offsets_.clear();
  for (int card : cardinalities_) {
    table_offsets_.push_back(table_rows);
    table_rows += card;
  }
  cat_table_ = Param(Tensor::random_uniform(
      std::max(table_rows, 1), d, tok_bound, rng));
  cls_ = Param(Tensor::random_uniform(1, d, tok_bound, rng));

  const float bound = 1.0f / std::sqrt(static_cast<float>(d));
  const auto dff = d * static_cast<std::size_t>(params_.ffn_multiplier);
  blocks_.clear();
  for (int i = 0; i < params_.blocks; ++i) {
    Block block;
    block.ln1_gamma = Param(Tensor(1, d, 1.0f));
    block.ln1_beta = Param(Tensor(1, d, 0.0f));
    block.wq = Param(Tensor::random_uniform(d, d, bound, rng));
    block.wk = Param(Tensor::random_uniform(d, d, bound, rng));
    block.wv = Param(Tensor::random_uniform(d, d, bound, rng));
    block.wo = Param(Tensor::random_uniform(d, d, bound, rng));
    block.ln2_gamma = Param(Tensor(1, d, 1.0f));
    block.ln2_beta = Param(Tensor(1, d, 0.0f));
    block.ffn_w1 = Param(Tensor::random_uniform(d, dff, bound, rng));
    block.ffn_b1 = Param(Tensor(1, dff, 0.0f));
    block.ffn_w2 = Param(Tensor::random_uniform(
        dff, d, 1.0f / std::sqrt(static_cast<float>(dff)), rng));
    block.ffn_b2 = Param(Tensor(1, d, 0.0f));
    blocks_.push_back(std::move(block));
  }
  final_gamma_ = Param(Tensor(1, d, 1.0f));
  final_beta_ = Param(Tensor(1, d, 0.0f));
  head_w_ = Param(Tensor::random_uniform(d, 1, bound, rng));
  head_b_ = Param(Tensor(1, 1, 0.0f));
}

std::vector<Param*> FtTransformer::all_params() {
  std::vector<Param*> params{&numeric_w_, &numeric_b_, &cat_table_, &cls_};
  for (Block& block : blocks_) {
    for (Param* p :
         {&block.ln1_gamma, &block.ln1_beta, &block.wq, &block.wk, &block.wv,
          &block.wo, &block.ln2_gamma, &block.ln2_beta, &block.ffn_w1,
          &block.ffn_b1, &block.ffn_w2, &block.ffn_b2}) {
      params.push_back(p);
    }
  }
  params.push_back(&final_gamma_);
  params.push_back(&final_beta_);
  params.push_back(&head_w_);
  params.push_back(&head_b_);
  return params;
}

std::vector<const Param*> FtTransformer::all_params() const {
  auto* self = const_cast<FtTransformer*>(this);
  std::vector<Param*> params = self->all_params();
  return {params.begin(), params.end()};
}

void FtTransformer::preprocess(std::span<const float> row,
                               std::vector<float>& numeric,
                               std::vector<int>& codes) const {
  for (std::size_t i = 0; i < numeric_index_.size(); ++i) {
    const float raw = row[numeric_index_[i]];
    numeric.push_back((raw - numeric_mean_[i]) / numeric_std_[i]);
  }
  for (std::size_t i = 0; i < categorical_index_.size(); ++i) {
    const int code = static_cast<int>(row[categorical_index_[i]]);
    codes.push_back(std::clamp(code, 0, cardinalities_[i] - 1));
  }
}

int FtTransformer::forward(Graph& graph, const BoundParams& bound,
                           const Tensor& numeric,
                           const std::vector<int>& codes, std::size_t batch,
                           bool train, Rng& rng) const {
  // Parameter binding order must match all_params().
  std::size_t k = 0;
  const int numeric_w = bound.id(k++);
  const int numeric_b = bound.id(k++);
  const int cat_table = bound.id(k++);
  const int cls = bound.id(k++);
  struct BlockIds {
    int ln1_g, ln1_b, wq, wk, wv, wo, ln2_g, ln2_b, w1, b1, w2, b2;
  };
  std::vector<BlockIds> block_ids;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    BlockIds ids{};
    ids.ln1_g = bound.id(k++);
    ids.ln1_b = bound.id(k++);
    ids.wq = bound.id(k++);
    ids.wk = bound.id(k++);
    ids.wv = bound.id(k++);
    ids.wo = bound.id(k++);
    ids.ln2_g = bound.id(k++);
    ids.ln2_b = bound.id(k++);
    ids.w1 = bound.id(k++);
    ids.b1 = bound.id(k++);
    ids.w2 = bound.id(k++);
    ids.b2 = bound.id(k++);
    block_ids.push_back(ids);
  }
  const int final_g = bound.id(k++);
  const int final_b = bound.id(k++);
  const int head_w = bound.id(k++);
  const int head_b = bound.id(k++);

  const auto fn = static_cast<int>(numeric_index_.size());
  const auto fc = static_cast<int>(categorical_index_.size());
  const int tokens = 1 + fn + fc;
  const float drop = train ? static_cast<float>(params_.dropout) : 0.0f;

  const int num_tok = graph.numeric_tokens(numeric, numeric_w, numeric_b);
  std::vector<int> parts{num_tok};
  std::vector<int> tokens_per_part{fn};
  if (fc > 0) {
    parts.push_back(graph.categorical_tokens(codes,
                                             static_cast<std::size_t>(fc),
                                             cat_table, table_offsets_));
    tokens_per_part.push_back(fc);
  }
  int x = graph.concat_tokens(cls, parts, tokens_per_part, batch);

  for (const BlockIds& ids : block_ids) {
    const int h = graph.layernorm(x, ids.ln1_g, ids.ln1_b);
    const int q = graph.matmul(h, ids.wq);
    const int key = graph.matmul(h, ids.wk);
    const int v = graph.matmul(h, ids.wv);
    int attn = graph.attention(q, key, v, tokens, params_.heads);
    attn = graph.matmul(attn, ids.wo);
    if (drop > 0.0f) attn = graph.dropout(attn, drop, rng);
    x = graph.add(x, attn);

    const int h2 = graph.layernorm(x, ids.ln2_g, ids.ln2_b);
    int f = graph.matmul(h2, ids.w1);
    f = graph.add_rowvec(f, ids.b1);
    f = graph.gelu(f);
    if (drop > 0.0f) f = graph.dropout(f, drop, rng);
    f = graph.matmul(f, ids.w2);
    f = graph.add_rowvec(f, ids.b2);
    x = graph.add(x, f);
  }

  const int final = graph.layernorm(x, final_g, final_b);
  const int cls_rows = graph.select_token(final, tokens, 0);
  int logits = graph.matmul(cls_rows, head_w);
  logits = graph.add_rowvec(logits, head_b);
  return logits;
}

void FtTransformer::fit(const Dataset& train, Rng& rng) {
  // Feature partition from the dataset's categorical metadata.
  numeric_index_.clear();
  categorical_index_.clear();
  cardinalities_.clear();
  const std::vector<std::size_t>& cats = train.categorical;
  for (std::size_t f = 0; f < train.x.cols(); ++f) {
    if (std::find(cats.begin(), cats.end(), f) != cats.end()) {
      categorical_index_.push_back(f);
    } else {
      numeric_index_.push_back(f);
    }
  }
  // Cardinalities from the data (max code + 1).
  for (std::size_t i = 0; i < categorical_index_.size(); ++i) {
    int card = 2;
    for (std::size_t r = 0; r < train.size(); ++r) {
      card = std::max(card,
                      static_cast<int>(train.x.at(r, categorical_index_[i])) +
                          1);
    }
    cardinalities_.push_back(card);
  }
  // Standardization statistics.
  numeric_mean_.assign(numeric_index_.size(), 0.0f);
  numeric_std_.assign(numeric_index_.size(), 1.0f);
  for (std::size_t i = 0; i < numeric_index_.size(); ++i) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t r = 0; r < train.size(); ++r) {
      const double v = train.x.at(r, numeric_index_[i]);
      sum += v;
      sq += v * v;
    }
    const double n = std::max<double>(1.0, static_cast<double>(train.size()));
    const double mean = sum / n;
    const double var = std::max(1e-8, sq / n - mean * mean);
    numeric_mean_[i] = static_cast<float>(mean);
    numeric_std_[i] = static_cast<float>(std::sqrt(var));
  }

  build_parameters(rng);

  // Row subsample: keep all positives, cap the total.
  std::vector<std::size_t> rows;
  std::vector<std::size_t> negatives;
  for (std::size_t r = 0; r < train.size(); ++r) {
    if (train.y[r] == 1) rows.push_back(r);
    else negatives.push_back(r);
  }
  rng.shuffle(negatives);
  for (std::size_t r : negatives) {
    if (rows.size() >= params_.max_train_rows) break;
    rows.push_back(r);
  }
  rng.shuffle(rows);

  // Validation split for early stopping.
  const std::size_t val_count = static_cast<std::size_t>(
      static_cast<double>(rows.size()) * params_.validation_fraction);
  std::vector<std::size_t> val_rows(rows.begin(),
                                    rows.begin() + static_cast<std::ptrdiff_t>(
                                                       val_count));
  std::vector<std::size_t> fit_rows(rows.begin() + static_cast<std::ptrdiff_t>(
                                                       val_count),
                                    rows.end());

  Adam adam({params_.lr, 0.9, 0.999, 1e-8, params_.weight_decay});
  const auto batch_rows = static_cast<std::size_t>(params_.batch_size);

  // The validation fold is fixed across epochs: stage its matrix and labels
  // once instead of re-materializing them for every early-stopping check.
  Matrix val_x;
  std::vector<int> val_labels;
  for (std::size_t r : val_rows) {
    val_x.push_row(train.x.row(r));
    val_labels.push_back(train.y[r]);
  }

  double best_val = 1e30;
  int bad_epochs = 0;
  // Snapshot of the best parameters (values only).
  std::vector<Tensor> best_values;
  const auto snapshot = [&] {
    best_values.clear();
    for (Param* p : all_params()) best_values.push_back(p->value);
  };
  const auto restore = [&] {
    if (best_values.empty()) return;
    std::size_t i = 0;
    for (Param* p : all_params()) p->value = best_values[i++];
  };

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(fit_rows);
    for (std::size_t start = 0; start < fit_rows.size();
         start += batch_rows) {
      const std::size_t stop = std::min(start + batch_rows, fit_rows.size());
      const std::size_t batch = stop - start;
      Tensor numeric(batch, numeric_index_.size());
      std::vector<int> codes;
      std::vector<float> targets, weights;
      codes.reserve(batch * categorical_index_.size());
      std::vector<float> numeric_row;
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t r = fit_rows[start + i];
        numeric_row.clear();
        std::vector<int> row_codes;
        preprocess(train.x.row(r), numeric_row, row_codes);
        for (std::size_t c = 0; c < numeric_row.size(); ++c) {
          numeric(i, c) = numeric_row[c];
        }
        codes.insert(codes.end(), row_codes.begin(), row_codes.end());
        targets.push_back(train.y[r] == 1 ? 1.0f : 0.0f);
        weights.push_back(train.weight[r]);
      }

      Graph graph;
      BoundParams bound(graph, all_params());
      const int logits =
          forward(graph, bound, numeric, codes, batch, /*train=*/true, rng);
      const int loss = graph.bce_with_logits(logits, targets, weights);
      graph.backward(loss);
      adam.begin_step();
      bound.apply(adam);
    }

    // Early stopping on validation logloss.
    if (!val_rows.empty()) {
      const std::vector<double> scores = predict_batch(val_x);
      const double loss = log_loss(scores, val_labels);
      MEMFP_DEBUG << "ft-transformer epoch " << epoch << " val logloss "
                  << loss;
      if (loss < best_val - 1e-5) {
        best_val = loss;
        bad_epochs = 0;
        snapshot();
      } else if (++bad_epochs >= params_.early_stopping_epochs) {
        break;
      }
    }
  }
  restore();
  fitted_ = true;
}

std::vector<double> FtTransformer::predict_batch(const Matrix& x) const {
  std::vector<double> scores(x.rows(), 0.0);
  if (!fitted_ || x.rows() == 0) return scores;
  Rng dummy(1);
  const std::size_t chunk = 512;
  for (std::size_t start = 0; start < x.rows(); start += chunk) {
    const std::size_t stop = std::min(start + chunk, x.rows());
    const std::size_t batch = stop - start;
    Tensor numeric(batch, numeric_index_.size());
    std::vector<int> codes;
    std::vector<float> numeric_row;
    for (std::size_t i = 0; i < batch; ++i) {
      numeric_row.clear();
      std::vector<int> row_codes;
      preprocess(x.row(start + i), numeric_row, row_codes);
      for (std::size_t c = 0; c < numeric_row.size(); ++c) {
        numeric(i, c) = numeric_row[c];
      }
      codes.insert(codes.end(), row_codes.begin(), row_codes.end());
    }
    Graph graph;
    auto* self = const_cast<FtTransformer*>(this);
    BoundParams bound(graph, self->all_params());
    const int logits =
        forward(graph, bound, numeric, codes, batch, /*train=*/false, dummy);
    const Tensor& z = graph.value(logits);
    for (std::size_t i = 0; i < batch; ++i) {
      scores[start + i] = sigmoid(z(i, 0));
    }
  }
  return scores;
}

double FtTransformer::predict(std::span<const float> features) const {
  Matrix x;
  x.push_row(features);
  return predict_batch(x).front();
}

Json FtTransformer::to_json() const {
  // Weight dump: shapes plus flattened values, enough for registry storage.
  Json out = Json::object();
  out.set("type", "ft_transformer");
  out.set("d_model", params_.d_model);
  out.set("blocks", static_cast<int>(blocks_.size()));
  Json tensors = Json::array();
  for (const Param* p : all_params()) {
    Json t = Json::object();
    t.set("rows", p->value.rows());
    t.set("cols", p->value.cols());
    Json data = Json::array();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      data.push_back(static_cast<double>(p->value.data()[i]));
    }
    t.set("data", std::move(data));
    tensors.push_back(std::move(t));
  }
  out.set("tensors", std::move(tensors));
  return out;
}

}  // namespace memfp::ml
