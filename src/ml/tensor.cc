#include "ml/tensor.h"

#include <cstring>

#include "common/check.h"

namespace memfp::ml {

void Tensor::zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

void Tensor::fill(float value) {
  for (float& x : data_) x = value;
}

Tensor Tensor::random_uniform(std::size_t rows, std::size_t cols, float bound,
                              Rng& rng) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return t;
}

// Simple ikj-ordered kernels: cache-friendly enough for the model sizes in
// this project (d_model <= 64), and trivially correct.

void gemm(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.cols(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out.data() + i * n;
    const float* a_row = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      // No zero-skip: attention/MLP activations are dense, so the
      // data-dependent branch only costs a misprediction per element.
      const float av = a_row[p];
      const float* b_row = b.data() + p * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        out_row[j] += av * b_row[j];
        out_row[j + 1] += av * b_row[j + 1];
        out_row[j + 2] += av * b_row[j + 2];
        out_row[j + 3] += av * b_row[j + 3];
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_at(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.rows(), b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      float* out_row = out.data() + i * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        out_row[j] += av * b_row[j];
        out_row[j + 1] += av * b_row[j + 1];
        out_row[j + 2] += av * b_row[j + 2];
        out_row[j + 3] += av * b_row[j + 3];
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_bt(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* out_row = out.data() + i * n;
    // Four independent dot products per step: each keeps its own sequential
    // accumulation over p (bit-identical per output element), while the
    // a_row loads are shared and the four chains hide FMA latency.
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b.data() + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = a_row[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      out_row[j] += acc0;
      out_row[j + 1] += acc1;
      out_row[j + 2] += acc2;
      out_row[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* b_row = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] += acc;
    }
  }
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  MEMFP_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  const float* xs = x.data();
  float* ys = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

}  // namespace memfp::ml
