#include "ml/tensor.h"

#include <cstring>

#include "common/check.h"
#include "common/simd.h"

namespace memfp::ml {

void Tensor::zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

void Tensor::fill(float value) {
  for (float& x : data_) x = value;
}

Tensor Tensor::random_uniform(std::size_t rows, std::size_t cols, float bound,
                              Rng& rng) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return t;
}

// ikj-ordered kernels behind the SIMD dispatch seam (common/simd.h): the
// shape checks and output allocation stay here, the inner loops live in the
// kernel table. Every lane is bit-identical per output element, so dispatch
// level is unobservable in results.

void gemm(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.cols(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  simd::kernels().gemm(a.data(), b.data(), out.data(), m, k, n);
}

void gemm_at(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.rows(), b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  simd::kernels().gemm_at(a.data(), b.data(), out.data(), m, k, n);
}

void gemm_bt(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  MEMFP_CHECK_EQ(a.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (!accumulate) {
    out = Tensor(m, n);
  } else {
    MEMFP_CHECK(out.rows() == m && out.cols() == n);
  }
  simd::kernels().gemm_bt(a.data(), b.data(), out.data(), m, k, n);
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  MEMFP_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  const float* xs = x.data();
  float* ys = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

}  // namespace memfp::ml
