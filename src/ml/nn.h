// Parameter container and Adam optimizer for the neural models.
#pragma once

#include <vector>

#include "ml/autodiff.h"
#include "ml/tensor.h"

namespace memfp::ml {

/// A trainable tensor plus its Adam moment estimates.
struct Param {
  Tensor value;
  Tensor m;
  Tensor v;

  Param() = default;
  explicit Param(Tensor initial)
      : value(std::move(initial)),
        m(value.rows(), value.cols()),
        v(value.rows(), value.cols()) {}
};

struct AdamParams {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW)
};

class Adam {
 public:
  explicit Adam(AdamParams params = {}) : params_(params) {}

  /// Advances the shared step counter (bias correction).
  void begin_step() { ++step_; }

  /// Applies one Adam update to `param` using `grad`.
  void update(Param& param, const Tensor& grad) const;

  const AdamParams& params() const { return params_; }

 private:
  AdamParams params_;
  long step_ = 0;
};

/// Binds a set of parameters as differentiable graph leaves; after
/// Graph::backward, apply() folds the accumulated gradients back via Adam.
class BoundParams {
 public:
  BoundParams(Graph& graph, std::vector<Param*> params);
  int id(std::size_t index) const { return ids_[index]; }
  void apply(Adam& adam) const;

 private:
  Graph* graph_;
  std::vector<Param*> params_;
  std::vector<int> ids_;
};

}  // namespace memfp::ml
