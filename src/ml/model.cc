#include "ml/model.h"

namespace memfp::ml {

std::vector<double> BinaryClassifier::predict_batch(const Matrix& x) const {
  std::vector<double> scores;
  scores.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    scores.push_back(predict(x.row(r)));
  }
  return scores;
}

}  // namespace memfp::ml
