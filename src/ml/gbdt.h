// Gradient-boosted decision trees with logistic loss — the reproduction's
// "LightGBM": histogram splits, leaf-wise tree growth, shrinkage, row and
// feature subsampling, and early stopping on a validation fold.
#pragma once

#include "ml/decision_tree.h"
#include "ml/flat_ensemble.h"
#include "ml/model.h"

namespace memfp::ml {

struct GbdtParams {
  int max_rounds = 300;
  double learning_rate = 0.08;
  GradientTreeParams tree;
  double subsample = 0.8;         ///< row fraction per round
  int early_stopping_rounds = 30; ///< on validation logloss; 0 disables
  double validation_fraction = 0.15;
};

class Gbdt final : public BinaryClassifier {
 public:
  explicit Gbdt(GbdtParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  double predict(std::span<const float> features) const override;
  /// Flat-engine batch scoring (FlatEnsemble with shrinkage baked into the
  /// leaf values), bit-identical to the serial per-row loop at any thread
  /// count; compiled lazily, invalidated by fit()/from_json().
  std::vector<double> predict_batch(const Matrix& x) const override;
  std::string name() const override { return "LightGBM"; }
  Json to_json() const override;
  static Gbdt from_json(const Json& json);

  int rounds_used() const { return static_cast<int>(trees_.size()); }
  const std::vector<Tree>& trees() const { return trees_; }
  std::vector<double> feature_split_counts(std::size_t features) const;

 private:
  double raw_score(std::span<const float> features) const;

  GbdtParams params_;
  double base_score_ = 0.0;  ///< log-odds prior
  std::vector<Tree> trees_;
  LazyFlatEnsemble flat_;  ///< compiled inference form of trees_
};

}  // namespace memfp::ml
