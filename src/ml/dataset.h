// Tabular dataset container and the split/resampling utilities used by the
// prediction pipeline (split by DIMM, never by sample, so no DIMM leaks
// across train/test; negatives are downsampled per DIMM the way the memory
// failure prediction literature does).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "features/sample.h"

namespace memfp::ml {

/// Row-major float matrix with fixed column count.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::span<float> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  void push_row(std::span<const float> values);

  /// Drops all rows but keeps the column count and the data capacity, so a
  /// caller filling batches in a loop (the serving engine) reuses the
  /// allocation instead of reconstructing the matrix per block.
  void clear_rows() {
    rows_ = 0;
    data_.clear();
  }

  /// Gathers column `c` into `out` (resized to rows()). The row-major
  /// stride is paid once per feature here instead of once per element in
  /// the feature-binning loops.
  void gather_column(std::size_t c, std::vector<float>& out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Features + labels + sample provenance (DIMM, time) + per-sample weights.
struct Dataset {
  Matrix x;
  std::vector<int> y;
  std::vector<float> weight;
  std::vector<dram::DimmId> dimm;
  std::vector<SimTime> time;
  /// Indices of categorical columns (from the feature schema).
  std::vector<std::size_t> categorical;

  std::size_t size() const { return y.size(); }
  std::size_t positives() const;

  /// Keeps only the listed rows (in the given order).
  Dataset select(const std::vector<std::size_t>& rows) const;
};

/// Builds a Dataset from trainable samples (label >= 0).
Dataset make_dataset(const features::SampleSet& samples);

/// Splits DIMM ids (not rows!) into train/test with the UE DIMMs stratified,
/// so both sides get their share of scarce positives.
struct DimmSplit {
  std::vector<dram::DimmId> train;
  std::vector<dram::DimmId> test;
};
DimmSplit split_dimms(const std::vector<dram::DimmId>& positive_dimms,
                      const std::vector<dram::DimmId>& negative_dimms,
                      double test_fraction, Rng& rng);

/// Downsamples negative rows to `max_negatives_per_dimm` (uniformly chosen
/// per DIMM) and keeps up to `max_positives_per_dimm` positive rows per DIMM
/// (the latest ones, which carry the most pre-failure signal).
Dataset downsample(const Dataset& dataset, std::size_t max_negatives_per_dimm,
                   std::size_t max_positives_per_dimm, Rng& rng);

/// Sets per-sample weights so the positive class carries `positive_share`
/// of the total weight (class re-balancing for the imbalanced UE task).
void rebalance_weights(Dataset& dataset, double positive_share);

}  // namespace memfp::ml
