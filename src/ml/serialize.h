// Model (de)serialization for the MLOps model registry.
#pragma once

#include <memory>

#include "common/json.h"
#include "ml/model.h"

namespace memfp::ml {

/// Reconstructs a fitted model from its to_json() form. Supports the tree
/// ensembles (random_forest, gbdt); throws std::runtime_error for types
/// whose export is weights-only (ft_transformer).
std::unique_ptr<BinaryClassifier> model_from_json(const Json& json);

}  // namespace memfp::ml
