// Dense 2-D float tensor with the handful of BLAS-like kernels the neural
// network needs. Deliberately minimal: row-major, no views, no broadcasting
// beyond what the autodiff ops implement explicitly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace memfp::ml {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> row(std::size_t r) { return {data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {data() + r * cols_, cols_};
  }

  void zero();
  void fill(float value);

  /// Kaiming-uniform style init in [-bound, bound] with bound = 1/sqrt(fan_in).
  static Tensor random_uniform(std::size_t rows, std::size_t cols,
                               float bound, Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a @ b. Shapes: (m,k) @ (k,n) -> (m,n). `accumulate` adds into out.
void gemm(const Tensor& a, const Tensor& b, Tensor& out,
          bool accumulate = false);
/// out = a^T @ b. Shapes: (k,m)^T @ (k,n) -> (m,n).
void gemm_at(const Tensor& a, const Tensor& b, Tensor& out,
             bool accumulate = false);
/// out = a @ b^T. Shapes: (m,k) @ (n,k)^T -> (m,n).
void gemm_bt(const Tensor& a, const Tensor& b, Tensor& out,
             bool accumulate = false);
/// y += alpha * x (same shape).
void axpy(float alpha, const Tensor& x, Tensor& y);

}  // namespace memfp::ml
