#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/metrics.h"

namespace memfp::ml {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Gbdt::Gbdt(GbdtParams params) : params_(params) {}

void Gbdt::fit(const Dataset& train, Rng& rng) {
  MEMFP_CHECK_GT(train.size(), std::size_t{0})
      << "cannot fit a GBDT on an empty dataset";
  MEMFP_CHECK_EQ(train.y.size(), train.size());
  MEMFP_CHECK_EQ(train.weight.size(), train.size());
  trees_.clear();
  flat_.invalidate();

  // Hold out a validation fold (by row; the caller already split by DIMM,
  // this fold only drives early stopping).
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t val_count =
      params_.early_stopping_rounds > 0
          ? static_cast<std::size_t>(static_cast<double>(train.size()) *
                                     params_.validation_fraction)
          : 0;
  std::vector<std::size_t> val_rows(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(
                                                        val_count));
  std::vector<std::size_t> fit_rows(order.begin() + static_cast<std::ptrdiff_t>(
                                                        val_count),
                                    order.end());

  // Base score: weighted log-odds of the positive class.
  double pos = 0.0, total = 0.0;
  for (std::size_t r : fit_rows) {
    total += train.weight[r];
    if (train.y[r] == 1) pos += train.weight[r];
  }
  const double prior = std::clamp(total > 0.0 ? pos / total : 0.5, 1e-6,
                                  1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  const BinnedDataset binned = BinnedDataset::build(train);
  std::vector<double> score(train.size(), base_score_);
  std::vector<double> grad(train.size()), hess(train.size());

  double best_val_loss = 1e30;
  int rounds_since_best = 0;
  std::size_t best_tree_count = 0;

  // Per-round buffers, hoisted so the boosting loop reuses their capacity.
  std::vector<std::size_t> rows;
  rows.reserve(fit_rows.size());
  std::vector<double> val_scores;
  std::vector<int> val_labels;
  val_scores.reserve(val_rows.size());
  val_labels.reserve(val_rows.size());

  ThreadPool& pool = ThreadPool::global();
  for (int round = 0; round < params_.max_rounds; ++round) {
    // Logistic-loss gradients, sample-weighted. Elementwise: each row writes
    // its own slot, so the parallel result is exact.
    pool.parallel_for(train.size(), [&](std::size_t r) {
      const double p = sigmoid(score[r]);
      const double w = train.weight[r];
      grad[r] = w * (p - (train.y[r] == 1 ? 1.0 : 0.0));
      hess[r] = w * std::max(p * (1.0 - p), 1e-6);
    });

    rows.clear();
    for (std::size_t r : fit_rows) {
      if (params_.subsample >= 1.0 || rng.bernoulli(params_.subsample)) {
        rows.push_back(r);
      }
    }
    if (rows.empty()) break;

    Tree tree = fit_gradient_tree(binned, rows, grad, hess, params_.tree, rng);
    if (tree.leaves() <= 1) break;  // no useful split left

    // Per-round rescoring: fold only the new tree's contribution into the
    // running scores, over the binned training codes — the tree's
    // thresholds come from binned.mapper, so the uint8 comparison reaches
    // the identical leaf as the float walk (no re-quantization drift), and
    // shrinkage is baked into the flat leaf values, so each score gains the
    // identical `learning_rate * leaf` double the old per-row walk added.
    FlatEnsemble round_flat = FlatEnsemble::build({&tree, 1},
                                                  params_.learning_rate);
    if (round_flat.bind(binned.mapper)) {
      round_flat.accumulate_binned(binned.codes.data(), binned.rows, score);
    } else {
      // Unreachable for a tree trained on `binned`; kept as the documented
      // float fallback of the binned fast path.
      round_flat.accumulate(train.x, score);
    }
    trees_.push_back(std::move(tree));

    if (val_count > 0) {
      val_scores.clear();
      val_labels.clear();
      for (std::size_t r : val_rows) {
        val_scores.push_back(sigmoid(score[r]));
        val_labels.push_back(train.y[r]);
      }
      const double loss = log_loss(val_scores, val_labels);
      if (loss < best_val_loss - 1e-6) {
        best_val_loss = loss;
        rounds_since_best = 0;
        best_tree_count = trees_.size();
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        trees_.resize(best_tree_count);
        break;
      }
    }
  }
  MEMFP_DEBUG << "gbdt: fitted " << trees_.size() << " trees";
}

double Gbdt::raw_score(std::span<const float> features) const {
  // Flat single-row traversal; the pre-scaled leaf values accumulate onto
  // the prior in tree order, bit-identical to the pointer walker's
  // `base + lr * leaf_0 + lr * leaf_1 + ...`.
  if (trees_.empty()) return base_score_;
  return flat_.get(trees_, params_.learning_rate)
      ->predict_row(features, base_score_);
}

double Gbdt::predict(std::span<const float> features) const {
  return sigmoid(raw_score(features));
}

std::vector<double> Gbdt::predict_batch(const Matrix& x) const {
  std::vector<double> scores(x.rows(), sigmoid(base_score_));
  if (trees_.empty() || x.rows() == 0) return scores;
  flat_.get(trees_, params_.learning_rate)->predict(x, base_score_, scores);
  for (double& score : scores) score = sigmoid(score);
  return scores;
}

Json Gbdt::to_json() const {
  Json trees = Json::array();
  for (const Tree& tree : trees_) trees.push_back(tree.to_json());
  Json out = Json::object();
  out.set("type", "gbdt");
  out.set("base_score", base_score_);
  out.set("learning_rate", params_.learning_rate);
  out.set("trees", std::move(trees));
  return out;
}

Gbdt Gbdt::from_json(const Json& json) {
  Gbdt model;
  model.base_score_ = json.at("base_score").as_number();
  model.params_.learning_rate = json.at("learning_rate").as_number();
  for (const Json& tree : json.at("trees").as_array()) {
    model.trees_.push_back(Tree::from_json(tree));
  }
  model.flat_.invalidate();  // recompile lazily against the loaded trees
  return model;
}

std::vector<double> Gbdt::feature_split_counts(std::size_t features) const {
  std::vector<double> counts(features, 0.0);
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree.nodes()) {
      if (node.feature >= 0 &&
          static_cast<std::size_t>(node.feature) < features) {
        counts[static_cast<std::size_t>(node.feature)] += 1.0;
      }
    }
  }
  return counts;
}

}  // namespace memfp::ml
