#include "ml/autodiff.h"

#include <cmath>
#include <memory>

#include "common/check.h"

namespace memfp::ml {
namespace {

constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
constexpr float kLnEps = 1e-5f;

}  // namespace

int Graph::add_node(Tensor value, bool requires_grad,
                    std::function<void()> backward_fn) {
  Node node;
  node.grad = Tensor(value.rows(), value.cols());
  node.value = std::move(value);
  node.requires_grad = requires_grad;
  node.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Graph::leaf(Tensor value, bool requires_grad) {
  return add_node(std::move(value), requires_grad, nullptr);
}

int Graph::add(int a, int b) {
  MEMFP_CHECK(nodes_[a].value.rows() == nodes_[b].value.rows() &&
              nodes_[a].value.cols() == nodes_[b].value.cols());
  Tensor out = nodes_[a].value;
  axpy(1.0f, nodes_[b].value, out);
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, b, id] {
    axpy(1.0f, nodes_[id].grad, nodes_[a].grad);
    axpy(1.0f, nodes_[id].grad, nodes_[b].grad);
  };
  return id;
}

int Graph::add_rowvec(int a, int b) {
  const Tensor& av = nodes_[a].value;
  const Tensor& bv = nodes_[b].value;
  MEMFP_CHECK(bv.rows() == 1 && bv.cols() == av.cols());
  Tensor out = av;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += bv(0, c);
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, b, id] {
    const Tensor& g = nodes_[id].grad;
    axpy(1.0f, g, nodes_[a].grad);
    Tensor& gb = nodes_[b].grad;
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += g(r, c);
    }
  };
  return id;
}

int Graph::matmul(int a, int b) {
  Tensor out;
  gemm(nodes_[a].value, nodes_[b].value, out);
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, b, id] {
    // dA = dOut @ B^T ; dB = A^T @ dOut
    gemm_bt(nodes_[id].grad, nodes_[b].value, nodes_[a].grad,
            /*accumulate=*/true);
    gemm_at(nodes_[a].value, nodes_[id].grad, nodes_[b].grad,
            /*accumulate=*/true);
  };
  return id;
}

int Graph::scale(int a, float s) {
  Tensor out = nodes_[a].value;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, id, s] {
    axpy(s, nodes_[id].grad, nodes_[a].grad);
  };
  return id;
}

int Graph::relu(int a) {
  Tensor out = nodes_[a].value;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, id] {
    const Tensor& g = nodes_[id].grad;
    const Tensor& x = nodes_[a].value;
    Tensor& ga = nodes_[a].grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (x.data()[i] > 0.0f) ga.data()[i] += g.data()[i];
    }
  };
  return id;
}

int Graph::gelu(int a) {
  Tensor out = nodes_[a].value;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float x = out.data()[i];
    const float u = kGeluC * (x + kGeluA * x * x * x);
    out.data()[i] = 0.5f * x * (1.0f + std::tanh(u));
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, id] {
    const Tensor& g = nodes_[id].grad;
    const Tensor& xv = nodes_[a].value;
    Tensor& ga = nodes_[a].grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float x = xv.data()[i];
      const float u = kGeluC * (x + kGeluA * x * x * x);
      const float t = std::tanh(u);
      const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
      const float dg = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      ga.data()[i] += g.data()[i] * dg;
    }
  };
  return id;
}

int Graph::dropout(int a, float rate, Rng& rng) {
  if (rate <= 0.0f) return a;
  const float keep = 1.0f - rate;
  auto mask = std::make_shared<std::vector<float>>(nodes_[a].value.size());
  Tensor out = nodes_[a].value;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float m = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
    (*mask)[i] = m;
    out.data()[i] *= m;
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, id, mask] {
    const Tensor& g = nodes_[id].grad;
    Tensor& ga = nodes_[a].grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * (*mask)[i];
    }
  };
  return id;
}

int Graph::layernorm(int a, int gamma, int beta) {
  const Tensor& x = nodes_[a].value;
  const std::size_t rows = x.rows(), cols = x.cols();
  auto xhat = std::make_shared<Tensor>(rows, cols);
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  const Tensor& gv = nodes_[gamma].value;
  const Tensor& bv = nodes_[beta].value;
  Tensor out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float mean = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) mean += x(r, c);
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float d = x(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float is = 1.0f / std::sqrt(var + kLnEps);
    (*inv_std)[r] = is;
    for (std::size_t c = 0; c < cols; ++c) {
      const float xh = (x(r, c) - mean) * is;
      (*xhat)(r, c) = xh;
      out(r, c) = gv(0, c) * xh + bv(0, c);
    }
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, gamma, beta, id, xhat, inv_std] {
    const Tensor& g = nodes_[id].grad;
    const Tensor& gv = nodes_[gamma].value;
    Tensor& ga = nodes_[a].grad;
    Tensor& gg = nodes_[gamma].grad;
    Tensor& gb = nodes_[beta].grad;
    const std::size_t rows = g.rows(), cols = g.cols();
    for (std::size_t r = 0; r < rows; ++r) {
      float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) {
        const float dy = g(r, c);
        const float xh = (*xhat)(r, c);
        gb(0, c) += dy;
        gg(0, c) += dy * xh;
        const float dxhat = dy * gv(0, c);
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xh;
      }
      const float n = static_cast<float>(cols);
      const float is = (*inv_std)[r];
      for (std::size_t c = 0; c < cols; ++c) {
        const float dxhat = g(r, c) * gv(0, c);
        ga(r, c) += is * (dxhat - sum_dxhat / n -
                          (*xhat)(r, c) * sum_dxhat_xhat / n);
      }
    }
  };
  return id;
}

int Graph::attention(int q, int k, int v, int tokens, int heads) {
  const Tensor& qv = nodes_[q].value;
  const Tensor& kv = nodes_[k].value;
  const Tensor& vv = nodes_[v].value;
  const std::size_t d = qv.cols();
  MEMFP_CHECK_EQ(d % static_cast<std::size_t>(heads), std::size_t{0});
  const std::size_t dh = d / static_cast<std::size_t>(heads);
  MEMFP_CHECK_EQ(qv.rows() % static_cast<std::size_t>(tokens), std::size_t{0});
  const std::size_t batch = qv.rows() / static_cast<std::size_t>(tokens);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const auto t = static_cast<std::size_t>(tokens);

  // Store the softmax weights for backward: batch x heads x T x T.
  auto attn = std::make_shared<std::vector<float>>(
      batch * static_cast<std::size_t>(heads) * t * t);
  Tensor out(qv.rows(), d);

  std::vector<float> scores(t);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * t;
    for (std::size_t h = 0; h < static_cast<std::size_t>(heads); ++h) {
      const std::size_t hc = h * dh;
      float* a_block =
          attn->data() + (b * static_cast<std::size_t>(heads) + h) * t * t;
      for (std::size_t i = 0; i < t; ++i) {
        float max_score = -1e30f;
        for (std::size_t j = 0; j < t; ++j) {
          float s = 0.0f;
          for (std::size_t c = 0; c < dh; ++c) {
            s += qv(base + i, hc + c) * kv(base + j, hc + c);
          }
          s *= scale;
          scores[j] = s;
          max_score = std::max(max_score, s);
        }
        float denom = 0.0f;
        for (std::size_t j = 0; j < t; ++j) {
          scores[j] = std::exp(scores[j] - max_score);
          denom += scores[j];
        }
        for (std::size_t j = 0; j < t; ++j) {
          const float a = scores[j] / denom;
          a_block[i * t + j] = a;
          for (std::size_t c = 0; c < dh; ++c) {
            out(base + i, hc + c) += a * vv(base + j, hc + c);
          }
        }
      }
    }
  }

  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, q, k, v, id, attn, tokens, heads, dh,
                            scale] {
    const Tensor& g = nodes_[id].grad;
    const Tensor& qv = nodes_[q].value;
    const Tensor& kv = nodes_[k].value;
    const Tensor& vv = nodes_[v].value;
    Tensor& gq = nodes_[q].grad;
    Tensor& gk = nodes_[k].grad;
    Tensor& gv_ = nodes_[v].grad;
    const auto t = static_cast<std::size_t>(tokens);
    const std::size_t batch = qv.rows() / t;
    std::vector<float> da(t), ds(t);
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t base = b * t;
      for (std::size_t h = 0; h < static_cast<std::size_t>(heads); ++h) {
        const std::size_t hc = h * dh;
        const float* a_block =
            attn->data() + (b * static_cast<std::size_t>(heads) + h) * t * t;
        for (std::size_t i = 0; i < t; ++i) {
          // dA(i,j) = sum_c dOut(i,c) * V(j,c); dV(j,c) += A(i,j) dOut(i,c)
          float dot = 0.0f;
          for (std::size_t j = 0; j < t; ++j) {
            float daij = 0.0f;
            const float aij = a_block[i * t + j];
            for (std::size_t c = 0; c < dh; ++c) {
              const float go = g(base + i, hc + c);
              daij += go * vv(base + j, hc + c);
              gv_(base + j, hc + c) += aij * go;
            }
            da[j] = daij;
            dot += daij * aij;
          }
          for (std::size_t j = 0; j < t; ++j) {
            ds[j] = a_block[i * t + j] * (da[j] - dot) * scale;
          }
          for (std::size_t j = 0; j < t; ++j) {
            const float dsij = ds[j];
            if (dsij == 0.0f) continue;
            for (std::size_t c = 0; c < dh; ++c) {
              gq(base + i, hc + c) += dsij * kv(base + j, hc + c);
              gk(base + j, hc + c) += dsij * qv(base + i, hc + c);
            }
          }
        }
      }
    }
  };
  return id;
}

int Graph::select_token(int a, int tokens, int offset) {
  const Tensor& x = nodes_[a].value;
  const auto t = static_cast<std::size_t>(tokens);
  const std::size_t batch = x.rows() / t;
  Tensor out(batch, x.cols());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(b, c) = x(b * t + static_cast<std::size_t>(offset), c);
    }
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, a, id, tokens, offset] {
    const Tensor& g = nodes_[id].grad;
    Tensor& ga = nodes_[a].grad;
    const auto t = static_cast<std::size_t>(tokens);
    for (std::size_t b = 0; b < g.rows(); ++b) {
      for (std::size_t c = 0; c < g.cols(); ++c) {
        ga(b * t + static_cast<std::size_t>(offset), c) += g(b, c);
      }
    }
  };
  return id;
}

int Graph::numeric_tokens(const Tensor& x, int w, int b) {
  const Tensor& wv = nodes_[w].value;
  const Tensor& bv = nodes_[b].value;
  const std::size_t batch = x.rows(), features = x.cols(), d = wv.cols();
  MEMFP_CHECK(wv.rows() == features && bv.rows() == features && bv.cols() == d);
  auto x_copy = std::make_shared<Tensor>(x);
  Tensor out(batch * features, d);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t f = 0; f < features; ++f) {
      const float xv = x(r, f);
      for (std::size_t c = 0; c < d; ++c) {
        out(r * features + f, c) = xv * wv(f, c) + bv(f, c);
      }
    }
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, w, b, id, x_copy] {
    const Tensor& g = nodes_[id].grad;
    Tensor& gw = nodes_[w].grad;
    Tensor& gb = nodes_[b].grad;
    const std::size_t batch = x_copy->rows(), features = x_copy->cols(),
                      d = g.cols();
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t f = 0; f < features; ++f) {
        const float xv = (*x_copy)(r, f);
        for (std::size_t c = 0; c < d; ++c) {
          const float go = g(r * features + f, c);
          gw(f, c) += xv * go;
          gb(f, c) += go;
        }
      }
    }
  };
  return id;
}

int Graph::categorical_tokens(const std::vector<int>& codes,
                              std::size_t slots, int table,
                              const std::vector<int>& offsets) {
  MEMFP_CHECK_EQ(offsets.size(), slots);
  const Tensor& tv = nodes_[table].value;
  const std::size_t d = tv.cols();
  const std::size_t total = codes.size();
  auto codes_copy = std::make_shared<std::vector<int>>(codes);
  auto offsets_copy = std::make_shared<std::vector<int>>(offsets);
  Tensor out(total, d);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t row = static_cast<std::size_t>(
        (*offsets_copy)[i % slots] + codes[i]);
    for (std::size_t c = 0; c < d; ++c) out(i, c) = tv(row, c);
  }
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, table, id, codes_copy, offsets_copy,
                            slots] {
    const Tensor& g = nodes_[id].grad;
    Tensor& gt = nodes_[table].grad;
    for (std::size_t i = 0; i < codes_copy->size(); ++i) {
      const std::size_t row = static_cast<std::size_t>(
          (*offsets_copy)[i % slots] + (*codes_copy)[i]);
      for (std::size_t c = 0; c < g.cols(); ++c) gt(row, c) += g(i, c);
    }
  };
  return id;
}

int Graph::concat_tokens(int cls, const std::vector<int>& parts,
                         const std::vector<int>& tokens_per_part,
                         std::size_t batch) {
  MEMFP_CHECK_EQ(parts.size(), tokens_per_part.size());
  const Tensor& cv = nodes_[cls].value;
  const std::size_t d = cv.cols();
  int block = 1;
  for (int t : tokens_per_part) block += t;
  Tensor out(batch * static_cast<std::size_t>(block), d);
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t row = b * static_cast<std::size_t>(block);
    for (std::size_t c = 0; c < d; ++c) out(row, c) = cv(0, c);
    ++row;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const Tensor& pv = nodes_[parts[p]].value;
      const auto t = static_cast<std::size_t>(tokens_per_part[p]);
      for (std::size_t i = 0; i < t; ++i, ++row) {
        for (std::size_t c = 0; c < d; ++c) out(row, c) = pv(b * t + i, c);
      }
    }
  }
  const int id = add_node(std::move(out), true, nullptr);
  auto parts_copy = std::make_shared<std::vector<int>>(parts);
  auto tokens_copy = std::make_shared<std::vector<int>>(tokens_per_part);
  nodes_[id].backward_fn = [this, cls, id, parts_copy, tokens_copy, batch,
                            block] {
    const Tensor& g = nodes_[id].grad;
    Tensor& gc = nodes_[cls].grad;
    const std::size_t d = g.cols();
    for (std::size_t b = 0; b < batch; ++b) {
      std::size_t row = b * static_cast<std::size_t>(block);
      for (std::size_t c = 0; c < d; ++c) gc(0, c) += g(row, c);
      ++row;
      for (std::size_t p = 0; p < parts_copy->size(); ++p) {
        Tensor& gp = nodes_[(*parts_copy)[p]].grad;
        const auto t = static_cast<std::size_t>((*tokens_copy)[p]);
        for (std::size_t i = 0; i < t; ++i, ++row) {
          for (std::size_t c = 0; c < d; ++c) gp(b * t + i, c) += g(row, c);
        }
      }
    }
  };
  return id;
}

int Graph::bce_with_logits(int logits, const std::vector<float>& targets,
                           const std::vector<float>& weights) {
  const Tensor& z = nodes_[logits].value;
  MEMFP_CHECK(z.cols() == 1 && z.rows() == targets.size() &&
              targets.size() == weights.size());
  float weight_sum = 0.0f;
  for (float w : weights) weight_sum += w;
  if (weight_sum <= 0.0f) weight_sum = 1.0f;

  double loss = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double zi = z(i, 0);
    // Numerically stable: max(z,0) - z*y + log(1 + exp(-|z|)).
    loss += weights[i] * (std::max(zi, 0.0) - zi * targets[i] +
                          std::log1p(std::exp(-std::fabs(zi))));
  }
  Tensor out(1, 1);
  out(0, 0) = static_cast<float>(loss / weight_sum);

  auto targets_copy = std::make_shared<std::vector<float>>(targets);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  const int id = add_node(std::move(out), true, nullptr);
  nodes_[id].backward_fn = [this, logits, id, targets_copy, weights_copy,
                            weight_sum] {
    const float seed = nodes_[id].grad(0, 0);
    const Tensor& z = nodes_[logits].value;
    Tensor& gz = nodes_[logits].grad;
    for (std::size_t i = 0; i < targets_copy->size(); ++i) {
      const float p = 1.0f / (1.0f + std::exp(-z(i, 0)));
      gz(i, 0) += seed * (*weights_copy)[i] * (p - (*targets_copy)[i]) /
                  weight_sum;
    }
  };
  return id;
}

void Graph::backward(int id) {
  nodes_[id].grad.fill(1.0f);
  for (int i = id; i >= 0; --i) {
    if (nodes_[i].backward_fn) nodes_[i].backward_fn();
  }
}

}  // namespace memfp::ml
