#include "ml/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace memfp::ml {

void Matrix::push_row(std::span<const float> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  MEMFP_CHECK_EQ(values.size(), cols_) << "row width must match the matrix";
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::gather_column(std::size_t c, std::vector<float>& out) const {
  out.resize(rows_);
  const float* base = data_.data() + c;
  for (std::size_t r = 0; r < rows_; ++r) out[r] = base[r * cols_];
}

std::size_t Dataset::positives() const {
  std::size_t count = 0;
  for (int label : y) count += label == 1;
  return count;
}

Dataset Dataset::select(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.categorical = categorical;
  out.x = Matrix(0, 0);
  for (std::size_t r : rows) {
    out.x.push_row(x.row(r));
    out.y.push_back(y[r]);
    out.weight.push_back(weight[r]);
    out.dimm.push_back(dimm[r]);
    out.time.push_back(time[r]);
  }
  return out;
}

Dataset make_dataset(const features::SampleSet& samples) {
  Dataset dataset;
  for (std::size_t i = 0; i < samples.schema.size(); ++i) {
    if (samples.schema.def(i).categorical) dataset.categorical.push_back(i);
  }
  for (const features::Sample& sample : samples.samples) {
    if (!sample.trainable()) continue;
    dataset.x.push_row(sample.features);
    dataset.y.push_back(sample.label);
    dataset.weight.push_back(1.0f);
    dataset.dimm.push_back(sample.dimm);
    dataset.time.push_back(sample.time);
  }
  return dataset;
}

DimmSplit split_dimms(const std::vector<dram::DimmId>& positive_dimms,
                      const std::vector<dram::DimmId>& negative_dimms,
                      double test_fraction, Rng& rng) {
  DimmSplit split;
  auto assign = [&](std::vector<dram::DimmId> ids) {
    rng.shuffle(ids);
    const auto test_count = static_cast<std::size_t>(
        static_cast<double>(ids.size()) * test_fraction + 0.5);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      (i < test_count ? split.test : split.train).push_back(ids[i]);
    }
  };
  assign(positive_dimms);
  assign(negative_dimms);
  return split;
}

Dataset downsample(const Dataset& dataset, std::size_t max_negatives_per_dimm,
                   std::size_t max_positives_per_dimm, Rng& rng) {
  // Bucket row indices per (dimm, class).
  std::unordered_map<dram::DimmId, std::vector<std::size_t>> neg, pos;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    (dataset.y[r] == 1 ? pos : neg)[dataset.dimm[r]].push_back(r);
  }
  // Visit buckets in ascending DIMM id, never in hash order: each negative
  // bucket consumes rng draws, so the visit order decides which rows every
  // bucket keeps — hash order would tie the training set to the standard
  // library's bucket layout.
  std::vector<dram::DimmId> neg_ids, pos_ids;
  neg_ids.reserve(neg.size());
  pos_ids.reserve(pos.size());
  // memfp-lint: allow(unordered-iter): keys sorted immediately below
  for (const auto& [id, rows] : neg) neg_ids.push_back(id);
  // memfp-lint: allow(unordered-iter): keys sorted immediately below
  for (const auto& [id, rows] : pos) pos_ids.push_back(id);
  std::sort(neg_ids.begin(), neg_ids.end());
  std::sort(pos_ids.begin(), pos_ids.end());
  std::vector<std::size_t> keep;
  for (dram::DimmId id : neg_ids) {
    std::vector<std::size_t>& rows = neg[id];
    if (rows.size() > max_negatives_per_dimm) {
      rng.shuffle(rows);
      rows.resize(max_negatives_per_dimm);
    }
    keep.insert(keep.end(), rows.begin(), rows.end());
  }
  for (dram::DimmId id : pos_ids) {
    std::vector<std::size_t>& rows = pos[id];
    // Keep the latest positive samples: closest to the failure, strongest
    // signal, and they bound the lead time the model actually learns.
    if (rows.size() > max_positives_per_dimm) {
      rows.erase(rows.begin(),
                 rows.end() - static_cast<std::ptrdiff_t>(max_positives_per_dimm));
    }
    keep.insert(keep.end(), rows.begin(), rows.end());
  }
  std::sort(keep.begin(), keep.end());
  return dataset.select(keep);
}

void rebalance_weights(Dataset& dataset, double positive_share) {
  const std::size_t positives = dataset.positives();
  const std::size_t negatives = dataset.size() - positives;
  if (positives == 0 || negatives == 0) return;
  const double positive_weight =
      positive_share * static_cast<double>(negatives) /
      ((1.0 - positive_share) * static_cast<double>(positives));
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    dataset.weight[r] = dataset.y[r] == 1
                            ? static_cast<float>(positive_weight)
                            : 1.0f;
  }
}

}  // namespace memfp::ml
