#include "ml/random_forest.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace memfp::ml {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {}

void RandomForest::fit(const Dataset& train, Rng& rng) {
  MEMFP_CHECK_GT(train.size(), std::size_t{0})
      << "cannot fit a random forest on an empty dataset";
  MEMFP_CHECK_EQ(train.y.size(), train.size());
  MEMFP_CHECK_EQ(train.weight.size(), train.size());
  trees_.clear();
  flat_.invalidate();
  // Columnar codes + weight bundles are shared read-only by every tree task;
  // each fit owns its private row arena and histogram pool.
  const BinnedDataset binned = BinnedDataset::build(train);
  const auto sample_size = static_cast<std::size_t>(
      static_cast<double>(train.size()) * params_.bootstrap_fraction);
  // One task per tree. Tree t draws its bootstrap and split randomness from
  // rng.fork(t), a pure function of (rng state, t): every thread count —
  // including the serial fallback — grows the identical forest.
  trees_.resize(static_cast<std::size_t>(std::max(0, params_.trees)));
  ThreadPool::global().parallel_for(
      trees_.size(),
      [&](std::size_t t) {
        Rng tree_rng = rng.fork(static_cast<std::uint64_t>(t));
        std::vector<std::size_t> rows(sample_size);
        for (std::size_t& r : rows) r = tree_rng.uniform_u64(train.size());
        trees_[t] =
            fit_classification_tree(binned, rows, params_.tree, tree_rng);
      },
      /*grain=*/1);
}

double RandomForest::predict(std::span<const float> features) const {
  if (trees_.empty()) return 0.0;
  // Flat single-row traversal: the same comparisons, leaf values and
  // tree-order summation as walking every Tree, so the score is bit-
  // identical to the pointer walker (tests/test_flat_ensemble.cc).
  const double total = flat_.get(trees_, 1.0)->predict_row(features, 0.0);
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_batch(const Matrix& x) const {
  std::vector<double> scores(x.rows(), 0.0);
  if (trees_.empty() || x.rows() == 0) return scores;
  flat_.get(trees_, 1.0)->predict(x, 0.0, scores);
  const auto count = static_cast<double>(trees_.size());
  for (double& score : scores) score /= count;
  return scores;
}

Json RandomForest::to_json() const {
  Json trees = Json::array();
  for (const Tree& tree : trees_) trees.push_back(tree.to_json());
  Json out = Json::object();
  out.set("type", "random_forest");
  out.set("trees", std::move(trees));
  return out;
}

RandomForest RandomForest::from_json(const Json& json) {
  RandomForest model;
  for (const Json& tree : json.at("trees").as_array()) {
    model.trees_.push_back(Tree::from_json(tree));
  }
  model.flat_.invalidate();  // recompile lazily against the loaded trees
  return model;
}

std::vector<double> RandomForest::feature_split_counts(
    std::size_t features) const {
  std::vector<double> counts(features, 0.0);
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree.nodes()) {
      if (node.feature >= 0 &&
          static_cast<std::size_t>(node.feature) < features) {
        counts[static_cast<std::size_t>(node.feature)] += 1.0;
      }
    }
  }
  return counts;
}

}  // namespace memfp::ml
