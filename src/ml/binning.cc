#include "ml/binning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace memfp::ml {

BinMapper BinMapper::fit(const Dataset& dataset, int max_bins) {
  // Bin codes are stored as uint8, so a feature may hold at most 256 bins
  // (thresholds.size() + 1 <= 256 => bin index <= 255).
  MEMFP_CHECK(max_bins >= 2 && max_bins <= 256)
      << "max_bins must fit uint8 bin codes";
  BinMapper mapper;
  const std::size_t features = dataset.x.cols();
  mapper.thresholds_.resize(features);
  // Sorted copy so the membership test below is a binary search.
  std::vector<std::size_t> categorical(dataset.categorical);
  std::sort(categorical.begin(), categorical.end());

  // Features bin independently; each writes its own thresholds_ slot, so the
  // result is identical for any thread count. Chunk-granular dispatch lets
  // one gather scratch serve every feature of a chunk.
  ThreadPool::global().parallel_for_chunks(
      features, [&](std::size_t begin, std::size_t end) {
        std::vector<float> column;
        for (std::size_t f = begin; f < end; ++f) {
          dataset.x.gather_column(f, column);
          std::sort(column.begin(), column.end());
          column.erase(std::unique(column.begin(), column.end()),
                       column.end());

          std::vector<float>& thresholds = mapper.thresholds_[f];
          if (column.size() <= 1) continue;  // constant feature: single bin

          if (std::binary_search(categorical.begin(), categorical.end(), f) ||
              static_cast<int>(column.size()) <= max_bins) {
            // One bin per distinct value; thresholds halfway between
            // neighbours.
            for (std::size_t i = 0; i + 1 < column.size(); ++i) {
              thresholds.push_back((column[i] + column[i + 1]) * 0.5f);
            }
            continue;
          }
          // Quantile thresholds over distinct values.
          for (int b = 1; b < max_bins; ++b) {
            const double pos = static_cast<double>(b) *
                               static_cast<double>(column.size() - 1) /
                               static_cast<double>(max_bins);
            const auto lo = static_cast<std::size_t>(pos);
            const float threshold =
                (column[lo] + column[std::min(lo + 1, column.size() - 1)]) *
                0.5f;
            if (thresholds.empty() || threshold > thresholds.back()) {
              thresholds.push_back(threshold);
            }
          }
        }
      });
  return mapper;
}

std::uint8_t BinMapper::bin(std::size_t feature, float value) const {
  const std::vector<float>& thresholds = thresholds_[feature];
  const auto it =
      std::lower_bound(thresholds.begin(), thresholds.end(), value);
  return static_cast<std::uint8_t>(it - thresholds.begin());
}

float BinMapper::threshold(std::size_t feature, int bin) const {
  const std::vector<float>& thresholds = thresholds_[feature];
  if (thresholds.empty()) return std::numeric_limits<float>::infinity();
  const int clamped =
      std::clamp(bin, 0, static_cast<int>(thresholds.size()) - 1);
  return thresholds[static_cast<std::size_t>(clamped)];
}

std::vector<std::uint8_t> BinMapper::transform(const Matrix& x) const {
  // Feature-major output: column f occupies [f * rows, (f + 1) * rows), so
  // a histogram build streams one contiguous uint8 run per feature.
  std::vector<std::uint8_t> binned(x.rows() * x.cols());
  const simd::KernelTable& kt = simd::kernels();
  ThreadPool::global().parallel_for_chunks(
      x.cols(), [&](std::size_t begin, std::size_t end) {
        std::vector<float> column;
        for (std::size_t f = begin; f < end; ++f) {
          x.gather_column(f, column);
          std::uint8_t* codes = binned.data() + f * x.rows();
          const std::vector<float>& thresholds = thresholds_[f];
          if (thresholds.size() <= 64) {
            // Broadcast-compare-count beats binary search up to a few dozen
            // thresholds; the 64 cutoff is dispatch-level independent so
            // every lane takes the same path (results are identical either
            // way — the kernel computes the same lower-bound index).
            kt.bin_transform(column.data(), x.rows(), thresholds.data(),
                             static_cast<int>(thresholds.size()), codes);
          } else {
            for (std::size_t r = 0; r < x.rows(); ++r) {
              codes[r] = bin(f, column[r]);
            }
          }
        }
      });
  return binned;
}

}  // namespace memfp::ml
