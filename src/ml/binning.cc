#include "ml/binning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/thread_pool.h"

namespace memfp::ml {

BinMapper BinMapper::fit(const Dataset& dataset, int max_bins) {
  BinMapper mapper;
  const std::size_t features = dataset.x.cols();
  mapper.thresholds_.resize(features);
  const std::set<std::size_t> categorical(dataset.categorical.begin(),
                                          dataset.categorical.end());

  // Features bin independently; each writes its own thresholds_ slot, so the
  // result is identical for any thread count.
  ThreadPool::global().parallel_for(features, [&](std::size_t f) {
    std::vector<float> column;
    column.reserve(dataset.x.rows());
    for (std::size_t r = 0; r < dataset.x.rows(); ++r) {
      column.push_back(dataset.x.at(r, f));
    }
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());

    std::vector<float>& thresholds = mapper.thresholds_[f];
    if (column.size() <= 1) return;  // constant feature: single bin

    if (categorical.count(f) ||
        static_cast<int>(column.size()) <= max_bins) {
      // One bin per distinct value; thresholds halfway between neighbours.
      for (std::size_t i = 0; i + 1 < column.size(); ++i) {
        thresholds.push_back((column[i] + column[i + 1]) * 0.5f);
      }
      return;
    }
    // Quantile thresholds over distinct values.
    for (int b = 1; b < max_bins; ++b) {
      const double pos = static_cast<double>(b) *
                         static_cast<double>(column.size() - 1) /
                         static_cast<double>(max_bins);
      const auto lo = static_cast<std::size_t>(pos);
      const float threshold =
          (column[lo] + column[std::min(lo + 1, column.size() - 1)]) * 0.5f;
      if (thresholds.empty() || threshold > thresholds.back()) {
        thresholds.push_back(threshold);
      }
    }
  });
  return mapper;
}

std::uint8_t BinMapper::bin(std::size_t feature, float value) const {
  const std::vector<float>& thresholds = thresholds_[feature];
  const auto it =
      std::lower_bound(thresholds.begin(), thresholds.end(), value);
  return static_cast<std::uint8_t>(it - thresholds.begin());
}

float BinMapper::threshold(std::size_t feature, int bin) const {
  const std::vector<float>& thresholds = thresholds_[feature];
  if (thresholds.empty()) return std::numeric_limits<float>::infinity();
  const int clamped =
      std::clamp(bin, 0, static_cast<int>(thresholds.size()) - 1);
  return thresholds[static_cast<std::size_t>(clamped)];
}

std::vector<std::uint8_t> BinMapper::transform(const Matrix& x) const {
  std::vector<std::uint8_t> binned(x.rows() * x.cols());
  // Row-sliced across the pool; each row writes only its own codes.
  ThreadPool::global().parallel_for(x.rows(), [&](std::size_t r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      binned[r * x.cols() + f] = bin(f, x.at(r, f));
    }
  });
  return binned;
}

}  // namespace memfp::ml
