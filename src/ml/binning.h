// Quantile feature binning shared by the histogram tree learners (the same
// trick LightGBM uses: map each float feature to a small integer bin once,
// then train on uint8 codes with O(bins) split search).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace memfp::ml {

class BinMapper {
 public:
  /// Learns up to `max_bins` quantile bins per feature from the dataset.
  /// Categorical columns get one bin per category value.
  static BinMapper fit(const Dataset& dataset, int max_bins = 48);

  int bins(std::size_t feature) const {
    return static_cast<int>(thresholds_[feature].size()) + 1;
  }
  std::size_t features() const { return thresholds_.size(); }

  /// Bin index of a raw value.
  std::uint8_t bin(std::size_t feature, float value) const;

  /// The upper threshold of a bin (for model export/debugging); returns the
  /// raw split value to compare with `<=`.
  float threshold(std::size_t feature, int bin) const;

  /// Bins a whole matrix into feature-major uint8 codes: column f occupies
  /// [f * rows, (f + 1) * rows) of the result.
  std::vector<std::uint8_t> transform(const Matrix& x) const;

 private:
  // thresholds_[f] sorted ascending; value v maps to the first bin whose
  // threshold is >= v.
  std::vector<std::vector<float>> thresholds_;
};

}  // namespace memfp::ml
