#include "ml/serialize.h"

#include <stdexcept>

#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace memfp::ml {

std::unique_ptr<BinaryClassifier> model_from_json(const Json& json) {
  const std::string& type = json.at("type").as_string();
  if (type == "random_forest") {
    return std::make_unique<RandomForest>(RandomForest::from_json(json));
  }
  if (type == "gbdt") {
    return std::make_unique<Gbdt>(Gbdt::from_json(json));
  }
  // The FT-Transformer export is a weights-only dump for registry storage;
  // reconstruction is not supported (retrain from the feature store).
  throw std::runtime_error("model_from_json: unsupported model type " + type);
}

}  // namespace memfp::ml
