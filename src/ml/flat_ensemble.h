// Flattened, batched ensemble inference (the serving-side counterpart of
// the binned training layout — see DESIGN.md "Flattened ensemble
// inference").
//
// A fitted forest/GBDT is a std::vector<Tree> of pointer-linked (index-
// chained) TreeNode vectors; scoring it one row x one tree at a time is a
// dependent-load latency chain per tree level with no instruction-level
// parallelism. FlatEnsemble compiles the fitted trees once into contiguous
// SoA node arrays (feature ids, float thresholds, left-child offsets, leaf
// values packed per tree), re-laid out in level order with each internal
// node's two children at *adjacent* indices — descent is one branch-free
// `left[node] + (0|1)` step off a single offset array — and every leaf
// rewritten as a *self-loop* (left == self, threshold +inf, so the
// right-offset is never taken: even a NaN feature compares false against
// +inf). Batch traversal walks tree levels over a 64-row block: 64
// independent descent chains interleave in the inner loop, hiding node-load
// latency, while one tree's node arrays stay resident in L1/L2; a block
// stops a tree as soon as all of its rows are parked on leaves, so deep
// low-traffic branches (best-first trees) cost only the rows that take
// them.
//
// Two inputs are supported:
//  * float rows (a Matrix): compares the raw stored thresholds with the
//    exact `<=` the pointer walker uses — flat output is bit-identical to
//    Tree::predict by construction;
//  * pre-binned uint8 codes (a BinnedDataset-style feature-major code
//    matrix): bind() pre-quantizes each node threshold through the
//    ensemble's BinMapper so traversal compares uint8 bin codes instead of
//    floats. Quantization rule: node threshold t must equal a mapper bin
//    boundary thresholds[f][b] exactly, and then `value <= t` <=>
//    `code <= b` for every float value (BinMapper::bin is the lower-bound
//    index over the same boundaries), so the binned path is exact — no
//    float re-quantization drift. bind() refuses (returns false) if any
//    node threshold is not representable, e.g. a model deserialized against
//    a mapper fitted on different data.
//
// Shrinkage is baked in at compile time: build(trees, leaf_scale) stores
// leaf_scale * leaf_value, the identical double product the GBDT walker
// computes per call, so accumulating `init + v_0 + v_1 + ...` in tree order
// reproduces the walker's float semantics bit for bit.
//
// Batch entry points parallelize over row blocks on the deterministic
// ThreadPool: every row writes only its own output slot and the block
// partition is a pure function of the row count, so scores are byte-
// identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ml/binning.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace memfp::ml {

class FlatEnsemble {
 public:
  /// Compiles fitted trees into the flat SoA form. Leaf values are stored
  /// pre-multiplied by `leaf_scale` (1.0 for forests, the learning rate for
  /// GBDTs). An empty tree compiles to a single zero-valued leaf, matching
  /// Tree::predict on an empty node vector.
  static FlatEnsemble build(std::span<const Tree> trees,
                            double leaf_scale = 1.0);

  std::size_t trees() const { return roots_.size(); }
  std::size_t nodes() const { return feature_.size(); }
  int max_depth() const { return max_depth_; }

  /// init + sum of (scaled) leaf values for one float row, accumulated in
  /// tree order — bit-identical to walking each Tree in sequence.
  double predict_row(std::span<const float> features, double init) const;

  /// Batch scoring: out[r] = init + sum over trees, for every row of x.
  /// Parallel over row blocks; out.size() must equal x.rows().
  void predict(const Matrix& x, double init, std::span<double> out) const;

  /// Batch accumulation: out[r] += sum over trees (no init). Used by the
  /// GBDT trainer to fold one new tree's contribution into running scores.
  void accumulate(const Matrix& x, std::span<double> out) const;

  /// Pre-quantizes every internal node threshold through `mapper` so the
  /// *_binned entry points can compare uint8 bin codes. Returns false (and
  /// leaves the binned path disabled) if any node threshold is not exactly
  /// a bin boundary of `mapper` — callers then keep using the float path.
  bool bind(const BinMapper& mapper);
  bool binned() const { return binned_; }

  /// Batch scoring over a feature-major code matrix (column f occupies
  /// codes[f * rows, (f + 1) * rows), as BinnedDataset stores it). Requires
  /// a successful bind(); exact for any input binned through that mapper.
  void predict_binned(const std::uint8_t* codes, std::size_t rows,
                      double init, std::span<double> out) const;

  /// Binned batch accumulation: out[r] += sum over trees.
  void accumulate_binned(const std::uint8_t* codes, std::size_t rows,
                         std::span<double> out) const;

 private:
  void score_float(const Matrix& x, double init, bool accumulate,
                   std::span<double> out) const;
  void score_binned(const std::uint8_t* codes, std::size_t rows, double init,
                    bool accumulate, std::span<double> out) const;

  // SoA node arrays over all trees, level-ordered per tree with sibling
  // pairs adjacent: left_[i] is the absolute index of node i's left child
  // and the right child is left_[i] + 1. Leaves are self-loops (left_[i]
  // == i) with threshold +inf / bin 255 and the pre-scaled leaf value.
  std::vector<std::int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<std::uint8_t> bin_;  // quantized thresholds; valid after bind()
  std::vector<std::int32_t> left_;
  std::vector<double> value_;
  std::vector<std::int32_t> roots_;   // per-tree root node index
  std::vector<std::int32_t> depths_;  // per-tree max root->leaf edge count
  int max_depth_ = 0;
  bool binned_ = false;

  /// Packs the SoA node arrays into one uint64 per node — float threshold
  /// bits | feature << 32 | (left_[i] - i) << 48 — the layout the SIMD block
  /// kernels gather in a single 8-byte load (simd::KernelTable::
  /// flat_float_block). Sets packed_ok_ = false (disabling the SIMD path,
  /// scalar blocks still serve every call) if any left-child delta or
  /// feature id overflows its 16-bit field.
  void pack();

  std::vector<std::uint64_t> packed_;         // valid iff packed_ok_
  std::vector<std::uint64_t> packed_binned_;  // low 32 bits = bin; after bind()
  bool packed_ok_ = false;
  std::int32_t max_feature_ = 0;
};

/// Thread-safe lazily-compiled FlatEnsemble shared by a model's const
/// prediction paths. The compiled form is built on first use and reused
/// until invalidate() (retrain / deserialization replaced the trees).
/// Copying or moving a cache never shares or steals compiled state — both
/// sides are left with a valid (empty or intact) cache — so models stay
/// freely copyable.
class LazyFlatEnsemble {
 public:
  LazyFlatEnsemble() : state_(std::make_unique<State>()) {}
  LazyFlatEnsemble(const LazyFlatEnsemble&) : LazyFlatEnsemble() {}
  LazyFlatEnsemble(LazyFlatEnsemble&&) noexcept : LazyFlatEnsemble() {}
  LazyFlatEnsemble& operator=(const LazyFlatEnsemble&) {
    invalidate();
    return *this;
  }
  LazyFlatEnsemble& operator=(LazyFlatEnsemble&&) noexcept {
    invalidate();
    return *this;
  }

  /// The compiled form of `trees`, building it under the cache lock on
  /// first call. The caller owns keeping (trees, leaf_scale) fixed between
  /// invalidations; concurrent readers share one build.
  std::shared_ptr<const FlatEnsemble> get(std::span<const Tree> trees,
                                          double leaf_scale) const;

  /// Drops the compiled form; the next get() recompiles.
  void invalidate();

 private:
  struct State {
    std::mutex mutex;
    std::shared_ptr<const FlatEnsemble> flat;
  };
  std::unique_ptr<State> state_;
};

}  // namespace memfp::ml
