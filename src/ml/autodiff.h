// Reverse-mode automatic differentiation over 2-D tensors.
//
// A Graph is a single-use tape: build the forward computation, call
// backward() on the (scalar) loss node, read gradients off the leaves.
// Token-structured ops (attention, tokenizers) treat the row dimension as
// batch*tokens, which keeps every activation a plain 2-D tensor.
#pragma once

#include <functional>
#include <vector>

#include "ml/tensor.h"

namespace memfp::ml {

class Graph {
 public:
  /// Adds a leaf. If `requires_grad`, its gradient is accumulated and can be
  /// read with grad() after backward().
  int leaf(Tensor value, bool requires_grad);

  const Tensor& value(int id) const { return nodes_[id].value; }
  const Tensor& grad(int id) const { return nodes_[id].grad; }

  // ---- arithmetic ----
  int add(int a, int b);              ///< elementwise, same shape
  int add_rowvec(int a, int b);       ///< b is 1 x cols, broadcast over rows
  int matmul(int a, int b);           ///< (m,k) @ (k,n)
  int scale(int a, float s);
  int relu(int a);
  int gelu(int a);                    ///< tanh approximation
  int dropout(int a, float rate, Rng& rng);  ///< inverted dropout

  // ---- normalization ----
  /// Per-row layernorm with affine parameters gamma/beta (1 x cols).
  int layernorm(int a, int gamma, int beta);

  // ---- token-structured ops ----
  /// Multi-head self-attention within each sample's token block.
  /// q/k/v are (batch*tokens) x dim; dim % heads == 0.
  int attention(int q, int k, int v, int tokens, int heads);
  /// Selects row `offset` of every sample block: (batch*tokens) x d ->
  /// batch x d.
  int select_token(int a, int tokens, int offset);
  /// Numeric feature tokenizer: x is batch x features (constant), w/b are
  /// features x d. Output row b*features+j = x(b,j) * w[j] + bias[j].
  int numeric_tokens(const Tensor& x, int w, int b);
  /// Categorical embeddings: codes has batch x slots entries (flattened);
  /// table is sum(cards) x d with per-slot row offsets. Output row
  /// b*slots+s = table[offset[s] + code].
  int categorical_tokens(const std::vector<int>& codes, std::size_t slots,
                         int table, const std::vector<int>& offsets);
  /// Concatenates per-sample token blocks: a CLS parameter (1 x d) is
  /// prepended to each sample's tokens from each input (all
  /// (batch*tokens_i) x d). Output block size = 1 + sum(tokens_i).
  int concat_tokens(int cls, const std::vector<int>& parts,
                    const std::vector<int>& tokens_per_part,
                    std::size_t batch);

  // ---- losses ----
  /// Weighted binary cross-entropy with logits. `logits` is batch x 1.
  /// Returns a 1x1 node holding the mean loss.
  int bce_with_logits(int logits, const std::vector<float>& targets,
                      const std::vector<float>& weights);

  /// Runs reverse accumulation from `id` (seeds its grad with ones).
  void backward(int id);

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    bool requires_grad = false;
    std::function<void()> backward_fn;  // null for leaves
  };

  int add_node(Tensor value, bool requires_grad,
               std::function<void()> backward_fn);
  Tensor& grad_ref(int id) { return nodes_[id].grad; }

  std::vector<Node> nodes_;
};

}  // namespace memfp::ml
