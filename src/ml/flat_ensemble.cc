#include "ml/flat_ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace memfp::ml {
namespace {

/// Rows per traversal block: enough independent descent chains to hide the
/// node-load latency of one level, small enough that the block's index and
/// accumulator state plus one tree's node arrays stay L1-resident.
constexpr std::size_t kRowBlock = 64;

/// Raw pointers into the SoA arrays, so the kernels below index without
/// touching the owning vectors. Right children sit at left[node] + 1.
struct NodeView {
  const std::int32_t* feature;
  const float* threshold;
  const std::uint8_t* bin;
  const std::int32_t* left;
  const double* value;
  const std::int32_t* roots;
  const std::int32_t* depths;
  std::size_t trees;
};

/// Scores one block of `n <= kRowBlock` rows starting at `base_row`.
/// `right_offset(i, node)` returns 0 (descend left) or 1 (descend right) for
/// block-local row i at a node, and must return 0 at a leaf — the leaf
/// self-loop then makes extra levels no-ops, so the inner loop carries no
/// per-row exit branch. A per-level `changed` fold stops the tree once every
/// row in the block is parked on a leaf: the level count paid is the deepest
/// leaf *these 64 rows* reach, not the tree's max depth (best-first trees
/// grow deep, rarely-taken branches). Accumulation order is tree 0, 1, ... —
/// exactly the pointer walker's.
template <typename RightOffset>
void score_block(const NodeView& v, std::size_t base_row, std::size_t n,
                 double init, bool accumulate, double* out,
                 const RightOffset& right_offset) {
  std::int32_t idx[kRowBlock];
  double acc[kRowBlock];
  for (std::size_t i = 0; i < n; ++i) acc[i] = accumulate ? 0.0 : init;
  for (std::size_t t = 0; t < v.trees; ++t) {
    const std::int32_t root = v.roots[t];
    const std::int32_t depth = v.depths[t];
    for (std::size_t i = 0; i < n; ++i) idx[i] = root;
    for (std::int32_t level = 0; level < depth; ++level) {
      std::int32_t changed = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t node = idx[i];
        const std::int32_t next = v.left[node] + right_offset(i, node);
        changed |= next ^ node;
        idx[i] = next;
      }
      if (changed == 0) break;  // every row parked on a leaf
    }
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] += v.value[idx[i]];
    }
  }
  if (accumulate) {
    for (std::size_t i = 0; i < n; ++i) out[base_row + i] += acc[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) out[base_row + i] = acc[i];
  }
}

/// Chunk size for the row-block fan-out: the pool's deterministic default
/// grain rounded up to a whole number of blocks, so no chunk splits a block
/// below kRowBlock rows (short blocks lose the latency-hiding interleave).
/// A pure function of n — the block partition never depends on thread count.
std::size_t block_grain(std::size_t n) {
  const std::size_t g = ThreadPool::default_grain(n);
  return (g + kRowBlock - 1) / kRowBlock * kRowBlock;
}

}  // namespace

FlatEnsemble FlatEnsemble::build(std::span<const Tree> trees,
                                 double leaf_scale) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  FlatEnsemble flat;
  std::vector<std::pair<std::int32_t, std::int32_t>> order;  // (node, depth)
  for (const Tree& tree : trees) {
    const std::vector<TreeNode>& nodes = tree.nodes();
    const auto base = static_cast<std::int32_t>(flat.feature_.size());
    flat.roots_.push_back(base);
    if (nodes.empty()) {
      // Tree::predict returns 0.0 on an empty tree: one zero-valued leaf.
      flat.feature_.push_back(0);
      flat.threshold_.push_back(kInf);
      flat.left_.push_back(base);
      flat.value_.push_back(0.0);
      flat.depths_.push_back(0);
      continue;
    }
    // Level-order (BFS) remap with sibling pairs adjacent: when an internal
    // node is emitted at flat index base + k, its children are *appended* to
    // the visit order together, so they land at consecutive flat indices and
    // descent needs only left_ plus a 0/1 offset. Level order also packs the
    // hot top levels of the tree into adjacent cache lines.
    const auto count = static_cast<std::int32_t>(nodes.size());
    std::int32_t depth = 0;
    order.clear();
    order.push_back({0, 0});
    for (std::size_t k = 0; k < order.size(); ++k) {
      MEMFP_CHECK_LE(order.size(), nodes.size())
          << "flat ensemble: tree nodes form a cycle or shared subtree";
      const auto [orig, d] = order[k];
      const TreeNode& node = nodes[static_cast<std::size_t>(orig)];
      depth = std::max(depth, d);
      if (node.feature >= 0) {
        MEMFP_CHECK(node.left >= 0 && node.left < count && node.right >= 0 &&
                    node.right < count)
            << "flat ensemble: child index out of range in tree";
        // A NaN threshold would send every row left here but right in the
        // walker (`x <= NaN` is false); no trainer emits one, so reject it
        // rather than silently diverge.
        MEMFP_CHECK(!std::isnan(node.threshold))
            << "flat ensemble: NaN split threshold in tree";
        flat.feature_.push_back(node.feature);
        flat.threshold_.push_back(node.threshold);
        flat.left_.push_back(base + static_cast<std::int32_t>(order.size()));
        flat.value_.push_back(0.0);
        order.push_back({node.left, d + 1});
        order.push_back({node.right, d + 1});
      } else {
        // Leaf self-loop: left points back at the leaf and threshold +inf
        // keeps the right-offset at 0 for every float (`x <= +inf` is true,
        // and the NaN case is masked by `threshold < +inf` being false), so
        // extra levels are no-ops.
        flat.feature_.push_back(0);
        flat.threshold_.push_back(kInf);
        flat.left_.push_back(base + static_cast<std::int32_t>(k));
        flat.value_.push_back(leaf_scale * node.value);
      }
    }
    flat.depths_.push_back(depth);
    flat.max_depth_ = std::max(flat.max_depth_, static_cast<int>(depth));
  }
  flat.pack();
  return flat;
}

void FlatEnsemble::pack() {
  packed_.clear();
  packed_binned_.clear();
  packed_ok_ = false;
  max_feature_ = 0;
  packed_.resize(feature_.size());
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    const std::int64_t delta = static_cast<std::int64_t>(left_[i]) -
                               static_cast<std::int64_t>(i);
    // BFS order appends children after their parent, so deltas are >= 0
    // (leaves self-loop at 0); only a tree wider than 65535 nodes per level
    // span, or > 65535 features, fails to pack.
    if (delta < 0 || delta > 0xFFFF || feature_[i] > 0xFFFF) {
      packed_.clear();
      return;
    }
    std::uint32_t tbits;
    std::memcpy(&tbits, &threshold_[i], sizeof(tbits));
    packed_[i] = static_cast<std::uint64_t>(tbits) |
                 (static_cast<std::uint64_t>(feature_[i]) << 32) |
                 (static_cast<std::uint64_t>(delta) << 48);
    max_feature_ = std::max(max_feature_, feature_[i]);
  }
  packed_ok_ = true;
}

double FlatEnsemble::predict_row(std::span<const float> features,
                                 double init) const {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  double acc = init;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    std::int32_t idx = roots_[t];
    const std::int32_t depth = depths_[t];
    for (std::int32_t level = 0; level < depth; ++level) {
      const auto node = static_cast<std::size_t>(idx);
      const float x = features[static_cast<std::size_t>(feature_[node])];
      const float t_node = threshold_[node];
      // Right offset: `!(x <= t)` matches the walker for every float incl.
      // NaN (NaN descends right); the `t < inf` mask keeps leaves parked.
      idx = left_[node] +
            static_cast<std::int32_t>(static_cast<int>(!(x <= t_node)) &
                                      static_cast<int>(t_node < kInf));
    }
    acc += value_[static_cast<std::size_t>(idx)];
  }
  return acc;
}

void FlatEnsemble::score_float(const Matrix& x, double init, bool accumulate,
                               std::span<double> out) const {
  MEMFP_CHECK_EQ(out.size(), x.rows());
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const NodeView v{feature_.data(), threshold_.data(), bin_.data(),
                   left_.data(),    value_.data(),     roots_.data(),
                   depths_.data(),  roots_.size()};
  double* scores = out.data();
  // SIMD path for full blocks: the kernel computes i32 row offsets as
  // i * cols + feature, so cap cols where 63 * cols + f could overflow.
  const simd::KernelTable& kt = simd::kernels();
  const bool use_simd = kt.flat_float_block != nullptr && packed_ok_ &&
                        x.cols() < (std::size_t{1} << 25);
  ThreadPool::global().parallel_for_chunks(
      x.rows(),
      [&](std::size_t begin, std::size_t end) {
        const float* rows[kRowBlock];
        for (std::size_t bs = begin; bs < end; bs += kRowBlock) {
          const std::size_t n = std::min(kRowBlock, end - bs);
          if (use_simd && n == kRowBlock) {
            kt.flat_float_block(packed_.data(), value_.data(), roots_.data(),
                                depths_.data(), roots_.size(),
                                x.row(bs).data(), x.cols(), init, accumulate,
                                scores + bs);
            continue;
          }
          for (std::size_t i = 0; i < n; ++i) {
            rows[i] = x.row(bs + i).data();
          }
          score_block(
              v, bs, n, init, accumulate, scores,
              [&](std::size_t i, std::int32_t node) -> std::int32_t {
                const float t = v.threshold[node];
                const float value = rows[i][v.feature[node]];
                return static_cast<std::int32_t>(
                    static_cast<int>(!(value <= t)) &
                    static_cast<int>(t < kInf));
              });
        }
      },
      block_grain(x.rows()));
}

void FlatEnsemble::predict(const Matrix& x, double init,
                           std::span<double> out) const {
  score_float(x, init, /*accumulate=*/false, out);
}

void FlatEnsemble::accumulate(const Matrix& x, std::span<double> out) const {
  score_float(x, 0.0, /*accumulate=*/true, out);
}

bool FlatEnsemble::bind(const BinMapper& mapper) {
  binned_ = false;
  bin_.assign(feature_.size(), 255);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    if (left_[i] == static_cast<std::int32_t>(i)) continue;  // leaf: bin 255
    const auto f = static_cast<std::size_t>(feature_[i]);
    if (f >= mapper.features()) return false;
    const float t = threshold_[i];
    // bin(f, t) is the lower-bound index over the mapper's boundaries; the
    // threshold is representable iff that boundary *is* t, and then
    // `value <= t` <=> `code <= b` exactly for every float value.
    const std::uint8_t b = mapper.bin(f, t);
    if (static_cast<int>(b) + 1 >= mapper.bins(f)) return false;
    if (mapper.threshold(f, static_cast<int>(b)) != t) return false;
    bin_[i] = b;
  }
  binned_ = true;
  // Binned flavour of the packed nodes: same feature/delta fields with the
  // bin code in the low 32 bits instead of threshold bits.
  packed_binned_.clear();
  if (packed_ok_) {
    packed_binned_.resize(feature_.size());
    for (std::size_t i = 0; i < feature_.size(); ++i) {
      const auto delta = static_cast<std::uint64_t>(
          left_[i] - static_cast<std::int32_t>(i));
      packed_binned_[i] = static_cast<std::uint64_t>(bin_[i]) |
                          (static_cast<std::uint64_t>(feature_[i]) << 32) |
                          (delta << 48);
    }
  }
  return true;
}

void FlatEnsemble::score_binned(const std::uint8_t* codes, std::size_t rows,
                                double init, bool accumulate,
                                std::span<double> out) const {
  MEMFP_CHECK(binned_)
      << "flat ensemble: bind() a BinMapper before binned scoring";
  MEMFP_CHECK_EQ(out.size(), rows);
  const NodeView v{feature_.data(), threshold_.data(), bin_.data(),
                   left_.data(),    value_.data(),     roots_.data(),
                   depths_.data(),  roots_.size()};
  double* scores = out.data();
  // SIMD path needs f * rows + r to fit the kernel's i32 index math, and
  // keeps blocks whose 4-byte code gathers could cross the end of the codes
  // buffer (the very last rows) on the scalar loop.
  const simd::KernelTable& kt = simd::kernels();
  const bool use_simd =
      kt.flat_binned_block != nullptr && !packed_binned_.empty() &&
      static_cast<std::size_t>(max_feature_ + 1) * rows <
          (std::size_t{1} << 31);
  ThreadPool::global().parallel_for_chunks(
      rows,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t bs = begin; bs < end; bs += kRowBlock) {
          const std::size_t n = std::min(kRowBlock, end - bs);
          if (use_simd && n == kRowBlock && bs + kRowBlock + 4 <= rows) {
            kt.flat_binned_block(packed_binned_.data(), value_.data(),
                                 roots_.data(), depths_.data(), roots_.size(),
                                 codes, rows, bs, init, accumulate,
                                 scores + bs);
            continue;
          }
          // Leaf bin is 255, and no uint8 code exceeds 255, so a parked
          // row's offset is always 0 — no float mask needed here.
          score_block(
              v, bs, n, init, accumulate, scores,
              [&](std::size_t i, std::int32_t node) -> std::int32_t {
                const auto f = static_cast<std::size_t>(v.feature[node]);
                return static_cast<std::int32_t>(codes[f * rows + bs + i] >
                                                 v.bin[node]);
              });
        }
      },
      block_grain(rows));
}

void FlatEnsemble::predict_binned(const std::uint8_t* codes, std::size_t rows,
                                  double init, std::span<double> out) const {
  score_binned(codes, rows, init, /*accumulate=*/false, out);
}

void FlatEnsemble::accumulate_binned(const std::uint8_t* codes,
                                     std::size_t rows,
                                     std::span<double> out) const {
  score_binned(codes, rows, 0.0, /*accumulate=*/true, out);
}

std::shared_ptr<const FlatEnsemble> LazyFlatEnsemble::get(
    std::span<const Tree> trees, double leaf_scale) const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->flat) {
    state_->flat = std::make_shared<const FlatEnsemble>(
        FlatEnsemble::build(trees, leaf_scale));
  }
  return state_->flat;
}

void LazyFlatEnsemble::invalidate() {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  state_->flat.reset();
}

}  // namespace memfp::ml
