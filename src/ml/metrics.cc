#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memfp::ml {

double Confusion::precision() const {
  return tp + fp == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double Confusion::recall() const {
  return tp + fn == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::virr(double cold_migration_fraction) const {
  const double p = precision();
  if (p == 0.0) return recall() == 0.0 ? 0.0 : -1.0;
  return (1.0 - cold_migration_fraction / p) * recall();
}

Confusion confusion_at(const std::vector<double>& scores,
                       const std::vector<int>& labels, double threshold) {
  MEMFP_CHECK_EQ(scores.size(), labels.size());
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++c.tp;
    else if (predicted && !actual) ++c.fp;
    else if (!predicted && actual) ++c.fn;
    else ++c.tn;
  }
  return c;
}

namespace {

/// Indices sorted by descending score.
std::vector<std::size_t> rank_by_score(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

ThresholdChoice best_f1_threshold(const std::vector<double>& scores,
                                  const std::vector<int>& labels) {
  MEMFP_CHECK_EQ(scores.size(), labels.size());
  std::size_t total_pos = 0;
  for (int label : labels) total_pos += label == 1;
  ThresholdChoice best;
  best.confusion = confusion_at(scores, labels, 0.5);
  double best_f1 = best.confusion.f1();
  best.threshold = 0.5;

  const std::vector<std::size_t> order = rank_by_score(scores);
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) ++tp;
    else ++fp;
    // Only evaluate at distinct-score boundaries.
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    Confusion c;
    c.tp = tp;
    c.fp = fp;
    c.fn = total_pos - tp;
    c.tn = scores.size() - tp - fp - c.fn;
    if (c.f1() > best_f1) {
      best_f1 = c.f1();
      best.confusion = c;
      // Threshold halfway between this score and the next lower one.
      const double current = scores[order[i]];
      const double next =
          i + 1 < order.size() ? scores[order[i + 1]] : current - 1e-6;
      best.threshold = (current + next) * 0.5;
    }
  }
  return best;
}

double pr_auc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  MEMFP_CHECK_EQ(scores.size(), labels.size());
  std::size_t total_pos = 0;
  for (int label : labels) total_pos += label == 1;
  if (total_pos == 0) return 0.0;

  const std::vector<std::size_t> order = rank_by_score(scores);
  double auc = 0.0;
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) {
      ++tp;
      // Average precision: sum precision at each positive hit.
      auc += static_cast<double>(tp) / static_cast<double>(tp + fp);
    } else {
      ++fp;
    }
  }
  return auc / static_cast<double>(total_pos);
}

double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  MEMFP_CHECK_EQ(scores.size(), labels.size());
  // Rank-sum (Mann-Whitney) formulation with tie handling via average ranks.
  std::vector<std::size_t> order = rank_by_score(scores);
  std::reverse(order.begin(), order.end());  // ascending score
  const std::size_t n = order.size();
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  std::size_t pos = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++pos;
    }
  }
  const std::size_t neg = n - pos;
  if (pos == 0 || neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(pos) *
                                      (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double log_loss(const std::vector<double>& scores,
                const std::vector<int>& labels) {
  MEMFP_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < scores.size(); ++k) {
    const double p = std::clamp(scores[k], 1e-9, 1.0 - 1e-9);
    total += labels[k] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(scores.size());
}

}  // namespace memfp::ml
