// Evaluation metrics for failure prediction (paper Section IV): precision,
// recall, F1 and the VM Interruption Reduction Rate (VIRR), plus
// threshold-sweep utilities and PR-AUC for model selection.
#pragma once

#include <cstddef>
#include <vector>

namespace memfp::ml {

struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  /// VIRR = (1 - y_c / precision) * recall [29]. Negative when precision
  /// falls below the cold-migration fraction y_c: the predictor then causes
  /// more VM interruptions than it prevents.
  double virr(double cold_migration_fraction = 0.1) const;
};

/// Confusion at a score threshold (score >= threshold -> positive).
Confusion confusion_at(const std::vector<double>& scores,
                       const std::vector<int>& labels, double threshold);

struct ThresholdChoice {
  double threshold = 0.5;
  Confusion confusion;
};

/// Scans candidate thresholds and returns the F1-maximizing one.
ThresholdChoice best_f1_threshold(const std::vector<double>& scores,
                                  const std::vector<int>& labels);

/// Area under the precision-recall curve (average precision).
double pr_auc(const std::vector<double>& scores,
              const std::vector<int>& labels);

/// Area under the ROC curve.
double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels);

/// Binary cross-entropy of probability scores.
double log_loss(const std::vector<double>& scores,
                const std::vector<int>& labels);

}  // namespace memfp::ml
