#include "ml/nn.h"

#include <cmath>

namespace memfp::ml {

void Adam::update(Param& param, const Tensor& grad) const {
  const double bc1 = 1.0 - std::pow(params_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(params_.beta2, static_cast<double>(step_));
  float* value = param.value.data();
  float* m = param.m.data();
  float* v = param.v.data();
  const float* g = grad.data();
  for (std::size_t i = 0; i < param.value.size(); ++i) {
    m[i] = static_cast<float>(params_.beta1 * m[i] +
                              (1.0 - params_.beta1) * g[i]);
    v[i] = static_cast<float>(params_.beta2 * v[i] +
                              (1.0 - params_.beta2) * g[i] * g[i]);
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    value[i] -= static_cast<float>(
        params_.lr * (mhat / (std::sqrt(vhat) + params_.eps) +
                      params_.weight_decay * value[i]));
  }
}

BoundParams::BoundParams(Graph& graph, std::vector<Param*> params)
    : graph_(&graph), params_(std::move(params)) {
  ids_.reserve(params_.size());
  for (Param* param : params_) {
    ids_.push_back(graph_->leaf(param->value, /*requires_grad=*/true));
  }
}

void BoundParams::apply(Adam& adam) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    adam.update(*params_[i], graph_->grad(ids_[i]));
  }
}

}  // namespace memfp::ml
