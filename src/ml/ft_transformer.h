// FT-Transformer (Gorishniy et al., NeurIPS'21) for tabular failure
// prediction: every numeric feature becomes a learned linear token, every
// categorical feature an embedding token; a CLS token attends over all of
// them through pre-norm transformer blocks and feeds a binary head.
//
// Sized for a single-core reproduction budget: small d_model, two blocks,
// capped training subsample — the same algorithm family, scaled down.
#pragma once

#include "ml/model.h"
#include "ml/nn.h"

namespace memfp::ml {

struct FtTransformerParams {
  int d_model = 16;
  int heads = 2;
  int blocks = 2;
  int ffn_multiplier = 2;
  double dropout = 0.10;

  int epochs = 20;
  int batch_size = 256;
  double lr = 3e-3;
  double weight_decay = 1e-5;
  int early_stopping_epochs = 5;
  double validation_fraction = 0.15;
  /// Training rows are subsampled to this cap (keeping all positives).
  std::size_t max_train_rows = 9000;
};

class FtTransformer final : public BinaryClassifier {
 public:
  explicit FtTransformer(FtTransformerParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  double predict(std::span<const float> features) const override;
  std::vector<double> predict_batch(const Matrix& x) const override;
  std::string name() const override { return "FT-Transformer"; }
  Json to_json() const override;

 private:
  struct Block {
    Param ln1_gamma, ln1_beta;
    Param wq, wk, wv, wo;
    Param ln2_gamma, ln2_beta;
    Param ffn_w1, ffn_b1, ffn_w2, ffn_b2;
  };

  void build_parameters(Rng& rng);
  std::vector<Param*> all_params();
  std::vector<const Param*> all_params() const;

  /// Splits a raw feature row into standardized numerics + clamped codes.
  void preprocess(std::span<const float> row, std::vector<float>& numeric,
                  std::vector<int>& codes) const;

  /// Builds the forward graph for a batch; returns the logits node.
  int forward(Graph& graph, const BoundParams& bound, const Tensor& numeric,
              const std::vector<int>& codes, std::size_t batch, bool train,
              Rng& rng) const;

  FtTransformerParams params_;

  // Preprocessing state learned at fit time.
  std::vector<std::size_t> numeric_index_;
  std::vector<std::size_t> categorical_index_;
  std::vector<int> cardinalities_;
  std::vector<int> table_offsets_;
  std::vector<float> numeric_mean_;
  std::vector<float> numeric_std_;

  // Parameters.
  Param numeric_w_, numeric_b_;
  Param cat_table_;
  Param cls_;
  std::vector<Block> blocks_;
  Param final_gamma_, final_beta_;
  Param head_w_, head_b_;
  bool fitted_ = false;
};

}  // namespace memfp::ml
