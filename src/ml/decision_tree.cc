#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "common/thread_pool.h"

namespace memfp::ml {

BinnedDataset BinnedDataset::build(const Dataset& dataset, int max_bins) {
  BinnedDataset binned;
  binned.dataset = &dataset;
  binned.mapper = BinMapper::fit(dataset, max_bins);
  binned.codes = binned.mapper.transform(dataset.x);
  return binned;
}

double Tree::predict(std::span<const float> features) const {
  if (nodes_.empty()) return 0.0;
  int index = 0;
  while (nodes_[static_cast<std::size_t>(index)].feature >= 0) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(index)];
    index = features[static_cast<std::size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
  return nodes_[static_cast<std::size_t>(index)].value;
}

std::size_t Tree::leaves() const {
  std::size_t count = 0;
  for (const TreeNode& node : nodes_) count += node.feature < 0;
  return count;
}

Json Tree::to_json() const {
  Json nodes = Json::array();
  for (const TreeNode& node : nodes_) {
    Json entry = Json::object();
    entry.set("f", node.feature);
    entry.set("t", static_cast<double>(node.threshold));
    entry.set("l", node.left);
    entry.set("r", node.right);
    entry.set("v", node.value);
    nodes.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("nodes", std::move(nodes));
  return out;
}

Tree Tree::from_json(const Json& json) {
  Tree tree;
  for (const Json& entry : json.at("nodes").as_array()) {
    TreeNode node;
    node.feature = static_cast<int>(entry.at("f").as_int());
    node.threshold = static_cast<float>(entry.at("t").as_number());
    node.left = static_cast<int>(entry.at("l").as_int());
    node.right = static_cast<int>(entry.at("r").as_int());
    node.value = entry.at("v").as_number();
    tree.nodes_.push_back(node);
  }
  return tree;
}

namespace {

/// Histogram of one feature over a node's rows.
struct FeatureHistogram {
  // Classification: sum of weights / positive weights per bin.
  // Gradient: sum of grad / hess per bin (aliased onto the same arrays).
  std::vector<double> a;  // weight total or grad
  std::vector<double> b;  // positive weight or hess

  void reset(int bins) {
    a.assign(static_cast<std::size_t>(bins), 0.0);
    b.assign(static_cast<std::size_t>(bins), 0.0);
  }
};

double gini_impurity(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p) * total;  // weighted impurity mass
}

std::vector<std::size_t> sample_features(std::size_t count, double fraction,
                                         Rng& rng) {
  std::vector<std::size_t> features(count);
  for (std::size_t i = 0; i < count; ++i) features[i] = i;
  // Round (not floor): with very few features, flooring can silently strand
  // every tree on a single column.
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(count) * fraction)));
  if (keep >= count) return features;
  rng.shuffle(features);
  features.resize(keep);
  std::sort(features.begin(), features.end());
  return features;
}

}  // namespace

Tree fit_classification_tree(const BinnedDataset& data,
                             const std::vector<std::size_t>& rows,
                             const ClassificationTreeParams& params,
                             Rng& rng) {
  const Dataset& dataset = *data.dataset;
  const std::size_t features = dataset.x.cols();
  Tree tree;
  auto& nodes = tree.mutable_nodes();

  struct Work {
    int node;
    std::vector<std::size_t> rows;
    int depth;
  };

  const auto leaf_value = [&](const std::vector<std::size_t>& node_rows) {
    double pos = 0.0, total = 0.0;
    for (std::size_t r : node_rows) {
      total += dataset.weight[r];
      if (dataset.y[r] == 1) pos += dataset.weight[r];
    }
    return total > 0.0 ? pos / total : 0.0;
  };

  nodes.push_back({});
  std::vector<Work> stack;
  stack.push_back({0, rows, 0});

  FeatureHistogram hist;
  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();
    TreeNode& node = nodes[static_cast<std::size_t>(work.node)];

    double pos = 0.0, total = 0.0;
    for (std::size_t r : work.rows) {
      total += dataset.weight[r];
      if (dataset.y[r] == 1) pos += dataset.weight[r];
    }
    const bool pure = pos <= 1e-12 || pos >= total - 1e-12;
    if (work.depth >= params.max_depth || pure ||
        total < 2.0 * params.min_samples_leaf) {
      node.feature = -1;
      node.value = total > 0.0 ? pos / total : 0.0;
      continue;
    }

    // Best split over a random feature subset.
    double best_gain = 1e-12;
    int best_feature = -1;
    int best_bin = -1;
    const double parent_impurity = gini_impurity(pos, total);
    for (std::size_t f : sample_features(features, params.feature_fraction,
                                         rng)) {
      const int bins = data.mapper.bins(f);
      if (bins < 2) continue;
      hist.reset(bins);
      for (std::size_t r : work.rows) {
        const std::uint8_t code = data.code(r, f);
        hist.a[code] += dataset.weight[r];
        if (dataset.y[r] == 1) hist.b[code] += dataset.weight[r];
      }
      double left_total = 0.0, left_pos = 0.0;
      for (int b = 0; b + 1 < bins; ++b) {
        left_total += hist.a[static_cast<std::size_t>(b)];
        left_pos += hist.b[static_cast<std::size_t>(b)];
        const double right_total = total - left_total;
        const double right_pos = pos - left_pos;
        if (left_total < params.min_samples_leaf ||
            right_total < params.min_samples_leaf) {
          continue;
        }
        const double gain = parent_impurity -
                            gini_impurity(left_pos, left_total) -
                            gini_impurity(right_pos, right_total);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      }
    }

    if (best_feature < 0) {
      node.feature = -1;
      node.value = leaf_value(work.rows);
      continue;
    }

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : work.rows) {
      (data.code(r, static_cast<std::size_t>(best_feature)) <=
               static_cast<std::uint8_t>(best_bin)
           ? left_rows
           : right_rows)
          .push_back(r);
    }
    // Reserve the child slots first: push_back may reallocate and would
    // invalidate any reference into `nodes`.
    const int left_index = static_cast<int>(nodes.size());
    const int right_index = left_index + 1;
    nodes.push_back({});
    nodes.push_back({});
    TreeNode& parent = nodes[static_cast<std::size_t>(work.node)];
    parent.feature = best_feature;
    parent.threshold =
        data.mapper.threshold(static_cast<std::size_t>(best_feature), best_bin);
    parent.left = left_index;
    parent.right = right_index;
    stack.push_back({left_index, std::move(left_rows), work.depth + 1});
    stack.push_back({right_index, std::move(right_rows), work.depth + 1});
  }
  return tree;
}

Tree fit_gradient_tree(const BinnedDataset& data,
                       const std::vector<std::size_t>& rows,
                       std::span<const double> grad,
                       std::span<const double> hess,
                       const GradientTreeParams& params, Rng& rng) {
  const Dataset& dataset = *data.dataset;
  const std::size_t features = dataset.x.cols();
  const std::vector<std::size_t> tree_features =
      sample_features(features, params.feature_fraction, rng);

  Tree tree;
  auto& nodes = tree.mutable_nodes();

  struct Candidate {
    int node;
    std::vector<std::size_t> rows;
    int depth;
    double gain;          // best achievable split gain
    int feature = -1;
    int bin = -1;
    double g = 0.0, h = 0.0;
  };

  const auto leaf_score = [&](double g, double h) {
    return -g / (h + params.lambda);
  };
  const auto node_objective = [&](double g, double h) {
    return g * g / (h + params.lambda);
  };

  // Finds the best split for a candidate; fills feature/bin/gain. The
  // per-feature histograms are independent, so they are built across feature
  // columns by the thread pool when the node is large enough to amortize the
  // dispatch; the winning (feature, bin) is then folded in ascending
  // tree_features order, making the chosen split a pure function of the
  // node — identical for every thread count.
  const auto evaluate = [&](Candidate& cand) {
    cand.g = 0.0;
    cand.h = 0.0;
    for (std::size_t r : cand.rows) {
      cand.g += grad[r];
      cand.h += hess[r];
    }
    cand.gain = 0.0;
    cand.feature = -1;
    if (cand.depth >= params.max_depth ||
        cand.h < 2.0 * params.min_child_hessian) {
      return;
    }
    const double parent = node_objective(cand.g, cand.h);

    struct FeatureBest {
      double gain = 0.0;
      int bin = -1;
    };
    std::vector<FeatureBest> best(tree_features.size());
    const auto scan_feature = [&](std::size_t fi, FeatureHistogram& hist) {
      const std::size_t f = tree_features[fi];
      const int bins = data.mapper.bins(f);
      if (bins < 2) return;
      hist.reset(bins);
      for (std::size_t r : cand.rows) {
        const std::uint8_t code = data.code(r, f);
        hist.a[code] += grad[r];
        hist.b[code] += hess[r];
      }
      double gl = 0.0, hl = 0.0;
      for (int b = 0; b + 1 < bins; ++b) {
        gl += hist.a[static_cast<std::size_t>(b)];
        hl += hist.b[static_cast<std::size_t>(b)];
        const double gr = cand.g - gl;
        const double hr = cand.h - hl;
        if (hl < params.min_child_hessian || hr < params.min_child_hessian) {
          continue;
        }
        const double gain =
            node_objective(gl, hl) + node_objective(gr, hr) - parent;
        if (gain > best[fi].gain + 1e-12) {
          best[fi].gain = gain;
          best[fi].bin = b;
        }
      }
    };

    // Histogram build cost ~ rows x features; below the cutoff the serial
    // loop beats the dispatch overhead.
    const bool parallel =
        tree_features.size() >= 2 &&
        cand.rows.size() * tree_features.size() >= 16384;
    if (parallel) {
      ThreadPool::global().parallel_for(
          tree_features.size(),
          [&](std::size_t fi) {
            FeatureHistogram hist;
            scan_feature(fi, hist);
          },
          /*grain=*/1);
    } else {
      FeatureHistogram hist;
      for (std::size_t fi = 0; fi < tree_features.size(); ++fi) {
        scan_feature(fi, hist);
      }
    }

    for (std::size_t fi = 0; fi < tree_features.size(); ++fi) {
      if (best[fi].bin >= 0 && best[fi].gain > cand.gain + 1e-12) {
        cand.gain = best[fi].gain;
        cand.feature = static_cast<int>(tree_features[fi]);
        cand.bin = best[fi].bin;
      }
    }
  };

  nodes.push_back({});
  Candidate root{0, rows, 0, 0.0};
  evaluate(root);

  // Leaf-wise growth: repeatedly split the frontier leaf with highest gain.
  auto by_gain = [](const Candidate& a, const Candidate& b) {
    return a.gain < b.gain;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(by_gain)>
      frontier(by_gain);
  frontier.push(std::move(root));
  int leaves = 1;

  while (!frontier.empty() && leaves < params.max_leaves) {
    Candidate cand = frontier.top();
    frontier.pop();
    if (cand.feature < 0 || cand.gain <= 1e-12) {
      nodes[static_cast<std::size_t>(cand.node)].feature = -1;
      nodes[static_cast<std::size_t>(cand.node)].value =
          leaf_score(cand.g, cand.h);
      continue;
    }
    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : cand.rows) {
      (data.code(r, static_cast<std::size_t>(cand.feature)) <=
               static_cast<std::uint8_t>(cand.bin)
           ? left_rows
           : right_rows)
          .push_back(r);
    }
    const int left_index = static_cast<int>(nodes.size());
    const int right_index = left_index + 1;
    nodes.push_back({});
    nodes.push_back({});
    TreeNode& node = nodes[static_cast<std::size_t>(cand.node)];
    node.feature = cand.feature;
    node.threshold = data.mapper.threshold(
        static_cast<std::size_t>(cand.feature), cand.bin);
    node.left = left_index;
    node.right = right_index;
    ++leaves;  // one leaf became two

    Candidate left{left_index, std::move(left_rows), cand.depth + 1, 0.0};
    Candidate right{right_index, std::move(right_rows), cand.depth + 1, 0.0};
    evaluate(left);
    evaluate(right);
    frontier.push(std::move(left));
    frontier.push(std::move(right));
  }

  // Finalize any unexpanded frontier leaves.
  while (!frontier.empty()) {
    const Candidate& cand = frontier.top();
    nodes[static_cast<std::size_t>(cand.node)].feature = -1;
    nodes[static_cast<std::size_t>(cand.node)].value =
        leaf_score(cand.g, cand.h);
    frontier.pop();
  }
  return tree;
}

}  // namespace memfp::ml
