#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace memfp::ml {

BinnedDataset BinnedDataset::build(const Dataset& dataset, int max_bins) {
  BinnedDataset binned;
  binned.dataset = &dataset;
  binned.rows = dataset.x.rows();
  binned.mapper = BinMapper::fit(dataset, max_bins);
  binned.codes = binned.mapper.transform(dataset.x);

  const std::size_t features = dataset.x.cols();
  binned.bin_offset.resize(features + 1, 0);
  for (std::size_t f = 0; f < features; ++f) {
    binned.bin_offset[f + 1] =
        binned.bin_offset[f] + static_cast<std::uint32_t>(binned.mapper.bins(f));
  }

  // Row-major mirror of the codes for the classification trainer's
  // all-feature histogram kernel. Pure transpose, so parallel chunking
  // cannot change the result.
  binned.row_codes.resize(binned.rows * features);
  ThreadPool::global().parallel_for_chunks(
      binned.rows, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          std::uint8_t* dst = binned.row_codes.data() + r * features;
          for (std::size_t f = 0; f < features; ++f) {
            dst[f] = binned.codes[f * binned.rows + r];
          }
        }
      });

  binned.weight_pairs.resize(2 * binned.rows);
  for (std::size_t r = 0; r < binned.rows; ++r) {
    const double w = dataset.weight[r];
    binned.weight_pairs[2 * r] = w;
    binned.weight_pairs[2 * r + 1] = dataset.y[r] == 1 ? w : 0.0;
  }
  return binned;
}

double Tree::predict(std::span<const float> features) const {
  if (nodes_.empty()) return 0.0;
  int index = 0;
  while (nodes_[static_cast<std::size_t>(index)].feature >= 0) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(index)];
    index = features[static_cast<std::size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
  return nodes_[static_cast<std::size_t>(index)].value;
}

std::size_t Tree::leaves() const {
  std::size_t count = 0;
  for (const TreeNode& node : nodes_) count += node.feature < 0;
  return count;
}

Json Tree::to_json() const {
  Json nodes = Json::array();
  for (const TreeNode& node : nodes_) {
    Json entry = Json::object();
    entry.set("f", node.feature);
    entry.set("t", static_cast<double>(node.threshold));
    entry.set("l", node.left);
    entry.set("r", node.right);
    entry.set("v", node.value);
    nodes.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("nodes", std::move(nodes));
  return out;
}

Tree Tree::from_json(const Json& json) {
  Tree tree;
  for (const Json& entry : json.at("nodes").as_array()) {
    TreeNode node;
    node.feature = static_cast<int>(entry.at("f").as_int());
    node.threshold = static_cast<float>(entry.at("t").as_number());
    node.left = static_cast<int>(entry.at("l").as_int());
    node.right = static_cast<int>(entry.at("r").as_int());
    node.value = entry.at("v").as_number();
    tree.nodes_.push_back(node);
  }
  return tree;
}

namespace {

/// Reusable flat node histograms recycled across the nodes of one tree, so
/// deep trees allocate O(depth) buffers instead of O(nodes). A buffer holds
/// 2 * slots doubles of interleaved (a, b) pairs — (grad, hess) for the
/// gradient trainer, (weight, positive weight) for the classification
/// trainer — with feature f's bins at [2 * offset[f], 2 * offset[f + 1]).
class HistogramPool {
 public:
  explicit HistogramPool(std::size_t slots) : slots_(slots) {}

  std::vector<double> acquire() {
    if (free_.empty()) return std::vector<double>(2 * slots_, 0.0);
    std::vector<double> buffer = std::move(free_.back());
    free_.pop_back();
    std::fill(buffer.begin(), buffer.end(), 0.0);
    return buffer;
  }

  /// For buffers every slot of which is about to be overwritten (histogram
  /// subtraction): skips the zero fill — ~2 * slots doubles of memset per
  /// split otherwise.
  std::vector<double> acquire_unfilled() {
    if (free_.empty()) return std::vector<double>(2 * slots_);
    std::vector<double> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  void release(std::vector<double>&& buffer) {
    if (buffer.size() == 2 * slots_) free_.push_back(std::move(buffer));
  }

 private:
  std::size_t slots_;
  std::vector<std::vector<double>> free_;
};

/// Single index arena for in-place node partitioning: a node owns the
/// contiguous slice [begin, end) and a split stable-partitions it, so row
/// order within each child matches the order the old per-node row vectors
/// were filled in (the accumulation-order part of the determinism
/// contract). One scratch buffer serves every split of the tree.
class RowArena {
 public:
  explicit RowArena(std::span<const std::size_t> rows) {
    MEMFP_CHECK_LT(rows.size(), std::numeric_limits<std::uint32_t>::max());
    rows_.reserve(rows.size());
    for (std::size_t r : rows) rows_.push_back(static_cast<std::uint32_t>(r));
    scratch_.resize(rows_.size());
  }

  std::size_t size() const { return rows_.size(); }
  std::span<const std::uint32_t> slice(std::size_t begin,
                                       std::size_t end) const {
    return {rows_.data() + begin, end - begin};
  }

  /// Stable partition of [begin, end) by code <= bin; returns the boundary.
  /// `guard` is the number of bytes readable from `codes` (the kernel's
  /// gather-overread bound, see simd::KernelTable::partition).
  std::size_t partition(std::size_t begin, std::size_t end,
                        const std::uint8_t* codes, std::uint8_t bin,
                        std::size_t guard) {
    if (auto* kernel = simd::kernels().partition) {
      return begin + kernel(rows_.data() + begin, end - begin, codes, bin,
                            scratch_.data(), guard);
    }
    std::size_t write = begin;
    std::size_t right = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = rows_[i];
      if (codes[r] <= bin) {
        rows_[write++] = r;
      } else {
        scratch_[right++] = r;
      }
    }
    std::copy(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(right),
              rows_.begin() + static_cast<std::ptrdiff_t>(write));
    return write;
  }

 private:
  std::vector<std::uint32_t> rows_;
  std::vector<std::uint32_t> scratch_;
};

struct FeatureBest {
  double gain = 0.0;
  int bin = -1;
};

double gini_impurity(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p) * total;  // weighted impurity mass
}

std::vector<std::size_t> sample_features(std::size_t count, double fraction,
                                         Rng& rng) {
  std::vector<std::size_t> features(count);
  for (std::size_t i = 0; i < count; ++i) features[i] = i;
  // Round (not floor): with very few features, flooring can silently strand
  // every tree on a single column.
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(count) * fraction)));
  if (keep >= count) return features;
  rng.shuffle(features);
  features.resize(keep);
  std::sort(features.begin(), features.end());
  return features;
}

}  // namespace

Tree fit_classification_tree(const BinnedDataset& data,
                             std::span<const std::size_t> rows,
                             const ClassificationTreeParams& params,
                             Rng& rng) {
  const std::size_t features = data.dataset->x.cols();
  const std::vector<std::uint32_t>& offset = data.bin_offset;
  const double* wp = data.weight_pairs.data();
  // One table fetch per fit: the dispatch level is pinned for the whole
  // tree, so a concurrent ScopedLevel swap cannot mix lanes mid-build.
  const simd::KernelTable& kt = simd::kernels();
  Tree tree;
  auto& nodes = tree.mutable_nodes();

  RowArena arena(rows);
  HistogramPool hist_pool(data.total_bins());

  struct Work {
    int node = 0;
    std::size_t begin = 0, end = 0;
    int depth = 0;
    double pos = 0.0, total = 0.0;
    bool live = false;             // passed the pre-split checks
    std::vector<double> hist{};    // all-feature histogram; empty if !live
  };

  // Weighted class stats of a slice, summed in row order (bitwise-stable:
  // adding the 0.0 stored for negative rows leaves the positive sum's bits
  // unchanged).
  const auto stats = [&](Work& work) {
    const auto slice = arena.slice(work.begin, work.end);
    kt.pair_sum(slice.data(), slice.size(), wp, &work.total, &work.pos);
  };
  const auto check_live = [&](const Work& work) {
    const bool pure =
        work.pos <= 1e-12 || work.pos >= work.total - 1e-12;
    return work.depth < params.max_depth && !pure &&
           work.total >= 2.0 * params.min_samples_leaf;
  };
  // Direct histogram: one row-major pass over the node's rows fills every
  // feature's slice (each accumulator still sees its adds in row order, so
  // this matches the historical feature-major build bit for bit).
  const auto build_hist = [&](Work& work) {
    work.hist = hist_pool.acquire();
    const auto slice = arena.slice(work.begin, work.end);
    kt.hist_rowmajor(slice.data(), slice.size(), wp, data.row_codes.data(),
                     features, work.hist.data(), offset.data());
  };
  const auto subtract_hist = [&](Work& work, const std::vector<double>& parent,
                                 const std::vector<double>& sibling) {
    work.hist = hist_pool.acquire_unfilled();
    kt.hist_subtract(work.hist.data(), parent.data(), sibling.data(),
                     work.hist.size());
  };

  nodes.push_back({});
  std::vector<Work> stack;
  {
    Work root{0, 0, arena.size(), 0};
    stats(root);
    root.live = check_live(root);
    if (root.live) build_hist(root);
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();

    if (!work.live) {
      nodes[static_cast<std::size_t>(work.node)].feature = -1;
      nodes[static_cast<std::size_t>(work.node)].value =
          work.total > 0.0 ? work.pos / work.total : 0.0;
      continue;
    }

    // Best split over a random feature subset, scanned on the node's pooled
    // histogram.
    double best_gain = 1e-12;
    int best_feature = -1;
    int best_bin = -1;
    const double parent_impurity = gini_impurity(work.pos, work.total);
    // Prefix sums feed the vectorized gain scan; candidates failing
    // min_samples_leaf come back as -inf, so the strict-> argmax below picks
    // the same (feature, bin) — earliest maximum first — as the historical
    // fused loop. Bin counts are capped at 256 by the uint8 codes.
    double left_total[256], left_pos[256], gains[256];
    for (std::size_t f : sample_features(features, params.feature_fraction,
                                         rng)) {
      const int bins = data.mapper.bins(f);
      if (bins < 2) continue;
      const double* hist = work.hist.data() + 2 * offset[f];
      const int count = bins - 1;
      double lt = 0.0, lp = 0.0;
      for (int b = 0; b < count; ++b) {
        lt += hist[2 * b];
        lp += hist[2 * b + 1];
        left_total[b] = lt;
        left_pos[b] = lp;
      }
      // Zero the kGainScanPad round-up so the scan's full-width last block
      // reads defined values (see KernelTable::gini_gain_scan).
      const int padded = (count + simd::kGainScanPad - 1) &
                         ~(simd::kGainScanPad - 1);
      for (int b = count; b < padded; ++b) {
        left_total[b] = 0.0;
        left_pos[b] = 0.0;
      }
      kt.gini_gain_scan(left_total, left_pos, count, work.total, work.pos,
                        parent_impurity, params.min_samples_leaf, gains);
      for (int b = 0; b < count; ++b) {
        if (gains[b] > best_gain) {
          best_gain = gains[b];
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      }
    }

    if (best_feature < 0) {
      nodes[static_cast<std::size_t>(work.node)].feature = -1;
      nodes[static_cast<std::size_t>(work.node)].value =
          work.total > 0.0 ? work.pos / work.total : 0.0;
      hist_pool.release(std::move(work.hist));
      continue;
    }

    const std::size_t mid = arena.partition(
        work.begin, work.end,
        data.feature_codes(static_cast<std::size_t>(best_feature)),
        static_cast<std::uint8_t>(best_bin),
        data.codes.size() - static_cast<std::size_t>(best_feature) * data.rows);

    const int left_index = static_cast<int>(nodes.size());
    const int right_index = left_index + 1;
    nodes.push_back({});
    nodes.push_back({});
    TreeNode& parent = nodes[static_cast<std::size_t>(work.node)];
    parent.feature = best_feature;
    parent.threshold =
        data.mapper.threshold(static_cast<std::size_t>(best_feature), best_bin);
    parent.left = left_index;
    parent.right = right_index;

    Work left{left_index, work.begin, mid, work.depth + 1};
    Work right{right_index, mid, work.end, work.depth + 1};
    stats(left);
    stats(right);
    left.live = check_live(left);
    right.live = check_live(right);

    // Histogram subtraction: build the smaller child directly, derive the
    // sibling as parent - child.
    Work& small = (left.end - left.begin) <= (right.end - right.begin)
                      ? left
                      : right;
    Work& large = &small == &left ? right : left;
    if (large.live) {
      build_hist(small);
      subtract_hist(large, work.hist, small.hist);
      if (!small.live) hist_pool.release(std::move(small.hist));
    } else if (small.live) {
      build_hist(small);
    }
    hist_pool.release(std::move(work.hist));

    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  return tree;
}

Tree fit_gradient_tree(const BinnedDataset& data,
                       std::span<const std::size_t> rows,
                       std::span<const double> grad,
                       std::span<const double> hess,
                       const GradientTreeParams& params, Rng& rng) {
  const std::size_t features = data.dataset->x.cols();
  const std::vector<std::size_t> tree_features =
      sample_features(features, params.feature_fraction, rng);

  // Per-tree histogram offsets over the sampled features only.
  std::vector<std::uint32_t> offset(tree_features.size() + 1, 0);
  for (std::size_t fi = 0; fi < tree_features.size(); ++fi) {
    offset[fi + 1] = offset[fi] +
                     static_cast<std::uint32_t>(
                         data.mapper.bins(tree_features[fi]));
  }

  // Row-indexed (grad, hess) pairs: the per-row gather of a histogram build
  // touches one cache line instead of two arrays.
  std::vector<double> gh(2 * data.rows);
  ThreadPool::global().parallel_for(data.rows, [&](std::size_t r) {
    gh[2 * r] = grad[r];
    gh[2 * r + 1] = hess[r];
  });

  Tree tree;
  auto& nodes = tree.mutable_nodes();
  const simd::KernelTable& kt = simd::kernels();
  RowArena arena(rows);
  HistogramPool hist_pool(offset.back());

  struct NodeData {
    int node = 0;
    std::size_t begin = 0, end = 0;
    int depth = 0;
    double gain = 0.0;
    int feature = -1;
    int bin = -1;
    double g = 0.0, h = 0.0;
    std::vector<double> hist{};  // retained until the node is split or leafed
  };

  const auto leaf_score = [&](double g, double h) {
    return -g / (h + params.lambda);
  };
  const auto node_objective = [&](double g, double h) {
    return g * g / (h + params.lambda);
  };
  const auto node_stats = [&](NodeData& nd) {
    const auto slice = arena.slice(nd.begin, nd.end);
    kt.pair_sum(slice.data(), slice.size(), gh.data(), &nd.g, &nd.h);
  };
  const auto terminal = [&](const NodeData& nd) {
    return nd.depth >= params.max_depth ||
           nd.h < 2.0 * params.min_child_hessian;
  };

  // Builds nd's histogram — directly from its rows, or (when parent and
  // sibling are given) as parent - sibling — then scans every sampled
  // feature for the best split. The per-feature slices are independent, so
  // they are filled across the thread pool when the node is large enough to
  // amortize the dispatch; the winning (feature, bin) is then folded in
  // ascending tree_features order, making the chosen split a pure function
  // of the node — identical for every thread count.
  const auto build_and_scan = [&](NodeData& nd,
                                  const std::vector<double>* parent,
                                  const std::vector<double>* sibling,
                                  bool scan) {
    // Subtraction overwrites every per-feature slice, so the derived child
    // can skip the acquire-time zero fill.
    nd.hist =
        parent != nullptr ? hist_pool.acquire_unfilled() : hist_pool.acquire();
    const auto slice = arena.slice(nd.begin, nd.end);
    const double parent_obj = node_objective(nd.g, nd.h);
    std::vector<FeatureBest> best(tree_features.size());

    const auto per_feature = [&](std::size_t fi) {
      double* hist = nd.hist.data() + 2 * offset[fi];
      if (parent != nullptr) {
        const double* p = parent->data() + 2 * offset[fi];
        const double* s = sibling->data() + 2 * offset[fi];
        kt.hist_subtract(hist, p, s, 2 * (offset[fi + 1] - offset[fi]));
      } else {
        kt.hist_column(slice.data(), slice.size(), gh.data(),
                       data.feature_codes(tree_features[fi]), hist);
      }
      const int bins = data.mapper.bins(tree_features[fi]);
      if (!scan || bins < 2) return;
      double gl = 0.0, hl = 0.0;
      for (int b = 0; b + 1 < bins; ++b) {
        gl += hist[2 * b];
        hl += hist[2 * b + 1];
        const double gr = nd.g - gl;
        const double hr = nd.h - hl;
        if (hl < params.min_child_hessian || hr < params.min_child_hessian) {
          continue;
        }
        const double gain =
            node_objective(gl, hl) + node_objective(gr, hr) - parent_obj;
        if (gain > best[fi].gain + 1e-12) {
          best[fi].gain = gain;
          best[fi].bin = b;
        }
      }
    };

    // Histogram cost ~ rows x features; below the cutoff the serial loop
    // beats the dispatch overhead.
    const bool parallel =
        tree_features.size() >= 2 &&
        slice.size() * tree_features.size() >= 16384;
    if (parallel) {
      ThreadPool::global().parallel_for(tree_features.size(), per_feature,
                                        /*grain=*/1);
    } else {
      for (std::size_t fi = 0; fi < tree_features.size(); ++fi) {
        per_feature(fi);
      }
    }

    nd.gain = 0.0;
    nd.feature = -1;
    for (std::size_t fi = 0; fi < tree_features.size(); ++fi) {
      if (best[fi].bin >= 0 && best[fi].gain > nd.gain + 1e-12) {
        nd.gain = best[fi].gain;
        nd.feature = static_cast<int>(tree_features[fi]);
        nd.bin = best[fi].bin;
      }
    }
  };

  nodes.push_back({});
  // Frontier candidates live in `store`; the priority queue holds (gain,
  // slot) pairs compared on gain exactly as the old Candidate queue was, so
  // the pop order — ties included — is unchanged.
  std::vector<NodeData> store;
  store.reserve(static_cast<std::size_t>(std::max(2 * params.max_leaves, 2)));
  {
    NodeData root{0, 0, arena.size(), 0};
    node_stats(root);
    if (!terminal(root)) build_and_scan(root, nullptr, nullptr, /*scan=*/true);
    store.push_back(std::move(root));
  }

  struct QEntry {
    double gain;
    std::size_t slot;
  };
  auto by_gain = [](const QEntry& a, const QEntry& b) {
    return a.gain < b.gain;
  };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(by_gain)>
      frontier(by_gain);
  frontier.push({store[0].gain, 0});
  int leaves = 1;

  // Leaf-wise growth: repeatedly split the frontier leaf with highest gain.
  while (!frontier.empty() && leaves < params.max_leaves) {
    const QEntry top = frontier.top();
    frontier.pop();
    NodeData cand = std::move(store[top.slot]);
    if (cand.feature < 0 || cand.gain <= 1e-12) {
      nodes[static_cast<std::size_t>(cand.node)].feature = -1;
      nodes[static_cast<std::size_t>(cand.node)].value =
          leaf_score(cand.g, cand.h);
      hist_pool.release(std::move(cand.hist));
      continue;
    }

    const std::size_t mid = arena.partition(
        cand.begin, cand.end,
        data.feature_codes(static_cast<std::size_t>(cand.feature)),
        static_cast<std::uint8_t>(cand.bin),
        data.codes.size() - static_cast<std::size_t>(cand.feature) * data.rows);

    const int left_index = static_cast<int>(nodes.size());
    const int right_index = left_index + 1;
    nodes.push_back({});
    nodes.push_back({});
    TreeNode& node = nodes[static_cast<std::size_t>(cand.node)];
    node.feature = cand.feature;
    node.threshold = data.mapper.threshold(
        static_cast<std::size_t>(cand.feature), cand.bin);
    node.left = left_index;
    node.right = right_index;
    ++leaves;  // one leaf became two

    NodeData left{left_index, cand.begin, mid, cand.depth + 1};
    NodeData right{right_index, mid, cand.end, cand.depth + 1};
    node_stats(left);
    node_stats(right);
    const bool left_live = !terminal(left);
    const bool right_live = !terminal(right);

    // Histogram subtraction: build only the smaller child, derive the
    // sibling as parent - child.
    NodeData& small =
        (left.end - left.begin) <= (right.end - right.begin) ? left : right;
    NodeData& large = &small == &left ? right : left;
    const bool small_live = &small == &left ? left_live : right_live;
    const bool large_live = &small == &left ? right_live : left_live;
    if (large_live) {
      build_and_scan(small, nullptr, nullptr, small_live);
      build_and_scan(large, &cand.hist, &small.hist, /*scan=*/true);
      if (!small_live) hist_pool.release(std::move(small.hist));
    } else if (small_live) {
      build_and_scan(small, nullptr, nullptr, /*scan=*/true);
    }
    hist_pool.release(std::move(cand.hist));

    store.push_back(std::move(left));
    frontier.push({store.back().gain, store.size() - 1});
    store.push_back(std::move(right));
    frontier.push({store.back().gain, store.size() - 1});
  }

  // Finalize any unexpanded frontier leaves.
  while (!frontier.empty()) {
    NodeData& cand = store[frontier.top().slot];
    nodes[static_cast<std::size_t>(cand.node)].feature = -1;
    nodes[static_cast<std::size_t>(cand.node)].value =
        leaf_score(cand.g, cand.h);
    frontier.pop();
  }
  return tree;
}

}  // namespace memfp::ml
