// Random forest classifier: bagged weighted-gini CARTs with per-split
// feature subsampling, probability output by tree averaging.
#pragma once

#include "ml/decision_tree.h"
#include "ml/flat_ensemble.h"
#include "ml/model.h"

namespace memfp::ml {

struct RandomForestParams {
  int trees = 150;
  ClassificationTreeParams tree;
  double bootstrap_fraction = 1.0;  ///< bootstrap sample size vs dataset
};

class RandomForest final : public BinaryClassifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& train, Rng& rng) override;
  double predict(std::span<const float> features) const override;
  /// Flat-engine batch scoring (FlatEnsemble), bit-identical to the serial
  /// per-row loop at any thread count; the compiled form is built lazily on
  /// first prediction and invalidated by fit()/from_json().
  std::vector<double> predict_batch(const Matrix& x) const override;
  std::string name() const override { return "Random forest"; }
  Json to_json() const override;
  static RandomForest from_json(const Json& json);

  const std::vector<Tree>& trees() const { return trees_; }

  /// Mean decrease in impurity usage count per feature (split frequency),
  /// a cheap importance proxy for the monitoring dashboards.
  std::vector<double> feature_split_counts(std::size_t features) const;

 private:
  RandomForestParams params_;
  std::vector<Tree> trees_;
  LazyFlatEnsemble flat_;  ///< compiled inference form of trees_
};

}  // namespace memfp::ml
