// Histogram-based decision trees.
//
// One tree structure serves two trainers:
//  - ClassificationTreeTrainer: weighted-gini CART used by the random
//    forest (depth-wise growth, per-split feature subsampling).
//  - GradientTreeTrainer: second-order gradient trees used by the GBDT
//    (leaf-wise, best-gain-first growth, as LightGBM grows its trees).
//
// Both search splits over pre-binned uint8 feature codes, so a split scan
// is O(rows + bins) per feature. Training is built around three coupled
// layout optimizations (see DESIGN.md "Binned training memory layout"):
//  - feature-major bin codes: one contiguous uint8 column per feature, so a
//    histogram build streams sequentially instead of striding rows x cols;
//  - histogram subtraction: a split builds the histogram of the smaller
//    child only and derives the sibling as parent - child, roughly halving
//    histogram work (the signature LightGBM trick);
//  - in-place row partitioning: a node is a contiguous [begin, end) slice
//    of one reusable index arena, stable-partitioned at each split, so deep
//    trees allocate no per-node row vectors.
// Inference walks raw float thresholds, so a fitted tree needs no bin
// mapper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "ml/binning.h"
#include "ml/dataset.h"

namespace memfp::ml {

/// Pre-binned view of a dataset shared by all trees in an ensemble.
///
/// Codes are feature-major (one contiguous uint8 column per feature) and
/// the (weight, weight-if-positive) pair of every row is pre-bundled into a
/// row-indexed SoA so the per-row gather of the classification trainer
/// touches a single cache line per row.
struct BinnedDataset {
  const Dataset* dataset = nullptr;
  BinMapper mapper;
  std::vector<std::uint8_t> codes;  // cols x rows, feature-major
  /// The same codes row-major (rows x cols): the classification trainer's
  /// all-feature histogram build reads every feature of a row, so row-major
  /// turns its gather into one sequential uint8 run per row.
  std::vector<std::uint8_t> row_codes;
  std::size_t rows = 0;
  /// Prefix sum of mapper.bins(f): feature f's histogram slice covers bins
  /// [bin_offset[f], bin_offset[f + 1]) of a pooled node histogram.
  std::vector<std::uint32_t> bin_offset;
  /// Interleaved {weight, weight if y == 1 else 0} per row (2 * rows).
  std::vector<double> weight_pairs;

  static BinnedDataset build(const Dataset& dataset, int max_bins = 48);
  const std::uint8_t* feature_codes(std::size_t feature) const {
    return codes.data() + feature * rows;
  }
  std::uint8_t code(std::size_t row, std::size_t feature) const {
    return codes[feature * rows + row];
  }
  std::uint32_t total_bins() const { return bin_offset.back(); }
};

struct TreeNode {
  int feature = -1;  ///< -1 marks a leaf
  float threshold = 0.0f;
  int left = -1;
  int right = -1;
  double value = 0.0;  ///< leaf output
};

class Tree {
 public:
  double predict(std::span<const float> features) const;
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }
  std::size_t leaves() const;

  Json to_json() const;
  static Tree from_json(const Json& json);

 private:
  std::vector<TreeNode> nodes_;
};

struct ClassificationTreeParams {
  int max_depth = 12;
  double min_samples_leaf = 8.0;  ///< by total weight
  double feature_fraction = 0.6;  ///< per split
};

/// Fits a weighted-gini CART; leaf value = weighted positive fraction.
/// `rows` selects the (bootstrap) subset to train on.
Tree fit_classification_tree(const BinnedDataset& data,
                             std::span<const std::size_t> rows,
                             const ClassificationTreeParams& params, Rng& rng);

struct GradientTreeParams {
  int max_leaves = 31;
  int max_depth = 12;
  double min_child_hessian = 2.0;
  double lambda = 1.0;            ///< L2 regularization on leaf values
  double feature_fraction = 0.8;  ///< per tree
};

/// Fits a second-order gradient tree on (grad, hess); leaf value =
/// -G / (H + lambda). `rows` selects the (subsampled) training rows.
Tree fit_gradient_tree(const BinnedDataset& data,
                       std::span<const std::size_t> rows,
                       std::span<const double> grad,
                       std::span<const double> hess,
                       const GradientTreeParams& params, Rng& rng);

}  // namespace memfp::ml
