// Fleet builder: expands a calibrated ScenarioParams into a population of
// DIMMs with sampled configurations and faults, simulates each DIMM, and
// returns the observable FleetTrace (the synthetic production dataset).
#pragma once

#include "sim/dimm_sim.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace memfp::sim {

/// Runs the full scenario. Deterministic in params.seed.
FleetTrace simulate_fleet(const ScenarioParams& params,
                          const DimmSimParams& sim_params = {});

/// Samples a DIMM configuration for the platform (manufacturer mix, process
/// node, frequency, capacity). `degraded_bias` skews the manufacturer mix
/// the way failing populations are skewed in the field, giving the static
/// features genuine (but weak) predictive signal.
dram::DimmConfig sample_dimm_config(dram::Platform platform, Rng& rng,
                                    bool degraded_bias);

/// Samples the server workload context for a DIMM (weakly skewed for the
/// degraded population, per the field studies' "minor role" finding).
WorkloadStats sample_workload(Rng& rng, bool degraded_bias);

/// Builds one benign (non-UE) fault according to the scenario's mix and
/// difficulty knobs.
dram::Fault make_benign_fault(const ScenarioParams& params, Rng& rng);

/// Builds one degrading fault that crosses the ECC boundary at `t_cross`
/// after `prelude_days` of CE warning.
dram::Fault make_escalating_fault(const ScenarioParams& params, Rng& rng,
                                  SimTime t_cross, double prelude_days);

/// A transfer pattern that the platform ECC flags uncorrectable (used for
/// sudden-UE injection).
dram::ErrorPattern sample_ue_pattern(dram::Platform platform,
                                     const dram::Geometry& geometry, Rng& rng);

}  // namespace memfp::sim
