// Fleet builder: expands a calibrated ScenarioParams into a population of
// DIMMs with sampled configurations and faults, simulates each DIMM, and
// returns the observable FleetTrace (the synthetic production dataset).
//
// The population plan is exposed (FleetPlanner) so the sharded FleetDriver
// can materialize any contiguous id range of the same fleet without holding
// the rest: consuming the plan in chunks yields exactly the per-DIMM RNG
// streams the in-memory builder forks, so both paths produce byte-identical
// traces.
#pragma once

#include <vector>

#include "sim/dimm_sim.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace memfp::sim {

/// Runs the full scenario. Deterministic in params.seed.
FleetTrace simulate_fleet(const ScenarioParams& params,
                          const DimmSimParams& sim_params = {});

/// Population plan derived purely from ScenarioParams (no RNG draws): DIMM
/// ids are assigned benign first, then escalators (including the censored
/// tail that crosses after the horizon), then sudden UEs.
struct FleetPlan {
  int benign = 0;
  int escalators = 0;
  int sudden = 0;
  std::size_t total() const {
    return static_cast<std::size_t>(benign) +
           static_cast<std::size_t>(escalators) +
           static_cast<std::size_t>(sudden);
  }
};

FleetPlan plan_fleet(const ScenarioParams& params);

/// Hidden population kind of a planned DIMM (ground truth, pre-simulation).
enum class DimmKind { kBenign, kEscalator, kSudden };

/// One planned DIMM: everything decided up-front on the planning cursor. The
/// per-DIMM RNG is forked serially in id order (the exact order the serial
/// builder used), so simulating jobs in any order — or concurrently — still
/// reproduces the serial fleet byte for byte.
struct PlannedDimm {
  DimmKind kind = DimmKind::kBenign;
  dram::DimmId id = 0;
  Rng rng{0};
};

/// Serial-fork cursor over a scenario's planned population. Successive
/// take() calls hand out contiguous id ranges; chunking is immaterial —
/// take(n) ∘ take(m) and take(n + m) produce the same jobs. This is the
/// determinism hinge of the sharded driver: a shard's jobs depend only on
/// (params.seed, id range), never on shard count.
class FleetPlanner {
 public:
  explicit FleetPlanner(const ScenarioParams& params);

  const FleetPlan& plan() const { return plan_; }
  /// Number of jobs handed out so far (== the next DIMM id).
  std::size_t produced() const { return next_; }
  /// The next `count` planned DIMMs (clamped to the remaining population).
  std::vector<PlannedDimm> take(std::size_t count);

 private:
  FleetPlan plan_;
  Rng rng_;
  std::size_t next_ = 0;
};

/// Simulates one planned DIMM. Shared by simulate_fleet (whole population at
/// once) and the sharded FleetDriver (one id range at a time).
DimmTrace simulate_planned_dimm(const PlannedDimm& job,
                                const ScenarioParams& params,
                                const DimmSimulator& simulator,
                                const dram::Geometry& geometry);

/// Observed-dataset filter (mirrors the field datasets: only DIMMs that
/// logged at least one CE or UE appear; sudden UEs always count).
bool enters_observed_dataset(DimmKind kind, const DimmTrace& trace);

/// Samples a DIMM configuration for the platform (manufacturer mix, process
/// node, frequency, capacity). `degraded_bias` skews the manufacturer mix
/// the way failing populations are skewed in the field, giving the static
/// features genuine (but weak) predictive signal.
dram::DimmConfig sample_dimm_config(dram::Platform platform, Rng& rng,
                                    bool degraded_bias);

/// Samples the server workload context for a DIMM (weakly skewed for the
/// degraded population, per the field studies' "minor role" finding).
WorkloadStats sample_workload(Rng& rng, bool degraded_bias);

/// Builds one benign (non-UE) fault according to the scenario's mix and
/// difficulty knobs.
dram::Fault make_benign_fault(const ScenarioParams& params, Rng& rng);

/// Builds one degrading fault that crosses the ECC boundary at `t_cross`
/// after `prelude_days` of CE warning.
dram::Fault make_escalating_fault(const ScenarioParams& params, Rng& rng,
                                  SimTime t_cross, double prelude_days);

/// A transfer pattern that the platform ECC flags uncorrectable (used for
/// sudden-UE injection).
dram::ErrorPattern sample_ue_pattern(dram::Platform platform,
                                     const dram::Geometry& geometry, Rng& rng);

}  // namespace memfp::sim
