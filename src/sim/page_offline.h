// Software page offlining (paper Section II-C, references [34][36][37]):
// the OS retires physical pages whose underlying DRAM rows keep producing
// CEs, trading capacity for the chance of dodging a future UE.
//
// Two policies are modelled:
//  - reactive: offline a row once it logged `ce_threshold` CEs;
//  - prediction-guided: additionally offline the hottest rows of a DIMM the
//    moment a failure predictor alarms on it.
// The evaluator replays a trace under a policy and decides whether the
// DIMM's UE would have been avoided (the UE's row already retired).
#pragma once

#include <optional>

#include "common/time.h"
#include "sim/trace.h"

namespace memfp::sim {

struct PageOfflinePolicy {
  int ce_threshold = 12;       ///< CEs on one row before it is retired
  int max_rows_per_dimm = 8;   ///< capacity budget (OS offlining cap)
};

struct OfflineOutcome {
  int rows_offlined = 0;
  std::uint64_t ces_avoided = 0;  ///< CEs that would have hit retired rows
  bool ue_row_offlined = false;   ///< the UE's row was retired in time
};

/// Replays one DIMM's telemetry under the reactive policy. If
/// `predictor_alarm` is set, the DIMM's most error-prone rows are retired at
/// the alarm time as well (prediction-guided offlining, [34]).
OfflineOutcome apply_page_offlining(
    const DimmTrace& trace, const PageOfflinePolicy& policy,
    std::optional<SimTime> predictor_alarm = std::nullopt);

struct FleetOfflineReport {
  std::size_t dimms = 0;
  std::size_t rows_offlined = 0;
  std::uint64_t ces_avoided = 0;
  std::size_t ues_total = 0;        ///< predictable UEs in the fleet
  std::size_t ues_avoided = 0;      ///< whose row was retired in time
  double prevention_rate = 0.0;     ///< ues_avoided / ues_total
};

/// Evaluates a policy over a fleet (reactive only).
FleetOfflineReport evaluate_page_offlining(const FleetTrace& fleet,
                                           const PageOfflinePolicy& policy);

}  // namespace memfp::sim
