#include "sim/bmc.h"

#include <algorithm>

namespace memfp::sim {

BmcCollector::BmcCollector(BmcPolicy policy) : policy_(policy) {}

void BmcCollector::on_corrected(DimmTrace& trace, const dram::CeEvent& event) {
  // Storm suppression window: count but do not materialize.
  if (event.time < suppressed_until_) {
    ++trace.suppressed_ce_count;
    return;
  }

  // Slide the detection window.
  recent_.push_back(event.time);
  const SimTime cutoff = event.time - policy_.storm_window;
  recent_.erase(
      std::remove_if(recent_.begin(), recent_.end(),
                     [cutoff](SimTime t) { return t < cutoff; }),
      recent_.end());

  if (static_cast<int>(recent_.size()) >= policy_.storm_threshold) {
    trace.events.push_back({event.time, dram::MemEventType::kCeStorm});
    suppressed_until_ = event.time + policy_.suppression_period;
    trace.events.push_back(
        {suppressed_until_, dram::MemEventType::kCeStormSuppressed});
    recent_.clear();
    ++trace.suppressed_ce_count;
    return;
  }

  if (trace.ces.size() >= policy_.max_logged_ces) {
    ++trace.suppressed_ce_count;
    return;
  }
  trace.ces.push_back(event);
}

void BmcCollector::on_uncorrected(DimmTrace& trace,
                                  const dram::UeEvent& event) const {
  if (trace.ue) return;  // only the first UE matters; the DIMM is retired
  dram::UeEvent record = event;
  record.had_prior_ce = trace.has_ce();
  trace.ue = record;
}

}  // namespace memfp::sim
