// Compact binary columnar trace store: the on-disk spill format that lets a
// fleet scale past resident memory (ROADMAP item 1, "million-DIMM fleets").
//
// A *shard* is one append-only file holding a contiguous id-range of observed
// DIMMs. Each DIMM is a framed record — varint length prefix + a compact
// payload with delta-encoded (varint) timestamps, packed DQ/beat error-bit
// bitmaps and single-byte enum fields — followed by a shard index (record
// offsets) and a checksummed footer, so a writer only ever appends and a
// reader can either stream records in order or jump straight to one DIMM.
//
//   header   magic "MFTSHRD1", version, platform, horizon
//   records  [varint len | payload] per observed DIMM, ascending DimmId
//   index    varint count, varint offset deltas (into the record region)
//   footer   index offset, FNV-1a of the record region, magic "MFTSEND1"
//
// The payload round-trips DimmTrace byte-exactly: decode(encode(t)) compares
// equal field-for-field, and re-encoding reproduces the identical bytes (the
// golden-hash contract in tests/test_trace_store.cc). Fleet-level fields
// (platform, horizon) live in the header, not in every record.
//
// Corrupt or truncated shards fail cleanly: every read is bounds-checked and
// dies with a MEMFP_CHECK diagnostic instead of undefined behaviour.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/trace.h"

namespace memfp::sim {

// ---------------------------------------------------------------------------
// FNV-1a folding — the project's canonical content-hash primitive for the
// determinism contracts (sharded path == in-memory path, byte for byte).
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// Appends the framed payload of one DIMM (no length prefix) to `out`.
/// Fleet-level fields (platform, horizon) are not encoded; pass them through
/// the shard header. Preconditions: event times sorted ascending, error-bit
/// beats < 8 (DDR4 burst), as the simulator guarantees.
void encode_dimm_record(const DimmTrace& trace, std::vector<std::uint8_t>& out);

/// Decodes one payload produced by encode_dimm_record. The whole span must be
/// consumed exactly; any truncation or garbage dies with MEMFP_CHECK.
/// `context` is appended verbatim to every diagnostic (TraceReader passes
/// " in <shard path> (record <i>)"), so a corrupt shard names itself.
DimmTrace decode_dimm_record(std::span<const std::uint8_t> payload,
                             dram::Platform platform,
                             std::string_view context = {});

/// Canonical content hash of one DIMM trace: FNV-1a over its encoded payload.
/// Both the resident and the decoded-from-disk representation of the same
/// DIMM hash identically, which is what the driver's byte-identity checks and
/// the codec golden tests fold over.
std::uint64_t trace_content_hash(const DimmTrace& trace);

// ---------------------------------------------------------------------------
// Shard files
// ---------------------------------------------------------------------------

struct ShardStats {
  std::size_t dimms = 0;
  std::uint64_t ce_records = 0;
  std::uint64_t mem_events = 0;
  std::uint64_t ue_records = 0;
  std::uint64_t suppressed_ces = 0;
  std::uint64_t file_bytes = 0;

  std::uint64_t raw_records() const {
    return ce_records + mem_events + ue_records;
  }
  void add(const ShardStats& other);
};

/// Append-only shard writer. Records must be appended in ascending DimmId
/// order (the natural shard order); finish() seals index + footer. A writer
/// that is destroyed without finish() leaves an unreadable file — readers
/// reject it via the missing footer magic.
class ShardWriter {
 public:
  ShardWriter(const std::string& path, dram::Platform platform,
              SimTime horizon);
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;
  ~ShardWriter();

  /// Appends one record and returns its trace_content_hash (computed from
  /// the bytes just encoded, so callers folding determinism hashes don't
  /// pay a second encode).
  std::uint64_t append(const DimmTrace& trace);
  /// Seals the shard and returns its stats. Must be called exactly once.
  ShardStats finish();

 private:
  std::ofstream out_;
  std::string path_;
  ShardStats stats_;
  std::vector<std::uint64_t> offsets_;  // record starts, relative to region
  std::vector<std::uint8_t> scratch_;   // reused per-record encode buffer
  std::uint64_t region_bytes_ = 0;
  std::uint64_t region_hash_ = kFnvOffset;
  bool finished_ = false;
};

/// Streaming shard reader: loads the (compact) encoded shard into memory,
/// verifies magic/version/checksum/index bounds, then decodes one DIMM at a
/// time into the existing DimmTrace type. read_dimm is const and touches only
/// immutable state, so concurrent decodes from one reader are safe — the
/// driver fans extraction out across a shard's DIMMs this way.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  dram::Platform platform() const { return platform_; }
  SimTime horizon() const { return horizon_; }
  std::size_t dimm_count() const { return records_.size(); }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

  /// Decodes the index-th record of the shard. Thread-safe. Decode
  /// diagnostics carry the shard path and record index.
  DimmTrace read_dimm(std::size_t index) const;

 private:
  std::string path_;
  dram::Platform platform_ = dram::Platform::kIntelPurley;
  SimTime horizon_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::vector<std::uint8_t> region_;  // record region only
  std::vector<std::pair<std::uint64_t, std::uint64_t>> records_;  // off, len
};

/// Canonical shard file name inside a store directory: shard-%05zu.mft.
std::string shard_path(const std::string& dir, std::size_t index);

/// All shard files of a store directory, sorted by shard index.
std::vector<std::string> list_shards(const std::string& dir);

}  // namespace memfp::sim
