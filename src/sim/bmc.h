// Baseboard Management Controller model (paper Fig 1(3) and Section II-C).
//
// The BMC is the logging chokepoint between raw error transfers and the
// dataset: it records CE events at up to one-minute granularity, detects CE
// storms (many CEs in a brief window), suppresses individual logging during
// a storm to avoid service degradation, and bounds its own log capacity.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "dram/events.h"
#include "sim/trace.h"

namespace memfp::sim {

struct BmcPolicy {
  /// CEs within `storm_window` that trigger a storm event.
  int storm_threshold = 10;
  SimDuration storm_window = minutes(1);
  /// Individual CE logging is muted this long after a storm fires.
  SimDuration suppression_period = hours(1);
  /// Hard cap on individually logged CE records per DIMM (BMC buffer).
  std::size_t max_logged_ces = 4000;
};

/// Stateful per-DIMM collector. Feed raw corrected transfers in time order;
/// it populates the trace's logged CEs, storm events and suppressed count.
class BmcCollector {
 public:
  explicit BmcCollector(BmcPolicy policy = {});

  /// Records one corrected error transfer observed at `event.time`.
  void on_corrected(DimmTrace& trace, const dram::CeEvent& event);

  /// Records the (first) uncorrectable error; UEs bypass suppression.
  void on_uncorrected(DimmTrace& trace, const dram::UeEvent& event) const;

  const BmcPolicy& policy() const { return policy_; }

 private:
  BmcPolicy policy_;
  // Sliding-window storm detection state.
  std::vector<SimTime> recent_;
  SimTime suppressed_until_ = -1;
};

}  // namespace memfp::sim
