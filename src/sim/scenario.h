// Calibrated per-platform fleet scenarios.
//
// These encode the field statistics the paper reports (Table I, Fig 4,
// Fig 5) as generative parameters: how many DIMMs log CEs, what fraction
// develop predictable vs sudden UEs, the fault-mode mix of the benign and
// the degrading population, and the "difficulty knobs" that shape the ML
// task per platform (prelude lengths, benign lookalikes, censored faults).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "dram/fault.h"
#include "dram/geometry.h"

namespace memfp::sim {

/// One (mode, scope) slot in a fault-mix distribution.
struct FaultMixEntry {
  dram::FaultMode mode = dram::FaultMode::kCell;
  dram::DeviceScope scope = dram::DeviceScope::kSingleDevice;
  double weight = 0.0;
};

struct ScenarioParams {
  dram::Platform platform = dram::Platform::kIntelPurley;
  SimTime horizon = days(273);  // Jan..Oct 2023 collection window
  std::uint64_t seed = 1;

  /// Population sizes (already scaled down from the ~250k-server fleet; the
  /// ratios, not the absolute counts, carry the paper's findings).
  int ce_dimms = 4000;             ///< benign DIMMs that log CEs
  int predictable_ue_dimms = 160;  ///< degrading DIMMs that reach a UE
  int sudden_ue_dimms = 60;        ///< UEs with no CE history
  int servers = 2000;

  /// Difficulty knobs.
  double censored_escalator_fraction = 0.15;  ///< cross after the horizon
  double short_prelude_fraction = 0.12;       ///< <2 days of CE warning
  double lookalike_fraction = 0.30;  ///< benign faults that mimic risky shapes
  double two_fault_probability = 0.18;  ///< benign DIMMs with a second fault

  std::vector<FaultMixEntry> benign_mix;
  std::vector<FaultMixEntry> escalator_mix;

  /// Scales all population sizes (for fast tests / large benches).
  ScenarioParams scaled(double factor) const;
};

/// The three studied platforms, calibrated to the Table I / Fig 4 / Fig 5 /
/// Table II shape targets (see DESIGN.md "Calibration targets").
ScenarioParams purley_scenario(std::uint64_t seed = 11);
ScenarioParams whitley_scenario(std::uint64_t seed = 22);
ScenarioParams k920_scenario(std::uint64_t seed = 33);

/// All three, in paper order.
std::vector<ScenarioParams> all_platform_scenarios();

}  // namespace memfp::sim
