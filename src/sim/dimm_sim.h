// Single-DIMM lifecycle simulation: injected faults -> raw error transfers
// -> platform ECC classification -> BMC-logged trace.
//
// Error transfers are generated as an inhomogeneous Poisson process per
// fault, discretized into fixed buckets. The first transfer the platform ECC
// cannot correct becomes the DIMM's UE and ends its life (the fleet retires
// it). Everything is driven by a per-DIMM forked RNG, so DIMMs are
// independent and the whole fleet is reproducible from one seed.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "dram/ecc.h"
#include "dram/fault.h"
#include "sim/bmc.h"
#include "sim/trace.h"

namespace memfp::sim {

struct DimmSimParams {
  SimTime horizon = days(273);  // Jan..Oct 2023
  /// Poisson discretization bucket.
  SimDuration bucket = hours(6);
  /// Cap on transfers materialized per fault per bucket; the surplus is
  /// rolled into the BMC's suppressed count (real BMCs drop them too).
  int max_transfers_per_bucket = 48;
  BmcPolicy bmc;
  /// ECC scheme classifying the error transfers. kPlatform (the default)
  /// keeps the platform's deployed code; a campaign's ECC axis forces one of
  /// the modelled schemes instead. Only the CE/UE classification changes —
  /// the fault population and every RNG draw are untouched, so two runs of
  /// the same scenario under different ECCs see the same raw transfers.
  dram::EccChoice ecc = dram::EccChoice::kPlatform;
};

class DimmSimulator {
 public:
  DimmSimulator(dram::Platform platform, DimmSimParams params = {});

  /// Simulates one DIMM carrying `faults`; returns its observable trace.
  DimmTrace run(dram::DimmId id, std::uint32_t server_id,
                const dram::DimmConfig& config,
                const std::vector<dram::Fault>& faults, Rng& rng) const;

  const DimmSimParams& params() const { return params_; }

 private:
  dram::Platform platform_;
  DimmSimParams params_;
};

}  // namespace memfp::sim
