#include "sim/dimm_sim.h"

#include <algorithm>

namespace memfp::sim {
namespace {

/// A raw (pre-BMC) error transfer candidate.
struct Transfer {
  SimTime time;
  std::size_t fault_index;
};

}  // namespace

DimmSimulator::DimmSimulator(dram::Platform platform, DimmSimParams params)
    : platform_(platform), params_(params) {}

DimmTrace DimmSimulator::run(dram::DimmId id, std::uint32_t server_id,
                             const dram::DimmConfig& config,
                             const std::vector<dram::Fault>& faults,
                             Rng& rng) const {
  DimmTrace trace;
  trace.id = id;
  trace.server_id = server_id;
  trace.platform = platform_;
  trace.config = config;

  const dram::Geometry geometry = config.geometry();
  const dram::FaultPatternModel model(platform_, geometry);
  const auto ecc = dram::make_ecc(params_.ecc, platform_);

  // Generate candidate transfer times bucket by bucket.
  std::vector<Transfer> transfers;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const dram::Fault& fault = faults[f];
    for (SimTime start = std::max<SimTime>(fault.arrival, 0);
         start < params_.horizon; start += params_.bucket) {
      const SimTime mid = start + params_.bucket / 2;
      const double rate_per_hour = fault.rate_at(mid);
      if (rate_per_hour <= 0.0) continue;
      const double expected =
          rate_per_hour * static_cast<double>(params_.bucket) /
          static_cast<double>(kHour);
      const auto count = rng.poisson(expected);
      if (count == 0) continue;
      const auto materialized = std::min<std::uint64_t>(
          count, static_cast<std::uint64_t>(params_.max_transfers_per_bucket));
      trace.suppressed_ce_count += count - materialized;
      for (std::uint64_t i = 0; i < materialized; ++i) {
        const SimTime t =
            start + static_cast<SimTime>(
                        rng.uniform_u64(static_cast<std::uint64_t>(
                            params_.bucket)));
        transfers.push_back({t, f});
      }
    }
  }
  std::sort(transfers.begin(), transfers.end(),
            [](const Transfer& a, const Transfer& b) { return a.time < b.time; });

  BmcCollector bmc(params_.bmc);
  for (const Transfer& transfer : transfers) {
    const dram::Fault& fault = faults[transfer.fault_index];
    const double severity = fault.severity_at(transfer.time);
    const dram::ErrorPattern pattern = model.sample(fault, severity, rng);
    dram::CellCoord coord = model.sample_coord(fault, rng);
    // The logged coordinate reports the device that actually erred in this
    // transfer (real MCE decoding recovers it from address + syndrome) —
    // this is what lets the analyzer see multi-device fault structure.
    coord.device = geometry.device_of_dq(pattern.bits().front().dq);
    const dram::EccVerdict verdict = ecc->classify(pattern, geometry);
    if (verdict == dram::EccVerdict::kUncorrected) {
      dram::UeEvent ue;
      ue.time = transfer.time;
      ue.coord = coord;
      ue.pattern = pattern;
      bmc.on_uncorrected(trace, ue);
      break;  // DIMM retired at first UE
    }
    if (verdict == dram::EccVerdict::kCorrected) {
      bmc.on_corrected(trace, {transfer.time, coord, pattern});
    }
  }
  return trace;
}

}  // namespace memfp::sim
