#include "sim/trace.h"

namespace memfp::sim {

std::size_t FleetTrace::dimms_with_ce() const {
  std::size_t count = 0;
  for (const DimmTrace& dimm : dimms) {
    if (dimm.has_ce()) ++count;
  }
  return count;
}

std::size_t FleetTrace::dimms_with_ue() const {
  std::size_t count = 0;
  for (const DimmTrace& dimm : dimms) {
    if (dimm.has_ue()) ++count;
  }
  return count;
}

std::size_t FleetTrace::predictable_ue_dimms() const {
  std::size_t count = 0;
  for (const DimmTrace& dimm : dimms) {
    if (dimm.predictable_ue()) ++count;
  }
  return count;
}

std::size_t FleetTrace::sudden_ue_dimms() const {
  std::size_t count = 0;
  for (const DimmTrace& dimm : dimms) {
    if (dimm.sudden_ue()) ++count;
  }
  return count;
}

}  // namespace memfp::sim
