// Per-DIMM and per-fleet telemetry traces — the synthetic stand-in for the
// paper's 10-month production dataset (Section III). A trace contains only
// what a datacenter operator can observe: BMC-logged CEs (post storm
// suppression), memory events, the first UE if any, and the DIMM's static
// configuration. The injected fault ground truth stays inside the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.h"
#include "dram/events.h"
#include "dram/geometry.h"

namespace memfp::sim {

/// Server-level workload context (paper references [25]-[27]): aggregated
/// runtime metrics joined from the monitoring plane. Field studies find
/// these carry far less signal than CE structure — an effect the feature
/// ablation reproduces.
struct WorkloadStats {
  float cpu_utilization = 0.5f;     ///< mean CPU utilization, [0,1]
  float memory_utilization = 0.5f;  ///< mean memory utilization, [0,1]
  float read_write_ratio = 2.0f;    ///< memory read/write access ratio
};

struct DimmTrace {
  dram::DimmId id = 0;
  std::uint32_t server_id = 0;
  dram::Platform platform = dram::Platform::kIntelPurley;
  dram::DimmConfig config;
  WorkloadStats workload;

  /// Time-ordered logged CEs (BMC may have suppressed storm bursts).
  std::vector<dram::CeEvent> ces;
  /// Storm / suppression / offlining events.
  std::vector<dram::MemEvent> events;
  /// Raw CE transfers that occurred but were not individually logged
  /// because of storm suppression (count only, as real BMCs report).
  std::uint64_t suppressed_ce_count = 0;
  /// First uncorrectable error; the DIMM is retired at that point.
  std::optional<dram::UeEvent> ue;

  bool has_ce() const { return !ces.empty() || suppressed_ce_count > 0; }
  bool has_ue() const { return ue.has_value(); }
  /// Paper terminology: UE preceded by at least one CE.
  bool predictable_ue() const { return has_ue() && ue->had_prior_ce; }
  bool sudden_ue() const { return has_ue() && !ue->had_prior_ce; }
};

/// All observed DIMMs of one platform over the collection horizon.
/// Mirrors the dataset: only DIMMs that logged at least one CE or UE appear.
struct FleetTrace {
  dram::Platform platform = dram::Platform::kIntelPurley;
  SimTime horizon = 0;
  std::vector<DimmTrace> dimms;

  std::size_t dimms_with_ce() const;
  std::size_t dimms_with_ue() const;
  std::size_t predictable_ue_dimms() const;
  std::size_t sudden_ue_dimms() const;
};

}  // namespace memfp::sim
