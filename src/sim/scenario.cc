#include "sim/scenario.h"

#include <cmath>

namespace memfp::sim {

using dram::DeviceScope;
using dram::FaultMode;

ScenarioParams ScenarioParams::scaled(double factor) const {
  ScenarioParams params = *this;
  const auto scale = [factor](int n) {
    return std::max(1, static_cast<int>(std::lround(n * factor)));
  };
  params.ce_dimms = scale(ce_dimms);
  params.predictable_ue_dimms = scale(predictable_ue_dimms);
  params.sudden_ue_dimms = scale(sudden_ue_dimms);
  params.servers = scale(servers);
  return params;
}

namespace {

std::vector<FaultMixEntry> common_benign_mix() {
  return {
      {FaultMode::kCell, DeviceScope::kSingleDevice, 0.28},
      {FaultMode::kColumn, DeviceScope::kSingleDevice, 0.15},
      {FaultMode::kRow, DeviceScope::kSingleDevice, 0.20},
      {FaultMode::kBank, DeviceScope::kSingleDevice, 0.07},
      {FaultMode::kCell, DeviceScope::kMultiDevice, 0.05},
      {FaultMode::kColumn, DeviceScope::kMultiDevice, 0.07},
      {FaultMode::kRow, DeviceScope::kMultiDevice, 0.12},
      {FaultMode::kBank, DeviceScope::kMultiDevice, 0.06},
  };
}

}  // namespace

ScenarioParams purley_scenario(std::uint64_t seed) {
  ScenarioParams params;
  params.platform = dram::Platform::kIntelPurley;
  params.seed = seed;
  // Table I: highest UE rate; 73% predictable / 27% sudden.
  params.ce_dimms = 5200;
  params.predictable_ue_dimms = 220;
  params.sudden_ue_dimms = 81;
  params.servers = 2600;
  // Longest preludes, most distinctive pre-UE signal -> best predictability.
  params.censored_escalator_fraction = 0.12;
  params.short_prelude_fraction = 0.10;
  params.lookalike_fraction = 0.15;
  params.benign_mix = common_benign_mix();
  // Fig 4: Purley UEs dominated by single-device row/bank faults (the weak
  // single-chip region of its ECC).
  params.escalator_mix = {
      {FaultMode::kRow, DeviceScope::kSingleDevice, 0.48},
      {FaultMode::kBank, DeviceScope::kSingleDevice, 0.22},
      {FaultMode::kRow, DeviceScope::kMultiDevice, 0.18},
      {FaultMode::kBank, DeviceScope::kMultiDevice, 0.12},
  };
  return params;
}

ScenarioParams whitley_scenario(std::uint64_t seed) {
  ScenarioParams params;
  params.platform = dram::Platform::kIntelWhitley;
  params.seed = seed;
  // Table I: sudden-UE heavy (42% predictable / 58% sudden), total UE rate
  // below Purley. Sized so the predictable-UE population (~84) is in the
  // same range as the paper's (~170 of >400 UE DIMMs) relative to fleet.
  params.ce_dimms = 4200;
  params.predictable_ue_dimms = 84;
  params.sudden_ue_dimms = 116;
  params.servers = 2100;
  // Hardest platform: short preludes, many benign lookalikes, censoring.
  params.censored_escalator_fraction = 0.22;
  params.short_prelude_fraction = 0.25;
  params.lookalike_fraction = 0.42;
  params.benign_mix = common_benign_mix();
  // Fig 4: Whitley UEs arise from multi-device faults; its ECC corrects all
  // single-device patterns.
  params.escalator_mix = {
      {FaultMode::kRow, DeviceScope::kMultiDevice, 0.55},
      {FaultMode::kBank, DeviceScope::kMultiDevice, 0.30},
      {FaultMode::kColumn, DeviceScope::kMultiDevice, 0.10},
      {FaultMode::kCell, DeviceScope::kMultiDevice, 0.05},
  };
  return params;
}

ScenarioParams k920_scenario(std::uint64_t seed) {
  ScenarioParams params;
  params.platform = dram::Platform::kK920;
  params.seed = seed;
  // Table I: lowest UE rate, strongly predictable-dominant (82% / 18%).
  params.ce_dimms = 3600;
  params.predictable_ue_dimms = 96;
  params.sudden_ue_dimms = 21;
  params.servers = 1800;
  params.censored_escalator_fraction = 0.16;
  params.short_prelude_fraction = 0.16;
  params.lookalike_fraction = 0.35;
  params.benign_mix = common_benign_mix();
  // Fig 4: K920-SDDC removes single-device UEs entirely; multi-device
  // row/bank degradation is what remains.
  params.escalator_mix = {
      {FaultMode::kRow, DeviceScope::kMultiDevice, 0.45},
      {FaultMode::kBank, DeviceScope::kMultiDevice, 0.25},
      {FaultMode::kColumn, DeviceScope::kMultiDevice, 0.20},
      {FaultMode::kCell, DeviceScope::kMultiDevice, 0.10},
  };
  return params;
}

std::vector<ScenarioParams> all_platform_scenarios() {
  return {purley_scenario(), whitley_scenario(), k920_scenario()};
}

}  // namespace memfp::sim
