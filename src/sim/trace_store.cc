#include "sim/trace_store.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/check.h"

namespace memfp::sim {
namespace {

constexpr char kHeaderMagic[8] = {'M', 'F', 'T', 'S', 'H', 'R', 'D', '1'};
constexpr char kFooterMagic[8] = {'M', 'F', 'T', 'S', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 24;  // magic + version + platform + horizon
constexpr std::size_t kFooterBytes = 24;  // index offset + region hash + magic

// ---------------------------------------------------------------------------
// Little-endian primitives (explicit, so shards are portable across hosts)
// ---------------------------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// LEB128 unsigned varint: 7 payload bits per byte, high bit = continuation.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked decode cursor. Every primitive dies with a MEMFP_CHECK
/// diagnostic on truncation or malformed data — never reads out of bounds.
/// `context` (e.g. " in <shard path> (record 17)") is appended to every
/// diagnostic so a corrupt shard in a multi-file store names itself.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data,
                  std::string_view context = {})
      : data_(data), context_(context) {}

  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }
  std::string_view context() const { return context_; }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      MEMFP_CHECK_LT(pos_, data_.size())
          << "trace store: truncated varint" << context_;
      MEMFP_CHECK_LT(shift, 64)
          << "trace store: varint overflows 64 bits" << context_;
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  /// Varint narrowed to a non-negative int (coordinates, config fields).
  int varint_int() {
    const std::uint64_t v = varint();
    MEMFP_CHECK_LE(v, 0x7fffffffULL)
        << "trace store: field exceeds int range" << context_;
    return static_cast<int>(v);
  }

  std::uint8_t byte() {
    MEMFP_CHECK_LT(pos_, data_.size())
        << "trace store: truncated record" << context_;
    return data_[pos_++];
  }

  std::uint32_t fixed_u32() {
    MEMFP_CHECK_LE(pos_ + 4, data_.size())
        << "trace store: truncated f32" << context_;
    const std::uint32_t v = get_u32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    MEMFP_CHECK_LE(n, data_.size() - pos_)
        << "trace store: truncated bytes" << context_;
    const std::span<const std::uint8_t> view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string_view context_;
};

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

void encode_coord(const dram::CellCoord& coord, std::vector<std::uint8_t>& out) {
  MEMFP_DCHECK(coord.rank >= 0 && coord.device >= 0 && coord.bank >= 0 &&
               coord.row >= 0 && coord.column >= 0);
  put_varint(out, static_cast<std::uint64_t>(coord.rank));
  put_varint(out, static_cast<std::uint64_t>(coord.device));
  put_varint(out, static_cast<std::uint64_t>(coord.bank));
  put_varint(out, static_cast<std::uint64_t>(coord.row));
  put_varint(out, static_cast<std::uint64_t>(coord.column));
}

dram::CellCoord decode_coord(Cursor& in) {
  dram::CellCoord coord;
  coord.rank = in.varint_int();
  coord.device = in.varint_int();
  coord.bank = in.varint_int();
  coord.row = in.varint_int();
  coord.column = in.varint_int();
  return coord;
}

/// Packed DQ/beat bitmap: the pattern's sorted (dq, beat) bits grouped by DQ
/// lane — delta-encoded lane index + one byte whose bit b means "beat b
/// erred". One byte covers the full DDR4 burst (8 beats), so a typical
/// single-lane pattern costs 3 bytes total.
void encode_pattern(const dram::ErrorPattern& pattern,
                    std::vector<std::uint8_t>& out) {
  const std::vector<dram::ErrorBit>& bits = pattern.bits();
  std::uint64_t groups = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i == 0 || bits[i].dq != bits[i - 1].dq) ++groups;
  }
  put_varint(out, groups);
  int prev_dq = 0;
  std::size_t i = 0;
  while (i < bits.size()) {
    const int dq = bits[i].dq;
    std::uint8_t mask = 0;
    for (; i < bits.size() && bits[i].dq == dq; ++i) {
      MEMFP_CHECK_LT(bits[i].beat, 8)
          << "trace store: beat index exceeds the 8-beat bitmap";
      mask = static_cast<std::uint8_t>(mask | (1u << bits[i].beat));
    }
    put_varint(out, static_cast<std::uint64_t>(dq - prev_dq));
    out.push_back(mask);
    prev_dq = dq;
  }
}

dram::ErrorPattern decode_pattern(Cursor& in) {
  const std::uint64_t groups = in.varint();
  std::vector<dram::ErrorBit> bits;
  int dq = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    dq += in.varint_int();
    MEMFP_CHECK_LE(dq, 0xff)
        << "trace store: DQ lane exceeds 8 bits" << in.context();
    const std::uint8_t mask = in.byte();
    MEMFP_CHECK_NE(mask, 0u)
        << "trace store: empty beat mask group" << in.context();
    for (int beat = 0; beat < 8; ++beat) {
      if (mask & (1u << beat)) {
        bits.push_back({static_cast<std::uint8_t>(dq),
                        static_cast<std::uint8_t>(beat)});
      }
    }
  }
  return dram::ErrorPattern(std::move(bits));
}

void encode_f32(float value, std::vector<std::uint8_t>& out) {
  put_u32(out, std::bit_cast<std::uint32_t>(value));
}

float decode_f32(Cursor& in) { return std::bit_cast<float>(in.fixed_u32()); }

}  // namespace

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

void encode_dimm_record(const DimmTrace& trace,
                        std::vector<std::uint8_t>& out) {
  put_varint(out, trace.id);
  put_varint(out, trace.server_id);
  out.push_back(static_cast<std::uint8_t>(trace.config.manufacturer));
  out.push_back(static_cast<std::uint8_t>(trace.config.process));
  out.push_back(static_cast<std::uint8_t>(trace.config.width));
  put_varint(out, static_cast<std::uint64_t>(trace.config.frequency_mhz));
  put_varint(out, static_cast<std::uint64_t>(trace.config.capacity_gib));
  put_varint(out, trace.config.part_number.size());
  out.insert(out.end(), trace.config.part_number.begin(),
             trace.config.part_number.end());
  encode_f32(trace.workload.cpu_utilization, out);
  encode_f32(trace.workload.memory_utilization, out);
  encode_f32(trace.workload.read_write_ratio, out);

  put_varint(out, trace.ces.size());
  SimTime prev = 0;
  for (const dram::CeEvent& ce : trace.ces) {
    MEMFP_DCHECK(ce.time >= prev) << "CE log must be time-sorted";
    put_varint(out, static_cast<std::uint64_t>(ce.time - prev));
    prev = ce.time;
    encode_coord(ce.coord, out);
    encode_pattern(ce.pattern, out);
  }

  put_varint(out, trace.events.size());
  prev = 0;
  for (const dram::MemEvent& event : trace.events) {
    MEMFP_DCHECK(event.time >= prev) << "event log must be time-sorted";
    put_varint(out, static_cast<std::uint64_t>(event.time - prev));
    prev = event.time;
    out.push_back(static_cast<std::uint8_t>(event.type));
  }

  put_varint(out, trace.suppressed_ce_count);
  out.push_back(trace.ue.has_value() ? 1 : 0);
  if (trace.ue) {
    MEMFP_DCHECK(trace.ue->time >= 0);
    put_varint(out, static_cast<std::uint64_t>(trace.ue->time));
    encode_coord(trace.ue->coord, out);
    encode_pattern(trace.ue->pattern, out);
    out.push_back(trace.ue->had_prior_ce ? 1 : 0);
  }
}

DimmTrace decode_dimm_record(std::span<const std::uint8_t> payload,
                             dram::Platform platform,
                             std::string_view context) {
  Cursor in(payload, context);
  DimmTrace trace;
  trace.platform = platform;
  const std::uint64_t id = in.varint();
  MEMFP_CHECK_LE(id, 0xffffffffULL)
      << "trace store: DimmId exceeds 32 bits" << context;
  trace.id = static_cast<dram::DimmId>(id);
  const std::uint64_t server = in.varint();
  MEMFP_CHECK_LE(server, 0xffffffffULL)
      << "trace store: server id exceeds 32 bits" << context;
  trace.server_id = static_cast<std::uint32_t>(server);

  const std::uint8_t manufacturer = in.byte();
  MEMFP_CHECK_LE(manufacturer, static_cast<int>(dram::Manufacturer::kD))
      << "trace store: invalid manufacturer" << context;
  trace.config.manufacturer = static_cast<dram::Manufacturer>(manufacturer);
  const std::uint8_t process = in.byte();
  MEMFP_CHECK_LE(process, static_cast<int>(dram::DramProcess::k1a))
      << "trace store: invalid process node" << context;
  trace.config.process = static_cast<dram::DramProcess>(process);
  const std::uint8_t width = in.byte();
  MEMFP_CHECK(width == 4 || width == 8)
      << "trace store: invalid device width" << context;
  trace.config.width = static_cast<dram::DeviceWidth>(width);
  trace.config.frequency_mhz = in.varint_int();
  trace.config.capacity_gib = in.varint_int();
  const std::uint64_t part_len = in.varint();
  const std::span<const std::uint8_t> part = in.bytes(part_len);
  trace.config.part_number.assign(part.begin(), part.end());
  trace.workload.cpu_utilization = decode_f32(in);
  trace.workload.memory_utilization = decode_f32(in);
  trace.workload.read_write_ratio = decode_f32(in);

  const std::uint64_t ces = in.varint();
  trace.ces.reserve(ces);
  SimTime prev = 0;
  for (std::uint64_t i = 0; i < ces; ++i) {
    dram::CeEvent ce;
    const std::uint64_t delta = in.varint();
    MEMFP_CHECK_LE(delta, static_cast<std::uint64_t>(
                              std::numeric_limits<SimTime>::max() - prev))
        << "trace store: CE timestamp overflows SimTime" << context;
    ce.time = prev + static_cast<SimTime>(delta);
    prev = ce.time;
    ce.coord = decode_coord(in);
    ce.pattern = decode_pattern(in);
    trace.ces.push_back(std::move(ce));
  }

  const std::uint64_t events = in.varint();
  trace.events.reserve(events);
  prev = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    dram::MemEvent event;
    const std::uint64_t delta = in.varint();
    MEMFP_CHECK_LE(delta, static_cast<std::uint64_t>(
                              std::numeric_limits<SimTime>::max() - prev))
        << "trace store: event timestamp overflows SimTime" << context;
    event.time = prev + static_cast<SimTime>(delta);
    prev = event.time;
    const std::uint8_t type = in.byte();
    MEMFP_CHECK_LE(type, static_cast<int>(dram::MemEventType::kPageOffline))
        << "trace store: invalid mem event type" << context;
    event.type = static_cast<dram::MemEventType>(type);
    trace.events.push_back(event);
  }

  trace.suppressed_ce_count = in.varint();
  const std::uint8_t has_ue = in.byte();
  MEMFP_CHECK_LE(has_ue, 1u) << "trace store: invalid UE flag" << context;
  if (has_ue) {
    dram::UeEvent ue;
    const std::uint64_t time = in.varint();
    MEMFP_CHECK_LE(time, static_cast<std::uint64_t>(
                             std::numeric_limits<SimTime>::max()))
        << "trace store: UE timestamp overflows SimTime" << context;
    ue.time = static_cast<SimTime>(time);
    ue.coord = decode_coord(in);
    ue.pattern = decode_pattern(in);
    const std::uint8_t prior = in.byte();
    MEMFP_CHECK_LE(prior, 1u)
        << "trace store: invalid had_prior_ce flag" << context;
    ue.had_prior_ce = prior != 0;
    trace.ue = std::move(ue);
  }
  MEMFP_CHECK(in.exhausted())
      << "trace store: record carries " << payload.size() - in.position()
      << " trailing bytes" << context;
  return trace;
}

std::uint64_t trace_content_hash(const DimmTrace& trace) {
  std::vector<std::uint8_t> bytes;
  encode_dimm_record(trace, bytes);
  return fnv1a_bytes(kFnvOffset, bytes.data(), bytes.size());
}

void ShardStats::add(const ShardStats& other) {
  dimms += other.dimms;
  ce_records += other.ce_records;
  mem_events += other.mem_events;
  ue_records += other.ue_records;
  suppressed_ces += other.suppressed_ces;
  file_bytes += other.file_bytes;
}

// ---------------------------------------------------------------------------
// ShardWriter
// ---------------------------------------------------------------------------

ShardWriter::ShardWriter(const std::string& path, dram::Platform platform,
                         SimTime horizon)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  MEMFP_CHECK(out_.good()) << "trace store: cannot open " << path
                           << " for writing";
  MEMFP_CHECK_GE(horizon, 0);
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kHeaderMagic, kHeaderMagic + 8);
  put_u32(header, kFormatVersion);
  header.push_back(static_cast<std::uint8_t>(platform));
  header.push_back(0);
  header.push_back(0);
  header.push_back(0);
  put_u64(header, static_cast<std::uint64_t>(horizon));
  MEMFP_CHECK_EQ(header.size(), kHeaderBytes);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

ShardWriter::~ShardWriter() = default;

std::uint64_t ShardWriter::append(const DimmTrace& trace) {
  MEMFP_CHECK(!finished_) << "trace store: append after finish on " << path_;
  scratch_.clear();
  encode_dimm_record(trace, scratch_);
  const std::uint64_t content_hash =
      fnv1a_bytes(kFnvOffset, scratch_.data(), scratch_.size());
  std::vector<std::uint8_t> frame;
  frame.reserve(scratch_.size() + 5);
  put_varint(frame, scratch_.size());
  frame.insert(frame.end(), scratch_.begin(), scratch_.end());

  offsets_.push_back(region_bytes_);
  region_hash_ = fnv1a_bytes(region_hash_, frame.data(), frame.size());
  region_bytes_ += frame.size();
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  MEMFP_CHECK(out_.good())
      << "trace store: append write failed on " << path_ << " (disk full?)";

  ++stats_.dimms;
  stats_.ce_records += trace.ces.size();
  stats_.mem_events += trace.events.size();
  stats_.ue_records += trace.ue ? 1 : 0;
  stats_.suppressed_ces += trace.suppressed_ce_count;
  return content_hash;
}

ShardStats ShardWriter::finish() {
  MEMFP_CHECK(!finished_) << "trace store: double finish on " << path_;
  finished_ = true;

  std::vector<std::uint8_t> tail;
  put_varint(tail, offsets_.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t offset : offsets_) {
    put_varint(tail, offset - prev);
    prev = offset;
  }
  const std::uint64_t index_offset = kHeaderBytes + region_bytes_;
  put_u64(tail, index_offset);
  put_u64(tail, region_hash_);
  tail.insert(tail.end(), kFooterMagic, kFooterMagic + 8);
  out_.write(reinterpret_cast<const char*>(tail.data()),
             static_cast<std::streamsize>(tail.size()));
  // Flush before close: buffered bytes hit the filesystem here, so a full
  // disk fails this check (with the path) instead of surfacing as a
  // checksum/footer mismatch at the next decode.
  out_.flush();
  MEMFP_CHECK(out_.good())
      << "trace store: footer write failed on " << path_ << " (disk full?)";
  out_.close();
  MEMFP_CHECK(out_.good()) << "trace store: close failed on " << path_;

  stats_.file_bytes = index_offset + tail.size();
  return stats_;
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  MEMFP_CHECK(in.good()) << "trace store: cannot open " << path;
  std::vector<std::uint8_t> file(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  MEMFP_CHECK(!in.bad()) << "trace store: read failed on " << path;
  file_bytes_ = file.size();
  MEMFP_CHECK_GE(file.size(), kHeaderBytes + kFooterBytes)
      << "trace store: " << path << " is truncated";

  MEMFP_CHECK(std::memcmp(file.data(), kHeaderMagic, 8) == 0)
      << "trace store: " << path << " is not a shard file";
  const std::uint32_t version = get_u32(file.data() + 8);
  MEMFP_CHECK_EQ(version, kFormatVersion)
      << "trace store: unsupported shard version in " << path;
  const std::uint8_t platform = file[12];
  MEMFP_CHECK_LE(platform, static_cast<int>(dram::Platform::kK920))
      << "trace store: invalid platform in " << path;
  platform_ = static_cast<dram::Platform>(platform);
  horizon_ = static_cast<SimTime>(get_u64(file.data() + 16));
  MEMFP_CHECK_GE(horizon_, 0) << "trace store: negative horizon in " << path;

  const std::uint8_t* footer = file.data() + file.size() - kFooterBytes;
  MEMFP_CHECK(std::memcmp(footer + 16, kFooterMagic, 8) == 0)
      << "trace store: " << path << " has no footer (unfinished writer?)";
  const std::uint64_t index_offset = get_u64(footer);
  const std::uint64_t stored_hash = get_u64(footer + 8);
  MEMFP_CHECK(index_offset >= kHeaderBytes &&
              index_offset <= file.size() - kFooterBytes)
      << "trace store: index offset out of bounds in " << path;

  region_.assign(file.begin() + kHeaderBytes,
                 file.begin() + static_cast<std::ptrdiff_t>(index_offset));
  const std::uint64_t actual_hash =
      fnv1a_bytes(kFnvOffset, region_.data(), region_.size());
  MEMFP_CHECK_EQ(actual_hash, stored_hash)
      << "trace store: record region checksum mismatch in " << path;

  Cursor index(std::span<const std::uint8_t>(
      file.data() + index_offset,
      file.size() - kFooterBytes - index_offset));
  const std::uint64_t count = index.varint();
  records_.reserve(count);
  std::uint64_t offset = 0;
  std::uint64_t expected_next = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    offset += index.varint();
    MEMFP_CHECK_EQ(offset, expected_next)
        << "trace store: non-contiguous record frames in " << path;
    Cursor frame(std::span<const std::uint8_t>(region_)
                     .subspan(static_cast<std::size_t>(offset)));
    const std::uint64_t len = frame.varint();
    const std::uint64_t payload_start = offset + frame.position();
    // Subtraction form: a hostile length near 2^64 would wrap the additive
    // `payload_start + len` bound. payload_start <= region size holds by the
    // frame cursor's own bounds (it reads within region_[offset:]).
    MEMFP_CHECK_LE(len, region_.size() - payload_start)
        << "trace store: record overruns the region in " << path;
    records_.emplace_back(payload_start, len);
    expected_next = payload_start + len;
  }
  MEMFP_CHECK(index.exhausted())
      << "trace store: trailing bytes after the shard index in " << path;
  MEMFP_CHECK_EQ(expected_next, region_.size())
      << "trace store: record region has unindexed bytes in " << path;
}

DimmTrace TraceReader::read_dimm(std::size_t index) const {
  MEMFP_CHECK_LT(index, records_.size())
      << "trace store: record index out of range in " << path_;
  const auto [offset, length] = records_[index];
  char context[288];
  std::snprintf(context, sizeof(context), " in %s (record %zu)", path_.c_str(),
                index);
  return decode_dimm_record(
      std::span<const std::uint8_t>(region_).subspan(
          static_cast<std::size_t>(offset), static_cast<std::size_t>(length)),
      platform_, context);
}

// ---------------------------------------------------------------------------
// Store directories
// ---------------------------------------------------------------------------

std::string shard_path(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%05zu.mft", index);
  return (std::filesystem::path(dir) / name).string();
}

namespace {

/// Numeric index parsed from a "shard-<digits>.mft" filename. The %05zu
/// padding widens past 99,999 shards, where lexicographic order diverges
/// from numeric order; non-numeric or overflowing names sort after every
/// real shard (ties broken by full path below).
std::uint64_t shard_sort_key(const std::string& name) {
  constexpr std::uint64_t kUnparsed = std::numeric_limits<std::uint64_t>::max();
  constexpr std::size_t kPrefix = 6;  // "shard-"
  constexpr std::size_t kSuffix = 4;  // ".mft"
  if (name.size() <= kPrefix + kSuffix) return kUnparsed;
  std::uint64_t value = 0;
  for (std::size_t i = kPrefix; i < name.size() - kSuffix; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return kUnparsed;
    if (value > (kUnparsed - static_cast<std::uint64_t>(c - '0')) / 10) {
      return kUnparsed;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::vector<std::string> list_shards(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> shards;
  MEMFP_CHECK(fs::is_directory(dir))
      << "trace store: " << dir << " is not a directory";
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("shard-") && name.ends_with(".mft")) {
      shards.push_back(entry.path().string());
    }
  }
  std::sort(shards.begin(), shards.end(),
            [](const std::string& a, const std::string& b) {
              const std::uint64_t ka =
                  shard_sort_key(fs::path(a).filename().string());
              const std::uint64_t kb =
                  shard_sort_key(fs::path(b).filename().string());
              if (ka != kb) return ka < kb;
              return a < b;
            });
  return shards;
}

}  // namespace memfp::sim
