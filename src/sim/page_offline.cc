#include "sim/page_offline.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace memfp::sim {
namespace {

std::uint64_t row_key(const dram::CellCoord& c) {
  return (static_cast<std::uint64_t>(c.rank) << 56) |
         (static_cast<std::uint64_t>(c.device & 0xff) << 48) |
         (static_cast<std::uint64_t>(c.bank & 0xff) << 40) |
         (static_cast<std::uint64_t>(c.row & 0xffffff) << 16);
}

}  // namespace

OfflineOutcome apply_page_offlining(const DimmTrace& trace,
                                    const PageOfflinePolicy& policy,
                                    std::optional<SimTime> predictor_alarm) {
  OfflineOutcome outcome;
  std::unordered_map<std::uint64_t, int> row_ces;
  std::unordered_set<std::uint64_t> offlined;
  bool alarm_applied = false;

  const auto offline_row = [&](std::uint64_t row) {
    if (outcome.rows_offlined >= policy.max_rows_per_dimm) return;
    if (offlined.insert(row).second) ++outcome.rows_offlined;
  };
  const auto apply_alarm_action = [&] {
    // Prediction-guided: retire the DIMM's currently hottest rows.
    std::vector<std::pair<int, std::uint64_t>> hottest;
    // memfp-lint: allow(unordered-iter): sorted by (count, row) just below
    for (const auto& [row, count] : row_ces) hottest.push_back({count, row});
    std::sort(hottest.rbegin(), hottest.rend());
    for (const auto& [count, row] : hottest) {
      if (outcome.rows_offlined >= policy.max_rows_per_dimm) break;
      offline_row(row);
    }
  };

  for (const dram::CeEvent& ce : trace.ces) {
    if (predictor_alarm && !alarm_applied && ce.time >= *predictor_alarm) {
      apply_alarm_action();
      alarm_applied = true;
    }
    const std::uint64_t row = row_key(ce.coord);
    if (offlined.count(row)) {
      ++outcome.ces_avoided;
      continue;  // the page is gone; this CE never happens
    }
    if (++row_ces[row] >= policy.ce_threshold) offline_row(row);
  }
  if (predictor_alarm && !alarm_applied &&
      (!trace.ue || *predictor_alarm < trace.ue->time)) {
    apply_alarm_action();
  }

  if (trace.ue) {
    outcome.ue_row_offlined = offlined.count(row_key(trace.ue->coord)) > 0;
  }
  return outcome;
}

FleetOfflineReport evaluate_page_offlining(const FleetTrace& fleet,
                                           const PageOfflinePolicy& policy) {
  FleetOfflineReport report;
  for (const DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    ++report.dimms;
    const OfflineOutcome outcome = apply_page_offlining(dimm, policy);
    report.rows_offlined += static_cast<std::size_t>(outcome.rows_offlined);
    report.ces_avoided += outcome.ces_avoided;
    if (dimm.predictable_ue()) {
      ++report.ues_total;
      report.ues_avoided += outcome.ue_row_offlined;
    }
  }
  report.prevention_rate =
      report.ues_total == 0
          ? 0.0
          : static_cast<double>(report.ues_avoided) /
                static_cast<double>(report.ues_total);
  return report;
}

}  // namespace memfp::sim
