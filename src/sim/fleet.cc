#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "dram/ecc.h"

namespace memfp::sim {
namespace {

using dram::DeviceScope;
using dram::Fault;
using dram::FaultMode;

dram::Manufacturer sample_manufacturer(Rng& rng, bool degraded_bias) {
  // The degraded population skews toward manufacturer A (field studies
  // consistently see vendor-dependent failure rates).
  const std::vector<double> weights =
      degraded_bias ? std::vector<double>{0.45, 0.30, 0.15, 0.10}
                    : std::vector<double>{0.34, 0.30, 0.21, 0.15};
  return static_cast<dram::Manufacturer>(rng.weighted_index(weights));
}

dram::DramProcess sample_process(Rng& rng) {
  const std::vector<double> weights{0.20, 0.40, 0.30, 0.10};  // 1x 1y 1z 1a
  return static_cast<dram::DramProcess>(1 + rng.weighted_index(weights));
}

FaultMixEntry pick_mix(const std::vector<FaultMixEntry>& mix, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const FaultMixEntry& entry : mix) weights.push_back(entry.weight);
  return mix[rng.weighted_index(weights)];
}

dram::CellCoord sample_anchor(const dram::Geometry& geometry, Rng& rng) {
  dram::CellCoord coord;
  coord.rank = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(geometry.ranks)));
  coord.device = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(geometry.devices_per_rank())));
  coord.bank = static_cast<int>(
      rng.uniform_u64(static_cast<std::uint64_t>(geometry.banks)));
  coord.row = static_cast<int>(
      rng.uniform_u64(static_cast<std::uint64_t>(geometry.rows)));
  coord.column = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(geometry.columns)));
  return coord;
}

void assign_devices(Fault& fault, const dram::Geometry& geometry, Rng& rng) {
  fault.devices = {fault.anchor.device};
  if (fault.scope == DeviceScope::kMultiDevice) {
    int partner = fault.anchor.device;
    while (partner == fault.anchor.device) {
      partner = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(geometry.devices_per_rank())));
    }
    fault.devices.push_back(partner);
  }
}

}  // namespace

WorkloadStats sample_workload(Rng& rng, bool degraded_bias) {
  WorkloadStats workload;
  // Degraded DIMMs sit on marginally hotter servers — a weak correlation,
  // matching the field observation that workload metrics play a minor role
  // next to CE structure [27].
  const double shift = degraded_bias ? 0.06 : 0.0;
  workload.cpu_utilization = static_cast<float>(
      std::clamp(rng.normal(0.45 + shift, 0.18), 0.02, 0.99));
  workload.memory_utilization = static_cast<float>(
      std::clamp(rng.normal(0.55 + shift, 0.20), 0.02, 0.99));
  workload.read_write_ratio =
      static_cast<float>(std::clamp(rng.lognormal(0.7, 0.5), 0.2, 20.0));
  return workload;
}

dram::DimmConfig sample_dimm_config(dram::Platform platform, Rng& rng,
                                    bool degraded_bias) {
  dram::DimmConfig config;
  config.manufacturer = sample_manufacturer(rng, degraded_bias);
  config.process = sample_process(rng);
  config.width = dram::DeviceWidth::kX4;  // the paper's bit-level study target
  const int frequencies[] = {2400, 2666, 2933, 3200};
  // Whitley (Icelake) fleets run the faster parts.
  const std::size_t base = platform == dram::Platform::kIntelWhitley ? 2 : 0;
  config.frequency_mhz =
      frequencies[base + rng.uniform_u64(4 - base)];
  const int capacities[] = {16, 32, 64};
  config.capacity_gib = capacities[rng.uniform_u64(3)];
  config.part_number = std::string("DDR4-") +
                       dram::manufacturer_name(config.manufacturer) + "-" +
                       dram::process_name(config.process) + "-" +
                       std::to_string(config.frequency_mhz) + "-" +
                       std::to_string(config.capacity_gib) + "G";
  return config;
}

dram::Fault make_benign_fault(const ScenarioParams& params, Rng& rng) {
  const dram::Geometry geometry = dram::Geometry::ddr4_x4();
  Fault fault;
  const FaultMixEntry entry = pick_mix(params.benign_mix, rng);
  fault.mode = entry.mode;
  fault.scope = entry.scope;
  fault.anchor = sample_anchor(geometry, rng);
  assign_devices(fault, geometry, rng);
  fault.arrival = static_cast<SimTime>(
      rng.uniform(0.0, static_cast<double>(params.horizon) * 0.9));
  const bool lookalike = rng.bernoulli(params.lookalike_fraction);
  if (lookalike) {
    // Lookalikes develop the same risky bit signature as real escalators
    // but creep there slowly and stall short of the ECC boundary; real
    // escalators ramp steeply all the way through it. The residual overlap
    // (a slow escalator vs a fast lookalike) is the irreducible noise.
    fault.ce_rate_per_hour = rng.uniform(0.1, 1.0);
    fault.rate_growth_per_day = rng.uniform(0.005, 0.05);
    fault.severity0 = rng.uniform(0.20, 0.50);
    fault.severity_growth_per_day = rng.uniform(0.01, 0.06);
    fault.severity_cap = rng.uniform(0.82, 0.94);
  } else {
    fault.ce_rate_per_hour =
        std::clamp(rng.lognormal(std::log(0.04), 1.3), 0.003, 30.0);
    fault.rate_growth_per_day = rng.uniform(-0.002, 0.010);
    fault.severity0 = rng.uniform(0.05, 0.45);
    fault.severity_growth_per_day = rng.uniform(0.0, 0.02);
    fault.severity_cap = rng.uniform(0.35, 0.78);
  }
  fault.escalating = false;
  return fault;
}

dram::Fault make_escalating_fault(const ScenarioParams& params, Rng& rng,
                                  SimTime t_cross, double prelude_days) {
  const dram::Geometry geometry = dram::Geometry::ddr4_x4();
  Fault fault;
  const FaultMixEntry entry = pick_mix(params.escalator_mix, rng);
  fault.mode = entry.mode;
  fault.scope = entry.scope;
  fault.anchor = sample_anchor(geometry, rng);
  assign_devices(fault, geometry, rng);
  fault.escalating = true;
  fault.severity0 = rng.uniform(0.30, 0.50);
  fault.arrival = std::max<SimTime>(
      0, t_cross - static_cast<SimTime>(prelude_days * kDay));
  const double effective_prelude_days =
      static_cast<double>(t_cross - fault.arrival) /
      static_cast<double>(kDay);
  fault.severity_growth_per_day =
      (1.0 - fault.severity0) / std::max(effective_prelude_days, 0.02);
  fault.ce_rate_per_hour = rng.uniform(0.2, 1.2);
  fault.rate_growth_per_day = rng.uniform(0.04, 0.16);
  return fault;
}

dram::ErrorPattern sample_ue_pattern(dram::Platform platform,
                                     const dram::Geometry& geometry,
                                     Rng& rng) {
  const dram::FaultPatternModel model(platform, geometry);
  const auto ecc = dram::make_platform_ecc(platform);
  Fault fault;
  fault.mode = FaultMode::kRow;
  fault.scope = platform == dram::Platform::kIntelPurley
                    ? DeviceScope::kSingleDevice
                    : DeviceScope::kMultiDevice;
  fault.anchor = sample_anchor(geometry, rng);
  assign_devices(fault, geometry, rng);
  fault.escalating = true;
  // Past the boundary the generator emits the uncorrectable pattern with
  // high probability; retry the residual CE emissions away.
  for (int attempt = 0; attempt < 64; ++attempt) {
    dram::ErrorPattern pattern = model.sample(fault, 1.25, rng);
    if (ecc->classify(pattern, geometry) == dram::EccVerdict::kUncorrected) {
      return pattern;
    }
  }
  MEMFP_WARN << "sample_ue_pattern: falling back to cross-device pair";
  dram::ErrorPattern pattern;
  pattern.add({0, 0});
  pattern.add({static_cast<std::uint8_t>(geometry.dq_per_device()), 0});
  return pattern;
}

FleetPlan plan_fleet(const ScenarioParams& params) {
  FleetPlan plan;
  plan.benign = std::max(0, params.ce_dimms);
  // Degrading population: escalators that cross within the horizon, plus a
  // censored tail that crosses after it (they look risky but never fail —
  // the honest negatives that make the prediction task hard).
  plan.escalators = std::max(
      0, static_cast<int>(std::lround(
             params.predictable_ue_dimms /
             std::max(1e-6, 1.0 - params.censored_escalator_fraction))));
  plan.sudden = std::max(0, params.sudden_ue_dimms);
  return plan;
}

FleetPlanner::FleetPlanner(const ScenarioParams& params)
    : plan_(plan_fleet(params)), rng_(params.seed) {}

std::vector<PlannedDimm> FleetPlanner::take(std::size_t count) {
  const std::size_t total = plan_.total();
  const std::size_t end = std::min(total, next_ + count);
  std::vector<PlannedDimm> jobs;
  jobs.reserve(end - next_);
  const auto benign = static_cast<std::size_t>(plan_.benign);
  const auto degrading = benign + static_cast<std::size_t>(plan_.escalators);
  for (; next_ < end; ++next_) {
    const DimmKind kind = next_ < benign      ? DimmKind::kBenign
                          : next_ < degrading ? DimmKind::kEscalator
                                              : DimmKind::kSudden;
    jobs.push_back({kind, static_cast<dram::DimmId>(next_), rng_.fork()});
  }
  return jobs;
}

bool enters_observed_dataset(DimmKind kind, const DimmTrace& trace) {
  return kind == DimmKind::kSudden || trace.has_ce() || trace.has_ue();
}

DimmTrace simulate_planned_dimm(const PlannedDimm& job,
                                const ScenarioParams& params,
                                const DimmSimulator& simulator,
                                const dram::Geometry& geometry) {
  // job.rng is this DIMM's own planner fork and `job` is const, so the
  // local copy below is the stream's only advancing instance.
  // memfp-lint: allow(rng-discipline): job is const; sole advancing copy
  Rng dimm_rng = job.rng;
  const auto server = static_cast<std::uint32_t>(
      job.id / 2 % static_cast<std::uint32_t>(params.servers));
  switch (job.kind) {
    case DimmKind::kBenign: {
      const dram::DimmConfig config = sample_dimm_config(
          params.platform, dimm_rng, /*degraded_bias=*/false);
      std::vector<Fault> faults{make_benign_fault(params, dimm_rng)};
      if (dimm_rng.bernoulli(params.two_fault_probability)) {
        faults.push_back(make_benign_fault(params, dimm_rng));
      }
      DimmTrace trace = simulator.run(job.id, server, config, faults, dimm_rng);
      trace.workload = sample_workload(dimm_rng, /*degraded_bias=*/false);
      return trace;
    }
    case DimmKind::kEscalator: {
      const dram::DimmConfig config = sample_dimm_config(
          params.platform, dimm_rng, /*degraded_bias=*/true);
      const bool censored =
          dimm_rng.bernoulli(params.censored_escalator_fraction);
      const SimTime t_cross =
          censored ? params.horizon +
                         static_cast<SimTime>(dimm_rng.uniform(
                             static_cast<double>(days(2)),
                             static_cast<double>(days(45))))
                   : static_cast<SimTime>(dimm_rng.uniform(
                         static_cast<double>(days(12)),
                         static_cast<double>(params.horizon - days(1))));
      const bool short_prelude =
          dimm_rng.bernoulli(params.short_prelude_fraction);
      const double prelude_days =
          short_prelude ? dimm_rng.uniform(0.25, 2.0)
                        : std::clamp(dimm_rng.lognormal(std::log(10.0), 0.6),
                                     2.0, 60.0);
      std::vector<Fault> faults{
          make_escalating_fault(params, dimm_rng, t_cross, prelude_days)};
      if (dimm_rng.bernoulli(0.10)) {
        faults.push_back(make_benign_fault(params, dimm_rng));
      }
      DimmTrace trace = simulator.run(job.id, server, config, faults, dimm_rng);
      trace.workload = sample_workload(dimm_rng, /*degraded_bias=*/true);
      return trace;
    }
    case DimmKind::kSudden: {
      DimmTrace trace;
      trace.id = job.id;
      trace.server_id = server;
      trace.platform = params.platform;
      trace.config = sample_dimm_config(params.platform, dimm_rng,
                                        /*degraded_bias=*/true);
      trace.workload = sample_workload(dimm_rng, /*degraded_bias=*/true);
      dram::UeEvent ue;
      ue.time = static_cast<SimTime>(dimm_rng.uniform(
          static_cast<double>(days(1)), static_cast<double>(params.horizon)));
      ue.coord = sample_anchor(geometry, dimm_rng);
      ue.pattern = sample_ue_pattern(params.platform, geometry, dimm_rng);
      ue.had_prior_ce = false;
      trace.ue = ue;
      return trace;
    }
  }
  return {};
}

FleetTrace simulate_fleet(const ScenarioParams& params,
                          const DimmSimParams& sim_params) {
  DimmSimParams effective = sim_params;
  effective.horizon = params.horizon;
  const DimmSimulator simulator(params.platform, effective);
  const dram::Geometry geometry = dram::Geometry::ddr4_x4();

  FleetTrace fleet;
  fleet.platform = params.platform;
  fleet.horizon = params.horizon;

  // Plan the population serially: ids and RNG forks happen in the same order
  // the serial builder used, so the jobs are scheduling-independent. (The
  // sharded FleetDriver consumes the identical plan in id-range chunks.)
  FleetPlanner planner(params);
  const std::vector<PlannedDimm> jobs = planner.take(planner.plan().total());

  // Simulate every DIMM into its own slot (one task per DIMM), then merge in
  // id order so the trace layout matches the serial path exactly.
  std::vector<DimmTrace> traces(jobs.size());
  ThreadPool::global().parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        traces[i] = simulate_planned_dimm(jobs[i], params, simulator, geometry);
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    // Only observed DIMMs enter the dataset; sudden UEs always count.
    if (enters_observed_dataset(jobs[i].kind, traces[i])) {
      fleet.dimms.push_back(std::move(traces[i]));
    }
  }

  MEMFP_INFO << "simulated fleet " << dram::platform_name(params.platform)
             << ": " << fleet.dimms.size() << " observed DIMMs, "
             << fleet.dimms_with_ue() << " with UE ("
             << fleet.predictable_ue_dimms() << " predictable, "
             << fleet.sudden_ue_dimms() << " sudden)";
  return fleet;
}

}  // namespace memfp::sim
