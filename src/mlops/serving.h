// Multi-tenant online serving engine (ROADMAP item 3): the production form
// of the paper's Online Prediction stage, scaled from "one DIMM at a time on
// one thread" to sharded, batched, admission-controlled fleet serving.
//
//  - Shard map: DIMM streams are partitioned into contiguous near-equal id
//    ranges (the same begin = s*n/shards rule the fleet driver uses), one
//    persistent OnlineExtractorState per DIMM, shards served in parallel on
//    the deterministic ThreadPool.
//  - Batched inference: DIMMs due at the same cadence tick accumulate their
//    feature rows into batch_rows-row blocks scored through
//    BinaryClassifier::predict_batch (the flat/SIMD ensemble), amortizing
//    one block descent across many tenants. The tick sweep is cache-blocked
//    into cohorts of streams (tick-major within a cohort, cohort-major
//    overall) so extraction states stay cache-resident between ticks.
//  - Bounded queues: each shard routes due telemetry through a fixed-
//    capacity event queue; a full queue forces a drain ("stall") and is
//    counted as backpressure rather than growing memory.
//  - Admission control: a per-DIMM token bucket charges each ingested event;
//    a DIMM that runs dry is degraded to a coarser scoring cadence
//    (degraded_stride) until the bucket refills past half capacity, and
//    shard-level overload ticks shed degraded DIMMs entirely. Every shed
//    decision is counted (stats + Monitoring). Admission is OFF by default.
//
// Determinism contract: with admission control off, the scores, alarm set
// and monitoring counters produced by run_over / run_over_store are byte-
// identical to the serial single-row loop (run_reference) at every shard and
// thread count. The engine achieves this by buffering per-DIMM outcomes
// during the parallel phase and replaying them into AlarmSystem/Monitoring
// in global DIMM order afterwards; per-row scores are bit-equal by the
// predict_batch override contract (ml/model.h). Golden-hash tests pin this
// (tests/test_serving.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ml/model.h"
#include "mlops/alarm.h"
#include "mlops/feature_store.h"
#include "mlops/monitoring.h"
#include "sim/trace.h"
#include "sim/trace_store.h"

namespace memfp::mlops {

/// CE-storm admission control. Off by default: serving is then byte-
/// identical to the serial reference. When enabled, ingestion is never
/// blocked (extraction state must stay correct) — only scoring cadence
/// degrades, which bounds tick latency under storms.
struct AdmissionConfig {
  bool enabled = false;
  /// Token bucket refill per cadence tick; each ingested event costs one.
  double tokens_per_tick = 32.0;
  /// Burst allowance. A DIMM whose bucket runs dry degrades; it recovers
  /// once the bucket refills past half capacity.
  double bucket_capacity = 256.0;
  /// A degraded DIMM is scored only every degraded_stride-th tick.
  int degraded_stride = 4;
  /// Per-tick ingest count (within one serving cohort of a shard) above
  /// which the shard is overloaded: degraded DIMMs are shed entirely on
  /// overload ticks (normal DIMMs still score).
  std::uint64_t shard_overload_events = 1u << 20;
};

struct ServingConfig {
  /// Number of serving shards for run_over (run_over_store shards by file).
  std::size_t shards = 8;
  /// ThreadPool cap for the parallel shard sweep (0 = pool default).
  int num_threads = 0;
  /// Cross-DIMM inference block size.
  std::size_t batch_rows = 64;
  /// Cache-blocking factor: streams per serving cohort. A cohort advances
  /// through the whole tick range before the next cohort starts, so its
  /// extraction states stay cache-resident; larger cohorts fill inference
  /// batches better, smaller ones stay hotter. Purely a performance knob —
  /// results are byte-identical at any value.
  std::size_t cohort_streams = 16;
  /// Bounded per-shard event queue capacity (backpressure unit).
  std::size_t queue_capacity = 4096;
  AdmissionConfig admission;
  /// Optional monotonic clock probe (nanoseconds) used to measure per-shard
  /// tick latencies. Benches inject this; production code inside src/ never
  /// reads wall clocks directly (the `wall-clock` lint rule).
  std::function<std::uint64_t()> now_ns;
};

struct ServingStats {
  std::uint64_t dimms = 0;            ///< streams opened (DIMMs with CEs)
  std::uint64_t ticks = 0;            ///< cadence ticks swept (per shard)
  std::uint64_t ingested_ces = 0;
  std::uint64_t ingested_events = 0;  ///< non-CE memory events
  std::uint64_t scored = 0;           ///< predictions recorded to monitoring
  std::uint64_t batches = 0;          ///< predict_batch invocations
  std::uint64_t alarms = 0;           ///< alarm raises during this run
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_stalls = 0;     ///< forced drains of a full queue
  std::uint64_t shed_scores = 0;      ///< scoring ticks skipped by admission
  std::uint64_t degraded_dimms = 0;   ///< DIMMs that ever entered degraded mode
  std::uint64_t overload_ticks = 0;   ///< shard-ticks above the overload bar
  std::uint64_t score_hash = sim::kFnvOffset;  ///< (dimm, t, score) fold
  std::uint64_t alarm_hash = sim::kFnvOffset;  ///< alarm-vector fold
  /// Per-tick serving latencies (one sample per cohort per tick),
  /// concatenated in shard order. Filled only when ServingConfig::now_ns
  /// is set.
  std::vector<std::uint64_t> tick_latencies_ns;
};

/// Shard index serving DIMM stream `index` of `total` under the contiguous
/// near-equal range map (stable: pure function of index/total/shards).
std::size_t serving_shard_of(std::size_t index, std::size_t total,
                             std::size_t shards);

class ServingEngine {
 public:
  /// The engine serves `model` at `threshold` against streams opened from
  /// `store`, raising into `alarms` and reporting to `monitoring` (all
  /// borrowed; must outlive the engine).
  ServingEngine(const ml::BinaryClassifier& model, double threshold,
                const FeatureStore& store, AlarmSystem& alarms,
                Monitoring& monitoring, ServingConfig config = {});

  double threshold() const { return threshold_; }
  const ServingConfig& config() const { return config_; }

  /// Sharded, batched streaming sweep over an in-memory fleet at the given
  /// cadence over [start, end]; DIMMs stop being scored once they alarm or
  /// fail, exactly like the serial loop.
  ServingStats run_over(const sim::FleetTrace& fleet, SimTime start,
                        SimTime end, SimDuration cadence);

  /// Same sweep fed from trace-store shard files (sim::TraceReader), one
  /// serving shard per file: composes with the PR 6 fleet driver store so a
  /// million-DIMM fleet serves in shard-bounded RSS.
  ServingStats run_over_store(const std::vector<std::string>& shard_files,
                              SimTime start, SimTime end, SimDuration cadence);

  /// Serial single-row oracle: the pre-batching service loop (DIMM-major,
  /// one predict per tick). Kept as the byte-identity baseline for tests
  /// and benches.
  ServingStats run_reference(const sim::FleetTrace& fleet, SimTime start,
                             SimTime end, SimDuration cadence);

  /// Scores one extracted feature row: predict, report to monitoring, alarm
  /// on threshold crossing. Shared by the one-shot path (score_dimm) and
  /// the replay of streamed outcomes, so both apply the same `score >=
  /// threshold` crossing rule. Returns nullopt when `features` is empty
  /// (no observation window) — distinct from a genuine 0.0 score.
  std::optional<double> score_row(dram::DimmId dimm, SimTime t,
                                  const std::vector<float>& features);

 private:
  struct Outcome {
    SimTime time = 0;
    double score = 0.0;
    bool alarmed = false;
    // Cumulative per-stream ingest counts at this outcome's tick: the
    // rollback point for speculative scoring (see serve_shard).
    std::uint64_t ingested_ces = 0;
    std::uint64_t ingested_events = 0;
  };

  struct ShardOutput {
    std::vector<dram::DimmId> dimm_ids;          // shard order
    std::vector<std::vector<Outcome>> outcomes;  // parallel to dimm_ids
    std::uint64_t ticks = 0;
    std::uint64_t ingested_ces = 0;
    std::uint64_t ingested_events = 0;
    std::uint64_t batches = 0;
    std::uint64_t peak_queue_depth = 0;
    std::uint64_t queue_stalls = 0;
    std::uint64_t shed_scores = 0;
    std::uint64_t degraded_dimms = 0;
    std::uint64_t overload_ticks = 0;
    std::vector<std::uint64_t> tick_latencies_ns;
  };

  bool crossing(double score) const { return score >= threshold_; }

  /// Tick-major batched sweep over one shard's DIMM traces. Pure with
  /// respect to shared state: reads alarms_ (pre-existing alarms), writes
  /// only the returned output.
  ShardOutput serve_shard(const sim::DimmTrace* dimms, std::size_t count,
                          SimTime start, SimTime end,
                          SimDuration cadence) const;

  /// Replays buffered shard outcomes into AlarmSystem/Monitoring in shard
  /// order (= global DIMM order), reproducing the serial side-effect
  /// sequence, and folds the score hash.
  void replay(const ShardOutput& output, ServingStats& stats);

  /// Merges shard-local counters and finishes stats (alarm hash, admission
  /// counters into monitoring when admission is on).
  void finish(std::vector<ShardOutput>& outputs, ServingStats& stats);

  const ml::BinaryClassifier* model_;
  double threshold_;
  const FeatureStore* store_;
  AlarmSystem* alarms_;
  Monitoring* monitoring_;
  ServingConfig config_;
};

}  // namespace memfp::mlops
