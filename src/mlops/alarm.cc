#include "mlops/alarm.h"

namespace memfp::mlops {

void AlarmSystem::raise(dram::DimmId dimm, SimTime time, double score) {
  for (const Alarm& alarm : alarms_) {
    if (alarm.dimm == dimm) return;  // mitigation already in flight
  }
  alarms_.push_back({dimm, time, score});
}

std::optional<SimTime> AlarmSystem::first_alarm(dram::DimmId dimm) const {
  for (const Alarm& alarm : alarms_) {
    if (alarm.dimm == dimm) return alarm.time;
  }
  return std::nullopt;
}

MitigationReport account_mitigations(
    const sim::FleetTrace& fleet, const AlarmSystem& alarms,
    const features::PredictionWindows& windows,
    const MitigationPolicy& policy) {
  MitigationReport report;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const std::optional<SimTime> alarm = alarms.first_alarm(dimm.id);
    if (dimm.predictable_ue()) {
      const SimTime ue = dimm.ue->time;
      const bool timely = alarm && ue - *alarm >= windows.lead &&
                          ue - *alarm <= windows.lead + windows.prediction;
      if (timely) {
        ++report.true_positives;
      } else {
        ++report.false_negatives;
        if (alarm) ++report.false_positives;  // migration spent for nothing
      }
    } else if (alarm) {
      ++report.false_positives;
    }
  }
  const double va = policy.vms_per_server;
  const double yc = policy.cold_migration_fraction;
  const auto tp = static_cast<double>(report.true_positives);
  const auto fp = static_cast<double>(report.false_positives);
  const auto fn = static_cast<double>(report.false_negatives);
  report.interruptions_without_prediction = va * (tp + fn);
  report.interruptions_with_prediction = va * yc * (tp + fp) + va * fn;
  report.realized_virr =
      report.interruptions_without_prediction <= 0.0
          ? 0.0
          : (report.interruptions_without_prediction -
             report.interruptions_with_prediction) /
                report.interruptions_without_prediction;
  return report;
}

}  // namespace memfp::mlops
