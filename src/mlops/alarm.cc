#include "mlops/alarm.h"

namespace memfp::mlops {

void AlarmSystem::raise(dram::DimmId dimm, SimTime time, double score) {
  for (const Alarm& alarm : alarms_) {
    if (alarm.dimm == dimm) return;  // mitigation already in flight
  }
  alarms_.push_back({dimm, time, score});
}

std::optional<SimTime> AlarmSystem::first_alarm(dram::DimmId dimm) const {
  for (const Alarm& alarm : alarms_) {
    if (alarm.dimm == dimm) return alarm.time;
  }
  return std::nullopt;
}

MitigationReport account_mitigations(
    const sim::FleetTrace& fleet, const AlarmSystem& alarms,
    const features::PredictionWindows& windows,
    const MitigationPolicy& policy) {
  std::size_t tp = 0, fp = 0, fn = 0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const std::optional<SimTime> alarm = alarms.first_alarm(dimm.id);
    if (dimm.predictable_ue()) {
      const SimTime ue = dimm.ue->time;
      const bool timely = alarm && ue - *alarm >= windows.lead &&
                          ue - *alarm <= windows.lead + windows.prediction;
      if (timely) {
        ++tp;
      } else {
        ++fn;
        if (alarm) ++fp;  // migration spent for nothing
      }
    } else if (alarm) {
      ++fp;
    }
  }
  return account_confusion(tp, fp, fn, policy);
}

}  // namespace memfp::mlops
