#include "mlops/serving.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/thread_pool.h"

namespace memfp::mlops {
namespace {

std::uint64_t fold_score(std::uint64_t h, dram::DimmId dimm, SimTime t,
                         double score) {
  h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(dimm));
  h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(t));
  return sim::fnv1a_u64(h, std::bit_cast<std::uint64_t>(score));
}

std::uint64_t fold_alarms(const AlarmSystem& alarms) {
  std::uint64_t h = sim::kFnvOffset;
  for (const Alarm& alarm : alarms.alarms()) {
    h = fold_score(h, alarm.dimm, alarm.time, alarm.score);
  }
  return h;
}

}  // namespace

std::size_t serving_shard_of(std::size_t index, std::size_t total,
                             std::size_t shards) {
  MEMFP_CHECK(index < total) << "stream index outside the fleet";
  // Inverse of the contiguous range map begin(s) = s * total / shards: the
  // smallest s with begin(s + 1) > index.
  std::size_t s = (index * shards) / total;
  while ((s + 1) * total / shards <= index) ++s;
  return s;
}

ServingEngine::ServingEngine(const ml::BinaryClassifier& model,
                             double threshold, const FeatureStore& store,
                             AlarmSystem& alarms, Monitoring& monitoring,
                             ServingConfig config)
    : model_(&model),
      threshold_(threshold),
      store_(&store),
      alarms_(&alarms),
      monitoring_(&monitoring),
      config_(std::move(config)) {
  MEMFP_CHECK(config_.batch_rows > 0) << "batch_rows must be positive";
  MEMFP_CHECK(config_.queue_capacity > 0) << "queue_capacity must be positive";
  MEMFP_CHECK(!config_.admission.enabled ||
              config_.admission.degraded_stride > 0)
      << "degraded_stride must be positive";
}

std::optional<double> ServingEngine::score_row(
    dram::DimmId dimm, SimTime t, const std::vector<float>& features) {
  if (features.empty()) return std::nullopt;  // no observation window
  const double score = model_->predict(features);
  monitoring_->record_prediction(score);
  if (crossing(score)) {
    alarms_->raise(dimm, t, score);
    monitoring_->record_alarm();
  }
  return score;
}

ServingEngine::ShardOutput ServingEngine::serve_shard(
    const sim::DimmTrace* dimms, std::size_t count, SimTime start, SimTime end,
    SimDuration cadence) const {
  struct Cursor {
    const sim::DimmTrace* dimm = nullptr;
    features::OnlineExtractorState stream;
    std::size_t next_ce = 0;
    std::size_t next_event = 0;
    bool stopped = false;
    bool pre_alarmed = false;  // alarmed before this run: one tick, then stop
    bool alarm_latched = false;
    bool fed = false;  // events ingested at the current tick
    std::uint64_t ices = 0;     // cumulative CEs ingested into the stream
    std::uint64_t ievents = 0;  // cumulative memory events ingested
    // Admission state.
    double tokens = 0.0;
    bool degraded = false;
    bool ever_degraded = false;
    std::uint32_t degraded_phase = 0;
    std::vector<Outcome> outcomes;

    Cursor(const sim::DimmTrace* d, features::OnlineExtractorState s)
        : dimm(d), stream(std::move(s)) {}
  };

  const AdmissionConfig& adm = config_.admission;
  ShardOutput out;
  std::uint32_t degrade_seq = 0;  // round-robin stride phases, see below
  std::vector<Cursor> cursors;
  cursors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sim::DimmTrace& dimm = dimms[i];
    if (dimm.ces.empty()) continue;  // the serial loop skips these outright
    cursors.emplace_back(&dimm, store_->open_stream(dimm));
    Cursor& cur = cursors.back();
    cur.pre_alarmed = alarms_->first_alarm(dimm.id).has_value();
    cur.tokens = adm.bucket_capacity;
  }
  if (cursors.empty()) return out;

  // Bounded ingest queue: (cursor, kind, event index) triples. A full queue
  // forces a drain into the extraction streams — counted as backpressure.
  struct QueuedEvent {
    std::uint32_t cursor = 0;
    std::uint32_t kind = 0;  // 0 = CE, 1 = memory event
    std::uint64_t index = 0;
  };
  std::vector<QueuedEvent> queue;
  queue.reserve(config_.queue_capacity);
  SimTime tick_t = start;
  const auto drain = [&] {
    for (const QueuedEvent& qe : queue) {
      Cursor& cur = cursors[qe.cursor];
      if (qe.kind == 0) {
        cur.stream.ingest_ce_at(tick_t, cur.dimm->ces[qe.index]);
      } else {
        cur.stream.ingest_event_at(tick_t, cur.dimm->events[qe.index]);
      }
    }
    queue.clear();
  };

  // Batches accumulate across ticks (and DIMMs) of a cohort and flush only
  // when full, so predict_batch almost always sees full SIMD-width blocks.
  // The cost is bounded speculation: a crossing score only latches its
  // cursor's stop flag at flush time, so a to-be-alarmed stream may feed and
  // score a few extra ticks first. The shard tail truncates each cursor's
  // outcomes after its first alarm and rolls ingest stats back to that
  // outcome's snapshot, so the replayed results (and every identity-checked
  // stat) match the serial loop that stops at the alarm tick.
  ml::Matrix batch;
  std::vector<std::uint32_t> batch_cursors;
  std::vector<SimTime> batch_times;
  std::vector<std::uint64_t> batch_snap_ces;
  std::vector<std::uint64_t> batch_snap_events;
  batch_cursors.reserve(config_.batch_rows);
  batch_times.reserve(config_.batch_rows);
  batch_snap_ces.reserve(config_.batch_rows);
  batch_snap_events.reserve(config_.batch_rows);
  std::vector<float> scratch;
  const auto flush = [&] {
    if (batch.rows() == 0) return;
    const std::vector<double> scores = model_->predict_batch(batch);
    ++out.batches;
    for (std::size_t r = 0; r < scores.size(); ++r) {
      Cursor& cur = cursors[batch_cursors[r]];
      const bool alarmed = crossing(scores[r]);
      cur.outcomes.push_back({batch_times[r], scores[r], alarmed,
                              batch_snap_ces[r], batch_snap_events[r]});
      if (alarmed) cur.alarm_latched = true;
    }
    batch.clear_rows();
    batch_cursors.clear();
    batch_times.clear();
    batch_snap_ces.clear();
    batch_snap_events.clear();
  };

  // Cache-blocked sweep: cursors advance through the tick range in cohorts
  // of kCohort streams, tick-major only within a cohort. A flat tick-major
  // sweep over the whole shard touches every stream's extraction state
  // every tick (nothing stays cache-resident and serving runs slower than
  // the DIMM-major serial loop it batches for); a cohort's states fit in
  // cache across its whole tick range while cross-DIMM batches still fill.
  // Outcome replay order is per-cursor and independent of this loop order,
  // so the byte-identity contract is untouched.
  const std::size_t cohort_size = std::max<std::size_t>(1, config_.cohort_streams);
  for (std::size_t cohort = 0; cohort < cursors.size(); cohort += cohort_size) {
    const auto cbegin = static_cast<std::uint32_t>(cohort);
    const auto cend = static_cast<std::uint32_t>(
        std::min(cohort + cohort_size, cursors.size()));
  for (SimTime t = start; t <= end; t += cadence) {
    tick_t = t;
    const std::uint64_t t0 = config_.now_ns ? config_.now_ns() : 0;
    if (cohort == 0) ++out.ticks;
    std::size_t live = 0;
    std::uint64_t fed_total = 0;

    // ---- Feed pass: route due telemetry through the bounded queue. ----
    for (std::uint32_t ci = cbegin; ci < cend; ++ci) {
      Cursor& cur = cursors[ci];
      if (cur.stopped) continue;
      const sim::DimmTrace& dimm = *cur.dimm;
      if (dimm.ue && t >= dimm.ue->time) {  // the DIMM already failed
        cur.stopped = true;
        continue;
      }
      ++live;
      std::uint64_t fed = 0;
      while (cur.next_ce < dimm.ces.size() &&
             dimm.ces[cur.next_ce].time <= t) {
        if (queue.size() == config_.queue_capacity) {
          ++out.queue_stalls;
          drain();
        }
        queue.push_back({ci, 0, cur.next_ce});
        ++cur.next_ce;
        ++fed;
        ++cur.ices;
      }
      while (cur.next_event < dimm.events.size() &&
             dimm.events[cur.next_event].time <= t) {
        if (queue.size() == config_.queue_capacity) {
          ++out.queue_stalls;
          drain();
        }
        queue.push_back({ci, 1, cur.next_event});
        ++cur.next_event;
        ++fed;
        ++cur.ievents;
      }
      cur.fed = fed > 0;
      fed_total += fed;
      if (adm.enabled) {
        cur.tokens =
            std::min(adm.bucket_capacity, cur.tokens + adm.tokens_per_tick);
        if (static_cast<double>(fed) > cur.tokens && !cur.degraded) {
          cur.degraded = true;
          // Round-robin stride phases in degrade order so co-degraded storm
          // DIMMs score on different ticks: any fixed function of the cursor
          // index (say ci % stride) can alias with a periodic storm layout,
          // piling every degraded DIMM onto the same stride tick — then the
          // stride-th tick pays for all of them at once and the latency
          // tail never improves.
          cur.degraded_phase =
              degrade_seq++ % static_cast<std::uint32_t>(adm.degraded_stride);
          if (!cur.ever_degraded) {
            cur.ever_degraded = true;
            ++out.degraded_dimms;
          }
        }
        cur.tokens = std::max(0.0, cur.tokens - static_cast<double>(fed));
        if (cur.degraded && cur.tokens >= adm.bucket_capacity * 0.5) {
          cur.degraded = false;
        }
      }
    }
    out.peak_queue_depth =
        std::max<std::uint64_t>(out.peak_queue_depth, queue.size());
    drain();
    const bool overloaded =
        adm.enabled && fed_total > adm.shard_overload_events;
    if (overloaded) ++out.overload_ticks;

    // ---- Score pass: batch due DIMMs into cross-tenant blocks. ----
    for (std::uint32_t ci = cbegin; ci < cend; ++ci) {
      Cursor& cur = cursors[ci];
      if (cur.stopped) continue;
      if (adm.enabled && cur.degraded) {
        const bool stride_tick =
            cur.degraded_phase %
                static_cast<std::uint32_t>(adm.degraded_stride) ==
            0;
        ++cur.degraded_phase;
        if (!stride_tick || overloaded) {
          ++out.shed_scores;
          continue;
        }
      }
      // Exact idle skip: an untouched stream with an empty window scores
      // empty at any later tick, and features_at would be a pure no-op.
      if (!cur.fed && cur.stream.window_ces() == 0 && !cur.stream.has_pending()) {
        continue;
      }
      cur.stream.features_at(t, scratch);
      if (scratch.empty()) continue;  // no CE in the observation window
      batch.push_row(scratch);
      batch_cursors.push_back(ci);
      batch_times.push_back(t);
      batch_snap_ces.push_back(cur.ices);
      batch_snap_events.push_back(cur.ievents);
      if (batch.rows() == config_.batch_rows) flush();
    }

    // ---- Stop conditions, exactly the serial break rules: a DIMM stops
    // after the tick where its first alarm exists (raised this run or
    // pre-existing). ----
    for (std::uint32_t ci = cbegin; ci < cend; ++ci) {
      Cursor& cur = cursors[ci];
      if (cur.pre_alarmed || cur.alarm_latched) cur.stopped = true;
    }
    if (config_.now_ns) out.tick_latencies_ns.push_back(config_.now_ns() - t0);
    if (live == 0) break;  // every cohort stream failed or alarmed
  }
  flush();  // speculation never crosses a cohort boundary
  }

  // Shard tail: resolve speculation. A cursor's outcomes after its first
  // alarm never happened in the serial loop (it breaks after the alarm
  // tick), so drop them and roll the ingest stats back to the alarm
  // outcome's snapshot.
  out.dimm_ids.reserve(cursors.size());
  out.outcomes.reserve(cursors.size());
  for (Cursor& cur : cursors) {
    std::uint64_t kept_ces = cur.ices;
    std::uint64_t kept_events = cur.ievents;
    for (std::size_t k = 0; k < cur.outcomes.size(); ++k) {
      if (!cur.outcomes[k].alarmed) continue;
      kept_ces = cur.outcomes[k].ingested_ces;
      kept_events = cur.outcomes[k].ingested_events;
      cur.outcomes.resize(k + 1);
      break;
    }
    out.ingested_ces += kept_ces;
    out.ingested_events += kept_events;
    out.dimm_ids.push_back(cur.dimm->id);
    out.outcomes.push_back(std::move(cur.outcomes));
  }
  return out;
}

void ServingEngine::replay(const ShardOutput& output, ServingStats& stats) {
  for (std::size_t i = 0; i < output.dimm_ids.size(); ++i) {
    const dram::DimmId dimm = output.dimm_ids[i];
    for (const Outcome& outcome : output.outcomes[i]) {
      monitoring_->record_prediction(outcome.score);
      ++stats.scored;
      stats.score_hash =
          fold_score(stats.score_hash, dimm, outcome.time, outcome.score);
      if (outcome.alarmed) {
        alarms_->raise(dimm, outcome.time, outcome.score);
        monitoring_->record_alarm();
        ++stats.alarms;
      }
    }
  }
}

void ServingEngine::finish(std::vector<ShardOutput>& outputs,
                           ServingStats& stats) {
  for (ShardOutput& out : outputs) {
    stats.dimms += out.dimm_ids.size();
    stats.ticks += out.ticks;
    stats.ingested_ces += out.ingested_ces;
    stats.ingested_events += out.ingested_events;
    stats.batches += out.batches;
    stats.peak_queue_depth =
        std::max(stats.peak_queue_depth, out.peak_queue_depth);
    stats.queue_stalls += out.queue_stalls;
    stats.shed_scores += out.shed_scores;
    stats.degraded_dimms += out.degraded_dimms;
    stats.overload_ticks += out.overload_ticks;
    stats.tick_latencies_ns.insert(stats.tick_latencies_ns.end(),
                                   out.tick_latencies_ns.begin(),
                                   out.tick_latencies_ns.end());
  }
  stats.alarm_hash = fold_alarms(*alarms_);
  if (config_.admission.enabled) {
    monitoring_->record_load_shedding(stats.shed_scores, stats.degraded_dimms,
                                      stats.overload_ticks,
                                      stats.queue_stalls);
  }
}

ServingStats ServingEngine::run_over(const sim::FleetTrace& fleet,
                                     SimTime start, SimTime end,
                                     SimDuration cadence) {
  ServingStats stats;
  const std::size_t n = fleet.dimms.size();
  if (n == 0) {
    stats.alarm_hash = fold_alarms(*alarms_);
    return stats;
  }
  const std::size_t shards = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.shards == 0 ? 1 : config_.shards, n));
  std::vector<ShardOutput> outputs(shards);
  {
    ThreadPool::ScopedLimit limit(config_.num_threads);
    ThreadPool::global().parallel_for(
        shards,
        [&](std::size_t s) {
          const std::size_t begin = s * n / shards;
          const std::size_t shard_end = (s + 1) * n / shards;
          outputs[s] = serve_shard(fleet.dimms.data() + begin,
                                   shard_end - begin, start, end, cadence);
        },
        1);
  }
  for (ShardOutput& out : outputs) replay(out, stats);
  finish(outputs, stats);
  return stats;
}

ServingStats ServingEngine::run_over_store(
    const std::vector<std::string>& shard_files, SimTime start, SimTime end,
    SimDuration cadence) {
  ServingStats stats;
  if (shard_files.empty()) {
    stats.alarm_hash = fold_alarms(*alarms_);
    return stats;
  }
  std::vector<ShardOutput> outputs(shard_files.size());
  {
    ThreadPool::ScopedLimit limit(config_.num_threads);
    ThreadPool::global().parallel_for(
        shard_files.size(),
        [&](std::size_t s) {
          // One serving shard per store file; the decoded traces live only
          // for the duration of this task, so resident trace memory stays
          // bounded by shard size × active threads.
          const sim::TraceReader reader(shard_files[s]);
          std::vector<sim::DimmTrace> dimms;
          dimms.reserve(reader.dimm_count());
          for (std::size_t i = 0; i < reader.dimm_count(); ++i) {
            dimms.push_back(reader.read_dimm(i));
          }
          outputs[s] =
              serve_shard(dimms.data(), dimms.size(), start, end, cadence);
        },
        1);
  }
  for (ShardOutput& out : outputs) replay(out, stats);
  finish(outputs, stats);
  return stats;
}

ServingStats ServingEngine::run_reference(const sim::FleetTrace& fleet,
                                          SimTime start, SimTime end,
                                          SimDuration cadence) {
  // The pre-batching serving loop, DIMM-major with one single-row predict
  // per due tick. This is the oracle the sharded engine must match byte for
  // byte (admission off): same side-effect order on AlarmSystem/Monitoring,
  // same hashes.
  ServingStats stats;
  std::vector<float> features;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    ++stats.dimms;
    features::OnlineExtractorState stream = store_->open_stream(dimm);
    std::size_t next_ce = 0;
    std::size_t next_event = 0;
    for (SimTime t = start; t <= end; t += cadence) {
      if (dimm.ue && t >= dimm.ue->time) break;  // the DIMM already failed
      ++stats.ticks;
      while (next_ce < dimm.ces.size() && dimm.ces[next_ce].time <= t) {
        stream.observe_ce(dimm.ces[next_ce++]);
        ++stats.ingested_ces;
      }
      while (next_event < dimm.events.size() &&
             dimm.events[next_event].time <= t) {
        stream.observe_event(dimm.events[next_event++]);
        ++stats.ingested_events;
      }
      stream.features_at(t, features);
      if (!features.empty()) {
        const double score = model_->predict(features);
        monitoring_->record_prediction(score);
        ++stats.scored;
        stats.score_hash = fold_score(stats.score_hash, dimm.id, t, score);
        if (crossing(score)) {
          alarms_->raise(dimm.id, t, score);
          monitoring_->record_alarm();
          ++stats.alarms;
        }
      }
      if (alarms_->first_alarm(dimm.id)) break;  // mitigation in flight
    }
  }
  stats.alarm_hash = fold_alarms(*alarms_);
  return stats;
}

}  // namespace memfp::mlops
