// Online Prediction stage (paper Fig 6): serves the production model from
// the registry against streaming telemetry, raising alarms into the cloud
// alarm system and reporting every score to monitoring.
#pragma once

#include <memory>

#include "ml/model.h"
#include "mlops/alarm.h"
#include "mlops/feature_store.h"
#include "mlops/model_registry.h"
#include "mlops/monitoring.h"

namespace memfp::mlops {

class OnlinePredictionService {
 public:
  /// Binds to the production model for `platform`. `ready()` is false when
  /// the registry has none (or its artifact cannot be deserialized).
  OnlinePredictionService(const ModelRegistry& registry,
                          dram::Platform platform, const FeatureStore& store,
                          AlarmSystem& alarms, Monitoring& monitoring);

  bool ready() const { return model_ != nullptr; }
  double threshold() const { return threshold_; }

  /// One streaming prediction tick for one DIMM: extract point-in-time
  /// features, score, alarm on threshold crossing. Returns the score
  /// (0 when the observation window is empty).
  double score_dimm(const sim::DimmTrace& dimm, SimTime t);

  /// Streams a whole fleet at the given cadence over [start, end]; DIMMs
  /// stop being scored once they alarm or fail. Holds one persistent
  /// streaming extraction state per DIMM (FeatureStore::open_stream), so a
  /// sweep costs O(events + ticks) per DIMM instead of replaying the trace
  /// prefix at every tick.
  void run_over(const sim::FleetTrace& fleet, SimTime start, SimTime end,
                SimDuration cadence);

  /// Joins alarms with the ground truth that later materialized and feeds
  /// precision/recall feedback to monitoring (the paper's feedback loop).
  void apply_feedback(const sim::FleetTrace& fleet);

 private:
  /// Scores an already-extracted feature vector: predict, report to
  /// monitoring, alarm on threshold crossing. Shared by the one-shot and
  /// streaming paths.
  double score_features(dram::DimmId dimm, SimTime t,
                        const std::vector<float>& features);

  const FeatureStore* store_;
  AlarmSystem* alarms_;
  Monitoring* monitoring_;
  features::PredictionWindows windows_;
  std::unique_ptr<ml::BinaryClassifier> model_;
  double threshold_ = 0.5;
};

}  // namespace memfp::mlops
