// Online Prediction stage (paper Fig 6): serves the production model from
// the registry against streaming telemetry, raising alarms into the cloud
// alarm system and reporting every score to monitoring. Fleet sweeps are
// delegated to the sharded/batched ServingEngine (mlops/serving.h) with
// admission control off, so the service keeps its historical byte-exact
// serial semantics while running shard-parallel.
#pragma once

#include <memory>
#include <optional>

#include "ml/model.h"
#include "mlops/alarm.h"
#include "mlops/feature_store.h"
#include "mlops/model_registry.h"
#include "mlops/monitoring.h"
#include "mlops/serving.h"

namespace memfp::mlops {

class OnlinePredictionService {
 public:
  /// Binds to the production model for `platform`. `ready()` is false when
  /// the registry has none (or its artifact cannot be deserialized).
  OnlinePredictionService(const ModelRegistry& registry,
                          dram::Platform platform, const FeatureStore& store,
                          AlarmSystem& alarms, Monitoring& monitoring,
                          ServingConfig serving = {});

  bool ready() const { return engine_ != nullptr; }
  double threshold() const { return threshold_; }

  /// One streaming prediction tick for one DIMM: extract point-in-time
  /// features, score, alarm on threshold crossing. Returns the score, or
  /// nullopt when there is nothing to score (service not ready, or the
  /// observation window is empty) — distinct from a genuine 0.0 score.
  std::optional<double> score_dimm(const sim::DimmTrace& dimm, SimTime t);

  /// Streams a whole fleet at the given cadence over [start, end]; DIMMs
  /// stop being scored once they alarm or fail. Runs on the ServingEngine:
  /// persistent per-DIMM extraction streams sharded across the thread pool
  /// with batched cross-DIMM inference, byte-identical to the serial loop.
  ServingStats run_over(const sim::FleetTrace& fleet, SimTime start,
                        SimTime end, SimDuration cadence);

  /// Joins alarms with the ground truth that later materialized and feeds
  /// precision/recall feedback to monitoring (the paper's feedback loop).
  void apply_feedback(const sim::FleetTrace& fleet);

 private:
  const FeatureStore* store_;
  AlarmSystem* alarms_;
  Monitoring* monitoring_;
  features::PredictionWindows windows_;
  std::unique_ptr<ml::BinaryClassifier> model_;
  std::unique_ptr<ServingEngine> engine_;
  double threshold_ = 0.5;
};

}  // namespace memfp::mlops
