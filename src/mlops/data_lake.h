// Data Pipeline stage of the MLOps framework (paper Fig 6): raw telemetry
// from the BMC collectors lands in an append-only, source-partitioned lake.
// An in-process stand-in for Huawei's DLI: same dataflow, no cluster.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace memfp::mlops {

class DataLake {
 public:
  /// Appends a fleet snapshot under a partition key, e.g. "bmc/purley/2023H1".
  /// Re-ingesting an existing partition replaces it (idempotent backfills).
  void ingest(const std::string& partition, sim::FleetTrace trace);

  bool contains(const std::string& partition) const;
  /// Throws std::out_of_range when the partition is missing.
  const sim::FleetTrace& get(const std::string& partition) const;
  std::vector<std::string> partitions() const;

  /// Total raw records (CE + UE + events) across all partitions — the
  /// ingest-rate counter surfaced by the monitoring dashboards.
  std::size_t record_count() const;

 private:
  std::map<std::string, sim::FleetTrace> partitions_;
};

}  // namespace memfp::mlops
